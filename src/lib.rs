//! Facade crate re-exporting the whole Crowd4U workspace.
pub use crowd4u_assign as assign;
pub use crowd4u_collab as collab;
pub use crowd4u_core as core;
pub use crowd4u_crowd as crowd;
pub use crowd4u_cylog as cylog;
pub use crowd4u_forms as forms;
pub use crowd4u_runtime as runtime;
pub use crowd4u_scenarios as scenarios;
pub use crowd4u_sim as sim;
pub use crowd4u_storage as storage;
pub use crowd4u_telemetry as telemetry;
