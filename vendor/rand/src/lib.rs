//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements exactly the `rand` 0.8 API surface the workspace uses:
//!
//! - [`rngs::StdRng`] — a deterministic 64-bit PRNG (xoshiro256++ seeded via
//!   SplitMix64, the same construction the real `rand_chacha`-backed `StdRng`
//!   is free to change between releases; we only promise determinism within
//!   this workspace)
//! - [`SeedableRng::seed_from_u64`]
//! - [`Rng::gen`] for `u64`, `u32`, `f64`, `bool`
//! - [`Rng::gen_range`] for half-open integer ranges and `f64` ranges
//!
//! Anything else from the real crate is intentionally absent; add methods
//! here only when a workspace crate actually needs them.

use std::ops::Range;

/// Minimal core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed. Two RNGs built from the same seed
    /// produce identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from a uniform word stream.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased integer sampling in `[0, span)` via rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64; rejection above it removes
    // modulo bias.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(
                    range.start < range.end,
                    "gen_range called with empty range"
                );
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(
                    range.start < range.end,
                    "gen_range called with empty range"
                );
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                (range.start as i64).wrapping_add(uniform_u64_below(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range called with empty range");
        let u = f64::from_rng(rng);
        range.start + (range.end - range.start) * u
    }
}

/// User-facing trait (subset of `rand::Rng`), blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the uniform word stream.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard RNG: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Mirrors the *role* of `rand::rngs::StdRng` (a good-quality seeded
    /// generator); the exact stream differs from the real crate, which is
    /// fine because `StdRng`'s stream is explicitly not portable across
    /// `rand` versions either.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(5u64..8);
            assert!((5..8).contains(&v));
            let i = r.gen_range(0usize..3);
            assert!(i < 3);
            let s = r.gen_range(-4i64..-1);
            assert!((-4..-1).contains(&s));
            let f = r.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
