//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the subset of proptest the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`)
//! - the [`strategy::Strategy`] trait with `prop_map` / `prop_filter`
//! - strategies: numeric ranges, `any::<T>()`, [`strategy::Just`], regex-like
//!   string literals (`"[a-z]{1,8}"`), tuples, [`collection::vec`],
//!   [`option::of`], and [`prop_oneof!`]
//! - assertion macros [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`]
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports its seed and case index; rerun
//!   with `PROPTEST_SEED=<seed>` to reproduce deterministically.
//! - **Fixed default case count** ([`test_runner::ProptestConfig::default`],
//!   128 cases) and a deterministic default seed, so CI runs are stable.
//! - String strategies accept only the regex subset actually used here:
//!   concatenations of literals and `[a-z]`/`[ -~]`-style classes with an
//!   optional `{m,n}` / `{n}` repetition.

pub mod strategy;
pub mod test_runner;

/// Strategies over collections (subset of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)` — a vector whose length is
    /// drawn from `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategies over `Option` (subset of `proptest::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` about a quarter of the time and `Some`
    /// drawn from the inner strategy otherwise.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.usize_in(0, 4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Top-level property-test macro (subset of `proptest::proptest!`).
///
/// Accepts an optional leading `#![proptest_config(expr)]` followed by one or
/// more `fn name(pat in strategy, ...) { body }` items. Each item must carry
/// its own `#[test]` attribute, exactly like the real crate.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: a tt-muncher over the fn items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[allow(unused_mut)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::test_runner::base_seed();
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(seed, case);
                let mut run = |rng: &mut $crate::test_runner::TestRng|
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), rng);)+
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = run(&mut rng) {
                    panic!(
                        "proptest case {}/{} failed (PROPTEST_SEED={}): {}",
                        case + 1,
                        config.cases,
                        seed,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg", args..)` — fail the
/// current case (returning `Err`) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional trailing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `prop_assert_ne!(a, b)` with optional trailing message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// `prop_oneof![s1, s2, ...]` — sample uniformly from one of several
/// strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
