//! Test-case execution support: configuration, RNG, and case failure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Configuration for a `proptest!` block (subset of the real crate's
/// `ProptestConfig`; only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128 }
    }
}

/// Seed shared by every case of a property run. Deterministic by default so
/// CI is reproducible; override with the `PROPTEST_SEED` environment
/// variable to replay a reported failure.
pub fn base_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => s
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
        Err(_) => 0xC0FF_EED0_0D00,
    }
}

/// Random source handed to strategies while sampling one test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for case number `case` of a run with base seed `seed`.
    pub fn for_case(seed: u64, case: u32) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(
                seed.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
        }
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen::<u64>()
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `usize` in `[lo, hi)`. Requires `lo < hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        self.inner.gen_range(lo..hi)
    }
}

/// Why a single test case failed. Returned (via `Err`) by the
/// `prop_assert*` macros; the `proptest!` harness turns it into a panic that
/// reports the seed and case index.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion inside the case body failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "{reason}"),
        }
    }
}

impl std::error::Error for TestCaseError {}
