//! The [`Strategy`] trait and the concrete strategies the workspace uses.
//!
//! A strategy is simply "a way to sample a value from a [`TestRng`]". Unlike
//! the real proptest there is no value tree and no shrinking.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A source of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep resampling until `pred` accepts the value. `reason` is reported
    /// if no acceptable value is found within a resample budget.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

/// Boxes a strategy for use in heterogeneous lists (see `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.as_ref().sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive samples",
            self.reason
        );
    }
}

/// Strategy that always yields a clone of one value (`Just(x)`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies with the same value type
/// (behind `prop_oneof!`).
pub struct Union<V> {
    choices: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Uniform union of `choices`. Panics if empty.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_in(0, self.choices.len());
        self.choices[i].sample(rng)
    }
}

/// Types with a default "any value" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// `any::<T>()` — the default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Finite floats over a wide dynamic range (mirrors the real crate's
    /// default of excluding NaN and the infinities).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Occasionally produce exact zero, a common edge case.
        if rng.usize_in(0, 32) == 0 {
            return 0.0;
        }
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        let exp = rng.usize_in(0, 401) as i32 - 200;
        let mantissa = rng.unit_f64() + 1.0; // [1, 2)
        sign * mantissa * 2f64.powi(exp)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// String literals act as regex-subset strategies, e.g. `"[a-z]{1,8}"`.
///
/// Supported syntax: a concatenation of atoms, where an atom is either a
/// literal character or a character class `[...]` (with `a-z` style ranges),
/// optionally followed by `{n}` or `{m,n}` repetition (inclusive bounds,
/// regex semantics).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_regex_subset(self, rng)
    }
}

fn sample_regex_subset(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed '[' in strategy pattern {pattern:?}"))
                + i;
            let class = expand_class(&chars[i + 1..close], pattern);
            i = close + 1;
            class
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Parse an optional {n} / {m,n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in strategy pattern {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (parse_rep(m, pattern), parse_rep(n, pattern)),
                None => {
                    let n = parse_rep(&spec, pattern);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        debug_assert!(lo <= hi, "bad repetition in {pattern:?}");
        let count = rng.usize_in(lo, hi + 1);
        for _ in 0..count {
            out.push(alphabet[rng.usize_in(0, alphabet.len())]);
        }
    }
    out
}

fn parse_rep(s: &str, pattern: &str) -> usize {
    s.trim()
        .parse::<usize>()
        .unwrap_or_else(|_| panic!("bad repetition bound {s:?} in strategy pattern {pattern:?}"))
}

/// Expand the interior of a `[...]` class into its member characters.
fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty character class in {pattern:?}");
    let mut members = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted class range in {pattern:?}");
            for c in lo..=hi {
                members.push(c);
            }
            i += 3;
        } else {
            members.push(body[i]);
            i += 1;
        }
    }
    members
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case(42, 0)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3u64..9).sample(&mut r);
            assert!((3..9).contains(&v));
            let s = (-5i64..5).sample(&mut r);
            assert!((-5..5).contains(&s));
            let f = (0.25f64..0.75).sample(&mut r);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn regex_subset_strings() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "[a-z]{1,8}".sample(&mut r);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let p = "[ -~]{0,16}".sample(&mut r);
            assert!(p.chars().count() <= 16);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)), "{p:?}");
        }
        // Literals and fixed repetitions.
        assert_eq!("abc".sample(&mut r), "abc");
        assert_eq!("x{3}".sample(&mut r), "xxx");
    }

    #[test]
    fn map_filter_just_union() {
        let mut r = rng();
        let doubled = (0u64..10).prop_map(|v| v * 2).sample(&mut r);
        assert!(doubled % 2 == 0 && doubled < 20);

        let odd = (0u64..10).prop_filter("odd", |v| v % 2 == 1);
        for _ in 0..100 {
            assert!(odd.sample(&mut r) % 2 == 1);
        }

        assert_eq!(Just(7u8).sample(&mut r), 7);

        let u = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8))]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.sample(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn collections_and_options() {
        let mut r = rng();
        for _ in 0..200 {
            let v = crate::collection::vec(0u64..5, 2..6).sample(&mut r);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = crate::collection::vec(0u64..5, 4).sample(&mut r);
        assert_eq!(fixed.len(), 4);

        let mut nones = 0;
        let mut somes = 0;
        for _ in 0..400 {
            match crate::option::of(0u64..5).sample(&mut r) {
                None => nones += 1,
                Some(v) => {
                    assert!(v < 5);
                    somes += 1;
                }
            }
        }
        assert!(nones > 0 && somes > 0);
    }

    #[test]
    fn any_f64_is_finite() {
        let mut r = rng();
        for _ in 0..2000 {
            assert!(f64::arbitrary(&mut r).is_finite());
        }
    }
}
