//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the criterion 0.5 API surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each routine is warmed up briefly, then timed over
//! enough iterations to fill a small per-bench time budget (~60 ms by
//! default, `CRITERION_BUDGET_MS` to override). The mean ns/iter is printed
//! in a `cargo bench`-like format. There is no statistical analysis, HTML
//! report, or comparison with previous runs — this harness exists so that
//! `cargo bench` runs and reports plausible relative numbers offline, not to
//! replace criterion's statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-bench time budget.
fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(60);
    Duration::from_millis(ms)
}

/// Skip the untimed warmup invocation (`CRITERION_SKIP_WARMUP=1`): CI smoke
/// runs use this so a slow routine is executed once, not twice. The first
/// timed iteration then absorbs lazy-setup costs — acceptable for a smoke
/// gate, wrong for careful measurements.
fn skip_warmup() -> bool {
    std::env::var("CRITERION_SKIP_WARMUP").is_ok_and(|v| v == "1")
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix
/// (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the shim.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, &mut f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Benchmark identifier (subset of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark id: a [`BenchmarkId`] or a plain string.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Throughput annotation (accepted, ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch-size hint for [`Bencher::iter_batched`] (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing driver handed to each benchmark closure
/// (subset of `criterion::Bencher`).
pub struct Bencher {
    /// Total time spent inside timed routines.
    elapsed: Duration,
    /// Number of timed routine invocations.
    iters: u64,
    /// Wall-clock budget for this bench.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Time `routine` repeatedly until the budget is filled.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup: one untimed call (also forces lazy setup).
        if !skip_warmup() {
            black_box(routine());
        }
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    /// Time `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if !skip_warmup() {
            black_box(routine(setup()));
        }
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(budget());
    f(&mut b);
    if b.iters == 0 {
        println!("{id:<50} (no timed iterations)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() / b.iters as u128;
    println!(
        "{id:<50} time: {:>12} ns/iter  ({} iterations)",
        per_iter, b.iters
    );
}

/// Declare a group of benchmark functions (subset of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench `main` running one or more groups
/// (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: tests drive `Bencher` with an explicit budget rather than via
    // `CRITERION_BUDGET_MS` — mutating the process environment would race
    // with concurrent tests reading it.

    #[test]
    fn bencher_iter_runs_routine() {
        let mut calls = 0u64;
        let mut b = Bencher::new(Duration::from_millis(1));
        b.iter(|| calls += 1);
        assert!(calls > 0);
        assert!(b.iters > 0);
    }

    #[test]
    fn bencher_iter_batched_times_routine_only() {
        let mut setups = 0u64;
        let mut runs = 0u64;
        let mut b = Bencher::new(Duration::from_millis(1));
        b.iter_batched(
            || {
                setups += 1;
                7u64
            },
            |n| {
                runs += 1;
                black_box(n + 1)
            },
            BatchSize::SmallInput,
        );
        assert!(runs > 0);
        assert!(setups >= runs); // warmup setup included
    }

    #[test]
    fn group_and_ids() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter_batched(|| 7u64, |n| black_box(n + 1), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 4).into_benchmark_id(), "f/4");
        assert_eq!(BenchmarkId::from_parameter(7).into_benchmark_id(), "7");
    }
}
