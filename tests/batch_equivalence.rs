//! Property: batched answer ingestion is observationally identical to
//! call-at-a-time ingestion. For any sequence of worker answers,
//! `CylogEngine::answer_batch` (N answers, one fixpoint) and the serial
//! `answer` + `run` path (N answers, N fixpoints) must reach the same
//! database (byte-identical snapshot), the same points ledger, and the
//! same pending-question set — this is what makes the platform's batch
//! path a pure optimisation. Both paths run in the default incremental
//! mode; a third engine pinned to clear-and-rerun (`SemiNaive`) must match
//! them too, so batching and cross-batch deltas compose.

use crowd4u::cylog::engine::{AnswerRecord, CylogEngine};
use crowd4u::cylog::eval::EvalMode;
use crowd4u::storage::snapshot;
use proptest::prelude::*;

const SRC: &str = "\
rel sentence(s: str).
open translate(s: str) -> (t: str) points 2.
open check(s: str, t: str) -> (ok: bool) points 1.
rel approved(s: str, t: str).
approved(S, T) :- sentence(S), translate(S, T), check(S, T, OK), OK = true.
";

fn engine_with(items: &[String]) -> CylogEngine {
    let mut e = CylogEngine::from_source(SRC).unwrap();
    for s in items {
        e.add_fact("sentence", vec![s.clone().into()]).unwrap();
    }
    e.run().unwrap();
    e
}

proptest! {
    #[test]
    fn answer_batch_equals_serial_answer_plus_run(
        items in proptest::collection::vec("[a-m]{1,6}", 1..8),
        // (item index, output, worker, approve) — indexes wrap over items,
        // so every answer is valid; duplicate outputs and repeated answers
        // to one question are part of the space.
        raw in proptest::collection::vec(
            (0usize..16, "[n-z]{1,4}", 1u64..5, any::<bool>()),
            0..24,
        ),
    ) {
        // First translate answers, then check answers referencing them —
        // mirrors the two crowd passes of the translation pipeline.
        let mut answers: Vec<AnswerRecord> = Vec::new();
        for (idx, out, worker, _) in &raw {
            let item = &items[idx % items.len()];
            answers.push(AnswerRecord {
                pred: "translate".into(),
                inputs: vec![item.clone().into()],
                outputs: vec![out.clone().into()],
                worker: Some(*worker),
            });
        }
        for (idx, out, worker, ok) in &raw {
            let item = &items[idx % items.len()];
            answers.push(AnswerRecord {
                pred: "check".into(),
                inputs: vec![item.clone().into(), out.clone().into()],
                outputs: vec![(*ok).into()],
                worker: Some(*worker),
            });
        }

        let mut batched = engine_with(&items);
        let mut serial = engine_with(&items);
        // Reference engine on the clear-and-rerun path: every `run` drops
        // derived relations and recomputes from scratch.
        let mut rerun = CylogEngine::from_source(SRC).unwrap();
        rerun.set_mode(EvalMode::SemiNaive);
        for s in &items {
            rerun.add_fact("sentence", vec![s.clone().into()]).unwrap();
        }
        rerun.run().unwrap();

        let outcome = batched.answer_batch(&answers).unwrap();
        prop_assert_eq!(outcome.fresh + outcome.duplicates, answers.len());

        for a in &answers {
            serial
                .answer(&a.pred, a.inputs.clone(), a.outputs.clone(), a.worker)
                .unwrap();
            serial.run().unwrap();
        }
        rerun.answer_batch(&answers).unwrap();

        // Identical databases (facts + derived), byte for byte.
        prop_assert_eq!(
            snapshot::dump(batched.database()),
            snapshot::dump(serial.database())
        );
        prop_assert_eq!(
            snapshot::dump(batched.database()),
            snapshot::dump(rerun.database())
        );
        // Identical points ledgers.
        prop_assert_eq!(batched.leaderboard(), serial.leaderboard());
        prop_assert_eq!(batched.leaderboard(), rerun.leaderboard());
        // Identical pending sets (order included).
        prop_assert_eq!(batched.pending_requests(), serial.pending_requests());
        prop_assert_eq!(batched.pending_requests(), rerun.pending_requests());
    }
}
