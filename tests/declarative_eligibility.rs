//! End-to-end test of §2.2's defining sentence: Eligible "is computed by
//! the CyLog processor using the project description and worker human
//! factors" — here the project description itself says who qualifies, and
//! the platform obeys it; plus qualification tests feeding the factors.

use crowd4u::collab::Scheme;
use crowd4u::core::prelude::*;
use crowd4u::crowd::profile::{WorkerId, WorkerProfile};
use crowd4u::forms::admin::DesiredFactors;
use crowd4u::forms::form::FormResponse;

/// The paper's own example: "only workers who log in to Crowd4U and speak
/// English as a native language are eligible", written in CyLog.
const DECLARATIVE: &str = "\
rel worker(w: id).
rel worker_online(w: id).
rel worker_native(w: id, lang: str).
rel eligible(w: id).
eligible(W) :- worker_online(W), worker_native(W, \"en\").
rel item(x: str).
open label(x: str) -> (y: str).
rel out(x: str, y: str).
out(X, Y) :- item(X), label(X, Y).
";

#[test]
fn cylog_rules_decide_eligibility_on_the_platform() {
    let mut p = Crowd4U::new();
    p.register_worker(WorkerProfile::new(WorkerId(1), "en-online").with_native_lang("en"));
    let mut offline = WorkerProfile::new(WorkerId(2), "en-offline").with_native_lang("en");
    offline.factors.logged_in = false;
    p.register_worker(offline);
    p.register_worker(WorkerProfile::new(WorkerId(3), "ja-online").with_native_lang("ja"));

    let proj = p
        .register_project(
            "declarative",
            DECLARATIVE,
            DesiredFactors {
                min_team: 1,
                max_team: 2,
                ..Default::default()
            },
            Scheme::Sequential,
        )
        .unwrap();
    assert!(uses_declarative_eligibility(
        &p.project(proj).unwrap().engine
    ));

    let task = p.create_collab_task(proj, "work").unwrap();
    // Only the online English native qualifies — exactly the paper's rule.
    assert_eq!(p.relations.eligible_workers(task), vec![WorkerId(1)]);
    assert!(p.express_interest(WorkerId(1), task).is_ok());
    assert!(matches!(
        p.express_interest(WorkerId(2), task),
        Err(PlatformError::NotEligible { .. })
    ));
    assert!(matches!(
        p.express_interest(WorkerId(3), task),
        Err(PlatformError::NotEligible { .. })
    ));
    let team = p.run_assignment(task).unwrap();
    assert_eq!(team.members, vec![WorkerId(1)]);
}

#[test]
fn factor_changes_update_declarative_eligibility() {
    let mut p = Crowd4U::new();
    p.register_worker(WorkerProfile::new(WorkerId(1), "ann").with_native_lang("en"));
    let proj = p
        .register_project(
            "declarative",
            DECLARATIVE,
            DesiredFactors::default(),
            Scheme::Sequential,
        )
        .unwrap();
    let t1 = p.create_collab_task(proj, "first").unwrap();
    assert_eq!(p.relations.eligible_workers(t1), vec![WorkerId(1)]);

    // The worker logs out; the next task sees no eligible workers.
    p.workers.get_mut(WorkerId(1)).unwrap().factors.logged_in = false;
    let t2 = p.create_collab_task(proj, "second").unwrap();
    assert!(p.relations.eligible_workers(t2).is_empty());
}

#[test]
fn micro_tasks_respect_declarative_eligibility() {
    let mut p = Crowd4U::new();
    p.register_worker(WorkerProfile::new(WorkerId(1), "en").with_native_lang("en"));
    p.register_worker(WorkerProfile::new(WorkerId(2), "fr").with_native_lang("fr"));
    let proj = p
        .register_project(
            "declarative",
            DECLARATIVE,
            DesiredFactors::default(),
            Scheme::Sequential,
        )
        .unwrap();
    p.seed_fact(proj, "item", vec!["photo".into()]).unwrap();
    assert_eq!(p.sync_tasks(proj).unwrap(), 1);
    let task = p.pool.open_tasks(Some(proj))[0].id;
    // The French speaker can't answer; the English native can.
    assert!(matches!(
        p.submit_micro_answer(WorkerId(2), task, vec!["tag".into()]),
        Err(PlatformError::NotEligible { .. })
    ));
    p.submit_micro_answer(WorkerId(1), task, vec!["tag".into()])
        .unwrap();
    p.sync_tasks(proj).unwrap();
    assert_eq!(
        p.project(proj).unwrap().engine.fact_count("out").unwrap(),
        1
    );
}

#[test]
fn qualification_test_scores_flow_into_declarative_rules() {
    // A project that requires a passed qualification (skill ≥ 0.75) —
    // the test score is the system-computed factor (§2.4).
    const SKILL_GATED: &str = "\
rel worker_skill(w: id, skill: str, level: float).
rel eligible(w: id).
eligible(W) :- worker_skill(W, \"translation\", L), L >= 0.75.
rel item(x: str).
open label(x: str) -> (y: str).
rel out(x: str, y: str).
out(X, Y) :- item(X), label(X, Y).
";
    let mut p = Crowd4U::new();
    p.register_worker(WorkerProfile::new(WorkerId(1), "ann"));
    p.register_worker(WorkerProfile::new(WorkerId(2), "bob"));

    let test = QualificationTest::multiple_choice(
        "translation",
        &[
            ("'bonjour'?", &["hello", "bye"], "hello"),
            ("'merci'?", &["thanks", "please"], "thanks"),
            ("'chat'?", &["cat", "dog"], "cat"),
            ("'pain'?", &["bread", "hurt"], "bread"),
        ],
    );
    // Ann aces it; Bob gets half.
    let ann = FormResponse::new()
        .set("q0", "hello")
        .set("q1", "thanks")
        .set("q2", "cat")
        .set("q3", "bread");
    let bob = FormResponse::new()
        .set("q0", "hello")
        .set("q1", "please")
        .set("q2", "dog")
        .set("q3", "bread");
    assert_eq!(
        take_test(&mut p.workers, WorkerId(1), &test, &ann).unwrap(),
        1.0
    );
    assert_eq!(
        take_test(&mut p.workers, WorkerId(2), &test, &bob).unwrap(),
        0.5
    );

    let proj = p
        .register_project(
            "gated",
            SKILL_GATED,
            DesiredFactors::default(),
            Scheme::Sequential,
        )
        .unwrap();
    let task = p.create_collab_task(proj, "translate things").unwrap();
    assert_eq!(p.relations.eligible_workers(task), vec![WorkerId(1)]);
}
