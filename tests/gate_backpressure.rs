//! Backpressure contract of the ingestion gate: when a shard's bounded
//! mailbox is full,
//!
//! * `try_submit` fails fast with a **typed error** ([`GateError::Full`])
//!   that names the shard and hands the event back — nothing is silently
//!   shed;
//! * `submit` **blocks** until the consumer makes room, then completes;
//! * and across both policies **no accepted event is dropped or
//!   double-journaled** — the final journal carries exactly one entry per
//!   accepted event and replays cleanly.

use crowd4u::collab::Scheme;
use crowd4u::core::error::{ProjectId, WorkerId};
use crowd4u::core::events::PlatformEvent;
use crowd4u::core::platform::Crowd4U;
use crowd4u::crowd::profile::WorkerProfile;
use crowd4u::forms::admin::DesiredFactors;
use crowd4u::runtime::prelude::*;
use std::sync::mpsc::channel;
use std::time::Duration;

const SRC: &str = "rel item(x: str).\n";
const CAPACITY: usize = 4;

fn seed(s: &str) -> PlatformEvent {
    PlatformEvent::FactSeeded {
        project: ProjectId(1),
        pred: "item".into(),
        values: vec![s.into()],
    }
}

#[test]
fn full_mailbox_gives_typed_error_then_blocks_and_loses_nothing() {
    let rt = ShardedRuntime::new(RuntimeConfig {
        shards: 2,
        drain_every: 0,
        mailbox_capacity: CAPACITY,
    });
    rt.submit(PlatformEvent::WorkerRegistered {
        profile: WorkerProfile::new(WorkerId(1), "ann"),
    });
    rt.submit(PlatformEvent::ProjectRegistered {
        name: "p".into(),
        source: SRC.into(),
        factors: DesiredFactors::default(),
        scheme: Scheme::Sequential,
    });
    rt.barrier(); // setup applied everywhere before we stall the shard

    // Stall project 1's owner (shard 0) inside a job so its mailbox can
    // only fill up. Control messages are capacity-exempt, so the stall
    // itself always lands.
    let owner = rt.owner_of(ProjectId(1));
    assert_eq!(owner, 0);
    let (release_tx, release_rx) = channel::<()>();
    let stalled = rt.submit_job(owner, move |_| {
        release_rx.recv().expect("released");
    });

    // Error policy: the mailbox takes exactly `CAPACITY` data events, then
    // `try_submit` reports Full with the shard index and the event back.
    let gate = rt.gate();
    for i in 0..CAPACITY {
        gate.try_submit(seed(&format!("fits-{i}"))).unwrap();
    }
    let err = gate.try_submit(seed("rejected")).unwrap_err();
    let returned = match err {
        GateError::Full { shard, event } => {
            assert_eq!(shard, owner);
            *event
        }
        other => panic!("expected GateError::Full, got {other:?}"),
    };
    assert_eq!(returned, seed("rejected"));
    assert_eq!(gate.queued(owner), CAPACITY);

    // Block policy: a submitter on the full mailbox waits…
    let blocker = rt.gate();
    let (done_tx, done_rx) = channel::<u64>();
    std::thread::spawn(move || {
        let seq = blocker.submit(seed("blocked")).expect("runtime alive");
        done_tx.send(seq).unwrap();
    });
    assert!(
        done_rx.recv_timeout(Duration::from_millis(150)).is_err(),
        "submit must block while the mailbox is full"
    );

    // …and completes once the consumer makes room.
    release_tx.send(()).unwrap();
    stalled.recv().expect("stall job finished");
    done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("blocked submit must complete once the shard drains");

    // The typed error handed the event back intact: resubmit it.
    gate.submit(returned).unwrap();

    rt.drain();
    let run = rt.finish().unwrap();

    // No accepted event was dropped…
    let accepted = 2 + CAPACITY as u64 + 2; // setup + fits + blocked + resubmitted
    assert_eq!(run.stats.applied, accepted);
    assert_eq!(run.stats.dropped, 0);

    // …and none was double-journaled: exactly one `seed` entry per
    // accepted seed, each payload exactly once.
    let seeds: Vec<String> = run
        .journal
        .iter()
        .filter(|e| e.kind == "seed")
        .map(|e| format!("{:?}", e.args))
        .collect();
    assert_eq!(seeds.len(), CAPACITY + 2);
    let mut unique = seeds.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), seeds.len(), "double-journaled seed entry");

    // The journal replays: every accepted fact is present exactly once.
    let replayed = Crowd4U::replay(&run.journal).unwrap();
    assert_eq!(
        replayed
            .project(ProjectId(1))
            .unwrap()
            .engine
            .fact_count("item")
            .unwrap(),
        CAPACITY + 2
    );
}
