//! Backpressure contract of the ingestion gate: when a shard's bounded
//! mailbox is full,
//!
//! * `try_submit` fails fast with a **typed error** ([`GateError::Full`])
//!   that names the shard and hands the event back — nothing is silently
//!   shed;
//! * `submit` **blocks** until the consumer makes room, then completes;
//! * and across both policies **no accepted event is dropped or
//!   double-journaled** — the final journal carries exactly one entry per
//!   accepted event and replays cleanly.

use crowd4u::collab::Scheme;
use crowd4u::core::error::{ProjectId, WorkerId};
use crowd4u::core::events::PlatformEvent;
use crowd4u::core::platform::Crowd4U;
use crowd4u::crowd::profile::WorkerProfile;
use crowd4u::forms::admin::DesiredFactors;
use crowd4u::runtime::prelude::*;
use std::sync::mpsc::channel;
use std::time::Duration;

const SRC: &str = "rel item(x: str).\n";
const CAPACITY: usize = 4;

fn seed(s: &str) -> PlatformEvent {
    seed_for(1, s)
}

fn seed_for(project: u64, s: &str) -> PlatformEvent {
    PlatformEvent::FactSeeded {
        project: ProjectId(project),
        pred: "item".into(),
        values: vec![s.into()],
    }
}

#[test]
fn full_mailbox_gives_typed_error_then_blocks_and_loses_nothing() {
    let rt = ShardedRuntime::new(RuntimeConfig {
        shards: 2,
        drain_every: 0,
        mailbox_capacity: CAPACITY,
        recovery: false,
    });
    rt.submit(PlatformEvent::WorkerRegistered {
        profile: WorkerProfile::new(WorkerId(1), "ann"),
    });
    rt.submit(PlatformEvent::ProjectRegistered {
        name: "p".into(),
        source: SRC.into(),
        factors: DesiredFactors::default(),
        scheme: Scheme::Sequential,
        owner: 0,
    });
    rt.barrier(); // setup applied everywhere before we stall the shard

    // Stall project 1's owner (shard 0) inside a job so its mailbox can
    // only fill up. Control messages are capacity-exempt, so the stall
    // itself always lands.
    let owner = rt.owner_of(ProjectId(1));
    assert_eq!(owner, 0);
    let (release_tx, release_rx) = channel::<()>();
    let stalled = rt.submit_job(owner, move |_| {
        release_rx.recv().expect("released");
    });

    // Error policy: the mailbox takes exactly `CAPACITY` data events, then
    // `try_submit` reports Full with the shard index and the event back.
    let gate = rt.gate();
    for i in 0..CAPACITY {
        gate.try_submit(seed(&format!("fits-{i}"))).unwrap();
    }
    let err = gate.try_submit(seed("rejected")).unwrap_err();
    let returned = match err {
        GateError::Full { shard, event } => {
            assert_eq!(shard, owner);
            *event
        }
        other => panic!("expected GateError::Full, got {other:?}"),
    };
    assert_eq!(returned, seed("rejected"));
    assert_eq!(gate.queued(owner), CAPACITY);

    // Block policy: a submitter on the full mailbox waits…
    let blocker = rt.gate();
    let (done_tx, done_rx) = channel::<u64>();
    std::thread::spawn(move || {
        let seq = blocker.submit(seed("blocked")).expect("runtime alive");
        done_tx.send(seq).unwrap();
    });
    assert!(
        done_rx.recv_timeout(Duration::from_millis(150)).is_err(),
        "submit must block while the mailbox is full"
    );

    // …and completes once the consumer makes room.
    release_tx.send(()).unwrap();
    stalled.recv().expect("stall job finished");
    done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("blocked submit must complete once the shard drains");

    // The typed error handed the event back intact: resubmit it.
    gate.submit(returned).unwrap();

    rt.drain();
    let run = rt.finish().unwrap();

    // No accepted event was dropped…
    let accepted = 2 + CAPACITY as u64 + 2; // setup + fits + blocked + resubmitted
    assert_eq!(run.stats.applied, accepted);
    assert_eq!(run.stats.dropped, 0);

    // …and none was double-journaled: exactly one `seed` entry per
    // accepted seed, each payload exactly once.
    let seeds: Vec<String> = run
        .journal
        .iter()
        .filter(|e| e.kind == "seed")
        .map(|e| format!("{:?}", e.args))
        .collect();
    assert_eq!(seeds.len(), CAPACITY + 2);
    let mut unique = seeds.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), seeds.len(), "double-journaled seed entry");

    // The journal replays: every accepted fact is present exactly once.
    let replayed = Crowd4U::replay(&run.journal).unwrap();
    assert_eq!(
        replayed
            .project(ProjectId(1))
            .unwrap()
            .engine
            .fact_count("item")
            .unwrap(),
        CAPACITY + 2
    );
}

/// Satellite pin (PR 9): a panic unwinding out of **one** shard must not
/// poison liveness for the others. Before the fix, the first abandoned
/// mailbox made every producer see `GateError::Closed` — indistinguishable
/// from an orderly shutdown and fatal for traffic that never touched the
/// dead shard. The error is now scoped: events routed to the dead shard
/// get `GateError::ShardDown` naming it (event handed back), while the
/// healthy shards keep accepting project traffic, worker registrations and
/// broadcasts.
#[test]
fn one_dead_shard_scopes_its_error_and_leaves_the_rest_alive() {
    use crowd4u::sim::time::SimTime;

    let rt = ShardedRuntime::new(RuntimeConfig {
        shards: 2,
        drain_every: 0,
        mailbox_capacity: CAPACITY,
        recovery: false, // panics are fatal to their shard — the pre-PR 9 mode
    });
    rt.submit(PlatformEvent::WorkerRegistered {
        profile: WorkerProfile::new(WorkerId(1), "ann"),
    });
    for name in ["p1", "p2"] {
        rt.submit(PlatformEvent::ProjectRegistered {
            name: name.into(),
            source: SRC.into(),
            factors: DesiredFactors::default(),
            scheme: Scheme::Sequential,
            owner: 0,
        });
    }
    rt.barrier();
    assert_eq!(rt.owner_of(ProjectId(2)), 1);

    // Kill shard 1 (project 2's owner) with a panicking job.
    let _ = rt.submit_job(1, |_| panic!("injected shard death"));

    // The death is asynchronous; poll project-2 traffic until the mailbox
    // is abandoned. The typed error names the dead shard and hands the
    // event back — it must never widen to `Closed`.
    let gate = rt.gate();
    let mut spins = 0u32;
    loop {
        match gate.try_submit(seed_for(2, "to-dead-shard")) {
            Err(GateError::ShardDown { shard, event }) => {
                assert_eq!(shard, 1);
                assert_eq!(*event, seed_for(2, "to-dead-shard"));
                break;
            }
            // Accepted into the mailbox, or bounced off a full one — both
            // just mean the abandon hasn't landed yet; keep polling. The
            // dead-shard check outranks Full once it does.
            Ok(_) | Err(GateError::Full { .. }) => {
                spins += 1;
                assert!(spins < 1_000_000, "shard 1 never reported dead");
                std::thread::yield_now();
            }
            Err(other) => panic!("expected ShardDown for the dead shard, got {other:?}"),
        }
    }

    // The healthy shards are untouched: project 1 (shard 0), worker
    // registrations (coordinator) and broadcasts all still flow.
    gate.try_submit(seed_for(1, "alive")).unwrap();
    gate.try_submit(PlatformEvent::WorkerRegistered {
        profile: WorkerProfile::new(WorkerId(2), "bob"),
    })
    .unwrap();
    gate.try_submit(PlatformEvent::ClockAdvanced {
        to: SimTime(10),
        owner: 0,
    })
    .unwrap();

    // Shard 0 still *applies*, not just accepts: a barrier on it completes
    // and the seed is visible from the live slice.
    let count = rt.with_project(ProjectId(1), |p| {
        p.project(ProjectId(1))
            .unwrap()
            .engine
            .fact_count("item")
            .unwrap()
    });
    assert_eq!(count, 1);
    // `finish` would re-raise the shard's panic (tested in the runtime
    // crate); scoped liveness is the property here, so just drop.
    drop(rt);
}
