//! Differential property test for cross-batch incremental evaluation.
//!
//! A random stratified program — layered derived predicates mixing plain
//! projection, joins, recursion, negation and aggregation over a pool of
//! base predicates, plus an open predicate hooked to the top layer — is
//! driven by a random stream of fact insertions, crowd answers and
//! retractions, chopped into batches. After **every** batch, three engines
//! that saw the identical stream must agree **byte-identically**:
//!
//! * `Incremental` (the default): persists derived relations across runs
//!   and advances the fixpoint from per-batch deltas, falling back to a
//!   full recompute after retractions;
//! * `SemiNaive`: clear-and-rerun on every run;
//! * `Naive`: clear-and-rerun without delta joins.
//!
//! Agreement covers the canonical relation dump (every base, derived and
//! open relation), the pending question queue *including order*, and the
//! game-aspect points ledger. This is the proof obligation for making
//! incremental evaluation the default mode.

use crowd4u::cylog::engine::CylogEngine;
use crowd4u::cylog::eval::EvalMode;
use crowd4u::storage::prelude::Value;
use crowd4u::storage::snapshot;
use proptest::prelude::*;

/// A generated stratified program: CyLog source plus the base-predicate
/// count the op stream needs for addressing.
#[derive(Debug, Clone)]
struct ProgramSpec {
    src: String,
    n_base: usize,
}

/// Build a layered program. Layer `i` derives `d{i}` from the layer below
/// (`d{i-1}`, or `b0` for the first) according to `kind`:
///
/// * 0 — copy: `d(X, Y) :- src(X, Y).`
/// * 1 — join with a base predicate
/// * 2 — recursive closure over the layer below
/// * 3 — stratified negation against a base predicate
/// * 4 — `count` aggregate grouped by the first column
///
/// The top layer feeds the demand sub-body of an open predicate `q`, so
/// crowd questions are generated from *derived* deltas, not base facts.
fn build_program(n_base: usize, layer_kinds: &[u8], points: i64) -> ProgramSpec {
    let mut src = String::new();
    for j in 0..n_base {
        src.push_str(&format!("rel b{j}(x: int, y: int).\n"));
    }
    for (i, kind) in layer_kinds.iter().enumerate() {
        let prev = if i == 0 {
            "b0".to_string()
        } else {
            format!("d{}", i - 1)
        };
        let base = format!("b{}", i % n_base);
        src.push_str(&format!("rel d{i}(x: int, y: int).\n"));
        match kind % 5 {
            0 => src.push_str(&format!("d{i}(X, Y) :- {prev}(X, Y).\n")),
            1 => src.push_str(&format!("d{i}(X, Z) :- {prev}(X, Y), {base}(Y, Z).\n")),
            2 => {
                src.push_str(&format!("d{i}(X, Y) :- {prev}(X, Y).\n"));
                src.push_str(&format!("d{i}(X, Z) :- {prev}(X, Y), d{i}(Y, Z).\n"));
            }
            3 => src.push_str(&format!("d{i}(X, Y) :- {prev}(X, Y), not {base}(Y, X).\n")),
            _ => src.push_str(&format!("d{i}(X, count<Y>) :- {prev}(X, Y).\n")),
        }
    }
    let top = format!("d{}", layer_kinds.len() - 1);
    src.push_str(&format!("open q(x: int) -> (v: int) points {points}.\n"));
    src.push_str("rel hooked(x: int, v: int).\n");
    src.push_str(&format!("hooked(X, V) :- {top}(X, _), q(X, V).\n"));
    ProgramSpec { src, n_base }
}

/// One generated operation: `(kind, a, b, worker)`.
type RawOp = (u8, i64, i64, u64);

/// Apply one op identically to an engine. Kinds 0–3 insert a base fact,
/// 4–5 answer the open predicate (unsolicited answers included), 6–7
/// retract base facts by first column — the path that must force the
/// incremental engine into its full-recompute fallback.
fn apply_op(engine: &mut CylogEngine, n_base: usize, op: &RawOp) {
    let (kind, a, b, w) = *op;
    match kind % 8 {
        k @ 0..=3 => {
            let pred = format!("b{}", (k as usize) % n_base);
            engine
                .add_fact(&pred, vec![Value::Int(a), Value::Int(b)])
                .unwrap();
        }
        4 | 5 => {
            engine
                .answer("q", vec![Value::Int(a)], vec![Value::Int(b)], Some(w))
                .unwrap();
        }
        k => {
            let pred = format!("b{}", (k as usize) % n_base);
            engine
                .retract_where(&pred, |t| t[0] == Value::Int(a))
                .unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn incremental_equals_clear_and_rerun_equals_naive(
        spec in (1usize..4, proptest::collection::vec(0u8..5, 1..4), 1i64..4)
            .prop_map(|(n_base, kinds, points)| build_program(n_base, &kinds, points)),
        ops in proptest::collection::vec((0u8..8, 0i64..6, 0i64..6, 1u64..4), 0..30),
        batch in 1usize..6,
    ) {
        let mut inc = CylogEngine::from_source(&spec.src).unwrap();
        prop_assert_eq!(inc.mode(), EvalMode::Incremental, "incremental is the default");
        let mut semi = CylogEngine::from_source(&spec.src).unwrap();
        semi.set_mode(EvalMode::SemiNaive);
        let mut naive = CylogEngine::from_source(&spec.src).unwrap();
        naive.set_mode(EvalMode::Naive);

        for (bi, chunk) in ops.chunks(batch).enumerate() {
            for engine in [&mut inc, &mut semi, &mut naive] {
                for op in chunk {
                    apply_op(engine, spec.n_base, op);
                }
                engine.run().unwrap();
            }
            // Byte-identical relation state (base, derived, open, pending
            // queue with order, and the points ledger) after every batch.
            let inc_dump = snapshot::dump(inc.database());
            prop_assert_eq!(
                &inc_dump,
                &snapshot::dump(semi.database()),
                "incremental vs semi-naive dump diverged after batch {} of program:\n{}",
                bi,
                spec.src
            );
            prop_assert_eq!(
                &inc_dump,
                &snapshot::dump(naive.database()),
                "incremental vs naive dump diverged after batch {} of program:\n{}",
                bi,
                spec.src
            );
            prop_assert_eq!(
                inc.pending_requests(),
                semi.pending_requests(),
                "pending queue diverged after batch {} of program:\n{}",
                bi,
                spec.src
            );
            prop_assert_eq!(inc.pending_requests(), naive.pending_requests());
            prop_assert_eq!(inc.leaderboard(), semi.leaderboard());
            prop_assert_eq!(inc.leaderboard(), naive.leaderboard());
        }

        // The incremental engine must actually have run incrementally:
        // with no retractions in the stream, exactly one full recompute
        // (the first run) is allowed.
        let retractions = ops.iter().filter(|(k, ..)| k % 8 >= 6).count();
        if retractions == 0 && !ops.is_empty() {
            prop_assert_eq!(
                inc.cumulative_stats().recomputes, 1,
                "retraction-free stream must stay on the delta path"
            );
        }
    }
}
