//! Persistence: a project's CyLog database snapshots to text mid-run and
//! resumes in a fresh engine without losing human answers; and the whole
//! platform restores deterministically by replaying its event journal.

use crowd4u::collab::Scheme;
use crowd4u::core::prelude::*;
use crowd4u::crowd::profile::{WorkerId, WorkerProfile};
use crowd4u::cylog::engine::CylogEngine;
use crowd4u::forms::admin::DesiredFactors;
use crowd4u::sim::time::SimTime;
use crowd4u::storage::prelude::*;
use crowd4u::storage::snapshot;

const SRC: &str = "\
rel sentence(s: str).
open translate(s: str) -> (t: str) points 2.
rel published(s: str, t: str).
published(S, T) :- sentence(S), translate(S, T).
";

#[test]
fn project_database_snapshot_round_trip_mid_run() {
    let mut engine = CylogEngine::from_source(SRC).unwrap();
    for s in ["a", "b", "c"] {
        engine.add_fact("sentence", vec![s.into()]).unwrap();
    }
    engine.run().unwrap();
    engine
        .answer("translate", vec!["a".into()], vec!["A".into()], Some(1))
        .unwrap();
    engine.run().unwrap();
    assert_eq!(engine.fact_count("published").unwrap(), 1);
    assert_eq!(engine.pending_requests().len(), 2);

    // Snapshot the fact store.
    let text = snapshot::dump(engine.database());

    // A fresh engine from the same program ingests the snapshot's base and
    // open facts (derived facts are recomputed, so skipping them is safe).
    let restored = snapshot::load(&text).unwrap();
    let mut engine2 = CylogEngine::from_source(SRC).unwrap();
    for rel in ["sentence", "translate"] {
        for row in restored.relation(rel).unwrap().iter() {
            let vals: Vec<Value> = row.values().to_vec();
            if rel == "sentence" {
                engine2.add_fact(rel, vals).unwrap();
            } else {
                let inputs = vals[..1].to_vec();
                let outputs = vals[1..].to_vec();
                engine2.answer(rel, inputs, outputs, None).unwrap();
            }
        }
    }
    engine2.run().unwrap();

    // Identical derived state and identical remaining work.
    assert_eq!(engine2.fact_count("published").unwrap(), 1);
    assert_eq!(engine2.pending_requests().len(), 2);
    let mut a = engine.facts("published").unwrap().rows;
    let mut b = engine2.facts("published").unwrap().rows;
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn snapshot_file_round_trip() {
    let mut engine = CylogEngine::from_source(SRC).unwrap();
    engine.add_fact("sentence", vec!["x".into()]).unwrap();
    engine.run().unwrap();
    let dir = std::env::temp_dir().join("crowd4u_it_persistence");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("project.snapshot");
    snapshot::save_to_file(engine.database(), &path).unwrap();
    let loaded = snapshot::load_from_file(&path).unwrap();
    assert_eq!(snapshot::dump(&loaded), snapshot::dump(engine.database()));
    std::fs::remove_file(path).ok();
}

/// Drive a platform through a full mixed workload — registrations, project
/// setup, seeded facts, batched answers, team formation, deadlines,
/// completion — then replay its journal from its text form and check the
/// restored platform is indistinguishable: relations, every project
/// database, points ledgers and pending queues byte-identical.
#[test]
fn event_journal_replay_round_trip() {
    let mut live = Crowd4U::new();
    live.max_reassignments = 2;
    for i in 1..=5u64 {
        live.register_worker(WorkerProfile::new(WorkerId(i), format!("w{i}")));
    }
    let proj = live
        .register_project(
            "demo",
            SRC,
            DesiredFactors {
                min_team: 2,
                max_team: 3,
                recruitment_secs: 300,
                ..Default::default()
            },
            Scheme::Sequential,
        )
        .unwrap();
    // Batched seeding + one drain.
    let seeds: Vec<PlatformEvent> = ["a", "b", "c", "d"]
        .iter()
        .map(|s| PlatformEvent::FactSeeded {
            project: proj,
            pred: "sentence".into(),
            values: vec![(*s).into()],
        })
        .collect();
    live.apply_batch(seeds).unwrap();
    // Batched answers for half the open questions.
    let answer_events: Vec<PlatformEvent> = live
        .pool
        .open_tasks(Some(proj))
        .iter()
        .take(2)
        .enumerate()
        .map(|(i, t)| PlatformEvent::AnswerSubmitted {
            worker: WorkerId(1 + i as u64),
            task: t.id,
            outputs: vec![format!("T{i}").into()],
        })
        .collect();
    live.apply_batch(answer_events).unwrap();
    // A collaborative task through the five-step workflow with one missed
    // deadline on the way.
    let collab = live.create_collab_task(proj, "subtitle").unwrap();
    for i in 1..=4 {
        live.express_interest(WorkerId(i), collab).unwrap();
    }
    let team = live.run_assignment(collab).unwrap();
    live.undertake(team.members[0], collab).unwrap();
    live.advance_to(SimTime(301)).unwrap(); // deadline miss → re-assignment
    if let TaskState::Suggested { team, .. } = live.pool.get(collab).unwrap().state.clone() {
        for m in team {
            live.undertake(m, collab).unwrap();
        }
    }
    if matches!(
        live.pool.get(collab).unwrap().state,
        TaskState::InProgress { .. }
    ) {
        live.record_activity(
            match &live.pool.get(collab).unwrap().state {
                TaskState::InProgress { team } => team[0],
                _ => unreachable!(),
            },
            collab,
        )
        .unwrap();
        live.complete_collab_task(collab, 0.85).unwrap();
    }

    // Journal → text file → journal → replay.
    let dir = std::env::temp_dir().join("crowd4u_it_journal");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("platform.journal");
    live.journal().save_to_file(&path).unwrap();
    let journal = EventJournal::load_from_file(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let mut base = Crowd4U::new();
    base.max_reassignments = 2; // configuration is not an event
    let restored = Crowd4U::replay_with(&journal, base).unwrap();

    // Byte-identical relations and project databases.
    assert_eq!(
        snapshot::dump(live.relations.database()),
        snapshot::dump(restored.relations.database())
    );
    assert_eq!(
        snapshot::dump(live.project(proj).unwrap().engine.database()),
        snapshot::dump(restored.project(proj).unwrap().engine.database())
    );
    // Identical pending queues and points.
    assert_eq!(
        live.project(proj).unwrap().engine.pending_requests(),
        restored.project(proj).unwrap().engine.pending_requests()
    );
    for i in 1..=5u64 {
        assert_eq!(live.points_of(WorkerId(i)), restored.points_of(WorkerId(i)));
    }
    // Identical pool, clock, counters and monitor verdicts.
    assert_eq!(live.pool.state_counts(), restored.pool.state_counts());
    assert_eq!(live.now(), restored.now());
    assert_eq!(live.collaboration_health(), restored.collaboration_health());
    // And the replayed journal is byte-identical to the source journal.
    assert_eq!(restored.journal().dump(), live.journal().dump());
}

#[test]
fn snapshot_is_canonical_and_stable() {
    let mut engine = CylogEngine::from_source(SRC).unwrap();
    for s in ["m", "n"] {
        engine.add_fact("sentence", vec![s.into()]).unwrap();
    }
    engine.run().unwrap();
    let d1 = snapshot::dump(engine.database());
    // Re-running evaluation does not change the canonical dump (derived
    // facts are recomputed identically).
    engine.run().unwrap();
    let d2 = snapshot::dump(engine.database());
    assert_eq!(d1, d2);
    // load→dump is the identity on canonical snapshots
    assert_eq!(snapshot::dump(&snapshot::load(&d1).unwrap()), d1);
}
