//! Persistence: a project's CyLog database snapshots to text mid-run and
//! resumes in a fresh engine without losing human answers.

use crowd4u::cylog::engine::CylogEngine;
use crowd4u::storage::prelude::*;
use crowd4u::storage::snapshot;

const SRC: &str = "\
rel sentence(s: str).
open translate(s: str) -> (t: str) points 2.
rel published(s: str, t: str).
published(S, T) :- sentence(S), translate(S, T).
";

#[test]
fn project_database_snapshot_round_trip_mid_run() {
    let mut engine = CylogEngine::from_source(SRC).unwrap();
    for s in ["a", "b", "c"] {
        engine.add_fact("sentence", vec![s.into()]).unwrap();
    }
    engine.run().unwrap();
    engine
        .answer("translate", vec!["a".into()], vec!["A".into()], Some(1))
        .unwrap();
    engine.run().unwrap();
    assert_eq!(engine.fact_count("published").unwrap(), 1);
    assert_eq!(engine.pending_requests().len(), 2);

    // Snapshot the fact store.
    let text = snapshot::dump(engine.database());

    // A fresh engine from the same program ingests the snapshot's base and
    // open facts (derived facts are recomputed, so skipping them is safe).
    let restored = snapshot::load(&text).unwrap();
    let mut engine2 = CylogEngine::from_source(SRC).unwrap();
    for rel in ["sentence", "translate"] {
        for row in restored.relation(rel).unwrap().iter() {
            let vals: Vec<Value> = row.values().to_vec();
            if rel == "sentence" {
                engine2.add_fact(rel, vals).unwrap();
            } else {
                let inputs = vals[..1].to_vec();
                let outputs = vals[1..].to_vec();
                engine2.answer(rel, inputs, outputs, None).unwrap();
            }
        }
    }
    engine2.run().unwrap();

    // Identical derived state and identical remaining work.
    assert_eq!(engine2.fact_count("published").unwrap(), 1);
    assert_eq!(engine2.pending_requests().len(), 2);
    let mut a = engine.facts("published").unwrap().rows;
    let mut b = engine2.facts("published").unwrap().rows;
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn snapshot_file_round_trip() {
    let mut engine = CylogEngine::from_source(SRC).unwrap();
    engine.add_fact("sentence", vec!["x".into()]).unwrap();
    engine.run().unwrap();
    let dir = std::env::temp_dir().join("crowd4u_it_persistence");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("project.snapshot");
    snapshot::save_to_file(engine.database(), &path).unwrap();
    let loaded = snapshot::load_from_file(&path).unwrap();
    assert_eq!(snapshot::dump(&loaded), snapshot::dump(engine.database()));
    std::fs::remove_file(path).ok();
}

#[test]
fn snapshot_is_canonical_and_stable() {
    let mut engine = CylogEngine::from_source(SRC).unwrap();
    for s in ["m", "n"] {
        engine.add_fact("sentence", vec![s.into()]).unwrap();
    }
    engine.run().unwrap();
    let d1 = snapshot::dump(engine.database());
    // Re-running evaluation does not change the canonical dump (derived
    // facts are recomputed identically).
    engine.run().unwrap();
    let d2 = snapshot::dump(engine.database());
    assert_eq!(d1, d2);
    // load→dump is the identity on canonical snapshots
    assert_eq!(snapshot::dump(&snapshot::load(&d1).unwrap()), d1);
}
