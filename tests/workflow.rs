//! Experiment E2 (paper Figure 2): the five-step collaborative task
//! assignment workflow, including deadline-driven re-execution and the
//! requester-relaxation path.

use crowd4u::collab::Scheme;
use crowd4u::core::pages::{admin_page, user_page};
use crowd4u::core::prelude::*;
use crowd4u::crowd::profile::{WorkerId, WorkerProfile};
use crowd4u::forms::admin::DesiredFactors;
use crowd4u::sim::time::SimTime;

const SRC: &str = "\
rel doc(d: id, text: str).
open summarize(d: id, text: str) -> (summary: str) points 2.
rel summarized(d: id, summary: str).
summarized(D, S) :- doc(D, T), summarize(D, T, S).
";

fn factors(min_team: usize, max_team: usize) -> DesiredFactors {
    DesiredFactors {
        min_team,
        max_team,
        recruitment_secs: 600,
        ..Default::default()
    }
}

fn world(n_workers: u64) -> Crowd4U {
    let mut p = Crowd4U::new();
    for i in 1..=n_workers {
        p.register_worker(WorkerProfile::new(WorkerId(i), format!("w{i}")).with_native_lang("en"));
    }
    p
}

#[test]
fn steps_one_through_five() {
    let mut p = world(6);

    // Step (1): project registration creates the admin page.
    let proj = p
        .register_project("figure2", SRC, factors(2, 3), Scheme::Sequential)
        .unwrap();
    let page = admin_page(&p, proj, &[], &["en"]).unwrap();
    assert!(page.to_string().contains("Upper critical mass"));

    // Step (2): factors are held by the project and reach the controller.
    assert_eq!(p.project(proj).unwrap().factors.min_team, 2);

    // Step (3): user pages show eligible tasks; workers declare interest.
    let task = p.create_collab_task(proj, "summarise the archive").unwrap();
    for i in 1..=4 {
        let up = user_page(&p, WorkerId(i)).unwrap();
        assert_eq!(up.entries.len(), 1, "worker {i} sees the task");
        p.express_interest(WorkerId(i), task).unwrap();
    }

    // Steps (4)+(5): the controller suggests a team from eligible∩interested.
    let team = p.run_assignment(task).unwrap();
    assert!(team.size() >= 2 && team.size() <= 3);
    for m in &team.members {
        assert!(m.0 <= 4, "only interested workers are suggested");
    }
    // The suggested team is asked to join; everyone undertakes.
    for &m in &team.members {
        p.undertake(m, task).unwrap();
        assert!(p.relations.is_undertaking(m, task));
    }
    assert_eq!(p.pool.get(task).unwrap().state.label(), "in-progress");
    p.complete_collab_task(task, 0.9).unwrap();
    assert_eq!(p.counters.get("teams_started"), 1);
}

#[test]
fn deadline_miss_reexecutes_assignment_with_new_team() {
    let mut p = world(6);
    let proj = p
        .register_project("deadline", SRC, factors(2, 2), Scheme::Sequential)
        .unwrap();
    let task = p.create_collab_task(proj, "x").unwrap();
    for i in 1..=6 {
        p.express_interest(WorkerId(i), task).unwrap();
    }
    let first = p.run_assignment(task).unwrap();
    // Only the first member undertakes; the second never responds.
    p.undertake(first.members[0], task).unwrap();
    p.advance_to(SimTime(601)).unwrap();

    // A second team was suggested; the no-show is excluded.
    let state = p.pool.get(task).unwrap().state.clone();
    match state {
        TaskState::Suggested { team, .. } => {
            assert!(
                !team.contains(&first.members[1]),
                "no-show must be excluded"
            );
        }
        other => panic!("expected a fresh suggestion, got {other:?}"),
    }
    assert_eq!(p.pool.get(task).unwrap().reassignments, 1);
    assert_eq!(p.counters.get("deadlines_missed"), 1);
}

#[test]
fn infeasible_constraints_suggest_relaxation_then_succeed() {
    let mut p = world(3);
    // Demand more skill than anyone has.
    let mut f = factors(2, 3);
    f.skill_name = Some("summarisation".into());
    f.min_quality = 0.9;
    let proj = p
        .register_project("strict", SRC, f, Scheme::Sequential)
        .unwrap();
    let task = p.create_collab_task(proj, "x").unwrap();
    // Nobody is eligible (skill floor 0.45), so nobody can even be interested.
    assert!(p.relations.eligible_workers(task).is_empty());
    let err = p.run_assignment(task).unwrap_err();
    assert!(matches!(err, PlatformError::NoFeasibleTeam { .. }));
    assert!(p.project(proj).unwrap().suggestion.is_some());

    // The requester relaxes the constraints: a new task under a relaxed
    // project succeeds with the same crowd.
    let proj2 = p
        .register_project("relaxed", SRC, factors(2, 3), Scheme::Sequential)
        .unwrap();
    let task2 = p.create_collab_task(proj2, "x").unwrap();
    for i in 1..=3 {
        p.express_interest(WorkerId(i), task2).unwrap();
    }
    let team = p.run_assignment(task2).unwrap();
    assert!(team.size() >= 2);
    assert!(p.project(proj2).unwrap().suggestion.is_none());
}

#[test]
fn abandoned_after_retry_budget() {
    let mut p = world(2);
    p.max_reassignments = 0; // give up after the first miss
    let proj = p
        .register_project("fragile", SRC, factors(2, 2), Scheme::Sequential)
        .unwrap();
    let task = p.create_collab_task(proj, "x").unwrap();
    p.express_interest(WorkerId(1), task).unwrap();
    p.express_interest(WorkerId(2), task).unwrap();
    p.run_assignment(task).unwrap();
    // nobody undertakes before the deadline
    p.advance_to(SimTime(601)).unwrap();
    assert_eq!(p.pool.get(task).unwrap().state.label(), "abandoned");
    assert_eq!(p.counters.get("tasks_abandoned"), 1);
    // relationships are cleaned up
    assert_eq!(p.relations.counts(), (0, 0, 0));
}

#[test]
fn micro_tasks_complete_through_cylog() {
    let mut p = world(2);
    let proj = p
        .register_project("micro", SRC, factors(1, 2), Scheme::Sequential)
        .unwrap();
    p.seed_fact(proj, "doc", vec![1u64.into(), "long text".into()])
        .unwrap();
    assert_eq!(p.sync_tasks(proj).unwrap(), 1);
    let task = p.pool.open_tasks(Some(proj))[0].id;
    p.submit_micro_answer(WorkerId(1), task, vec!["short".into()])
        .unwrap();
    p.sync_tasks(proj).unwrap();
    let facts = p.project(proj).unwrap().engine.facts("summarized").unwrap();
    assert_eq!(facts.rows.len(), 1);
    assert_eq!(p.points_of(WorkerId(1)), 2);
    assert_eq!(p.points_of(WorkerId(2)), 0);
}
