//! CyLog language conformance: a compact behavioural suite over the public
//! API, documenting what the language accepts, rejects, and computes.

use crowd4u::cylog::engine::CylogEngine;
use crowd4u::cylog::prelude::*;
use crowd4u::storage::prelude::{Value, ValueType};

fn run(src: &str) -> CylogEngine {
    let mut e = CylogEngine::from_source(src).expect("program should compile");
    e.run().expect("evaluation should succeed");
    e
}

fn rows(e: &CylogEngine, pred: &str) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = e
        .facts(pred)
        .unwrap()
        .rows
        .into_iter()
        .map(|t| t.into_values())
        .collect();
    out.sort();
    out
}

// ---- things the language computes ----

#[test]
fn same_generation_classic() {
    // sg(X,Y) :- siblings or cousins at the same depth — a classic
    // non-linear recursive Datalog program.
    let e = run("rel parent(c: str, p: str).\nrel sg(a: str, b: str).\n\
         parent(\"carol\", \"root\").\n\
         parent(\"ann\", \"carol\"). parent(\"bob\", \"carol\").\n\
         parent(\"dan\", \"ann\"). parent(\"eva\", \"bob\").\n\
         sg(X, X) :- parent(X, _).\n\
         sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).\n");
    let sg = rows(&e, "sg");
    // dan and eva are cousins (parents ann/bob are siblings via carol)
    assert!(sg.contains(&vec!["dan".into(), "eva".into()]));
    assert!(sg.contains(&vec!["ann".into(), "bob".into()]));
}

#[test]
fn arithmetic_chains_and_string_building() {
    let e = run("rel n(v: int).\nrel out(v: int, label: str).\n\
         n(1). n(2). n(3).\n\
         out(Sq, L) :- n(V), Sq := V * V + 1, L := \"sq=\" + \"?\".\n");
    let out = rows(&e, "out");
    assert_eq!(out.len(), 3);
    assert_eq!(out[0][0], Value::Int(2));
    assert_eq!(out[2][0], Value::Int(10));
    assert_eq!(out[0][1], Value::Str("sq=?".into()));
}

#[test]
fn negation_layers_stack() {
    // Three strata: base → derived → doubly-negated.
    let e = run("rel a(x: int).\nrel b(x: int).\nrel c(x: int).\n\
         a(1). a(2). a(3).\n\
         b(X) :- a(X), X > 1.\n\
         c(X) :- a(X), not b(X).\n\
         rel d(x: int).\n\
         d(X) :- a(X), not c(X).\n");
    assert_eq!(rows(&e, "c"), vec![vec![Value::Int(1)]]);
    assert_eq!(
        rows(&e, "d"),
        vec![vec![Value::Int(2)], vec![Value::Int(3)]]
    );
}

#[test]
fn aggregates_over_derived_predicates() {
    let e = run("rel sale(region: str, amount: float).\n\
         rel big(region: str, amount: float).\n\
         rel stats(region: str, n: int, total: float).\n\
         sale(\"east\", 10.0). sale(\"east\", 90.0). sale(\"west\", 50.0).\n\
         big(R, A) :- sale(R, A), A >= 50.0.\n\
         stats(R, count<A>, sum<A>) :- big(R, A).\n");
    let stats = rows(&e, "stats");
    assert_eq!(
        stats,
        vec![
            vec!["east".into(), Value::Int(1), Value::Float(90.0)],
            vec!["west".into(), Value::Int(1), Value::Float(50.0)],
        ]
    );
}

#[test]
fn ids_booleans_and_floats_mix() {
    // note: `open` and `rel` are keywords, so columns use other names
    let e = run("rel task(t: id, active: bool, priority: float).\n\
         rel urgent(t: id).\n\
         task(#1, true, 0.9). task(#2, true, 0.2). task(#3, false, 1.0).\n\
         urgent(T) :- task(T, true, P), P >= 0.5.\n");
    assert_eq!(rows(&e, "urgent"), vec![vec![Value::Id(1)]]);
}

#[test]
fn open_predicates_chain_through_rules() {
    let mut e = run("rel doc(d: id).\n\
         open split(d: id) -> (part: str).\n\
         open translate(part: str) -> (out: str).\n\
         rel done(d: id, out: str).\n\
         done(D, O) :- doc(D), split(D, P), translate(P, O).\n\
         doc(#1).\n");
    // Only the first-stage question exists initially.
    let preds: Vec<&str> = e
        .pending_requests()
        .iter()
        .map(|r| r.pred_name.as_str())
        .collect();
    assert_eq!(preds, vec!["split"]);
    e.answer("split", vec![Value::Id(1)], vec!["part-a".into()], None)
        .unwrap();
    e.run().unwrap();
    let preds: Vec<&str> = e
        .pending_requests()
        .iter()
        .map(|r| r.pred_name.as_str())
        .collect();
    assert_eq!(preds, vec!["translate"]);
    e.answer(
        "translate",
        vec!["part-a".into()],
        vec!["partie-a".into()],
        None,
    )
    .unwrap();
    e.run().unwrap();
    assert_eq!(e.fact_count("done").unwrap(), 1);
    assert!(e.pending_requests().is_empty());
}

#[test]
fn comments_and_whitespace_are_free() {
    let e = run("% prolog-style comment\n\
         rel a(x: int). // trailing comment\n\
         \n\
         a(1).\n   a( 2 ) .\n");
    assert_eq!(e.fact_count("a").unwrap(), 2);
}

// ---- things the language rejects ----

#[test]
fn rejection_catalogue() {
    let cases: &[(&str, &str)] = &[
        ("p(X) :- q(X).", "undeclared"),
        ("rel p(a: int).\np(1, 2).", "arity"),
        ("rel p(a: int).\nrel p(b: int).", "twice"),
        ("rel p(a: int).\nrel q(a: int).\nq(Y) :- p(X).", "not bound"),
        (
            "rel p(a: int).\nrel q(a: int).\nq(X) :- p(X), not q(X).",
            "stratifiable",
        ),
        ("rel p(a: str).\np(3).", "incompatible"),
        (
            "rel p(a: int).\nrel q(a: str).\nrel r(a: int).\nr(X) :- p(X), q(X).",
            "used as",
        ),
        (
            "open j(x: int) -> (y: int).\nrel p(x: int).\nj(X, 1) :- p(X).",
            "derived",
        ),
        ("rel p(a: int", "parse"),
        ("rel p(a: wat).", "unknown type"),
    ];
    for (src, needle) in cases {
        let err = CylogEngine::from_source(src)
            .err()
            .unwrap_or_else(|| panic!("program should be rejected: {src}"));
        let msg = err.to_string();
        assert!(
            msg.contains(needle),
            "error for {src:?} should mention {needle:?}, got: {msg}"
        );
    }
}

#[test]
fn runtime_type_errors_are_reported_not_panics() {
    let mut e =
        CylogEngine::from_source("rel a(x: int).\nrel r(x: int).\nr(Z) :- a(X), Z := 1 / X.\n")
            .unwrap();
    e.add_fact("a", vec![Value::Int(0)]).unwrap();
    let err = e.run().unwrap_err();
    assert!(err.to_string().contains("division by zero"));
}

#[test]
fn program_introspection() {
    let e = run(
        "rel a(x: int).\nopen j(x: int) -> (y: str) points 4.\nrel b(x: int).\nb(X) :- a(X).\n",
    );
    let p = e.program();
    let a = p.pred("a").unwrap();
    let j = p.pred("j").unwrap();
    let b = p.pred("b").unwrap();
    assert!(!p.pred_info(a).derived);
    assert!(p.pred_info(b).derived);
    assert!(p.pred_info(j).is_open());
    assert_eq!(p.pred_info(j).open_inputs(), 1);
    assert_eq!(
        p.pred_info(j).col_types,
        vec![ValueType::Int, ValueType::Str]
    );
    assert!(matches!(
        p.pred_info(j).kind,
        PredKind::Open { points: 4, .. }
    ));
    assert!(p.pred("zzz").is_none());
}
