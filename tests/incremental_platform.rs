//! Retraction coverage through the platform: a worker re-registering with
//! changed human factors makes `sync_worker_facts` retract that worker's
//! factor rows inside the project's CyLog engine, which must (a) make the
//! derived `eligible` facts disappear, (b) force the default incremental
//! engine into its full-recompute fallback (visible in `EvalStats`), and
//! (c) stay byte-identical across serial execution, the `ShardedRuntime`
//! at 1/2/4 shards (plus `RUNTIME_SHARDS`), and journal replay.
//!
//! This is the platform-level companion to the engine-level fallback tests
//! in `crowd4u-cylog` and the differential property in
//! `tests/cylog_incremental.rs`: retraction never reaches the engine as an
//! explicit event — it only happens inside worker re-sync — so this is the
//! path production traffic takes.

use crowd4u::collab::Scheme;
use crowd4u::core::declarative::eligible_workers;
use crowd4u::core::error::{ProjectId, TaskId, WorkerId};
use crowd4u::core::events::PlatformEvent;
use crowd4u::core::platform::Crowd4U;
use crowd4u::crowd::profile::WorkerProfile;
use crowd4u::forms::admin::DesiredFactors;
use crowd4u::runtime::prelude::*;
use crowd4u::sim::time::SimTime;
use crowd4u::storage::prelude::Value;

/// Declarative eligibility (paper §2.2: Eligible "is computed by the CyLog
/// processor") plus a translation pipeline so the project has open tasks.
const DECL_SRC: &str = "\
rel worker(w: id).
rel worker_online(w: id).
rel worker_native(w: id, lang: str).
rel eligible(w: id).
eligible(W) :- worker_online(W), worker_native(W, \"en\").
rel sentence(s: str).
open translate(s: str) -> (t: str) points 2.
rel published(s: str, t: str).
published(S, T) :- sentence(S), translate(S, T).
";

fn profile(id: u64, online: bool) -> WorkerProfile {
    let mut p = WorkerProfile::new(WorkerId(id), format!("w{id}")).with_native_lang("en");
    p.factors.logged_in = online;
    p
}

fn registered(id: u64, online: bool) -> PlatformEvent {
    PlatformEvent::WorkerRegistered {
        profile: profile(id, online),
    }
}

/// Workers, the declarative project, and enough seed facts to open tasks.
fn setup_events() -> Vec<PlatformEvent> {
    let mut events = vec![
        registered(1, true),
        registered(2, true),
        registered(3, false),
    ];
    events.push(PlatformEvent::ProjectRegistered {
        name: "decl-retract".into(),
        source: DECL_SRC.into(),
        factors: DesiredFactors {
            min_team: 1,
            max_team: 3,
            recruitment_secs: 600,
            ..Default::default()
        },
        scheme: Scheme::Sequential,
        owner: 0,
    });
    for i in 0..3 {
        events.push(PlatformEvent::FactSeeded {
            project: ProjectId(1),
            pred: "sentence".into(),
            values: vec![format!("s{i}").into()],
        });
    }
    events
}

/// The retraction-heavy tail: answers interleaved with worker
/// re-registrations whose factor changes retract rows in the project
/// engine (w1 logs out, w3 logs in), then more growth.
fn churn_events() -> Vec<PlatformEvent> {
    let p = ProjectId(1);
    vec![
        PlatformEvent::AnswerSubmitted {
            worker: WorkerId(1),
            task: TaskId::compose(p, 1),
            outputs: vec![Value::Str("t0".into())],
        },
        registered(1, false),
        PlatformEvent::AnswerSubmitted {
            worker: WorkerId(2),
            task: TaskId::compose(p, 2),
            outputs: vec![Value::Str("t1".into())],
        },
        registered(3, true),
        PlatformEvent::FactSeeded {
            project: p,
            pred: "sentence".into(),
            values: vec!["s3".into()],
        },
        PlatformEvent::AnswerSubmitted {
            worker: WorkerId(3),
            task: TaskId::compose(p, 3),
            outputs: vec![Value::Str("t2".into())],
        },
        PlatformEvent::ClockAdvanced {
            to: SimTime(100),
            owner: 0,
        },
    ]
}

/// Direct assertion of the fallback: re-registering a worker with changed
/// factors retracts their rows, the derived `eligible` fact disappears,
/// and `EvalStats` reports a full recompute.
#[test]
fn factor_change_retracts_derived_eligibility_and_recomputes() {
    let mut platform = Crowd4U::new();
    platform.apply_batch(setup_events()).unwrap();
    let pid = ProjectId(1);

    let engine = &platform.project(pid).unwrap().engine;
    let before = eligible_workers(engine).unwrap();
    assert!(
        before.contains(&WorkerId(1)) && before.contains(&WorkerId(2)),
        "online native speakers start eligible: {before:?}"
    );
    assert!(
        !before.contains(&WorkerId(3)),
        "logged-out worker starts ineligible"
    );
    let recomputes_before = engine.cumulative_stats().recomputes;

    // w1 logs out: the re-registration re-syncs worker facts, retracting
    // `worker_online(1)` — the incremental engine must fall back.
    platform.apply_batch(vec![registered(1, false)]).unwrap();
    let engine = &platform.project(pid).unwrap().engine;
    let after = eligible_workers(engine).unwrap();
    assert!(
        !after.contains(&WorkerId(1)),
        "derived eligible(1) must disappear after the retraction: {after:?}"
    );
    assert!(after.contains(&WorkerId(2)), "w2 untouched: {after:?}");
    assert!(
        engine.cumulative_stats().recomputes > recomputes_before,
        "retraction during worker re-sync must force a full recompute \
         (before {recomputes_before}, after {})",
        engine.cumulative_stats().recomputes
    );

    // w3 logs in: another retract-and-readd sync; eligibility grows back.
    platform.apply_batch(vec![registered(3, true)]).unwrap();
    let engine = &platform.project(pid).unwrap().engine;
    let grown = eligible_workers(engine).unwrap();
    assert!(grown.contains(&WorkerId(3)), "w3 now eligible: {grown:?}");
    assert!(!grown.contains(&WorkerId(1)), "w1 still out: {grown:?}");
}

/// The equivalence assertion: the same retraction-bearing stream must
/// produce byte-identical journals and replayed state at every shard
/// count, exactly like retraction-free streams do.
#[test]
fn retraction_stream_replays_byte_identical_at_all_shard_counts() {
    let mut events = setup_events();
    events.extend(churn_events());
    let batches: Vec<Vec<PlatformEvent>> = events.chunks(3).map(|c| c.to_vec()).collect();

    let mut serial = Crowd4U::new();
    let mut serial_dropped = 0u64;
    for b in &batches {
        serial_dropped += serial.apply_batch(b.clone()).unwrap().errors.len() as u64;
    }
    let serial_journal = serial.journal().dump();
    let serial_dump = serial.state_dump();

    // The scenario must actually exercise the fallback, or the sweep below
    // proves nothing about retraction.
    let stats = serial
        .project(ProjectId(1))
        .unwrap()
        .engine
        .cumulative_stats();
    assert!(
        stats.recomputes >= 2,
        "stream must force at least one post-setup full recompute, got {}",
        stats.recomputes
    );

    let mut shard_counts = vec![1usize, 2, 4];
    let env_shards = crowd4u::runtime::router::shards_from_env(0);
    if env_shards > 0 && !shard_counts.contains(&env_shards) {
        shard_counts.push(env_shards);
    }
    for shards in shard_counts {
        let rt = ShardedRuntime::new(RuntimeConfig {
            shards,
            drain_every: 0,
            mailbox_capacity: 1024,
            recovery: false,
        });
        for b in &batches {
            rt.submit_batch(b.clone());
            rt.drain();
        }
        let run = rt.finish().unwrap();

        assert_eq!(
            run.stats.dropped, serial_dropped,
            "dropped mismatch at {shards} shards"
        );
        assert_eq!(
            run.journal.dump(),
            serial_journal,
            "journal mismatch at {shards} shards"
        );
        let replayed = Crowd4U::replay(&run.journal).unwrap();
        assert_eq!(
            replayed.state_dump(),
            serial_dump,
            "replayed state mismatch at {shards} shards"
        );
        // Replay drives the same engines through the same retraction, so
        // the replayed platform must land on the same eligible set too.
        let engine = &replayed.project(ProjectId(1)).unwrap().engine;
        let eligible = eligible_workers(engine).unwrap();
        assert!(
            !eligible.contains(&WorkerId(1)) && eligible.contains(&WorkerId(3)),
            "replayed eligibility wrong at {shards} shards: {eligible:?}"
        );
    }
}
