//! Failure injection across the platform: unresponsive crowds, flaky
//! teams, invalid form submissions, tampered answers, and mid-task
//! dissolution.

use crowd4u::collab::prelude::*;
use crowd4u::collab::Scheme;
use crowd4u::core::prelude::*;
use crowd4u::crowd::prelude::*;
use crowd4u::forms::prelude::*;
use crowd4u::sim::prelude::*;
use crowd4u::storage::prelude::Value;

const SRC: &str = "\
rel item(x: str).
open label(x: str) -> (y: str) points 1.
rel labelled(x: str, y: str).
labelled(X, Y) :- item(X), label(X, Y).
";

fn world(n: u64) -> Crowd4U {
    let mut p = Crowd4U::new();
    for i in 1..=n {
        p.register_worker(WorkerProfile::new(WorkerId(i), format!("w{i}")));
    }
    p
}

#[test]
fn unresponsive_crowd_never_blocks_the_platform() {
    let mut rng = SimRng::seed_from(1);
    let mut agents: Vec<WorkerAgent> = (1..=5u64)
        .map(|i| {
            WorkerAgent::new(
                WorkerProfile::new(WorkerId(i), format!("w{i}")),
                Behavior::unresponsive(),
                rng.fork(i),
            )
        })
        .collect();
    let mut p = world(5);
    let proj = p
        .register_project("dead", SRC, DesiredFactors::default(), Scheme::Sequential)
        .unwrap();
    let task = p.create_collab_task(proj, "x").unwrap();
    // Nobody declares interest.
    for a in &mut agents {
        assert!(!a.declares_interest());
    }
    let err = p.run_assignment(task).unwrap_err();
    assert!(matches!(err, PlatformError::NoFeasibleTeam { .. }));
    // The platform stays consistent and reports the problem.
    assert!(p.project(proj).unwrap().suggestion.is_some());
    assert_eq!(p.pool.get(task).unwrap().state.label(), "open");
}

#[test]
fn flaky_team_dissolves_and_task_eventually_abandons() {
    let mut p = world(4);
    p.max_reassignments = 2;
    // Single-member teams so each retry can suggest a different worker.
    let f = DesiredFactors {
        min_team: 1,
        max_team: 1,
        recruitment_secs: 60,
        ..Default::default()
    };
    let proj = p
        .register_project("flaky", SRC, f, Scheme::Sequential)
        .unwrap();
    let task = p.create_collab_task(proj, "x").unwrap();
    for i in 1..=4 {
        p.express_interest(WorkerId(i), task).unwrap();
    }
    p.run_assignment(task).unwrap();
    // Nobody ever undertakes; every deadline miss excludes the no-show and
    // re-executes assignment, until the retry budget is exhausted.
    let mut now = 0;
    for _ in 0..4 {
        now += 61;
        p.advance_to(SimTime(now)).unwrap();
        if p.pool.get(task).unwrap().state.label() == "abandoned" {
            break;
        }
    }
    assert_eq!(p.pool.get(task).unwrap().state.label(), "abandoned");
    assert!(p.counters.get("deadlines_missed") >= 3);
    // Everything was cleaned up.
    assert_eq!(p.relations.counts(), (0, 0, 0));
}

#[test]
fn invalid_form_submission_rejected_then_corrected() {
    let mut engine = crowd4u::cylog::engine::CylogEngine::from_source(
        "rel q(x: str).\nopen rate(x: str) -> (stars: int, note: str).\n\
         rel rated(x: str, stars: int).\nrated(X, S) :- q(X), rate(X, S, _).\n",
    )
    .unwrap();
    engine.add_fact("q", vec!["item".into()]).unwrap();
    engine.run().unwrap();
    let req = engine.pending_requests()[0].clone();
    let form = form_for_request(engine.program(), &req);

    // Wrong types and a tampered read-only field.
    let bad = FormResponse::new()
        .set("x", "tampered")
        .set("stars", "five")
        .set("note", 3i64);
    let errs = form.validate(&bad).unwrap_err();
    assert!(errs.len() >= 3);

    // Corrected submission flows through.
    let good = FormResponse::new().set("stars", 4i64).set("note", "nice");
    let vals = form.validate(&good).unwrap();
    let outputs = vals[1..].to_vec(); // after the single input column
    engine
        .answer(&req.pred_name, req.inputs.clone(), outputs, Some(5))
        .unwrap();
    engine.run().unwrap();
    assert_eq!(engine.fact_count("rated").unwrap(), 1);
}

#[test]
fn wrong_typed_answers_rejected_at_engine_boundary() {
    let mut p = world(2);
    let proj = p
        .register_project("types", SRC, DesiredFactors::default(), Scheme::Sequential)
        .unwrap();
    p.seed_fact(proj, "item", vec!["a".into()]).unwrap();
    p.sync_tasks(proj).unwrap();
    let task = p.pool.open_tasks(Some(proj))[0].id;
    // wrong output type: int instead of str
    let err = p
        .submit_micro_answer(WorkerId(1), task, vec![Value::Int(3)])
        .unwrap_err();
    assert!(matches!(err, PlatformError::Cylog(_)));
    // task is still open and answerable
    assert_eq!(p.pool.get(task).unwrap().state.label(), "open");
    p.submit_micro_answer(WorkerId(1), task, vec!["fine".into()])
        .unwrap();
}

#[test]
fn worker_dropout_mid_collaboration_detected_by_monitor() {
    let members = [WorkerId(1), WorkerId(2), WorkerId(3)];
    let mut monitor = CollabMonitor::new(&members, SimTime(0), SimDuration::minutes(5));
    let mut ws = SharedWorkspace::new("doc", members.to_vec(), &["s"]);
    // workers 1 and 2 contribute; worker 3 silently drops out
    ws.contribute(WorkerId(1), 0, "a", 0.8).unwrap();
    monitor.record_activity(WorkerId(1), SimTime(100));
    ws.contribute(WorkerId(2), 0, "b", 0.7).unwrap();
    monitor.record_activity(WorkerId(2), SimTime(150));
    // At t=399: w1 idle 299s, w2 idle 249s (below the 300s threshold);
    // w3 idle since t=0 → stalled.
    match monitor.check(SimTime(399)) {
        Verdict::MembersStalled(stalled) => assert_eq!(stalled, vec![WorkerId(3)]),
        other => panic!("expected stall detection, got {other:?}"),
    }
    // The platform replaces the dropout; work completes.
    monitor.remove_member(WorkerId(3));
    monitor.record_activity(WorkerId(4), SimTime(400));
    monitor.record_activity(WorkerId(1), SimTime(410));
    monitor.record_activity(WorkerId(2), SimTime(420));
    assert_eq!(monitor.check(SimTime(450)), Verdict::Healthy);
    let doc = ws.submit(WorkerId(1)).unwrap();
    assert_eq!(doc.team.len(), 3); // attribution keeps the original team
    monitor.mark_complete();
    assert_eq!(monitor.check(SimTime(999_999)), Verdict::Complete);
}

#[test]
fn eligibility_revocation_cascades_cleanly() {
    let mut p = world(3);
    let proj = p
        .register_project("rev", SRC, DesiredFactors::default(), Scheme::Sequential)
        .unwrap();
    let task = p.create_collab_task(proj, "x").unwrap();
    p.express_interest(WorkerId(1), task).unwrap();
    // Worker logs out → platform revokes eligibility (manual trigger here).
    p.relations.revoke_eligibility(WorkerId(1), task).unwrap();
    assert!(!p.relations.is_interested(WorkerId(1), task));
    // They can no longer undertake or re-express interest.
    assert!(matches!(
        p.express_interest(WorkerId(1), task),
        Err(PlatformError::NotEligible { .. })
    ));
}
