//! Property: the lazy [`AffinityProvider`] is *observationally identical*
//! to the dense matrix it replaced. For any random population (profiles
//! with random geo / fluency / skill factors) and any cache policy:
//!
//! * single-pair queries return values **bit-identical** to
//!   `affinity_from_profiles` over the ascending-id population — the
//!   provider canonicalises pair order, so the last-ulp-sensitive
//!   skill-union sum matches the dense builder exactly;
//! * candidate submatrices over arbitrary subsets are bit-identical to
//!   the corresponding dense entries;
//! * the above-floor / top-k cache never changes an answer — it only
//!   bounds resident state: every cached value clears the floor, no list
//!   exceeds `top_k`, and a probed pair missing from a full list is ≤
//!   that list's minimum (eviction only ever drops a worker's smallest);
//! * the same bit-identity holds through the sharded runtime: every
//!   shard's replica (fed by the coordinator-owned worker service, not a
//!   broadcast) computes the same team affinities as a serial platform.
//!   Set `RUNTIME_SHARDS` to test an extra shard count (CI runs with
//!   `RUNTIME_SHARDS=4`).

use crowd4u::crowd::affinity::{affinity_from_profiles, AffinityLookup, AffinityProvider};
use crowd4u::crowd::profile::{Region, WorkerId, WorkerProfile};
use proptest::prelude::*;

/// Raw generated factors of one worker: id gap, geo, three fluencies, two
/// skill levels.
type RawWorker = (u64, (f64, f64), (f64, f64, f64), (f64, f64));

/// Build a population with distinct ascending ids (prefix sums of the
/// generated gaps) — the order `WorkerManager` stores and the dense
/// builder's bit-exactness contract assumes.
fn population(raw: &[RawWorker]) -> Vec<WorkerProfile> {
    let mut id = 0u64;
    raw.iter()
        .map(|(gap, (x, y), fluency, skills)| {
            id += 1 + gap % 5;
            WorkerProfile::new(WorkerId(id), format!("w{id}"))
                .with_region(Region::new(format!("r{}", id % 3), *x, *y))
                .with_fluency("en", fluency.0)
                .with_fluency("ja", fluency.1)
                .with_fluency("xh", fluency.2)
                .with_skill("survey", skills.0)
                .with_skill("drafting", skills.1)
        })
        .collect()
}

fn raw_workers() -> impl Strategy<Value = Vec<RawWorker>> {
    proptest::collection::vec(
        (
            0u64..20,
            (0.0f64..1.0, 0.0f64..1.0),
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
            (0.0f64..1.0, 0.0f64..1.0),
        ),
        2..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pair queries and subset submatrices are bit-identical to the dense
    /// matrix, whatever cache policy is active.
    #[test]
    fn provider_is_bit_identical_to_the_dense_matrix(
        raw in raw_workers(),
        subset_mask in proptest::collection::vec(any::<bool>(), 2..12),
        (wg, wl, ws) in (0.1f64..2.0, 0.1f64..2.0, 0.1f64..2.0),
        floor in 0.0f64..1.0,
        top_k in 0usize..4,
    ) {
        let pop = population(&raw);
        let dense = affinity_from_profiles(&pop, wg, wl, ws);
        let mut provider = AffinityProvider::new(wg, wl, ws);
        provider.set_cache_policy(floor, top_k);

        // Every pair, twice (second round hits whatever got cached).
        for _round in 0..2 {
            for a in &pop {
                for b in &pop {
                    let got = provider.pair(a, b);
                    let want = if a.id == b.id { 0.0 } else { dense.affinity(a.id, b.id) };
                    prop_assert_eq!(
                        got.to_bits(), want.to_bits(),
                        "pair ({:?}, {:?}): {} vs {}", a.id, b.id, got, want
                    );
                }
            }
        }

        // A random subset's submatrix matches the dense entries bitwise.
        let subset: Vec<&WorkerProfile> = pop
            .iter()
            .enumerate()
            .filter(|(i, _)| *subset_mask.get(*i).unwrap_or(&false))
            .map(|(_, p)| p)
            .collect();
        let sub = provider.submatrix(&subset);
        for a in &subset {
            for b in &subset {
                if a.id != b.id {
                    prop_assert_eq!(
                        sub.affinity(a.id, b.id).to_bits(),
                        dense.affinity(a.id, b.id).to_bits()
                    );
                }
            }
        }
    }

    /// The cache's structural invariants: floor respected, lists bounded,
    /// and eviction only ever drops a worker's smallest pairs.
    #[test]
    fn cache_policy_bounds_state_and_keeps_the_largest_pairs(
        raw in raw_workers(),
        floor in 0.0f64..0.8,
        top_k in 1usize..4,
    ) {
        let pop = population(&raw);
        let mut provider = AffinityProvider::new(1.0, 1.0, 0.5);
        provider.set_cache_policy(floor, top_k);

        let mut probed: Vec<(WorkerId, WorkerId, f64)> = Vec::new();
        for (i, a) in pop.iter().enumerate() {
            for b in &pop[i + 1..] {
                probed.push((a.id, b.id, provider.pair(a, b)));
            }
        }

        prop_assert!(provider.cached_entries() <= 2 * top_k * pop.len());
        for p in &pop {
            let list = provider.cached_for(p.id);
            prop_assert!(list.len() <= top_k, "list of {:?} exceeds top_k", p.id);
            for &(_, v) in list {
                prop_assert!(v >= floor, "cached value {v} below floor {floor}");
            }
        }
        // A probed above-floor pair absent from an endpoint's list implies
        // that list is full and everything kept is ≥ the dropped value.
        for &(a, b, v) in &probed {
            if v < floor {
                continue;
            }
            for (me, other) in [(a, b), (b, a)] {
                let list = provider.cached_for(me);
                if list.iter().any(|(o, _)| *o == other) {
                    continue;
                }
                prop_assert_eq!(list.len(), top_k, "evictions only happen on full lists");
                for &(_, kept) in list {
                    prop_assert!(
                        kept.total_cmp(&v).is_ge(),
                        "kept {kept} < evicted {v} for {me:?}"
                    );
                }
            }
        }
    }

    /// Runtime parity: shard replicas fed by the coordinator-owned worker
    /// service compute team affinities bit-identical to a serial platform.
    #[test]
    fn shard_replicas_answer_identical_team_affinities(
        raw in raw_workers(),
        team_mask in proptest::collection::vec(any::<bool>(), 2..12),
    ) {
        use crowd4u::core::events::PlatformEvent;
        use crowd4u::core::platform::Crowd4U;
        use crowd4u::runtime::prelude::*;

        let pop = population(&raw);
        let mut serial = Crowd4U::new();
        for p in &pop {
            serial
                .apply_event(PlatformEvent::WorkerRegistered { profile: p.clone() })
                .unwrap();
        }
        let team: Vec<WorkerId> = pop
            .iter()
            .enumerate()
            .filter(|(i, _)| *team_mask.get(*i).unwrap_or(&false))
            .map(|(_, p)| p.id)
            .collect();
        let want = serial.workers.team_affinity(&team);

        let mut shard_counts = vec![1usize, 2, 4];
        let env_shards = crowd4u::runtime::router::shards_from_env(0);
        if env_shards > 0 && !shard_counts.contains(&env_shards) {
            shard_counts.push(env_shards);
        }
        for shards in shard_counts {
            let rt = ShardedRuntime::new(RuntimeConfig {
                shards,
                drain_every: 0,
                mailbox_capacity: 256,
                recovery: false,
            });
            rt.submit_batch(
                pop.iter()
                    .map(|p| PlatformEvent::WorkerRegistered { profile: p.clone() })
                    .collect::<Vec<_>>(),
            );
            let run = rt.finish().unwrap();
            for (i, platform) in run.platforms.iter().enumerate() {
                let got = platform.workers.team_affinity(&team);
                prop_assert_eq!(
                    got.to_bits(), want.to_bits(),
                    "shard {}/{} team affinity {} vs serial {}", i, shards, got, want
                );
            }
        }
    }
}
