//! Crash-recovery property (PR 9): killing a shard mid-run and replaying
//! it back is **observationally invisible**. For a generated multi-project
//! event stream and a generated kill point (shard S dies after its k-th
//! applied event — the [`FaultPlan`] is derived from the proptest seed, so
//! `PROPTEST_SEED` replays the exact crash schedule), a run at 1, 2 and 4
//! shards must produce
//!
//! * a merged journal **byte-identical** to the same run with no fault,
//! * identical applied/dropped accounting, and
//! * a journal that replays to a byte-identical
//!   [`Crowd4U::state_dump`](crowd4u::core::platform::Crowd4U::state_dump);
//!
//! and the same must hold when the fault is followed by a **hot project
//! migration** (`migrate_project`) to another shard mid-stream — the
//! routing flip moves where events record, not what the merged journal
//! says. Shard count 1 exercises coordinator death (worker-service owner);
//! the multi-shard counts exercise replica death with the worker feed
//! re-interleaved from snapshots + deltas. CI replays this file under
//! `RUNTIME_SHARDS=4` and a pinned `PROPTEST_SEED`.
//!
//! PR 10 extends the property to **mid-apply** crashes: a kill firing
//! *inside* `apply_event` — after the message left the mailbox, before
//! the ledger saw it — must also be invisible. The supervisor's in-flight
//! slot redoes the popped-but-unledgered event on the next incarnation;
//! without it, exactly one event would silently vanish from the journal
//! (the regression pinned by [`a_mid_apply_crash_keeps_the_popped_event`]).

use crowd4u::collab::Scheme;
use crowd4u::core::error::{ProjectId, TaskId, WorkerId};
use crowd4u::core::events::PlatformEvent;
use crowd4u::core::platform::Crowd4U;
use crowd4u::crowd::profile::WorkerProfile;
use crowd4u::forms::admin::DesiredFactors;
use crowd4u::runtime::prelude::*;
use crowd4u::runtime::RunReport;
use crowd4u::sim::time::SimTime;
use crowd4u::storage::prelude::Value;
use proptest::prelude::*;

const SRC: &str = "\
rel item(x: str).
open label(x: str) -> (l: str) points 1.
rel out(x: str, l: str).
out(X, L) :- item(X), label(X, L).
";

/// One generated operation, mapped onto the platform's event space below.
type RawOp = (u8, usize, usize, u64, String);

fn setup_events(n_projects: usize, items: usize) -> Vec<PlatformEvent> {
    let mut events = Vec::new();
    for w in 1..=3u64 {
        events.push(PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(w), format!("w{w}")),
        });
    }
    for p in 0..n_projects {
        events.push(PlatformEvent::ProjectRegistered {
            name: format!("proj-{p}"),
            source: SRC.into(),
            factors: DesiredFactors::default(),
            scheme: Scheme::Sequential,
            owner: 0,
        });
    }
    for i in 0..items {
        for p in 0..n_projects {
            events.push(PlatformEvent::FactSeeded {
                project: ProjectId(p as u64 + 1),
                pred: "item".into(),
                values: vec![format!("s{i}").into()],
            });
        }
    }
    events
}

fn op_event(n_projects: usize, op: &RawOp) -> PlatformEvent {
    let (kind, p, i, w, s) = op;
    let project = ProjectId((*p % n_projects) as u64 + 1);
    let task = TaskId::compose(project, *i as u64 + 1);
    let worker = WorkerId(*w);
    match kind % 6 {
        // Answer guesses on the predictable task-id stride — some valid,
        // some dropped; both outcomes must match the clean run exactly.
        0..=2 => PlatformEvent::AnswerSubmitted {
            worker,
            task,
            outputs: vec![Value::Str(s.clone())],
        },
        3 => PlatformEvent::FactSeeded {
            project,
            pred: "item".into(),
            values: vec![format!("late-{s}").into()],
        },
        4 => PlatformEvent::ClockAdvanced {
            to: SimTime(*i as u64 * 101),
            owner: 0,
        },
        // Worker churn rides the coordinator + delta-log path that a
        // recovering replica re-syncs from.
        _ => PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(*w), format!("re{w}"))
                .with_skill("label", *i as f64 / 8.0),
        },
    }
}

fn config(shards: usize) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        drain_every: 0,
        mailbox_capacity: 1024,
        recovery: true,
    }
}

/// Run the event stream in two drained halves, with an optional action
/// between them (the migration hook).
fn run_halves(
    rt: ShardedRuntime,
    first: &[PlatformEvent],
    second: &[PlatformEvent],
    between: impl FnOnce(&ShardedRuntime),
) -> RunReport {
    rt.submit_batch(first.to_vec());
    rt.drain();
    between(&rt);
    rt.submit_batch(second.to_vec());
    rt.drain();
    rt.finish().unwrap()
}

fn assert_equivalent(clean: &RunReport, run: &RunReport, label: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        run.journal.dump(),
        clean.journal.dump(),
        "journal mismatch: {}",
        label
    );
    prop_assert_eq!(run.stats.applied, clean.stats.applied, "{}", label);
    prop_assert_eq!(run.stats.dropped, clean.stats.dropped, "{}", label);
    let replayed = Crowd4U::replay(&run.journal).unwrap();
    let clean_replayed = Crowd4U::replay(&clean.journal).unwrap();
    prop_assert_eq!(
        replayed.state_dump(),
        clean_replayed.state_dump(),
        "replayed state mismatch: {}",
        label
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn killed_shards_recover_and_migrate_to_byte_identical_journals(
        n_projects in 2usize..4,
        items in 2usize..4,
        split in 2usize..8,
        ops in proptest::collection::vec(
            (0u8..6, 0usize..4, 0usize..6, 1u64..4, "[a-k]{1,4}"),
            6..32,
        ),
        kill_pick in 0usize..16,
        kill_after in 1u64..6,
        migrate_pick in 0usize..16,
    ) {
        let mut events = setup_events(n_projects, items);
        events.extend(ops.iter().map(|op| op_event(n_projects, op)));
        let cut = (events.len() * split / 8).min(events.len());
        let (first, second) = events.split_at(cut);

        let mut shard_counts = vec![1usize, 2, 4];
        let env_shards = crowd4u::runtime::router::shards_from_env(0);
        if env_shards > 0 && !shard_counts.contains(&env_shards) {
            shard_counts.push(env_shards);
        }
        for shards in shard_counts {
            // Reference: the same traffic, no fault injected.
            let rt = ShardedRuntime::new(config(shards));
            let clean = run_halves(rt, first, second, |_| {});

            // Fault + recover: shard S dies after its k-th applied event
            // (a no-op when S never reaches k applies — also a valid,
            // trivially equivalent schedule).
            let plan = FaultPlan::kill(kill_pick % shards, kill_after);
            let rt = ShardedRuntime::new_chaos(config(shards), plan.clone());
            let run = run_halves(rt, first, second, |_| {});
            assert_equivalent(&clean, &run, &format!("fault at {shards} shards"))?;

            // Mid-apply fault: the same kill point, but firing *inside*
            // the k-th apply — the event was popped from the mailbox and
            // is not yet in the ledger. The supervisor's in-flight redo
            // must make this shape equally invisible (PR 10).
            let mid = FaultPlan::kill_mid_apply(kill_pick % shards, kill_after);
            let rt = ShardedRuntime::new_chaos(config(shards), mid);
            let run = run_halves(rt, first, second, |_| {});
            assert_equivalent(&clean, &run, &format!("mid-apply fault at {shards} shards"))?;

            // Fault + migrate: same crash schedule, plus a hot migration
            // of one project to the next shard between the two halves.
            if shards > 1 {
                let project = ProjectId((migrate_pick % n_projects) as u64 + 1);
                let rt = ShardedRuntime::new_chaos(config(shards), plan);
                let run = run_halves(rt, first, second, |rt| {
                    let to = (rt.owner_of(project) + 1) % shards;
                    rt.migrate_project(project, to).unwrap();
                    assert_eq!(rt.owner_of(project), to);
                });
                assert_equivalent(
                    &clean,
                    &run,
                    &format!("fault+migrate at {shards} shards"),
                )?;
            }
        }
    }
}

/// PR 9 residue, pinned: an *injected* fault always fired on a ledgered
/// boundary, so recovery never had to face the real crash shape — a panic
/// in the middle of `apply_event`, when the event has been popped from
/// the mailbox but not yet ledgered. Before the in-flight redo, that one
/// event silently vanished: the merged journal was short one entry and
/// the replayed state diverged from the clean run.
#[test]
fn a_mid_apply_crash_keeps_the_popped_event() {
    let events = setup_events(2, 3);

    let mut serial = Crowd4U::new();
    let report = serial.apply_batch(events.clone()).unwrap();
    assert!(report.errors.is_empty());

    for shards in [1usize, 2] {
        // Kill the coordinator inside its 4th recorded apply — well within
        // the 5 registrations it records, so the fault always fires.
        let rt = ShardedRuntime::new_chaos(config(shards), FaultPlan::kill_mid_apply(0, 4));
        rt.submit_batch(events.clone());
        rt.drain();
        let run = rt.finish().unwrap();
        assert_eq!(
            run.journal.dump(),
            serial.journal().dump(),
            "mid-apply crash lost an event at {shards} shards"
        );
        assert_eq!(run.stats.dropped, 0);
        let replayed = Crowd4U::replay(&run.journal).unwrap();
        assert_eq!(replayed.state_dump(), serial.state_dump());
    }
}

/// Characterisation (PR 10 satellite): a migrated-away project leaves
/// **no shell at the live source** — `extract_project` removes it
/// entirely, so the source answers `UnknownProject` — but a source that
/// later crashes and recovers regains the *empty broadcast shell* every
/// non-owner holds: the Global `ProjectRegistered` replays from its
/// ledger while the project-scoped history is filtered to the current
/// owner. Both shapes hold zero task/fact residue, and neither perturbs
/// the merged journal.
#[test]
fn migrated_away_projects_leave_no_source_residue_even_across_recovery() {
    let events = setup_events(2, 3);

    let mut serial = Crowd4U::new();
    serial.apply_batch(events.clone()).unwrap();

    let rt = ShardedRuntime::new(config(2));
    rt.submit_batch(events);
    rt.drain();

    // Project 1 lives on shard 0; push it to shard 1.
    assert_eq!(rt.owner_of(ProjectId(1)), 0);
    let moved = rt.migrate_project(ProjectId(1), 1).unwrap();
    assert!(moved > 0, "the seeded project should carry tasks");

    // Live source: no shell at all — the project is simply gone.
    let gone = rt
        .submit_job(0, |p| p.project(ProjectId(1)).is_err())
        .recv()
        .unwrap();
    assert!(gone, "live source still knows the migrated project");

    // Crash the old owner (a job panic is a genuine, non-injected crash
    // shape) and let the supervisor rebuild it from the ledger. The next
    // query queues behind the held mailbox, so it runs post-recovery; no
    // extra drain (each `drain()` journals an entry, and the serial
    // reference performed exactly one).
    let _ = rt.submit_job(0, |_| panic!("chaos: source dies after migration"));

    // Recovered source: the broadcast shell is back — registered, but
    // with zero facts and zero tasks (its project-1 history now belongs
    // to shard 1 and was filtered out of the replay).
    let shell = rt
        .submit_job(0, |p| {
            p.project(ProjectId(1))
                .map(|proj| proj.engine.fact_count("item").unwrap())
                .ok()
        })
        .recv()
        .unwrap();
    assert_eq!(
        shell,
        Some(0),
        "recovered source should hold an empty shell"
    );

    let run = rt.finish().unwrap();
    assert_eq!(
        run.journal.dump(),
        serial.journal().dump(),
        "migration + source recovery must not perturb the journal"
    );
    // The destination holds the real project, tasks and all.
    assert!(run.platforms[1]
        .project(ProjectId(1))
        .map(|p| p.engine.fact_count("item").unwrap() > 0)
        .unwrap_or(false));
    // The finished source still reports the shell shape.
    assert_eq!(
        run.platforms[0]
            .project(ProjectId(1))
            .map(|p| p.engine.fact_count("item").unwrap())
            .ok(),
        Some(0)
    );
}
