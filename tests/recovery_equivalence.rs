//! Crash-recovery property (PR 9): killing a shard mid-run and replaying
//! it back is **observationally invisible**. For a generated multi-project
//! event stream and a generated kill point (shard S dies after its k-th
//! applied event — the [`FaultPlan`] is derived from the proptest seed, so
//! `PROPTEST_SEED` replays the exact crash schedule), a run at 1, 2 and 4
//! shards must produce
//!
//! * a merged journal **byte-identical** to the same run with no fault,
//! * identical applied/dropped accounting, and
//! * a journal that replays to a byte-identical
//!   [`Crowd4U::state_dump`](crowd4u::core::platform::Crowd4U::state_dump);
//!
//! and the same must hold when the fault is followed by a **hot project
//! migration** (`migrate_project`) to another shard mid-stream — the
//! routing flip moves where events record, not what the merged journal
//! says. Shard count 1 exercises coordinator death (worker-service owner);
//! the multi-shard counts exercise replica death with the worker feed
//! re-interleaved from snapshots + deltas. CI replays this file under
//! `RUNTIME_SHARDS=4` and a pinned `PROPTEST_SEED`.

use crowd4u::collab::Scheme;
use crowd4u::core::error::{ProjectId, TaskId, WorkerId};
use crowd4u::core::events::PlatformEvent;
use crowd4u::core::platform::Crowd4U;
use crowd4u::crowd::profile::WorkerProfile;
use crowd4u::forms::admin::DesiredFactors;
use crowd4u::runtime::prelude::*;
use crowd4u::runtime::RunReport;
use crowd4u::sim::time::SimTime;
use crowd4u::storage::prelude::Value;
use proptest::prelude::*;

const SRC: &str = "\
rel item(x: str).
open label(x: str) -> (l: str) points 1.
rel out(x: str, l: str).
out(X, L) :- item(X), label(X, L).
";

/// One generated operation, mapped onto the platform's event space below.
type RawOp = (u8, usize, usize, u64, String);

fn setup_events(n_projects: usize, items: usize) -> Vec<PlatformEvent> {
    let mut events = Vec::new();
    for w in 1..=3u64 {
        events.push(PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(w), format!("w{w}")),
        });
    }
    for p in 0..n_projects {
        events.push(PlatformEvent::ProjectRegistered {
            name: format!("proj-{p}"),
            source: SRC.into(),
            factors: DesiredFactors::default(),
            scheme: Scheme::Sequential,
        });
    }
    for i in 0..items {
        for p in 0..n_projects {
            events.push(PlatformEvent::FactSeeded {
                project: ProjectId(p as u64 + 1),
                pred: "item".into(),
                values: vec![format!("s{i}").into()],
            });
        }
    }
    events
}

fn op_event(n_projects: usize, op: &RawOp) -> PlatformEvent {
    let (kind, p, i, w, s) = op;
    let project = ProjectId((*p % n_projects) as u64 + 1);
    let task = TaskId::compose(project, *i as u64 + 1);
    let worker = WorkerId(*w);
    match kind % 6 {
        // Answer guesses on the predictable task-id stride — some valid,
        // some dropped; both outcomes must match the clean run exactly.
        0..=2 => PlatformEvent::AnswerSubmitted {
            worker,
            task,
            outputs: vec![Value::Str(s.clone())],
        },
        3 => PlatformEvent::FactSeeded {
            project,
            pred: "item".into(),
            values: vec![format!("late-{s}").into()],
        },
        4 => PlatformEvent::ClockAdvanced {
            to: SimTime(*i as u64 * 101),
        },
        // Worker churn rides the coordinator + delta-log path that a
        // recovering replica re-syncs from.
        _ => PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(*w), format!("re{w}"))
                .with_skill("label", *i as f64 / 8.0),
        },
    }
}

fn config(shards: usize) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        drain_every: 0,
        mailbox_capacity: 1024,
        recovery: true,
    }
}

/// Run the event stream in two drained halves, with an optional action
/// between them (the migration hook).
fn run_halves(
    rt: ShardedRuntime,
    first: &[PlatformEvent],
    second: &[PlatformEvent],
    between: impl FnOnce(&ShardedRuntime),
) -> RunReport {
    rt.submit_batch(first.to_vec());
    rt.drain();
    between(&rt);
    rt.submit_batch(second.to_vec());
    rt.drain();
    rt.finish().unwrap()
}

fn assert_equivalent(clean: &RunReport, run: &RunReport, label: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        run.journal.dump(),
        clean.journal.dump(),
        "journal mismatch: {}",
        label
    );
    prop_assert_eq!(run.stats.applied, clean.stats.applied, "{}", label);
    prop_assert_eq!(run.stats.dropped, clean.stats.dropped, "{}", label);
    let replayed = Crowd4U::replay(&run.journal).unwrap();
    let clean_replayed = Crowd4U::replay(&clean.journal).unwrap();
    prop_assert_eq!(
        replayed.state_dump(),
        clean_replayed.state_dump(),
        "replayed state mismatch: {}",
        label
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn killed_shards_recover_and_migrate_to_byte_identical_journals(
        n_projects in 2usize..4,
        items in 2usize..4,
        split in 2usize..8,
        ops in proptest::collection::vec(
            (0u8..6, 0usize..4, 0usize..6, 1u64..4, "[a-k]{1,4}"),
            6..32,
        ),
        kill_pick in 0usize..16,
        kill_after in 1u64..6,
        migrate_pick in 0usize..16,
    ) {
        let mut events = setup_events(n_projects, items);
        events.extend(ops.iter().map(|op| op_event(n_projects, op)));
        let cut = (events.len() * split / 8).min(events.len());
        let (first, second) = events.split_at(cut);

        let mut shard_counts = vec![1usize, 2, 4];
        let env_shards = crowd4u::runtime::router::shards_from_env(0);
        if env_shards > 0 && !shard_counts.contains(&env_shards) {
            shard_counts.push(env_shards);
        }
        for shards in shard_counts {
            // Reference: the same traffic, no fault injected.
            let rt = ShardedRuntime::new(config(shards));
            let clean = run_halves(rt, first, second, |_| {});

            // Fault + recover: shard S dies after its k-th applied event
            // (a no-op when S never reaches k applies — also a valid,
            // trivially equivalent schedule).
            let plan = FaultPlan::kill(kill_pick % shards, kill_after);
            let rt = ShardedRuntime::new_chaos(config(shards), plan.clone());
            let run = run_halves(rt, first, second, |_| {});
            assert_equivalent(&clean, &run, &format!("fault at {shards} shards"))?;

            // Fault + migrate: same crash schedule, plus a hot migration
            // of one project to the next shard between the two halves.
            if shards > 1 {
                let project = ProjectId((migrate_pick % n_projects) as u64 + 1);
                let rt = ShardedRuntime::new_chaos(config(shards), plan);
                let run = run_halves(rt, first, second, |rt| {
                    let to = (rt.owner_of(project) + 1) % shards;
                    rt.migrate_project(project, to).unwrap();
                    assert_eq!(rt.owner_of(project), to);
                });
                assert_equivalent(
                    &clean,
                    &run,
                    &format!("fault+migrate at {shards} shards"),
                )?;
            }
        }
    }
}
