//! Property: telemetry is **observe-only**. For any random multi-project
//! op stream, a `ShardedRuntime` run at 1, 2 and 4 shards produces a
//! merged journal and a replayed [`Crowd4U::state_dump`] byte-identical
//! to the single-threaded reference regardless of whether telemetry is
//!
//! * **enabled** (a live [`Registry`], every stage recording),
//! * **disabled** ([`Registry::disabled`], all cells no-op), or
//! * **scraped mid-run** (a live registry with [`ShardedRuntime::metrics`]
//!   called between every batch, while shard threads are producing) —
//!
//! and the three runs are identical to *each other*. This is the PR 8
//! observability contract: metrics and spans never feed back into
//! routing, evaluation, or the journal, and a scrape never perturbs (or
//! blocks) producers. The enabled run must also actually record: the
//! shard-apply stage histogram covers at least every applied event.
//!
//! Ops reuse the shard-equivalence generator shape: blind-guess answers
//! and interest on project-strided task ids, worker churn, clock
//! advances, collab tasks — so drops (stale/invalid events) are part of
//! the property too.

use crowd4u::collab::Scheme;
use crowd4u::core::error::{ProjectId, TaskId, WorkerId};
use crowd4u::core::events::PlatformEvent;
use crowd4u::core::platform::Crowd4U;
use crowd4u::crowd::profile::WorkerProfile;
use crowd4u::forms::admin::DesiredFactors;
use crowd4u::runtime::prelude::*;
use crowd4u::sim::time::SimTime;
use crowd4u::storage::prelude::Value;
use crowd4u::telemetry::{stage, Registry};
use proptest::prelude::*;

const SRC: &str = "\
rel sentence(s: str).
open translate(s: str) -> (t: str) points 2.
open check(s: str, t: str) -> (ok: bool) points 1.
rel approved(s: str, t: str).
approved(S, T) :- sentence(S), translate(S, T), check(S, T, OK), OK = true.
";

type RawOp = (u8, usize, usize, u64, String, bool);

fn setup_events(n_projects: usize, items: usize) -> Vec<PlatformEvent> {
    let mut events = Vec::new();
    for w in 1..=4u64 {
        events.push(PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(w), format!("w{w}")),
        });
    }
    for p in 0..n_projects {
        events.push(PlatformEvent::ProjectRegistered {
            name: format!("proj-{p}"),
            source: SRC.into(),
            factors: DesiredFactors {
                min_team: 1,
                max_team: 3,
                recruitment_secs: 600,
                ..Default::default()
            },
            scheme: Scheme::Sequential,
            owner: 0,
        });
    }
    for i in 0..items {
        for p in 0..n_projects {
            events.push(PlatformEvent::FactSeeded {
                project: ProjectId(p as u64 + 1),
                pred: "sentence".into(),
                values: vec![format!("s{i}").into()],
            });
        }
    }
    events
}

fn op_event(n_projects: usize, items: usize, op: &RawOp) -> PlatformEvent {
    let (kind, p, i, w, s, b) = op;
    let project = ProjectId((*p % n_projects) as u64 + 1);
    let task = TaskId::compose(project, *i as u64 + 1);
    let worker = WorkerId(*w);
    match kind % 9 {
        0 | 1 => PlatformEvent::AnswerSubmitted {
            worker,
            task,
            outputs: vec![Value::Str(s.clone())],
        },
        2 => PlatformEvent::AnswerSubmitted {
            worker,
            task: TaskId::compose(project, (items + i) as u64 + 1),
            outputs: vec![Value::Bool(*b)],
        },
        3 => PlatformEvent::InterestExpressed { worker, task },
        4 => PlatformEvent::ClockAdvanced {
            to: SimTime(*i as u64 * 137),
            owner: 0,
        },
        5 => PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(10 + w), format!("late{w}")),
        },
        6 => PlatformEvent::CollabTaskCreated {
            project,
            description: format!("collab {s}"),
        },
        7 => PlatformEvent::AssignmentRun { task },
        _ => PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(*w), format!("re{w}"))
                .with_skill("survey", *i as f64 / 8.0),
        },
    }
}

/// How a variant run treats telemetry.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Enabled,
    Disabled,
    ScrapedMidRun,
}

/// Run the batches through a sharded runtime under one telemetry mode;
/// return (journal dump, replayed state dump, applied, dropped).
fn run_variant(
    shards: usize,
    batches: &[Vec<PlatformEvent>],
    mode: Mode,
) -> (String, String, u64, u64) {
    let registry = match mode {
        Mode::Disabled => Registry::disabled(),
        _ => Registry::new(),
    };
    let rt = ShardedRuntime::new_instrumented(
        RuntimeConfig {
            shards,
            drain_every: 0,
            mailbox_capacity: 1024,
            recovery: false,
        },
        registry.clone(),
    );
    for b in batches {
        rt.submit_batch(b.clone());
        rt.drain();
        if mode == Mode::ScrapedMidRun {
            // Scrape while shard threads are live — must not block or
            // perturb them (the rendered text is also exercised).
            let snap = rt.metrics();
            let _ = snap.render();
        }
    }
    let run = rt.finish().expect("runtime alive");
    if mode != Mode::Disabled {
        // The enabled registry must actually have recorded: every applied
        // event was wrapped in the shard-apply span (broadcasts apply on
        // every shard, so the histogram may exceed the applied count).
        let snap = registry.snapshot();
        assert!(
            snap.histogram_count(stage::SHARD_APPLY) >= run.stats.applied,
            "shard-apply histogram undercounts: {} < {}",
            snap.histogram_count(stage::SHARD_APPLY),
            run.stats.applied
        );
    }
    let replayed = Crowd4U::replay(&run.journal).expect("journal replays");
    (
        run.journal.dump(),
        replayed.state_dump(),
        run.stats.applied,
        run.stats.dropped,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn telemetry_on_off_and_scraped_runs_are_byte_identical(
        n_projects in 2usize..4,
        items in 2usize..4,
        batch in 3usize..10,
        ops in proptest::collection::vec(
            (0u8..9, 0usize..4, 0usize..8, 1u64..5, "[a-k]{1,4}", any::<bool>()),
            0..32,
        ),
    ) {
        let mut events = setup_events(n_projects, items);
        events.extend(ops.iter().map(|op| op_event(n_projects, items, op)));
        let batches: Vec<Vec<PlatformEvent>> =
            events.chunks(batch.max(1)).map(|c| c.to_vec()).collect();

        // Single-threaded reference (telemetry never attached).
        let mut serial = Crowd4U::new();
        let mut serial_dropped = 0u64;
        for b in &batches {
            serial_dropped += serial.apply_batch(b.clone()).unwrap().errors.len() as u64;
        }
        let serial_journal = serial.journal().dump();
        let serial_dump = serial.state_dump();

        for shards in [1usize, 2, 4] {
            let (j_on, s_on, applied, dropped) =
                run_variant(shards, &batches, Mode::Enabled);
            let (j_off, s_off, _, _) = run_variant(shards, &batches, Mode::Disabled);
            let (j_scraped, s_scraped, _, _) =
                run_variant(shards, &batches, Mode::ScrapedMidRun);

            // All three variants match the serial reference…
            prop_assert_eq!(&j_on, &serial_journal, "journal (on) at {} shards", shards);
            prop_assert_eq!(&s_on, &serial_dump, "state (on) at {} shards", shards);
            // …and therefore each other; spelled out so a failure names
            // the variant that diverged.
            prop_assert_eq!(&j_off, &j_on, "journal on/off diverge at {} shards", shards);
            prop_assert_eq!(&s_off, &s_on, "state on/off diverge at {} shards", shards);
            prop_assert_eq!(&j_scraped, &j_on, "journal scraped diverges at {} shards", shards);
            prop_assert_eq!(&s_scraped, &s_on, "state scraped diverges at {} shards", shards);
            prop_assert_eq!(dropped, serial_dropped, "dropped mismatch at {} shards", shards);
            prop_assert_eq!(
                applied + dropped,
                events.len() as u64,
                "event accounting mismatch at {} shards",
                shards
            );
        }
    }
}
