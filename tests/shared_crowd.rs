//! Shared-crowd marketplace property (PR 10 tentpole): one worker
//! population serving all three §2.5 applications at once is
//! **observationally identical** to the serial shared composite, and its
//! per-scenario accounting **partitions** the platform totals exactly.
//!
//! For a generated config, the three schemes' traces (recorded over the
//! same seeded population) merged in [`CrowdMode::Shared`] and streamed
//! through the gate must, at 1, 2 and 4 shards (plus `RUNTIME_SHARDS`):
//!
//! * produce a merged journal **byte-identical** to
//!   `stream::apply_stream` of the same shared merge on one platform,
//!   and a replay with a byte-identical `state_dump()`;
//! * split each shared worker's points per scenario such that every
//!   scheme's ledger sums to that scheme's report total, equal to the
//!   scheme's **standalone disjoint run** (sharing a crowd must not leak
//!   accounting across applications), and the per-worker sums across
//!   schemes reproduce the platform's `points_of` exactly — no point
//!   counted twice, none lost;
//! * report per-worker collab contributions that match the replayed
//!   platform's `worker_collabs_in` counters (the affinity-history split);
//! * and survive **chaos**: the same stream with a seed-derived shard
//!   kill mid-stream (PR 9 recovery) stays byte-identical, splits
//!   included.
//!
//! CI replays this file under `RUNTIME_SHARDS=4` with a pinned
//! `PROPTEST_SEED`.

use crowd4u::collab::Scheme;
use crowd4u::core::error::WorkerId;
use crowd4u::core::platform::Crowd4U;
use crowd4u::runtime::prelude::*;
use crowd4u::scenarios::stream::{apply_stream, merge_traces_with, CrowdMode, ScenarioTrace};
use crowd4u::scenarios::{mixed, run_scheme, ScenarioConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn shard_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4];
    let env = crowd4u::runtime::router::shards_from_env(0);
    if env > 0 && !counts.contains(&env) {
        counts.push(env);
    }
    counts
}

fn config(shards: usize, recovery: bool) -> RuntimeConfig {
    RuntimeConfig {
        shards,
        drain_every: 0,
        mailbox_capacity: 16,
        recovery,
    }
}

/// Serial reference: the shared-crowd merge applied by one thread to one
/// platform. Returns (journal dump, state dump, dropped). The scenarios
/// run the default `LocalSearch` algorithm, which is also what a fresh
/// (and crash-rebuilt) shard slice carries — chaos recovery re-runs the
/// base builder, so the test pins the config's algorithm to the default.
fn serial_shared_reference(traces: &[ScenarioTrace]) -> (String, String, u64) {
    let merged = merge_traces_with(traces, CrowdMode::Shared).expect("shared merge");
    let mut platform = Crowd4U::new();
    let dropped = apply_stream(&mut platform, &merged).expect("serial apply");
    (platform.journal().dump(), platform.state_dump(), dropped)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn shared_crowd_streams_replay_identically_and_split_exactly(
        crowd in 12usize..22,
        items in 1usize..3,
        seed in 0u64..1000,
        kill_pick in 0usize..16,
        kill_after in 1u64..8,
    ) {
        let cfg = ScenarioConfig::default()
            .with_crowd(crowd)
            .with_items(items)
            .with_seed(seed);
        let traces = mixed::record(&cfg).expect("record");
        let (serial_journal, serial_dump, serial_dropped) = serial_shared_reference(&traces);
        // The authoritative project ids each trace's splits live under.
        let remaps = merge_traces_with(&traces, CrowdMode::Shared)
            .expect("shared merge")
            .remaps;

        // The disjoint reference: each scheme run standalone on its own
        // platform. Sharing the crowd must not change what any scheme
        // awards — only *who* holds the points.
        let standalone: Vec<_> = Scheme::all()
            .into_iter()
            .map(|s| run_scheme(s, &cfg).expect("standalone"))
            .collect();

        for shards in shard_counts() {
            let rt = ShardedRuntime::new(config(shards, false));
            let (reports, splits) =
                crowd4u::runtime::scenario::stream_traces_shared(&rt, &traces).expect("stream");
            let run = rt.finish().expect("finish");
            prop_assert_eq!(
                run.stats.dropped, serial_dropped,
                "dropped mismatch at {} shards", shards
            );
            prop_assert_eq!(
                run.journal.dump(), serial_journal.clone(),
                "journal mismatch at {} shards", shards
            );
            let replayed = Crowd4U::replay(&run.journal).expect("replay");
            prop_assert_eq!(
                replayed.state_dump(), serial_dump.clone(),
                "state mismatch at {} shards", shards
            );

            // Per-scheme split totals: ledger == streamed report ==
            // standalone disjoint run.
            for i in 0..traces.len() {
                prop_assert_eq!(
                    splits[i].total_points(), reports[i].points_awarded,
                    "scheme {} ledger diverges from its report", i
                );
                prop_assert_eq!(
                    reports[i].points_awarded, standalone[i].points_awarded,
                    "sharing the crowd changed scheme {}'s accounting", i
                );
            }

            // Partition: per-worker sums across all schemes reproduce the
            // shared platform's global leaderboard exactly.
            let mut by_worker: BTreeMap<WorkerId, i64> = BTreeMap::new();
            for split in &splits {
                for (w, pts) in &split.points {
                    *by_worker.entry(*w).or_insert(0) += pts;
                }
            }
            for (w, pts) in &by_worker {
                prop_assert_eq!(
                    *pts, replayed.points_of(*w),
                    "worker {} split sum diverges from points_of", w
                );
            }
            let platform_total: i64 = replayed
                .workers
                .iter_ids()
                .map(|w| replayed.points_of(w))
                .sum();
            prop_assert_eq!(
                by_worker.values().sum::<i64>(), platform_total,
                "splits do not partition the platform total at {} shards", shards
            );

            // Affinity-history split: the per-worker collab contributions
            // read off the owner shards match what a replay of the merged
            // journal derives per project.
            for (i, trace) in traces.iter().enumerate() {
                let mut collabs: BTreeMap<WorkerId, u64> = BTreeMap::new();
                for local in &trace.projects {
                    let project = remaps[i].project(*local);
                    for w in replayed.workers.iter_ids() {
                        let n = replayed.worker_collabs_in(project, w);
                        if n > 0 {
                            *collabs.entry(w).or_insert(0) += n;
                        }
                    }
                }
                prop_assert_eq!(
                    &collabs, &splits[i].collabs,
                    "scheme {} collab split diverges from the replay", i
                );
            }

            // Chaos: the very same shared stream with a seed-derived kill
            // mid-stream; PR 9 recovery must keep it byte-identical,
            // splits included.
            let plan = FaultPlan::kill(kill_pick % shards, kill_after);
            let rt = ShardedRuntime::new_chaos(config(shards, true), plan);
            let (_, chaos_splits) =
                crowd4u::runtime::scenario::stream_traces_shared(&rt, &traces).expect("chaos stream");
            let run = rt.finish().expect("chaos finish");
            prop_assert_eq!(
                run.journal.dump(), serial_journal.clone(),
                "chaos journal mismatch at {} shards", shards
            );
            for (a, b) in chaos_splits.iter().zip(&splits) {
                prop_assert_eq!(&a.points, &b.points, "chaos split points diverged");
                prop_assert_eq!(&a.collabs, &b.collabs, "chaos split collabs diverged");
            }
        }
    }
}

/// The shared merge's safety rails, pinned deterministically: traces
/// recorded over *different* populations refuse to share a crowd, and the
/// shared streamed run equals the serial shared composite on the smoke
/// config (the cheap always-on version of the property above).
#[test]
fn shared_merge_rejects_mismatched_populations() {
    let a = mixed::record(&ScenarioConfig::default().with_crowd(12).with_seed(7)).unwrap();
    let b = mixed::record(&ScenarioConfig::default().with_crowd(14).with_seed(7)).unwrap();
    let mixed_traces = vec![a[0].clone(), b[1].clone()];
    assert!(
        merge_traces_with(&mixed_traces, CrowdMode::Shared).is_err(),
        "unequal crowds must not merge as shared"
    );
}
