//! Property: sharded execution is observationally identical to
//! single-threaded execution. For any multi-project event stream — worker
//! registrations **and re-registration churn** (replicated through the
//! coordinator-owned worker service since PR 7, not broadcast), fact
//! seeds, blind-guess answers/interest/assignment on predictable
//! project-strided task ids, clock advances — a run through the
//! `ShardedRuntime` at 1, 2 and 4 shards must:
//!
//! * drop exactly the events the single-threaded `apply_batch` path
//!   rejects (stale/invalid worker actions), and count them identically;
//! * produce a merged journal (per-shard streams stitched by global
//!   sequence number) byte-identical to the serial platform's journal;
//! * replay that journal to a byte-identical
//!   [`Crowd4U::state_dump`](crowd4u::core::platform::Crowd4U::state_dump).
//!
//! This extends the PR 2 batch-equivalence guarantee to parallel
//! execution. A second property extends it to **concurrent submission**:
//! ops fanned in from 4 producer threads through cloned `IngestGate`
//! handles (tiny mailboxes, blocking backpressure) must merge to a journal
//! byte-identical to a serial run in the gate's global-sequence order.
//! A third (PR 9) re-runs that fan-in under **chaos**: a random shard is
//! killed at a random applied-event count mid-fan-in and crash-recovered
//! by journal-slice replay — the same seq-order equivalence must hold,
//! with blocked submitters parked (not failed) across the rebuild.
//! Set `RUNTIME_SHARDS` to test an extra shard count (CI runs with
//! `RUNTIME_SHARDS=4`).

use crowd4u::collab::Scheme;
use crowd4u::core::error::{ProjectId, TaskId, WorkerId};
use crowd4u::core::events::PlatformEvent;
use crowd4u::core::platform::Crowd4U;
use crowd4u::crowd::profile::WorkerProfile;
use crowd4u::forms::admin::DesiredFactors;
use crowd4u::runtime::prelude::*;
use crowd4u::sim::time::SimTime;
use crowd4u::storage::prelude::Value;
use proptest::prelude::*;

const SRC: &str = "\
rel sentence(s: str).
open translate(s: str) -> (t: str) points 2.
open check(s: str, t: str) -> (ok: bool) points 1.
rel approved(s: str, t: str).
approved(S, T) :- sentence(S), translate(S, T), check(S, T, OK), OK = true.
";

/// One generated operation; ids are blind guesses into the predictable
/// project-strided id space, so validity is decided identically by the
/// serial platform and the owning shard — which is exactly the property
/// under test.
type RawOp = (u8, usize, usize, u64, String, bool);

/// Worker registrations, project registrations and interleaved seed facts
/// — the mixed multi-project shape a router has to unpick.
fn setup_events(n_projects: usize, items: usize) -> Vec<PlatformEvent> {
    let mut events = Vec::new();
    for w in 1..=4u64 {
        events.push(PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(w), format!("w{w}")),
        });
    }
    for p in 0..n_projects {
        events.push(PlatformEvent::ProjectRegistered {
            name: format!("proj-{p}"),
            source: SRC.into(),
            factors: DesiredFactors {
                min_team: 1,
                max_team: 3,
                recruitment_secs: 600,
                ..Default::default()
            },
            scheme: Scheme::Sequential,
            owner: 0,
        });
    }
    for i in 0..items {
        for p in 0..n_projects {
            events.push(PlatformEvent::FactSeeded {
                project: ProjectId(p as u64 + 1),
                pred: "sentence".into(),
                values: vec![format!("s{i}").into()],
            });
        }
    }
    events
}

/// Map one generated op onto a platform event.
fn op_event(n_projects: usize, items: usize, op: &RawOp) -> PlatformEvent {
    let (kind, p, i, w, s, b) = op;
    let project = ProjectId((*p % n_projects) as u64 + 1);
    let task = TaskId::compose(project, *i as u64 + 1);
    let worker = WorkerId(*w);
    match kind % 9 {
        // Translate-level answer guesses (valid while the task is open).
        0 | 1 => PlatformEvent::AnswerSubmitted {
            worker,
            task,
            outputs: vec![Value::Str(s.clone())],
        },
        // Check-level answer guesses (tasks appear after drains).
        2 => PlatformEvent::AnswerSubmitted {
            worker,
            task: TaskId::compose(project, (items + i) as u64 + 1),
            outputs: vec![Value::Bool(*b)],
        },
        3 => PlatformEvent::InterestExpressed { worker, task },
        4 => PlatformEvent::ClockAdvanced {
            to: SimTime(*i as u64 * 137),
            owner: 0,
        },
        5 => PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(10 + w), format!("late{w}")),
        },
        6 => PlatformEvent::CollabTaskCreated {
            project,
            description: format!("collab {s}"),
        },
        7 => PlatformEvent::AssignmentRun { task },
        // Worker churn: re-register a setup worker with an updated profile
        // — the delta-log compaction/versioning path under the
        // coordinator-owned worker service.
        _ => PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(*w), format!("re{w}"))
                .with_skill("survey", *i as f64 / 8.0),
        },
    }
}

fn build_events(n_projects: usize, items: usize, ops: &[RawOp]) -> Vec<PlatformEvent> {
    let mut events = setup_events(n_projects, items);
    events.extend(ops.iter().map(|op| op_event(n_projects, items, op)));
    events
}

fn chunked(events: &[PlatformEvent], batch: usize) -> Vec<Vec<PlatformEvent>> {
    events.chunks(batch.max(1)).map(|c| c.to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn sharded_runs_replay_byte_identical_to_serial(
        n_projects in 2usize..4,
        items in 2usize..5,
        batch in 3usize..10,
        ops in proptest::collection::vec(
            (0u8..9, 0usize..4, 0usize..8, 1u64..5, "[a-k]{1,4}", any::<bool>()),
            0..40,
        ),
    ) {
        let events = build_events(n_projects, items, &ops);
        let batches = chunked(&events, batch);

        // Single-threaded reference: one batch, one drain — repeatedly.
        let mut serial = Crowd4U::new();
        let mut serial_dropped = 0u64;
        for b in &batches {
            let report = serial.apply_batch(b.clone()).unwrap();
            serial_dropped += report.errors.len() as u64;
        }
        let serial_journal = serial.journal().dump();
        let serial_dump = serial.state_dump();

        let mut shard_counts = vec![1usize, 2, 4];
        let env_shards = crowd4u::runtime::router::shards_from_env(0);
        if env_shards > 0 && !shard_counts.contains(&env_shards) {
            shard_counts.push(env_shards);
        }
        for shards in shard_counts {
            let rt = ShardedRuntime::new(RuntimeConfig {
                shards,
                drain_every: 0,
                mailbox_capacity: 1024,
                recovery: false,
            });
            for b in &batches {
                rt.submit_batch(b.clone());
                rt.drain();
            }
            let run = rt.finish().unwrap();

            // Identical drop accounting (stale-event parity).
            prop_assert_eq!(
                run.stats.dropped, serial_dropped,
                "dropped mismatch at {} shards", shards
            );
            prop_assert_eq!(
                run.stats.applied + run.stats.dropped,
                events.len() as u64,
                "event accounting mismatch at {} shards", shards
            );
            // Merged journal byte-identical to the serial journal…
            prop_assert_eq!(
                run.journal.dump(), serial_journal.clone(),
                "journal mismatch at {} shards", shards
            );
            // …and it replays to a byte-identical platform state.
            let replayed = Crowd4U::replay(&run.journal).unwrap();
            prop_assert_eq!(
                replayed.state_dump(), serial_dump.clone(),
                "state mismatch at {} shards", shards
            );
        }
    }

    /// The gate extension of the property: the same guarantees hold when
    /// the ops are *fanned in from 4 concurrent submitter threads* through
    /// cloned `IngestGate` handles, with a small mailbox capacity so the
    /// blocking backpressure path is exercised. The serial reference
    /// applies the events in the gate's global-sequence order (each
    /// thread records the seq `submit` returned), so this also proves the
    /// stamp-inside-the-shard-lock ordering rule: every mailbox is
    /// delivered in seq order even under contention.
    #[test]
    fn concurrent_submitters_replay_byte_identical_to_seq_order_serial(
        n_projects in 2usize..5,
        items in 2usize..4,
        ops in proptest::collection::vec(
            (0u8..9, 0usize..4, 0usize..8, 1u64..5, "[a-k]{1,4}", any::<bool>()),
            4..48,
        ),
    ) {
        const SUBMITTERS: usize = 4;
        let setup = setup_events(n_projects, items);

        for shards in [2usize, 4] {
            let rt = ShardedRuntime::new(RuntimeConfig {
                shards,
                drain_every: 0,
                mailbox_capacity: 8, // tiny: force blocking backpressure
                recovery: false,
            });
            rt.submit_batch(setup.clone());
            rt.drain();

            // Fan the ops in round-robin over 4 submitter threads; each
            // thread keeps (seq, event) for the serial reference.
            let mut streams: Vec<Vec<PlatformEvent>> = vec![Vec::new(); SUBMITTERS];
            for (k, op) in ops.iter().enumerate() {
                streams[k % SUBMITTERS].push(op_event(n_projects, items, op));
            }
            let handles: Vec<_> = streams
                .into_iter()
                .map(|stream| {
                    let gate = rt.gate();
                    std::thread::spawn(move || {
                        stream
                            .into_iter()
                            .map(|e| (gate.submit(e.clone()).expect("runtime alive"), e))
                            .collect::<Vec<(u64, PlatformEvent)>>()
                    })
                })
                .collect();
            let mut stamped: Vec<(u64, PlatformEvent)> = Vec::new();
            for h in handles {
                stamped.extend(h.join().expect("submitter thread"));
            }
            rt.drain();
            let run = rt.finish().unwrap();

            // Serial reference: the same events in global-sequence order.
            stamped.sort_by_key(|(seq, _)| *seq);
            let ordered: Vec<PlatformEvent> =
                stamped.into_iter().map(|(_, e)| e).collect();
            let mut serial = Crowd4U::new();
            let mut dropped = serial.apply_batch(setup.clone()).unwrap().errors.len() as u64;
            dropped += serial.apply_batch(ordered).unwrap().errors.len() as u64;

            prop_assert_eq!(
                run.stats.dropped, dropped,
                "dropped mismatch at {} shards", shards
            );
            prop_assert_eq!(
                run.stats.applied + run.stats.dropped,
                (setup.len() + ops.len()) as u64,
                "event accounting mismatch at {} shards", shards
            );
            prop_assert_eq!(
                run.journal.dump(), serial.journal().dump(),
                "journal mismatch at {} shards", shards
            );
            let replayed = Crowd4U::replay(&run.journal).unwrap();
            prop_assert_eq!(
                replayed.state_dump(), serial.state_dump(),
                "state mismatch at {} shards", shards
            );
        }
    }

    /// Chaos extension (PR 9): the same 4-submitter fan-in with a random
    /// single-shard kill point injected mid-stream. The killed shard is
    /// crash-recovered by journal-slice replay while producers park on the
    /// recovering mailbox, so every accepted event still lands exactly
    /// once and the merged journal equals the seq-order serial reference —
    /// the crash is observationally invisible even under concurrent
    /// submission and backpressure.
    #[test]
    fn concurrent_submitters_survive_a_random_shard_kill(
        n_projects in 2usize..5,
        items in 2usize..4,
        ops in proptest::collection::vec(
            (0u8..9, 0usize..4, 0usize..8, 1u64..5, "[a-k]{1,4}", any::<bool>()),
            8..40,
        ),
        kill_pick in 0usize..16,
        kill_after in 1u64..8,
    ) {
        const SUBMITTERS: usize = 4;
        let setup = setup_events(n_projects, items);

        for shards in [2usize, 4] {
            let rt = ShardedRuntime::new_chaos(
                RuntimeConfig {
                    shards,
                    drain_every: 0,
                    mailbox_capacity: 8, // tiny: backpressure + recovery holds
                    recovery: true,
                },
                FaultPlan::kill(kill_pick % shards, kill_after),
            );
            rt.submit_batch(setup.clone());
            rt.drain();

            let mut streams: Vec<Vec<PlatformEvent>> = vec![Vec::new(); SUBMITTERS];
            for (k, op) in ops.iter().enumerate() {
                streams[k % SUBMITTERS].push(op_event(n_projects, items, op));
            }
            let handles: Vec<_> = streams
                .into_iter()
                .map(|stream| {
                    let gate = rt.gate();
                    std::thread::spawn(move || {
                        stream
                            .into_iter()
                            .map(|e| (gate.submit(e.clone()).expect("runtime alive"), e))
                            .collect::<Vec<(u64, PlatformEvent)>>()
                    })
                })
                .collect();
            let mut stamped: Vec<(u64, PlatformEvent)> = Vec::new();
            for h in handles {
                stamped.extend(h.join().expect("submitter thread"));
            }
            rt.drain();
            let run = rt.finish().unwrap();

            stamped.sort_by_key(|(seq, _)| *seq);
            let ordered: Vec<PlatformEvent> =
                stamped.into_iter().map(|(_, e)| e).collect();
            let mut serial = Crowd4U::new();
            let mut dropped = serial.apply_batch(setup.clone()).unwrap().errors.len() as u64;
            dropped += serial.apply_batch(ordered).unwrap().errors.len() as u64;

            prop_assert_eq!(
                run.stats.dropped, dropped,
                "dropped mismatch at {} shards (chaos)", shards
            );
            prop_assert_eq!(
                run.stats.applied + run.stats.dropped,
                (setup.len() + ops.len()) as u64,
                "event accounting mismatch at {} shards (chaos)", shards
            );
            prop_assert_eq!(
                run.journal.dump(), serial.journal().dump(),
                "journal mismatch at {} shards (chaos)", shards
            );
            let replayed = Crowd4U::replay(&run.journal).unwrap();
            prop_assert_eq!(
                replayed.state_dump(), serial.state_dump(),
                "state mismatch at {} shards (chaos)", shards
            );
        }
    }
}
