//! Cross-validation properties spanning crates: the storage hash join
//! against a nested-loop reference, CyLog aggregates against the storage
//! aggregation operator, and CyLog joins against the query engine.

use crowd4u::cylog::engine::CylogEngine;
use crowd4u::storage::prelude::*;
use proptest::prelude::*;

/// Nested-loop reference join for the property test.
fn reference_join(left: &[(i64, i64)], right: &[(i64, i64)]) -> Vec<(i64, i64, i64, i64)> {
    let mut out = Vec::new();
    for &(a, b) in left {
        for &(c, d) in right {
            if b == c {
                out.push((a, b, c, d));
            }
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hash join ≡ nested-loop join on arbitrary relations.
    #[test]
    fn hash_join_matches_reference(
        left in proptest::collection::vec((0i64..8, 0i64..8), 0..30),
        right in proptest::collection::vec((0i64..8, 0i64..8), 0..30),
    ) {
        let schema_l = Schema::of(&[("a", ValueType::Int), ("b", ValueType::Int)]);
        let schema_r = Schema::of(&[("c", ValueType::Int), ("d", ValueType::Int)]);
        let rs_l = ResultSet::new(
            schema_l,
            left.iter().map(|(a, b)| tuple![*a, *b]).collect(),
        );
        let rs_r = ResultSet::new(
            schema_r,
            right.iter().map(|(c, d)| tuple![*c, *d]).collect(),
        );
        let joined = rs_l.join(rs_r, &[("b", "c")]).unwrap();
        let mut got: Vec<(i64, i64, i64, i64)> = joined
            .rows
            .iter()
            .map(|t| {
                (
                    t[0].as_int().unwrap(),
                    t[1].as_int().unwrap(),
                    t[2].as_int().unwrap(),
                    t[3].as_int().unwrap(),
                )
            })
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, reference_join(&left, &right));
    }

    /// CyLog join rule ≡ storage query-engine join on the same data.
    #[test]
    fn cylog_join_matches_query_engine(
        left in proptest::collection::vec((0i64..6, 0i64..6), 0..20),
        right in proptest::collection::vec((0i64..6, 0i64..6), 0..20),
    ) {
        let mut engine = CylogEngine::from_source(
            "rel l(a: int, b: int).\nrel r(b: int, c: int).\n\
             rel j(a: int, b: int, c: int).\n\
             j(A, B, C) :- l(A, B), r(B, C).\n",
        )
        .unwrap();
        for (a, b) in &left {
            engine.add_fact("l", vec![(*a).into(), (*b).into()]).unwrap();
        }
        for (b, c) in &right {
            engine.add_fact("r", vec![(*b).into(), (*c).into()]).unwrap();
        }
        engine.run().unwrap();
        let mut cylog_rows = engine.facts("j").unwrap().rows;
        cylog_rows.sort();

        // The same join through the query engine (with dedup = set semantics).
        let l = engine.facts("l").unwrap();
        let r = engine.facts("r").unwrap();
        let joined = l
            .join(r, &[("b", "b")])
            .unwrap()
            .project(&["a", "b", "c"])
            .unwrap()
            .distinct();
        let mut sql_rows = joined.rows;
        sql_rows.sort();
        prop_assert_eq!(cylog_rows, sql_rows);
    }

    /// CyLog aggregates ≡ storage aggregation operator.
    #[test]
    fn cylog_aggregates_match_query_engine(
        facts in proptest::collection::vec((0i64..4, -100i64..100), 1..30),
    ) {
        let mut engine = CylogEngine::from_source(
            "rel w(g: int, v: int).\n\
             rel s(g: int, n: int, lo: int, hi: int).\n\
             s(G, count<V>, min<V>, max<V>) :- w(G, V).\n",
        )
        .unwrap();
        let mut deduped: Vec<(i64, i64)> = facts.clone();
        deduped.sort_unstable();
        deduped.dedup();
        for (g, v) in &facts {
            engine.add_fact("w", vec![(*g).into(), (*v).into()]).unwrap();
        }
        engine.run().unwrap();
        let mut cylog_rows = engine.facts("s").unwrap().rows;
        cylog_rows.sort();

        let rs = engine.facts("w").unwrap();
        let agg = rs
            .aggregate(
                &["g"],
                &[
                    AggSpec::new(AggFunc::Count, "", "n"),
                    AggSpec::new(AggFunc::Min, "v", "lo"),
                    AggSpec::new(AggFunc::Max, "v", "hi"),
                ],
            )
            .unwrap();
        let mut sql_rows = agg.rows;
        sql_rows.sort();
        // Min/Max agree exactly; counts agree because both sides see the
        // deduplicated fact set (set semantics on `w`).
        prop_assert_eq!(cylog_rows.len(), sql_rows.len());
        for (c, s) in cylog_rows.iter().zip(&sql_rows) {
            prop_assert_eq!(&c[0], &s[0], "group");
            prop_assert_eq!(c[1].as_int(), s[1].as_int(), "count");
            prop_assert_eq!(&c[2], &s[2], "min");
            prop_assert_eq!(&c[3], &s[3], "max");
        }
    }

    /// Sort → distinct → filter chains keep set semantics (no row invented,
    /// none lost) under arbitrary permutations.
    #[test]
    fn operator_chain_preserves_rows(
        rows in proptest::collection::vec((0i64..10, 0i64..10), 0..40),
    ) {
        let rs = ResultSet::new(
            Schema::of(&[("x", ValueType::Int), ("y", ValueType::Int)]),
            rows.iter().map(|(x, y)| tuple![*x, *y]).collect(),
        );
        let processed = rs
            .clone()
            .sort_by(&["y", "x"]) .unwrap()
            .distinct()
            .filter(&Expr::col(0).ge(Expr::lit(0i64)))
            .unwrap();
        let mut expect: Vec<(i64, i64)> = rows.clone();
        expect.sort_unstable();
        expect.dedup();
        let mut got: Vec<(i64, i64)> = processed
            .rows
            .iter()
            .map(|t| (t[0].as_int().unwrap(), t[1].as_int().unwrap()))
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
