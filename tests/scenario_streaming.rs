//! Property: a scenario streamed through the ingestion gate is
//! observationally identical to its single-threaded `Driver` run.
//!
//! The scenario layer's half of the determinism contract
//! (ARCHITECTURE.md §5): a recorded scenario stream *is* the decision
//! shadow's journal, so pushing it through `ShardedRuntime` mailboxes
//! must produce
//!
//! * a merged journal **byte-identical** to the serial `Driver` journal,
//! * a replay with a byte-identical `state_dump()`,
//! * a report equal to the single-threaded run field for field, with the
//!   platform-side fields recomputed from the owner shards (per-project
//!   counters + project-ledger points), not from the shadow;
//!
//! and all of it at 1, 2 and 4 shards (plus `RUNTIME_SHARDS`). The second
//! property extends this to **three concurrently streamed scenarios** —
//! the `mixed` workload: translation, journalism and surveillance
//! interleaved by timestamp through one gate, with per-scenario id
//! remapping keeping them disjoint. The serial reference there is
//! `stream::apply_stream` on a single platform (the same merged stream,
//! applied by one thread), so the byte-identity holds across shard counts
//! *and* against the serial composite.
//!
//! A deliberately tiny mailbox (and a dedicated capacity-1 test) forces
//! the `try_submit` → `GateError::Full` → resubmit-same-event path, so
//! the properties also pin that backpressure retries never reorder a
//! stream.

use crowd4u::collab::Scheme;
use crowd4u::core::platform::Crowd4U;
use crowd4u::runtime::prelude::*;
use crowd4u::runtime::scenario::stream_traces;
use crowd4u::scenarios::stream::{
    apply_stream, merge_traces, record_scheme, MergedStream, ScenarioTrace,
};
use crowd4u::scenarios::{mixed, ScenarioConfig, ScenarioReport};
use proptest::prelude::*;

fn shard_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4];
    let env = crowd4u::runtime::router::shards_from_env(0);
    if env > 0 && !counts.contains(&env) {
        counts.push(env);
    }
    counts
}

fn runtime(shards: usize, mailbox_capacity: usize) -> ShardedRuntime {
    ShardedRuntime::new(RuntimeConfig {
        shards,
        drain_every: 0,
        mailbox_capacity,
        recovery: false,
    })
}

/// Serial reference for a set of traces: the merged stream applied by one
/// thread to one platform. Returns (journal dump, state dump, dropped).
fn serial_reference(traces: &[ScenarioTrace]) -> (String, String, u64) {
    let merged = merge_traces(traces);
    let mut platform = Crowd4U::new();
    let dropped = apply_stream(&mut platform, &merged).expect("serial apply");
    (platform.journal().dump(), platform.state_dump(), dropped)
}

fn assert_reports_equal(got: &ScenarioReport, want: &ScenarioReport, label: &str) {
    assert_eq!(got.scheme, want.scheme, "{label}");
    assert_eq!(got.items_completed, want.items_completed, "{label}");
    assert_eq!(got.items_total, want.items_total, "{label}");
    assert_eq!(got.answers, want.answers, "{label}");
    assert_eq!(got.teams_formed, want.teams_formed, "{label}");
    assert_eq!(got.reassignments, want.reassignments, "{label}");
    assert_eq!(got.points_awarded, want.points_awarded, "{label}");
    assert_eq!(got.makespan, want.makespan, "{label}");
    assert!(
        (got.mean_quality - want.mean_quality).abs() < 1e-12,
        "{label}"
    );
    assert!(
        (got.mean_team_affinity - want.mean_team_affinity).abs() < 1e-12,
        "{label}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// One scenario, streamed: merged journal byte-identical to the
    /// serial `Driver` journal, replay byte-identical, report equal to
    /// the single-threaded run — at every shard count, through a small
    /// mailbox so backpressure retries are exercised.
    #[test]
    fn streamed_scenario_is_byte_identical_to_the_serial_driver_run(
        scheme_idx in 0usize..3,
        crowd in 12usize..26,
        items in 1usize..3,
        seed in 0u64..1000,
    ) {
        let scheme = Scheme::all()[scheme_idx];
        let cfg = ScenarioConfig::default()
            .with_crowd(crowd)
            .with_items(items)
            .with_seed(seed);
        // The recording *is* the serial run: its shadow report is the
        // single-threaded reference.
        let trace = record_scheme(scheme, &cfg).expect("record");
        let (serial_journal, serial_dump, serial_dropped) =
            serial_reference(std::slice::from_ref(&trace));
        prop_assert_eq!(serial_dropped, 0, "a lone stream never drops");

        for shards in shard_counts() {
            let rt = runtime(shards, 8);
            let reports = stream_traces(&rt, std::slice::from_ref(&trace)).expect("stream");
            let run = rt.finish().expect("finish");
            prop_assert_eq!(run.stats.dropped, 0, "dropped at {} shards", shards);
            prop_assert_eq!(
                run.journal.dump(), serial_journal.clone(),
                "journal mismatch at {} shards", shards
            );
            let replayed = Crowd4U::replay(&run.journal).expect("replay");
            prop_assert_eq!(
                replayed.state_dump(), serial_dump.clone(),
                "state mismatch at {} shards", shards
            );
            assert_reports_equal(&reports[0], &trace.shadow, scheme.name());
        }
    }

    /// Three scenarios streamed concurrently (the mixed workload):
    /// byte-identical journals and replays across 1/2/4 shards and
    /// against the serial composite, and per-scheme reports equal to the
    /// serial mixed run's.
    #[test]
    fn mixed_concurrent_scenarios_replay_identically_at_every_shard_count(
        crowd in 12usize..22,
        items in 1usize..3,
        seed in 0u64..1000,
    ) {
        let cfg = ScenarioConfig::default()
            .with_crowd(crowd)
            .with_items(items)
            .with_seed(seed);
        let traces = mixed::record(&cfg).expect("record");
        let (serial_journal, serial_dump, serial_dropped) = serial_reference(&traces);
        let serial = mixed::run(&cfg).expect("serial mixed");

        for shards in shard_counts() {
            let rt = runtime(shards, 16);
            let reports = stream_traces(&rt, &traces).expect("stream");
            let run = rt.finish().expect("finish");
            prop_assert_eq!(
                run.stats.dropped, serial_dropped,
                "dropped mismatch at {} shards", shards
            );
            prop_assert_eq!(
                run.journal.dump(), serial_journal.clone(),
                "journal mismatch at {} shards", shards
            );
            let replayed = Crowd4U::replay(&run.journal).expect("replay");
            prop_assert_eq!(
                replayed.state_dump(), serial_dump.clone(),
                "state mismatch at {} shards", shards
            );
            for (got, want) in reports.iter().zip(&serial.reports) {
                assert_reports_equal(got, want, want.scheme.name());
            }
        }
    }
}

/// Satellite pin: with a **capacity-1** mailbox every second submission
/// bounces with `GateError::Full`, so the whole stream goes through the
/// handback-and-retry path — and the merged journal must still be
/// byte-identical to the serial run (a single reordering would surface
/// here as a journal or replay diff).
#[test]
fn capacity_one_mailbox_stream_replays_byte_identically_after_retries() {
    let cfg = ScenarioConfig::default()
        .with_crowd(18)
        .with_items(2)
        .with_seed(41);
    let traces = mixed::record(&cfg).expect("record");
    let (serial_journal, serial_dump, serial_dropped) = serial_reference(&traces);
    for shards in [1usize, 2] {
        let rt = runtime(shards, 1);
        stream_traces(&rt, &traces).expect("stream");
        let run = rt.finish().expect("finish");
        assert_eq!(run.stats.dropped, serial_dropped);
        assert_eq!(
            run.journal.dump(),
            serial_journal,
            "retries reordered the stream at {shards} shards"
        );
        let replayed = Crowd4U::replay(&run.journal).expect("replay");
        assert_eq!(replayed.state_dump(), serial_dump);
    }
}

/// The interleaved-deadline gotcha, pinned (PR 10 tentpole (d)): when two
/// scenarios interleave on one platform, one scenario's `ClockAdvanced`
/// must **not** sweep another scenario's recruitment deadline. The merge
/// tags each trace's clock events and project registrations with a
/// per-trace owner, so a clock only expires deadlines of projects in its
/// own domain. Without the tags (the pre-PR 10 shape, reconstructed below
/// as a negative control), scenario B's clock tick reaches over and
/// reopens scenario A's suggested collab task *before* its members
/// undertake — silently dropping their `Undertaken` events and charging A
/// a missed deadline it never had.
#[test]
fn interleaved_clocks_cannot_sweep_another_scenarios_deadline() {
    use crowd4u::core::error::{ProjectId, TaskId, WorkerId};
    use crowd4u::core::events::PlatformEvent;
    use crowd4u::crowd::profile::WorkerProfile;
    use crowd4u::forms::admin::DesiredFactors;
    use crowd4u::scenarios::stream::{Completion, StreamOp, TimedOp};
    use crowd4u::sim::time::{SimDuration, SimTime};

    const SRC: &str = "\
rel item(x: str).
open label(x: str) -> (y: str) points 1.
rel out(x: str, y: str).
out(X, Y) :- item(X), label(X, Y).
";

    fn ev(at: u64, e: PlatformEvent) -> TimedOp {
        TimedOp {
            at: SimTime(at),
            op: StreamOp::Event(e),
        }
    }
    fn worker(i: u64) -> PlatformEvent {
        PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(i), format!("w{i}")),
        }
    }
    fn project(name: &str) -> PlatformEvent {
        PlatformEvent::ProjectRegistered {
            name: name.into(),
            source: SRC.into(),
            factors: DesiredFactors {
                min_team: 2,
                max_team: 2,
                recruitment_secs: 100,
                ..Default::default()
            },
            scheme: Scheme::Simultaneous,
            owner: 0,
        }
    }
    fn dummy_report(scheme: Scheme) -> ScenarioReport {
        ScenarioReport {
            scheme,
            items_completed: 0,
            items_total: 0,
            mean_quality: 0.0,
            makespan: SimDuration::ZERO,
            answers: 0,
            teams_formed: 0,
            reassignments: 0,
            mean_team_affinity: 0.0,
            points_awarded: 0,
        }
    }
    fn trace(scheme: Scheme, ops: Vec<TimedOp>, crowd: u64) -> ScenarioTrace {
        ScenarioTrace {
            scheme,
            ops,
            crowd,
            projects: vec![ProjectId(1)],
            completion: Completion::CollabsCompleted,
            shadow: dummy_report(scheme),
        }
    }

    // Scenario A: a two-person collab team suggested at t=0 with a
    // 100-tick recruitment deadline; both members undertake at t=150
    // (their own clock never advanced — in A's domain the deadline is
    // still live).
    let task = TaskId::compose(ProjectId(1), 1);
    let a_ops = vec![
        ev(0, worker(1)),
        ev(0, worker(2)),
        ev(0, project("newsroom")),
        ev(
            0,
            PlatformEvent::CollabTaskCreated {
                project: ProjectId(1),
                description: "draft the story".into(),
            },
        ),
        ev(
            0,
            PlatformEvent::InterestExpressed {
                worker: WorkerId(1),
                task,
            },
        ),
        ev(
            0,
            PlatformEvent::InterestExpressed {
                worker: WorkerId(2),
                task,
            },
        ),
        ev(0, PlatformEvent::AssignmentRun { task }),
        ev(
            150,
            PlatformEvent::Undertaken {
                worker: WorkerId(1),
                task,
            },
        ),
        ev(
            150,
            PlatformEvent::Undertaken {
                worker: WorkerId(2),
                task,
            },
        ),
    ];
    // Scenario B: an unrelated project whose clock ticks to t=120 —
    // *past* A's deadline, *before* A's undertakes in the interleaving.
    let b_ops = vec![
        ev(0, worker(1)),
        ev(0, project("other-app")),
        ev(
            120,
            PlatformEvent::ClockAdvanced {
                to: SimTime(120),
                owner: 0,
            },
        ),
    ];
    let traces = vec![
        trace(Scheme::Simultaneous, a_ops, 2),
        trace(Scheme::Sequential, b_ops, 1),
    ];

    // Tagged merge (the fix): B's clock lives in its own domain, A's
    // deadline survives, both undertakes land — and the streamed run
    // stays byte-identical to the serial composite at every shard count.
    let (serial_journal, serial_dump, serial_dropped) = serial_reference(&traces);
    assert_eq!(serial_dropped, 0, "owner tags must isolate the deadline");
    for shards in shard_counts() {
        let rt = runtime(shards, 16);
        stream_traces(&rt, &traces).expect("stream");
        let run = rt.finish().expect("finish");
        assert_eq!(run.stats.dropped, 0, "dropped at {shards} shards");
        assert_eq!(
            run.journal.dump(),
            serial_journal,
            "journal mismatch at {shards} shards"
        );
        let replayed = Crowd4U::replay(&run.journal).expect("replay");
        assert_eq!(replayed.state_dump(), serial_dump);
        assert_eq!(
            replayed.project_counter(ProjectId(1), "deadlines_missed"),
            0
        );
    }

    // Negative control — strip the owner tags off the merged stream (the
    // pre-PR 10 shape). B's t=120 tick now sweeps A's t=100 deadline:
    // interest is withdrawn, the task reopens, both undertakes bounce.
    let merged = merge_traces(&traces);
    let untagged = MergedStream {
        ops: merged
            .ops
            .iter()
            .map(|(i, op)| {
                let op = match op {
                    StreamOp::Event(PlatformEvent::ProjectRegistered {
                        name,
                        source,
                        factors,
                        scheme,
                        ..
                    }) => StreamOp::Event(PlatformEvent::ProjectRegistered {
                        name: name.clone(),
                        source: source.clone(),
                        factors: factors.clone(),
                        scheme: *scheme,
                        owner: 0,
                    }),
                    StreamOp::Event(PlatformEvent::ClockAdvanced { to, .. }) => {
                        StreamOp::Event(PlatformEvent::ClockAdvanced { to: *to, owner: 0 })
                    }
                    other => other.clone(),
                };
                (*i, op)
            })
            .collect(),
        remaps: merged.remaps.clone(),
    };
    let mut platform = Crowd4U::new();
    let dropped = apply_stream(&mut platform, &untagged).expect("apply");
    assert_eq!(
        dropped, 2,
        "without owner tags the foreign clock must drop both undertakes"
    );
    assert_eq!(
        platform.project_counter(ProjectId(1), "deadlines_missed"),
        1
    );
}

/// Scenario project registrations are routed events now — the PR 3
/// restriction ("scenario jobs register projects directly on their shard;
/// don't mix them with routed `ProjectRegistered` events") is gone. Pin
/// both halves: the scenarios' projects span shards via broadcast
/// registration, and *after* the streams, ordinary routed traffic can
/// target a scenario's project (extra worker, extra fact, drain) on the
/// very same runtime without diverging the replay.
#[test]
fn scenario_streams_coexist_with_routed_events() {
    use crowd4u::core::error::{ProjectId, WorkerId};
    use crowd4u::core::events::PlatformEvent;
    use crowd4u::crowd::profile::WorkerProfile;

    let cfg = ScenarioConfig::default()
        .with_crowd(16)
        .with_items(1)
        .with_seed(3);
    let traces = vec![
        record_scheme(Scheme::Sequential, &cfg).unwrap(),
        record_scheme(Scheme::Hybrid, &cfg).unwrap(),
    ];
    let rt = runtime(2, 64);
    let reports = stream_traces(&rt, &traces).unwrap();
    for (report, trace) in reports.iter().zip(&traces) {
        assert_reports_equal(report, &trace.shadow, trace.scheme.name());
    }
    // The translation scenario's project streamed in first, so the remap
    // assigned it id 1 (owner shard 0) and surveillance id 2 (shard 1).
    // Routed traffic aimed at the *scenario's* project: a late worker and
    // an extra utterance, through the ordinary gate path.
    rt.submit(PlatformEvent::WorkerRegistered {
        profile: WorkerProfile::new(WorkerId(1000), "late"),
    });
    rt.submit(PlatformEvent::FactSeeded {
        project: ProjectId(1),
        pred: "utterance".into(),
        values: vec![
            crowd4u::storage::prelude::Value::Id(99),
            "late speech".into(),
        ],
    });
    rt.drain();
    let run = rt.finish().unwrap();
    assert_eq!(run.stats.dropped, 0);
    // Projects landed round-robin across both shards.
    let owners: Vec<usize> = run
        .platforms
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.project_ids().is_empty())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(owners, vec![0, 1], "projects should span both shards");
    // The drain surfaced the late utterance as a new transcribe task on
    // the scenario's project, and the whole history — scenario streams
    // plus routed tail — still replays from one journal.
    let replayed = Crowd4U::replay(&run.journal).unwrap();
    assert!(!replayed.pool.open_tasks(Some(ProjectId(1))).is_empty());
    assert!(replayed.workers.get(WorkerId(1000)).is_ok());
    // The owner shard saw the same late fact the replay derived.
    let owner = run
        .platforms
        .iter()
        .find(|p| p.project_ids().contains(&ProjectId(1)))
        .expect("owner slice");
    assert_eq!(
        owner
            .project(ProjectId(1))
            .unwrap()
            .engine
            .fact_count("utterance")
            .unwrap(),
        replayed
            .project(ProjectId(1))
            .unwrap()
            .engine
            .fact_count("utterance")
            .unwrap(),
    );
}
