//! Smoke test for the `crowd4u` facade crate: every workspace crate must be
//! reachable through its re-export, and every prelude must resolve. A broken
//! manifest edge or a renamed prelude item fails this file at compile time,
//! so tier-1 (`cargo test -q`) catches workspace-manifest regressions.

#![allow(unused_imports)]

use crowd4u::assign::prelude::*;
use crowd4u::collab::prelude::*;
use crowd4u::core::prelude::*;
use crowd4u::crowd::prelude::*;
use crowd4u::cylog::prelude::*;
use crowd4u::forms::prelude::*;
use crowd4u::runtime::prelude::*;
use crowd4u::sim::prelude::*;
use crowd4u::storage::prelude::*;

#[test]
fn facade_reexports_resolve() {
    // One load-bearing type per re-exported crate, referenced through the
    // facade path (not the prelude glob) so each edge is exercised even if
    // preludes change shape.
    let _db: crowd4u::storage::database::Database = crowd4u::storage::database::Database::new();
    let _pool: crowd4u::core::task::TaskPool = crowd4u::core::task::TaskPool::new();
    let _rng: crowd4u::sim::rng::SimRng = crowd4u::sim::rng::SimRng::seed_from(1);
    let _id: crowd4u::crowd::profile::WorkerId = crowd4u::crowd::profile::WorkerId(7);
    let _scheme: crowd4u::collab::Scheme = crowd4u::collab::Scheme::Sequential;
    let _cfg: crowd4u::scenarios::ScenarioConfig = crowd4u::scenarios::ScenarioConfig::default();
    let _constraints = crowd4u::assign::prelude::TeamConstraints::sized(2, 4);
    let _engine = crowd4u::cylog::engine::CylogEngine::from_source("rel done(x: int).").unwrap();
    let _form = crowd4u::forms::admin::constraint_form(&["translation"], &["en"]);
    let _rt_cfg = crowd4u::runtime::RuntimeConfig {
        shards: 1,
        drain_every: 0,
        mailbox_capacity: 1024,
        recovery: false,
    };
    let _gate_err: Option<crowd4u::runtime::GateError> = None;
}

#[test]
fn facade_modules_are_distinct_crates() {
    // The facade maps each alias onto a separate crate; spot-check that two
    // aliases expose types that interoperate the way the platform wires them
    // (a crowd WorkerId keys an assign Candidate).
    let id = crowd4u::crowd::profile::WorkerId(3);
    let cand = crowd4u::assign::prelude::Candidate::new(id, 0.9, 0.0);
    assert_eq!(cand.id, id);
}
