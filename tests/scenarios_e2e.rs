//! Experiment E9 (§2.5): the three demonstration scenarios end-to-end,
//! plus the cross-scheme shape claims from §1 (which scheme suits which
//! task type).

use crowd4u::collab::Scheme;
use crowd4u::core::controller::AlgorithmChoice;
use crowd4u::scenarios::{journalism, run_scheme, surveillance, translation, ScenarioConfig};

fn cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig::default()
        .with_crowd(50)
        .with_items(5)
        .with_seed(seed)
}

#[test]
fn translation_sequential_end_to_end() {
    let r = translation::run(&cfg(101)).unwrap();
    assert_eq!(r.scheme, Scheme::Sequential);
    assert!(r.items_completed > 0);
    // every published item went through transcribe + translate + review
    assert!(r.answers >= 3 * r.items_completed as u64);
    // sequential improvement: reviewed quality must beat a single pass
    assert!(r.mean_quality > 0.55, "got {r}");
    assert!(r.points_awarded > 0);
}

#[test]
fn journalism_simultaneous_end_to_end() {
    let r = journalism::run(&cfg(102)).unwrap();
    assert_eq!(r.scheme, Scheme::Simultaneous);
    assert!(r.items_completed > 0);
    assert!(r.mean_team_affinity > 0.0);
    assert!(r.teams_formed >= r.items_completed as u64);
}

#[test]
fn surveillance_hybrid_end_to_end() {
    let r = surveillance::run(&cfg(103)).unwrap();
    assert_eq!(r.scheme, Scheme::Hybrid);
    assert!(r.items_completed > 0);
    // hybrid produces the most answers per item (facts + corrections +
    // testimonials + confirmation)
    assert!(r.answers as usize >= 3 * r.items_completed);
}

#[test]
fn sequential_beats_simultaneous_on_per_item_quality() {
    // §1/§2.5: "for text translation, sequential coordination … is the
    // most effective scheme". Averaged over seeds to damp noise.
    let mut seq_q = 0.0;
    let mut sim_q = 0.0;
    let mut n = 0.0;
    for seed in [1u64, 2, 3, 4, 5] {
        let s = translation::run(&cfg(seed)).unwrap();
        let j = journalism::run(&cfg(seed)).unwrap();
        if s.items_completed > 0 && j.items_completed > 0 {
            seq_q += s.mean_quality;
            sim_q += j.mean_quality;
            n += 1.0;
        }
    }
    assert!(n >= 3.0, "not enough completed runs to compare");
    assert!(
        seq_q / n > sim_q / n,
        "sequential review passes should outscore parallel drafting: \
         seq {:.3} vs sim {:.3}",
        seq_q / n,
        sim_q / n
    );
}

#[test]
fn all_schemes_deterministic_and_algorithm_sensitive() {
    for scheme in Scheme::all() {
        let a = run_scheme(scheme, &cfg(7)).unwrap();
        let b = run_scheme(scheme, &cfg(7)).unwrap();
        assert_eq!(a.answers, b.answers, "{scheme} must be deterministic");
        assert_eq!(a.makespan, b.makespan);
    }
    // Different algorithms may pick different teams (same seed).
    let greedy = translation::run(&cfg(9).with_algorithm(AlgorithmChoice::Greedy)).unwrap();
    let local = translation::run(&cfg(9).with_algorithm(AlgorithmChoice::LocalSearch)).unwrap();
    // Local search refines greedy: its chosen team affinity is ≥ greedy's
    // (it starts from the greedy solution).
    if greedy.teams_formed > 0 && local.teams_formed > 0 {
        assert!(local.mean_team_affinity + 1e-9 >= greedy.mean_team_affinity);
    }
}

#[test]
fn larger_crowds_do_not_reduce_completion() {
    let small = surveillance::run(&cfg(11).with_crowd(20)).unwrap();
    let large = surveillance::run(&cfg(11).with_crowd(80)).unwrap();
    assert!(large.items_completed >= small.items_completed);
}
