#!/usr/bin/env bash
# CI gate for the crowd4u workspace. Run from the repo root.
#
# Mirrors what a hosted CI would run; every step must pass:
#   1. cargo fmt --check       — formatting is canonical
#   2. cargo clippy -D warnings — lint-clean across all targets
#   3. cargo build --release   — the whole workspace builds optimized
#   4. cargo test -q           — unit + property + integration + doc tests
#   5. bench smoke             — ingestion-throughput bench still runs
#   6. cargo doc --no-deps     — docs build with zero warnings
set -euo pipefail
cd "$(dirname "$0")"

step() {
    echo
    echo "==> $*"
    "$@"
}

step cargo fmt --all --check
step cargo clippy --workspace --all-targets -- -D warnings
step cargo build --release
step cargo test -q
# Bench smoke: run the ingestion-throughput bench on a tiny budget so a
# batching regression fails fast. The per-answer/10000 baseline runs one
# full pass by design (that slowness is the point of the comparison);
# skipping the shim's warmup keeps this step to roughly that single pass.
# The recorded reference numbers live in BENCH_ingest.json (regenerate
# with `cargo run --release -p crowd4u-bench --bin report -- ingest`).
echo
echo "==> bench smoke: e9_ingest_throughput (CRITERION_BUDGET_MS=50)"
CRITERION_BUDGET_MS=50 CRITERION_SKIP_WARMUP=1 \
    cargo bench -p crowd4u-bench --bench e9_ingest_throughput
# Shard-scaling smoke: the bench itself asserts that 4 shards out-ingest
# 1 shard on the mixed multi-project workload (the full-size baseline with
# the >=2x gate lives in BENCH_shard.json; regenerate with
# `cargo run --release -p crowd4u-bench --bin report -- shard`).
echo
echo "==> bench smoke: e10_shard_scaling (CRITERION_BUDGET_MS=50)"
CRITERION_BUDGET_MS=50 CRITERION_SKIP_WARMUP=1 \
    cargo bench -p crowd4u-bench --bench e10_shard_scaling
# Front-door smoke: the bench itself asserts that 4 clients through cloned
# IngestGate handles out-admit the same clients funnelled through a
# single-submitter front door by >=1.5x at 4 shards (full-size baseline in
# BENCH_gate.json; regenerate with
# `cargo run --release -p crowd4u-bench --bin report -- gate`).
echo
echo "==> bench smoke: e11_gate_throughput (CRITERION_BUDGET_MS=50)"
CRITERION_BUDGET_MS=50 CRITERION_SKIP_WARMUP=1 \
    cargo bench -p crowd4u-bench --bench e11_gate_throughput
# Scenario-streaming smoke: the bench itself asserts byte-identical
# journals (streamed == serial reference at 1 and 4 shards; shard-job
# slices == their decision shadows) plus the throughput floors vs the
# retired whole-driver shard-job model (full-size baseline in
# BENCH_scenario.json; regenerate with
# `cargo run --release -p crowd4u-bench --bin report -- scenario`).
echo
echo "==> bench smoke: e12_scenario_streaming (CRITERION_BUDGET_MS=50)"
CRITERION_BUDGET_MS=50 CRITERION_SKIP_WARMUP=1 \
    cargo bench -p crowd4u-bench --bench e12_scenario_streaming
# Worker-scale smoke: 10^5 workers + churn through the lazy affinity
# provider and the coordinator-owned worker service. The bench itself
# gates O(1) amortised registration, the 2*top_k*n affinity-state bound,
# population-independent p99 assignment latency, worker-version lockstep
# across 4 shards, and peak RSS far below the dense-matrix footprint
# (full-size 10^6 baseline in BENCH_workers.json; regenerate with
# `cargo run --release -p crowd4u-bench --bin report -- workers`).
echo
echo "==> bench smoke: e13_worker_scale (CRITERION_BUDGET_MS=50)"
CRITERION_BUDGET_MS=50 CRITERION_SKIP_WARMUP=1 \
    cargo bench -p crowd4u-bench --bench e13_worker_scale
# Telemetry-overhead smoke: the bench itself asserts that telemetry on
# and off derive identical facts, that every pipeline-stage histogram
# records, and that enabled telemetry stays within a loose 1.5x of
# disabled on this budget (the strict <=5%-enabled / ~0%-disabled gates
# run full-size in `report -- obs`; baseline in BENCH_obs.json).
echo
echo "==> bench smoke: e14_telemetry_overhead (CRITERION_BUDGET_MS=50)"
CRITERION_BUDGET_MS=50 CRITERION_SKIP_WARMUP=1 \
    cargo bench -p crowd4u-bench --bench e14_telemetry_overhead
# Observability surface: the obs baseline renders the Prometheus text
# exposition, validates it, requires all five pipeline-stage histograms
# non-empty after the workload, and enforces the overhead gates
# (rewrites BENCH_obs.json).
echo
echo "==> report -- obs (telemetry exposition + overhead gates)"
cargo run --release -p crowd4u-bench --bin report -- obs > /dev/null
# Recovery-latency smoke: the bench itself asserts the planned kill
# fired, that the chaos run derives identical facts to the clean run, and
# a loose 2x recovery-vs-workload ratio on this budget (the strict >=10x
# gate runs full-size in `report -- recovery`; baseline in
# BENCH_recovery.json).
echo
echo "==> bench smoke: e15_recovery_latency (CRITERION_BUDGET_MS=50)"
CRITERION_BUDGET_MS=50 CRITERION_SKIP_WARMUP=1 \
    cargo bench -p crowd4u-bench --bench e15_recovery_latency
# Shared-crowd smoke: the bench itself asserts the marketplace contract —
# the shared streamed run is byte-identical to the serial shared
# composite, the per-scenario split ledgers partition the platform total
# exactly, and the least-loaded proposal strictly beats the skill-only
# base pick on a star-skewed crowd (full-size baseline in
# BENCH_marketplace.json; regenerate with
# `cargo run --release -p crowd4u-bench --bin report -- marketplace`).
echo
echo "==> bench smoke: e16_marketplace (CRITERION_BUDGET_MS=50)"
CRITERION_BUDGET_MS=50 CRITERION_SKIP_WARMUP=1 \
    cargo bench -p crowd4u-bench --bench e16_marketplace
# Shared-crowd baseline: the full 1/2/4-shard sweep with the byte-identity
# and exact-split gates plus the proposal comparison (rewrites
# BENCH_marketplace.json).
echo
echo "==> report -- marketplace (shared-crowd equivalence + split gates)"
cargo run --release -p crowd4u-bench --bin report -- marketplace > /dev/null
# Exercise the parallel path on every CI run: the integration suite again,
# with the runtime pinned to 4 shards (shard_equivalence,
# affinity_provider — the provider-parity proptest — and
# scenario_streaming pick the value up via RUNTIME_SHARDS and add it to
# their shard-count sweeps; recovery_equivalence adds 4 shards to its
# no-fault / fault+recover / fault+migrate differential sweep).
echo
echo "==> integration tests with RUNTIME_SHARDS=4"
RUNTIME_SHARDS=4 cargo test -q -p crowd4u --tests
# Deterministic chaos replay: rerun the crash-recovery differential
# proptest under a pinned seed so the exact crash schedules (FaultPlan
# kill points derived from PROPTEST_SEED) are reproduced byte-for-byte on
# every CI run — a regression here replays identically on a dev box with
# the same seed.
echo
echo "==> chaos replay: recovery_equivalence with PROPTEST_SEED=1803"
RUNTIME_SHARDS=4 PROPTEST_SEED=1803 \
    cargo test -q -p crowd4u --test recovery_equivalence
# Shared-crowd replay: rerun the marketplace differential proptest (three
# scenarios, one population, chaos leg included) under a pinned seed so
# its crash schedules and generated configs reproduce byte-for-byte.
echo
echo "==> shared-crowd replay: shared_crowd with PROPTEST_SEED=1016"
RUNTIME_SHARDS=4 PROPTEST_SEED=1016 \
    cargo test -q -p crowd4u --test shared_crowd
# Docs must be warning-free, not just successful.
echo
echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo
echo "CI green."
