#!/usr/bin/env bash
# CI gate for the crowd4u workspace. Run from the repo root.
#
# Mirrors what a hosted CI would run; every step must pass:
#   1. cargo fmt --check       — formatting is canonical
#   2. cargo clippy -D warnings — lint-clean across all targets
#   3. cargo build --release   — the whole workspace builds optimized
#   4. cargo test -q           — unit + property + integration + doc tests
#   5. cargo doc --no-deps     — docs build with zero warnings
set -euo pipefail
cd "$(dirname "$0")"

step() {
    echo
    echo "==> $*"
    "$@"
}

step cargo fmt --all --check
step cargo clippy --workspace --all-targets -- -D warnings
step cargo build --release
step cargo test -q
# Docs must be warning-free, not just successful.
echo
echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo
echo "CI green."
