//! Cross-scenario assignment over a shared crowd — the marketplace policy.
//!
//! When one worker population serves several applications on the same
//! runtime (PR 10's shared-crowd mode), each application's local
//! assignment run only sees its own project's interested workers: a
//! worker already suggested onto two teams elsewhere looks exactly as
//! available as an idle one. This module closes that gap *in front of*
//! the event stream. It snapshots the authoritative cross-application
//! state — worker profiles and affinity history from the coordinator
//! (which owns the worker registry), active team memberships summed
//! across every owner shard — and proposes a team through
//! [`crowd4u_assign::load::form_least_loaded`], which prefers the
//! feasible team whose busiest member is least busy.
//!
//! The policy deliberately does **not** run inside the shards' apply
//! path: an owner shard sees only its own projects' tasks, so a
//! load-aware decision taken during event application would read
//! different loads at different shard counts and break the
//! byte-identical-journal contract. A front end calls [`propose_team`],
//! then submits the resulting interest/assignment events like any other
//! requester action — the journal records only the outcome, never the
//! load table that motivated it.

use crate::router::ShardedRuntime;
use crowd4u_assign::load::form_least_loaded;
use crowd4u_assign::types::{Candidate, Team, TeamConstraints, TeamFormation};
use crowd4u_core::controller::candidates_from_profiles;
use crowd4u_core::error::WorkerId;
use crowd4u_crowd::affinity::AffinityMatrix;
use std::collections::BTreeMap;

/// One consistent cross-application view of the shared crowd: who exists,
/// how well they work together, and how busy each of them already is.
#[derive(Debug, Clone)]
pub struct MarketSnapshot {
    /// Optimiser candidates for every registered worker, built from the
    /// coordinator's authoritative profiles (skill dimension optional).
    pub candidates: Vec<Candidate>,
    /// Pairwise affinity over those candidates, from the shared
    /// collaboration history.
    pub affinity: AffinityMatrix,
    /// Active suggested/in-progress team memberships per worker, summed
    /// across all applications. Absent workers are idle.
    pub loads: BTreeMap<WorkerId, u64>,
}

/// Snapshot the marketplace state off the runtime. Loads come from every
/// owner shard ([`ShardedRuntime::assignment_loads`]); candidates and
/// affinity come from the coordinator, which owns the worker registry.
/// The two reads ride the same mailboxes as the event stream, so each
/// reflects all events submitted before the call.
pub fn market_snapshot(rt: &ShardedRuntime, skill: Option<String>) -> MarketSnapshot {
    let loads = rt.assignment_loads();
    let (candidates, affinity) = rt
        .submit_job(0, move |p| {
            let profiles: Vec<_> = p.workers.profiles().collect();
            let candidates = candidates_from_profiles(&profiles, skill.as_deref());
            let ids: Vec<WorkerId> = candidates.iter().map(|c| c.id).collect();
            let affinity = p.workers.candidate_affinity(&ids);
            (candidates, affinity)
        })
        .recv()
        .expect("coordinator alive");
    MarketSnapshot {
        candidates,
        affinity,
        loads,
    }
}

/// Propose a team from the shared crowd, weighing each worker's total
/// load across **all** applications: snapshot the marketplace, then run
/// the base algorithm least-loaded-first. Returns `None` when no feasible
/// team exists even over the full population.
pub fn propose_team(
    rt: &ShardedRuntime,
    skill: Option<String>,
    base: &dyn TeamFormation,
    constraints: &TeamConstraints,
) -> Option<Team> {
    let snap = market_snapshot(rt, skill);
    form_least_loaded(
        base,
        &snap.candidates,
        &snap.affinity,
        constraints,
        &snap.loads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RuntimeConfig;
    use crowd4u_assign::greedy::LocalSearch;
    use crowd4u_collab::Scheme;
    use crowd4u_core::error::{ProjectId, TaskId};
    use crowd4u_core::events::PlatformEvent;
    use crowd4u_crowd::profile::WorkerProfile;
    use crowd4u_forms::admin::DesiredFactors;

    const SRC: &str = "\
rel item(x: str).
open label(x: str) -> (y: str) points 1.
rel out(x: str, y: str).
out(X, Y) :- item(X), label(X, Y).
";

    fn runtime(shards: usize) -> ShardedRuntime {
        ShardedRuntime::new(RuntimeConfig {
            shards,
            drain_every: 0,
            mailbox_capacity: 1024,
            recovery: false,
        })
    }

    fn worker(i: u64) -> PlatformEvent {
        PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(i), format!("w{i}")),
        }
    }

    fn project(name: &str) -> PlatformEvent {
        PlatformEvent::ProjectRegistered {
            name: name.into(),
            source: SRC.into(),
            factors: DesiredFactors {
                min_team: 2,
                max_team: 3,
                recruitment_secs: 600,
                ..Default::default()
            },
            scheme: Scheme::Simultaneous,
            owner: 0,
        }
    }

    #[test]
    fn snapshot_reads_the_whole_registry_with_no_loads_when_idle() {
        let rt = runtime(2);
        for w in 1..=5 {
            rt.submit(worker(w));
        }
        rt.drain();
        let snap = market_snapshot(&rt, None);
        assert_eq!(snap.candidates.len(), 5);
        assert!(snap.loads.is_empty());
        let team = propose_team(
            &rt,
            None,
            &LocalSearch::default(),
            &TeamConstraints::sized(2, 3),
        );
        assert!(team.is_some(), "idle full crowd must be feasible");
        rt.finish().unwrap();
    }

    #[test]
    fn busy_workers_are_passed_over_across_applications() {
        // Workers 1–3 get suggested onto a collab team in project 1;
        // a marketplace proposal for the *next* task must prefer the
        // idle workers 4–6 even though project 1's assignment never
        // saw them.
        let rt = runtime(2);
        for w in 1..=6 {
            rt.submit(worker(w));
        }
        rt.submit(project("app-a"));
        rt.drain();
        rt.submit(PlatformEvent::CollabTaskCreated {
            project: ProjectId(1),
            description: "first team".into(),
        });
        let task = TaskId::compose(ProjectId(1), 1);
        for w in 1..=3 {
            rt.submit(PlatformEvent::InterestExpressed {
                worker: WorkerId(w),
                task,
            });
        }
        rt.submit(PlatformEvent::AssignmentRun { task });
        rt.drain();

        let snap = market_snapshot(&rt, None);
        assert!(
            !snap.loads.is_empty(),
            "assignment should have suggested a team: {:?}",
            snap.loads
        );
        let team = propose_team(
            &rt,
            None,
            &LocalSearch::default(),
            &TeamConstraints::sized(2, 3),
        )
        .expect("six registered workers can field a team");
        for w in &team.members {
            assert_eq!(
                snap.loads.get(w),
                None,
                "busy worker {w} picked while idle workers were available"
            );
        }
        rt.finish().unwrap();
    }
}
