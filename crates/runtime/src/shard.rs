//! The shard worker: one thread owning one `Crowd4U` slice, applying
//! routed events from its gate mailbox and ledgering seq-tagged journal
//! entries for the runtime's merged journal.
//!
//! A shard's mailbox is one of the [`IngestGate`](crate::gate::IngestGate)'s
//! bounded per-shard queues; the gate guarantees the mailbox is already in
//! global sequence order, so the shard just applies front to back.
//!
//! Since PR 9 the thread body is a **supervisor**: the apply loop runs
//! under `catch_unwind`, and when a panic escapes it (an injected
//! [`FaultPlan`] kill, a job closure blowing
//! up) a recovery-enabled runtime holds the mailbox, rebuilds the slice by
//! replaying the shard's runtime-ledger slice, and
//! resumes consuming exactly where the dead incarnation stopped. With
//! recovery disabled the panic propagates and the mailbox is abandoned —
//! the pre-PR 9 behaviour, scoped to the dead shard.

use crate::gate::GateCore;
use crate::recovery::{owned_by, replay_slice, snapshot_allowed, FaultPlan, LedgerEntry};
use crowd4u_core::error::ProjectId;
use crowd4u_core::events::{EventScope, PlatformEvent};
use crowd4u_core::platform::Crowd4U;
use crowd4u_storage::journal::JournalEntry;
use crowd4u_telemetry::{stage, TelemetryHandle};
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::Sender;
use std::sync::Arc;

/// Sort key of a recorded entry: (global sequence number, sub-position).
/// Sub-position 0 is the event itself; auto-drain `sync` entries triggered
/// by the event at `seq` record at sub-positions 1, 2, … so they replay
/// immediately after their cause.
pub type SeqKey = (u64, u32);

/// Messages a shard consumes, in mailbox order. Data events
/// ([`ToShard::Apply`]) are subject to the gate's capacity bound; the
/// other variants are runtime control messages and are capacity-exempt.
pub(crate) enum ToShard {
    /// Apply one routed event. `record` is true on exactly one shard per
    /// event (the owner; the coordinator for broadcasts), so the merged
    /// journal and the applied/dropped statistics count each event once.
    Apply {
        seq: u64,
        event: PlatformEvent,
        record: bool,
    },
    /// Coordinated drain barrier: sync every dirty project. The coordinator
    /// records the single `drain` entry at `seq`.
    Drain { seq: u64, record: bool },
    /// Run an arbitrary job against the shard's platform slice (queries,
    /// scenario runs). Job effects are not part of the merged journal —
    /// nor of the recovery ledger, so mutations made by a job (other than
    /// the runtime's own migration jobs, which are re-derived from the
    /// routing table) do not survive a shard restart.
    /// `bound` is the worker-service log length captured at enqueue time
    /// (under the mailbox lock); replicas install worker deltas up to it
    /// before running the job, so the job sees every worker the old
    /// broadcast would have delivered ahead of it.
    Job {
        bound: usize,
        run: Box<dyn FnOnce(&mut Crowd4U) + Send>,
    },
    /// Synchronisation point: reply with a statistics snapshot once every
    /// prior message has been processed.
    Flush(Sender<ShardStats>),
    /// Hand everything back and stop. `bound` as for [`ToShard::Job`]; the
    /// coordinator's mailbox closes first, so a finish bound always covers
    /// the whole log and every replica hands back the full worker registry.
    Finish {
        bound: usize,
        reply: Sender<ShardReport>,
    },
}

/// Counters a shard maintains while applying events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Events applied (and recorded) successfully.
    pub applied: u64,
    /// Events rejected by the platform — stale worker actions, unknown
    /// ids — dropped and counted, never journaled.
    pub dropped: u64,
    /// Auto-drains triggered by the mailbox batching policy.
    pub auto_drains: u64,
}

impl ShardStats {
    pub(crate) fn absorb(&mut self, other: &ShardStats) {
        self.applied += other.applied;
        self.dropped += other.dropped;
        self.auto_drains += other.auto_drains;
    }
}

/// What a shard returns on [`ToShard::Finish`]. Statistics and the
/// recorded journal stream live in the runtime-owned ledger (they must
/// survive shard deaths); only the platform slice travels back here.
pub(crate) struct ShardReport {
    pub platform: Crowd4U,
}

/// The one data event a shard incarnation may be holding *outside* the
/// mailbox and *outside* the ledger: popped by `recv`, not yet applied
/// (or applied but not yet ledgered). The supervisor owns the slot, so a
/// panic inside `apply_event` no longer loses the event — the next
/// incarnation redoes it once before resuming the mailbox. Injected
/// boundary faults fire *after* ledgering (the slot is already clear);
/// only a genuine mid-apply crash — or [`FaultPlan::kill_mid_apply`],
/// which simulates one — leaves the slot occupied.
pub(crate) struct InFlight {
    seq: u64,
    event: PlatformEvent,
    record: bool,
    /// Set once a recovery has redone this event: a second panic on the
    /// same event means the event itself is poison, so the incarnation
    /// after that drops it (counted, like any rejected event) instead of
    /// crash-looping.
    retried: bool,
}

/// Everything a shard thread needs to run — and to *re-run*: the base
/// builder and fault plan stay with the supervisor across incarnations.
pub(crate) struct ShardCtx {
    pub gate: Arc<GateCore>,
    pub shard: usize,
    pub drain_every: usize,
    pub telemetry: TelemetryHandle,
    /// Builds a fresh, configured platform slice (the same builder the
    /// runtime constructor used) — the replay base for recovery.
    pub base: Arc<dyn Fn(usize) -> Crowd4U + Send + Sync>,
    /// Recover from panics by slice replay instead of propagating them.
    pub recovery: bool,
    pub faults: Arc<FaultPlan>,
}

/// Abandons the shard's mailbox when the thread exits — crucially also by
/// panic (a [`ToShard::Job`] closure or a drain `expect` unwinding past
/// the supervisor). Without it a dead shard leaves its mailbox open:
/// producers blocked on a full queue would park forever, and the reply
/// channels behind `finish()`/`barrier()` would never close. On a normal
/// exit the mailbox is already closed and drained, so abandoning it is a
/// no-op.
struct MailboxGuard<'a> {
    gate: &'a GateCore,
    shard: usize,
}

impl Drop for MailboxGuard<'_> {
    fn drop(&mut self) {
        self.gate.abandon(self.shard);
    }
}

/// The shard thread body: a supervisor around [`shard_loop`]. A normal
/// return (mailbox closed, or [`ToShard::Finish`]) ends the thread; a
/// panic either propagates (recovery off — the mailbox guard abandons the
/// queue, scoping the failure) or triggers an in-place restart: hold the
/// mailbox, replay the ledger slice onto a fresh base, re-attach to the
/// worker service, release, resume consuming.
pub(crate) fn shard_main(ctx: ShardCtx) {
    let _guard = MailboxGuard {
        gate: &ctx.gate,
        shard: ctx.shard,
    };
    let recoveries = ctx.telemetry.counter(stage::RECOVERIES);
    let recovery_ns = ctx.telemetry.histogram(stage::RECOVERY_SPAN);
    let mut platform = Some((ctx.base)(ctx.shard));
    let mut cursor = 0usize; // worker-service log position (replicas only)
    let mut in_flight: Option<InFlight> = None;
    loop {
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            shard_loop(&ctx, &mut platform, &mut cursor, &mut in_flight)
        }));
        match outcome {
            Ok(()) => return,
            Err(payload) => {
                if !ctx.recovery {
                    // The mailbox guard abandons the queue as this
                    // propagates; `finish()` resurfaces the panic.
                    std::panic::resume_unwind(payload);
                }
                // The half-applied incarnation is gone. Rebuild the slice
                // the ledger describes; if the panic struck *inside* an
                // apply (mid-apply crash), the popped-but-unledgered event
                // survives in `in_flight` and the fresh incarnation redoes
                // it first — unless a redo already failed once, in which
                // case the event is poison and gets dropped.
                if let Some(f) = in_flight.as_mut() {
                    if f.retried {
                        if f.record {
                            ctx.gate.ledger().slot(ctx.shard).stats.dropped += 1;
                        }
                        in_flight = None;
                    } else {
                        f.retried = true;
                    }
                }
                ctx.gate.begin_recovery(ctx.shard);
                let span = recovery_ns.stamp();
                let (rebuilt, new_cursor) = rebuild(&ctx);
                platform = Some(rebuilt);
                cursor = new_cursor;
                recoveries.incr();
                recovery_ns.since(span);
                ctx.gate.end_recovery(ctx.shard);
            }
        }
    }
}

/// Rebuild a dead shard's platform from the runtime-owned ledger: its own
/// slot filtered to what it currently owns, plus (after migrations)
/// recorded entries for migrated-in projects from the previous owners'
/// slots, replayed against the worker feed capped at the dead
/// incarnation's last reported service cursor.
fn rebuild(ctx: &ShardCtx) -> (Crowd4U, usize) {
    let gate = &ctx.gate;
    let shard = ctx.shard;
    let ledger = gate.ledger();
    let owner = |p: ProjectId| gate.owner_of(p);
    let mut entries: Vec<LedgerEntry> = ledger
        .entries(shard)
        .into_iter()
        .filter(|e| owned_by(e, shard, &owner))
        .collect();
    if gate.has_overrides() {
        // Projects migrated in: their pre-migration history was applied
        // (and recorded) by previous owners, so it lives in other slots.
        for other in 0..ledger.shards() {
            if other == shard {
                continue;
            }
            entries.extend(ledger.entries(other).into_iter().filter(|e| {
                e.recorded
                    && matches!(
                        PlatformEvent::decode(&e.entry).map(|ev| ev.scope()),
                        Ok(EventScope::Project(p)) if owner(p) == shard
                    )
            }));
        }
        entries.sort_by_key(|e| e.key);
    }
    let service = gate.worker_service();
    let base = (ctx.base)(shard);
    if shard == 0 {
        // The coordinator's worker events are ledger entries of its own
        // slot; there is no service feed to re-interleave.
        replay_slice(base, &entries, None, snapshot_allowed())
    } else {
        let feed = service.recovery_feed();
        let upto = service.replica_cursor(shard);
        let (platform, cursor) =
            replay_slice(base, &entries, Some((&feed, upto)), snapshot_allowed());
        // Re-register the cursor so service truncation stays safe: the
        // dead incarnation's reports are stale the moment we replace it.
        service.reattach(shard, cursor);
        (platform, cursor)
    }
}

/// Drain the gate mailbox until it closes (or a [`ToShard::Finish`]
/// arrives), applying each message against `platform`.
///
/// Non-coordinator shards (shard != 0) interleave worker-service pulls
/// with their mailbox: before a seq-stamped message at `S` they install
/// every worker delta with seq < `S`, and before a seq-less control
/// message they install up to its captured log bound. The coordinator
/// never pulls — worker events arrive in its own mailbox.
///
/// `platform` is `Option` only so [`ToShard::Finish`] can move the slice
/// out through the reply channel; it is `Some` on entry and on every
/// panic edge (the supervisor replaces it wholesale on recovery).
fn shard_loop(
    ctx: &ShardCtx,
    platform: &mut Option<Crowd4U>,
    cursor: &mut usize,
    in_flight: &mut Option<InFlight>,
) {
    let gate = &ctx.gate;
    let shard = ctx.shard;
    let service = Arc::clone(gate.worker_service());
    // Pre-fetched once per incarnation: recording an observation is a
    // single atomic add, never a registry lookup.
    let apply_hist = ctx.telemetry.histogram(stage::SHARD_APPLY);

    // Redo prologue: the previous incarnation died *inside* an apply, so
    // the rebuild above could not replay this event — it was popped from
    // the mailbox but never ledgered. Redo it before touching the mailbox;
    // injection is skipped here, so a mid-apply kill fires at most once.
    if in_flight.is_some() {
        let (seq, event, record) = {
            let f = in_flight.as_ref().expect("checked is_some");
            (f.seq, f.event.clone(), f.record)
        };
        let p = platform.as_mut().expect("platform present while looping");
        apply_one(
            ctx,
            p,
            &service,
            cursor,
            seq,
            event,
            record,
            in_flight,
            &apply_hist,
            false,
        );
    }

    while let Some(msg) = gate.recv(shard) {
        let p = platform.as_mut().expect("platform present while looping");
        match msg {
            ToShard::Apply { seq, event, record } => {
                // Park the event in the supervisor-owned slot for the
                // duration of the apply: a mid-apply panic must not lose
                // it (satellite of PR 10 — see `InFlight`).
                *in_flight = Some(InFlight {
                    seq,
                    event: event.clone(),
                    record,
                    retried: false,
                });
                apply_one(
                    ctx,
                    p,
                    &service,
                    cursor,
                    seq,
                    event,
                    record,
                    in_flight,
                    &apply_hist,
                    true,
                );
            }
            ToShard::Drain { seq, record } => {
                if shard != 0 {
                    service.sync_below_seq(shard, cursor, seq, p);
                }
                p.drain_events()
                    .expect("drain failed on shard — dirty project unsyncable");
                let mut slot = gate.ledger().slot(shard);
                slot.since_drain = 0;
                // Ledgered on every shard (replays must re-run the drain);
                // recorded in the merged journal by the coordinator only.
                slot.entries.push(LedgerEntry {
                    key: (seq, 0),
                    entry: JournalEntry::new(crowd4u_core::events::DRAIN_KIND, vec![]),
                    recorded: record,
                });
            }
            ToShard::Job { bound, run } => {
                if shard != 0 {
                    service.sync_to_index(shard, cursor, bound, p);
                }
                run(p)
            }
            ToShard::Flush(reply) => {
                let _ = reply.send(gate.ledger().stats(shard));
            }
            ToShard::Finish { bound, reply } => {
                let mut p = platform.take().expect("platform present at finish");
                if shard != 0 {
                    service.sync_to_index(shard, cursor, bound, &mut p);
                }
                let _ = reply.send(ShardReport { platform: p });
                return;
            }
        }
    }
}

/// Apply one routed data event against the slice — the body of
/// [`ToShard::Apply`], shared with the post-recovery redo. Syncs the
/// worker feed below `seq`, applies, ledgers on success (dropping +
/// counting on platform rejection), runs the auto-drain policy, and
/// clears the `in_flight` slot the moment the outcome is durable in the
/// ledger. `inject` is true on the normal mailbox path only: the redo
/// path skips fault injection so an injected mid-apply kill cannot
/// re-fire on its own retry.
#[allow(clippy::too_many_arguments)]
fn apply_one(
    ctx: &ShardCtx,
    p: &mut Crowd4U,
    service: &crate::workers::WorkerService,
    cursor: &mut usize,
    seq: u64,
    event: PlatformEvent,
    record: bool,
    in_flight: &mut Option<InFlight>,
    apply_hist: &crowd4u_telemetry::Histogram,
    inject: bool,
) {
    let gate = &ctx.gate;
    let shard = ctx.shard;
    if shard != 0 {
        service.sync_below_seq(shard, cursor, seq, p);
    }
    if inject && record {
        let next = gate.ledger().slot(shard).stats.applied + 1;
        if ctx.faults.fires_mid(shard, next) {
            panic!("injected fault: shard {shard} killed inside apply #{next}");
        }
    }
    // Encoded up front (apply consumes the event): every Ok
    // apply is ledgered — broadcast copies included — because
    // the ledger slice is what a recovery replays.
    let entry = event.encode();
    let applied = {
        let _span = apply_hist.span();
        p.apply_event(event)
    };
    match applied {
        Ok(()) => {
            let mut slot = gate.ledger().slot(shard);
            slot.entries.push(LedgerEntry {
                key: (seq, 0),
                entry,
                recorded: record,
            });
            let fired = if record {
                slot.stats.applied += 1;
                inject && ctx.faults.fires(shard, slot.stats.applied)
            } else {
                false
            };
            slot.since_drain += 1;
            if ctx.drain_every > 0 && slot.since_drain >= ctx.drain_every {
                slot.since_drain = 0;
                auto_drain(p, &mut slot, seq);
            }
            let applied_so_far = slot.stats.applied;
            drop(slot);
            // Ledgered: from here on a crash re-derives this event from
            // the ledger, so the in-flight copy is obsolete — and must be
            // cleared *before* a boundary fault fires, or the recovery
            // would redo an already-ledgered event.
            *in_flight = None;
            if fired {
                panic!(
                    "injected fault: shard {shard} killed after \
                     {applied_so_far} applied events"
                );
            }
        }
        Err(_) => {
            // Per-event error tolerance, mirroring `apply_batch`
            // and the scenario driver: a stale or invalid worker
            // action is dropped and counted, not fatal — and
            // never ledgered, so replays skip it identically.
            if record {
                gate.ledger().slot(shard).stats.dropped += 1;
            }
            *in_flight = None;
        }
    }
}

/// Streaming-mode drain: sync each dirty project individually, journaling
/// one `sync` entry per project at the triggering sequence number so the
/// merged journal replays the sync at exactly this point — only for this
/// shard's projects, unlike a global `drain` entry.
fn auto_drain(platform: &mut Crowd4U, slot: &mut crate::recovery::LedgerSlot, seq: u64) {
    let dirty = platform.dirty_projects();
    if dirty.is_empty() {
        return;
    }
    slot.stats.auto_drains += 1;
    for (i, project) in dirty.into_iter().enumerate() {
        platform
            .sync_tasks(project)
            .expect("auto-drain sync failed on shard");
        let entry = PlatformEvent::TasksSynced { project }.encode();
        slot.entries.push(LedgerEntry {
            key: (seq, 1 + i as u32),
            entry,
            recorded: true,
        });
    }
}
