//! The shard worker: one thread owning one `Crowd4U` slice, applying
//! routed events from its gate mailbox and recording seq-tagged journal
//! entries for the runtime's merged journal.
//!
//! A shard's mailbox is one of the [`IngestGate`](crate::gate::IngestGate)'s
//! bounded per-shard queues; the gate guarantees the mailbox is already in
//! global sequence order, so the shard just applies front to back.

use crate::gate::GateCore;
use crowd4u_core::events::PlatformEvent;
use crowd4u_core::platform::Crowd4U;
use crowd4u_storage::journal::JournalEntry;
use crowd4u_telemetry::{stage, TelemetryHandle};
use std::sync::mpsc::Sender;
use std::sync::Arc;

/// Sort key of a recorded entry: (global sequence number, sub-position).
/// Sub-position 0 is the event itself; auto-drain `sync` entries triggered
/// by the event at `seq` record at sub-positions 1, 2, … so they replay
/// immediately after their cause.
pub type SeqKey = (u64, u32);

/// Messages a shard consumes, in mailbox order. Data events
/// ([`ToShard::Apply`]) are subject to the gate's capacity bound; the
/// other variants are runtime control messages and are capacity-exempt.
pub(crate) enum ToShard {
    /// Apply one routed event. `record` is true on exactly one shard per
    /// event (the owner; the coordinator for broadcasts), so the merged
    /// journal and the applied/dropped statistics count each event once.
    Apply {
        seq: u64,
        event: PlatformEvent,
        record: bool,
    },
    /// Coordinated drain barrier: sync every dirty project. The coordinator
    /// records the single `drain` entry at `seq`.
    Drain { seq: u64, record: bool },
    /// Run an arbitrary job against the shard's platform slice (queries,
    /// scenario runs). Job effects are not part of the merged journal.
    /// `bound` is the worker-service log length captured at enqueue time
    /// (under the mailbox lock); replicas install worker deltas up to it
    /// before running the job, so the job sees every worker the old
    /// broadcast would have delivered ahead of it.
    Job {
        bound: usize,
        run: Box<dyn FnOnce(&mut Crowd4U) + Send>,
    },
    /// Synchronisation point: reply with a statistics snapshot once every
    /// prior message has been processed.
    Flush(Sender<ShardStats>),
    /// Hand everything back and stop. `bound` as for [`ToShard::Job`]; the
    /// coordinator's mailbox closes first, so a finish bound always covers
    /// the whole log and every replica hands back the full worker registry.
    Finish {
        bound: usize,
        reply: Sender<ShardReport>,
    },
}

/// Counters a shard maintains while applying events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Events applied (and recorded) successfully.
    pub applied: u64,
    /// Events rejected by the platform — stale worker actions, unknown
    /// ids — dropped and counted, never journaled.
    pub dropped: u64,
    /// Auto-drains triggered by the mailbox batching policy.
    pub auto_drains: u64,
}

impl ShardStats {
    pub(crate) fn absorb(&mut self, other: &ShardStats) {
        self.applied += other.applied;
        self.dropped += other.dropped;
        self.auto_drains += other.auto_drains;
    }
}

/// What a shard returns on [`ToShard::Finish`].
pub(crate) struct ShardReport {
    pub stats: ShardStats,
    pub recorded: Vec<(SeqKey, JournalEntry)>,
    pub platform: Crowd4U,
}

/// Abandons the shard's mailbox when the thread exits — crucially also by
/// panic (a [`ToShard::Job`] closure or a drain `expect` unwinding).
/// Without it a dead shard leaves its mailbox open: producers blocked on a
/// full queue would park forever, and the reply channels behind
/// `finish()`/`barrier()` would never close. On a normal exit the mailbox
/// is already closed and drained, so abandoning it is a no-op.
struct MailboxGuard<'a> {
    gate: &'a GateCore,
    shard: usize,
}

impl Drop for MailboxGuard<'_> {
    fn drop(&mut self) {
        self.gate.abandon(self.shard);
    }
}

/// The shard thread body: drain the gate mailbox until it closes (or a
/// [`ToShard::Finish`] arrives).
///
/// Non-coordinator shards (shard != 0) interleave worker-service pulls
/// with their mailbox: before a seq-stamped message at `S` they install
/// every worker delta with seq < `S`, and before a seq-less control
/// message they install up to its captured log bound. The coordinator
/// never pulls — worker events arrive in its own mailbox.
pub(crate) fn shard_main(
    gate: Arc<GateCore>,
    shard: usize,
    mut platform: Crowd4U,
    drain_every: usize,
    telemetry: TelemetryHandle,
) {
    let _guard = MailboxGuard { gate: &gate, shard };
    let service = Arc::clone(gate.worker_service());
    let mut cursor = 0usize; // worker-service log position (replicas only)
    let mut stats = ShardStats::default();
    let mut recorded: Vec<(SeqKey, JournalEntry)> = Vec::new();
    let mut since_drain = 0usize;
    // Pre-fetched once per shard thread: recording an observation is a
    // single atomic add, never a registry lookup.
    let apply_hist = telemetry.histogram(stage::SHARD_APPLY);

    while let Some(msg) = gate.recv(shard) {
        match msg {
            ToShard::Apply { seq, event, record } => {
                if shard != 0 {
                    service.sync_below_seq(shard, &mut cursor, seq, &mut platform);
                }
                let entry = record.then(|| event.encode());
                let applied = {
                    let _span = apply_hist.span();
                    platform.apply_event(event)
                };
                match applied {
                    Ok(()) => {
                        if let Some(entry) = entry {
                            recorded.push(((seq, 0), entry));
                            stats.applied += 1;
                        }
                        since_drain += 1;
                        if drain_every > 0 && since_drain >= drain_every {
                            since_drain = 0;
                            auto_drain(&mut platform, &mut recorded, seq, &mut stats);
                        }
                    }
                    Err(_) => {
                        // Per-event error tolerance, mirroring `apply_batch`
                        // and the scenario driver: a stale or invalid worker
                        // action is dropped and counted, not fatal.
                        if record {
                            stats.dropped += 1;
                        }
                    }
                }
            }
            ToShard::Drain { seq, record } => {
                if shard != 0 {
                    service.sync_below_seq(shard, &mut cursor, seq, &mut platform);
                }
                since_drain = 0;
                platform
                    .drain_events()
                    .expect("drain failed on shard — dirty project unsyncable");
                if record {
                    recorded.push((
                        (seq, 0),
                        JournalEntry::new(crowd4u_core::events::DRAIN_KIND, vec![]),
                    ));
                }
            }
            ToShard::Job { bound, run } => {
                if shard != 0 {
                    service.sync_to_index(shard, &mut cursor, bound, &mut platform);
                }
                run(&mut platform)
            }
            ToShard::Flush(reply) => {
                let _ = reply.send(stats);
            }
            ToShard::Finish { bound, reply } => {
                if shard != 0 {
                    service.sync_to_index(shard, &mut cursor, bound, &mut platform);
                }
                let _ = reply.send(ShardReport {
                    stats,
                    recorded,
                    platform,
                });
                return;
            }
        }
    }
}

/// Streaming-mode drain: sync each dirty project individually, journaling
/// one `sync` entry per project at the triggering sequence number so the
/// merged journal replays the sync at exactly this point — only for this
/// shard's projects, unlike a global `drain` entry.
fn auto_drain(
    platform: &mut Crowd4U,
    recorded: &mut Vec<(SeqKey, JournalEntry)>,
    seq: u64,
    stats: &mut ShardStats,
) {
    let dirty = platform.dirty_projects();
    if dirty.is_empty() {
        return;
    }
    stats.auto_drains += 1;
    for (i, project) in dirty.into_iter().enumerate() {
        platform
            .sync_tasks(project)
            .expect("auto-drain sync failed on shard");
        let entry = PlatformEvent::TasksSynced { project }.encode();
        recorded.push(((seq, 1 + i as u32), entry));
    }
}
