//! The §2.5 demo scenarios on the sharded runtime.
//!
//! Each job wraps the target shard's resident platform slice in a
//! [`Driver`] (`Driver::on_platform`), runs the scenario there, and puts
//! the slice back — so journalism / surveillance / translation execute
//! wherever their project lives, in parallel across shards. Scenario jobs
//! are deterministic (seeded) and scenario-scoped in their accounting, so
//! the reports are identical to single-threaded `run_scheme` runs.
//!
//! Scenario jobs register projects directly on their shard (not through the
//! router), so don't mix them with routed `ProjectRegistered` events on the
//! same runtime instance — the per-shard project-id sequences would
//! diverge.

use crate::router::ShardedRuntime;
use crowd4u_collab::Scheme;
use crowd4u_core::error::PlatformError;
use crowd4u_scenarios::{run_scheme_on, Driver, ScenarioConfig, ScenarioReport};

/// Dispatch one scenario run to a shard (round-robin by job index) and
/// return a receiver for its report.
fn dispatch(
    rt: &ShardedRuntime,
    shard: usize,
    scheme: Scheme,
    config: ScenarioConfig,
) -> std::sync::mpsc::Receiver<Result<ScenarioReport, PlatformError>> {
    rt.submit_job(shard, move |platform| {
        let base = std::mem::take(platform);
        let mut driver = Driver::on_platform(base, &config);
        let report = run_scheme_on(&mut driver, scheme, &config);
        *platform = driver.into_platform();
        report
    })
}

/// Run a batch of scenario jobs across the shards, round-robin; results
/// come back in submission order. Jobs on different shards run in
/// parallel, jobs on the same shard in sequence.
pub fn run_scenarios(
    rt: &ShardedRuntime,
    jobs: &[(Scheme, ScenarioConfig)],
) -> Result<Vec<ScenarioReport>, PlatformError> {
    let receivers: Vec<_> = jobs
        .iter()
        .enumerate()
        .map(|(i, (scheme, config))| dispatch(rt, i % rt.shards(), *scheme, config.clone()))
        .collect();
    receivers
        .into_iter()
        .map(|rx| rx.recv().expect("shard thread alive"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RuntimeConfig;
    use crowd4u_scenarios::run_scheme;

    #[test]
    fn sharded_scenario_reports_match_single_threaded_runs() {
        let rt = ShardedRuntime::new(RuntimeConfig {
            shards: 3,
            drain_every: 0,
            mailbox_capacity: 1024,
        });
        let jobs: Vec<(Scheme, ScenarioConfig)> = Scheme::all()
            .into_iter()
            .map(|s| {
                (
                    s,
                    ScenarioConfig::default()
                        .with_crowd(30)
                        .with_items(2)
                        .with_seed(7),
                )
            })
            .collect();
        let sharded = run_scenarios(&rt, &jobs).unwrap();
        for ((scheme, cfg), got) in jobs.iter().zip(&sharded) {
            let want = run_scheme(*scheme, cfg).unwrap();
            assert_eq!(got.scheme, want.scheme);
            assert_eq!(got.items_completed, want.items_completed);
            assert_eq!(got.answers, want.answers);
            assert_eq!(got.teams_formed, want.teams_formed);
            assert_eq!(got.reassignments, want.reassignments);
            assert_eq!(got.points_awarded, want.points_awarded);
            assert_eq!(got.makespan, want.makespan);
            assert!((got.mean_quality - want.mean_quality).abs() < 1e-12);
            assert!((got.mean_team_affinity - want.mean_team_affinity).abs() < 1e-12);
        }
    }

    #[test]
    fn consecutive_jobs_on_one_shard_stay_isolated() {
        // One shard runs all three scenarios back to back on the same
        // resident platform; scenario-scoped accounting keeps each report
        // identical to a fresh-platform run.
        let rt = ShardedRuntime::new(RuntimeConfig {
            shards: 1,
            drain_every: 0,
            mailbox_capacity: 1024,
        });
        let cfg = ScenarioConfig::default()
            .with_crowd(30)
            .with_items(2)
            .with_seed(9);
        let jobs: Vec<(Scheme, ScenarioConfig)> = Scheme::all()
            .into_iter()
            .map(|s| (s, cfg.clone()))
            .collect();
        let sharded = run_scenarios(&rt, &jobs).unwrap();
        for ((scheme, cfg), got) in jobs.iter().zip(&sharded) {
            let want = run_scheme(*scheme, cfg).unwrap();
            assert_eq!(got.items_completed, want.items_completed, "{scheme}");
            assert_eq!(got.answers, want.answers, "{scheme}");
            assert_eq!(got.points_awarded, want.points_awarded, "{scheme}");
            assert_eq!(got.teams_formed, want.teams_formed, "{scheme}");
        }
    }
}
