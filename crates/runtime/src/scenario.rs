//! The §2.5 demo scenarios **streamed through the ingestion gate** — the
//! scenario front-end of the sharded runtime.
//!
//! Until PR 5 a scenario executed as a whole-`Driver` job pinned to one
//! shard's resident platform slice, which structurally excluded the
//! cross-project, cross-application workloads the paper is about: a
//! scenario could never span shards, and scenario jobs could not coexist
//! with routed `ProjectRegistered` events. That execution model is
//! retired. A scenario now runs in two halves:
//!
//! 1. **Record** — the scenario logic runs on its own *decision shadow*
//!    (a [`Driver`](crowd4u_scenarios::Driver) over a private slice,
//!    [`record_scheme`]); every
//!    state change it makes is yielded as a timed op
//!    ([`Driver::drain_due`](crowd4u_scenarios::Driver::drain_due) /
//!    [`Driver::ops_since`](crowd4u_scenarios::Driver::ops_since)).
//!    Recording different scenarios is embarrassingly parallel.
//! 2. **Stream** — [`stream_traces`] interleaves the recorded streams by
//!    `SimTime` (deterministically, with per-scenario worker/project id
//!    remapping — see [`crowd4u_scenarios::stream::merge_traces`]) and
//!    pushes every op through an [`IngestGate`] handle: project
//!    registrations broadcast like any other global event, project-scoped
//!    ops land on their owner shard, and
//!    [`StreamOp::Drain`](crowd4u_scenarios::stream::StreamOp) markers
//!    become coordinated drain barriers. One scenario's projects span
//!    shards; many scenarios interleave through the same gate.
//!
//! Submission uses [`IngestGate::try_submit`] with a resubmit-same-event
//! retry: a [`GateError::Full`] hands the event back and it is retried
//! until admitted, so backpressure can delay the stream but **never
//! reorder it** — the determinism contract (ARCHITECTURE.md §5) depends
//! on stream order surviving full mailboxes.
//!
//! Reports are scenario-scoped without resident-slice counter deltas:
//! platform observables (items completed, teams suggested, reassignments,
//! points) are recomputed from the owner shards via per-project counters
//! and project-ledger aggregation, crowd-simulation observables (answers,
//! quality, makespan, affinity) come from the decision shadow. For a lone
//! scenario the streamed report equals a single-threaded run exactly:
//!
//! ```
//! use crowd4u_runtime::prelude::*;
//! use crowd4u_runtime::scenario::run_scenarios;
//! use crowd4u_scenarios::{run_scheme, ScenarioConfig};
//! use crowd4u_collab::Scheme;
//!
//! let cfg = ScenarioConfig::default().with_crowd(16).with_items(1).with_seed(3);
//! let rt = ShardedRuntime::new(RuntimeConfig {
//!     shards: 2,
//!     drain_every: 0,
//!     mailbox_capacity: 64,
//!     recovery: false,
//! });
//! let streamed = run_scenarios(&rt, &[(Scheme::Sequential, cfg.clone())]).unwrap();
//! let serial = run_scheme(Scheme::Sequential, &cfg).unwrap();
//! assert_eq!(streamed[0].items_completed, serial.items_completed);
//! assert_eq!(streamed[0].answers, serial.answers);
//! assert_eq!(streamed[0].teams_formed, serial.teams_formed);
//! assert_eq!(streamed[0].points_awarded, serial.points_awarded);
//! assert_eq!(streamed[0].makespan, serial.makespan);
//! rt.finish().unwrap();
//! ```

use crate::gate::{GateError, IngestGate};
use crate::router::ShardedRuntime;
use crowd4u_collab::Scheme;
use crowd4u_core::error::PlatformError;
use crowd4u_core::events::PlatformEvent;
use crowd4u_scenarios::mixed::{reports_from, splits_from, MixedReport, SharedMixedReport};
use crowd4u_scenarios::stream::{
    merge_traces, merge_traces_with, platform_side, project_split, record_scheme, CrowdMode,
    MergedStream, ScenarioTrace, SplitLedger, StreamOp,
};
use crowd4u_scenarios::{ScenarioConfig, ScenarioReport};

/// Submit one event through the gate, resubmitting the **same** event
/// when its destination mailbox is full. `GateError::Full` hands the
/// event back, and the retry goes through the *blocking* `submit` — the
/// producer parks on the mailbox's condvar instead of spinning — so
/// backpressure costs no CPU and, crucially, the stream cannot reorder
/// around it: no later op is submitted until this one is admitted.
/// Returns the event's global sequence number.
pub fn submit_retrying(gate: &IngestGate, event: PlatformEvent) -> Result<u64, PlatformError> {
    let closed =
        |_| PlatformError::BadEvent("runtime closed while a scenario stream was in flight".into());
    match gate.try_submit(event) {
        Ok(seq) => Ok(seq),
        // Full, Recovering and Migrating all hand the event back and are
        // transient: the blocking `submit` parks until the mailbox drains,
        // the shard finishes its rebuild, or the project's hold lifts.
        Err(GateError::Full { event, .. })
        | Err(GateError::Recovering { event, .. })
        | Err(GateError::Migrating { event, .. }) => gate.submit(*event).map_err(closed),
        Err(e @ (GateError::Closed(_) | GateError::ShardDown { .. })) => Err(closed(e)),
    }
}

/// Stream recorded scenario traces through the runtime's ingestion gate
/// and rebuild each scenario's report from the shards.
///
/// The traces are interleaved by timestamp into one deterministic stream
/// (worker/project ids remapped per trace so the scenarios stay
/// disjoint), then pushed through a gate handle in stream order —
/// project-scoped ops to their owner shard, registrations and clocks
/// broadcast, drain markers as coordinated barriers. The submission
/// order is independent of the shard count, so the merged journal is
/// byte-identical at 1, 2 or 4 shards — and equal to
/// [`apply_stream`](crowd4u_scenarios::stream::apply_stream)'s serial
/// reference (proptested in `tests/scenario_streaming.rs`).
///
/// Reports come back in trace order. The runtime must be **fresh** (no
/// events submitted yet — the remap predicts the platform's registration
/// sequence from zero; a reused runtime is rejected with a typed error)
/// and in coordinated drain mode (`drain_every: 0`) for byte-identical
/// journals; streaming mode works too but inserts per-shard `sync`
/// entries.
pub fn stream_traces(
    rt: &ShardedRuntime,
    traces: &[ScenarioTrace],
) -> Result<Vec<ScenarioReport>, PlatformError> {
    let merged = merge_traces(traces);
    stream_merged(rt, traces, merged)
}

/// [`stream_traces`] over **one shared crowd**: the traces are merged in
/// [`CrowdMode::Shared`] — all worker references stay on the shared
/// registration order, duplicate registrations are deduplicated before
/// submission (so each shared worker's registration routes through the
/// coordinator exactly once), and each trace keeps its own clock domain.
/// Alongside the per-scenario reports, returns each scenario's per-worker
/// [`SplitLedger`] read off the owner shards — the marketplace accounting
/// whose sums must reproduce the platform totals exactly.
pub fn stream_traces_shared(
    rt: &ShardedRuntime,
    traces: &[ScenarioTrace],
) -> Result<(Vec<ScenarioReport>, Vec<SplitLedger>), PlatformError> {
    let merged = merge_traces_with(traces, CrowdMode::Shared)?;
    let remaps = merged.remaps.clone();
    let reports = stream_merged(rt, traces, merged)?;
    let splits = splits_from(
        traces,
        &MergedStream {
            ops: Vec::new(),
            remaps,
        },
        |project| {
            Ok::<_, PlatformError>(rt.with_project(project, move |p| project_split(p, project)))
        },
    )?;
    Ok((reports, splits))
}

/// The shared submit-and-account core of [`stream_traces`] /
/// [`stream_traces_shared`]: push a pre-merged stream through the gate in
/// order and rebuild the per-trace reports from the owner shards.
fn stream_merged(
    rt: &ShardedRuntime,
    traces: &[ScenarioTrace],
    mut merged: MergedStream,
) -> Result<Vec<ScenarioReport>, PlatformError> {
    // The merge *predicts* the ids the runtime will assign (projects
    // from 1 in registration order, workers from each trace's own id
    // space), so the runtime must not have registered anything yet — on
    // a reused runtime every remapped event would silently land on the
    // wrong project or overwrite foreign worker profiles. Broadcasts
    // reach every slice, so the coordinator's journal being empty is
    // equivalent to "nothing was ever registered or clocked".
    let fresh = rt.with_project(crowd4u_core::error::ProjectId(0), |p| {
        p.journal().is_empty()
    });
    if !fresh {
        return Err(PlatformError::BadEvent(
            "scenario streams must start on a fresh runtime: the id remap predicts the \
             platform's registration sequence, which prior events have already advanced"
                .into(),
        ));
    }
    let gate = rt.gate();
    // Consume the merged ops by value: the gate takes ownership of each
    // event (and hands it back on backpressure), so the submit loop never
    // clones the payload.
    for (_, op) in merged.ops.drain(..) {
        match op {
            StreamOp::Event(e) => {
                submit_retrying(&gate, e)?;
            }
            StreamOp::Drain => {
                rt.drain();
            }
        }
    }
    // Platform-side accounting from the owner shards. `with_project`
    // queries ride the same mailboxes as the events, so each owner has
    // applied the full stream before it answers.
    reports_from(traces, &merged, |project, completion| {
        let completion = completion.clone();
        rt.with_project(project, move |p| platform_side(p, project, &completion))
    })
}

/// Record each job's scenario on its own decision shadow (in parallel —
/// recording is independent per job) and stream the results through the
/// gate. Reports come back in job order and match single-threaded
/// `run_scheme` runs exactly.
///
/// The controller algorithm is platform-global, so every job must agree
/// on it; it is installed on every shard slice before the stream starts
/// (configuration is not journaled — a replay base needs the same
/// algorithm, see ARCHITECTURE.md §2).
pub fn run_scenarios(
    rt: &ShardedRuntime,
    jobs: &[(Scheme, ScenarioConfig)],
) -> Result<Vec<ScenarioReport>, PlatformError> {
    let Some(algorithm) = jobs.first().map(|(_, c)| c.algorithm) else {
        return Ok(Vec::new());
    };
    if jobs.iter().any(|(_, c)| c.algorithm != algorithm) {
        return Err(PlatformError::BadEvent(
            "streamed scenarios share one runtime: every job must use the same \
             controller algorithm"
                .into(),
        ));
    }
    for shard in 0..rt.shards() {
        rt.submit_job(shard, move |p| p.controller.algorithm = algorithm);
    }
    let traces: Vec<ScenarioTrace> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|(scheme, config)| scope.spawn(move || record_scheme(*scheme, config)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("recording thread"))
            .collect::<Result<Vec<_>, PlatformError>>()
    })?;
    stream_traces(rt, &traces)
}

/// The mixed workload (scenario 4, `crowd4u_scenarios::mixed`) on the
/// sharded runtime: all three schemes recorded under one config and
/// streamed concurrently through the gate — the first genuinely
/// cross-shard workload (three projects, round-robin ownership).
pub fn run_mixed(
    rt: &ShardedRuntime,
    config: &ScenarioConfig,
) -> Result<MixedReport, PlatformError> {
    let jobs: Vec<(Scheme, ScenarioConfig)> = Scheme::all()
        .into_iter()
        .map(|s| (s, config.clone()))
        .collect();
    Ok(MixedReport::combine(run_scenarios(rt, &jobs)?))
}

/// The mixed workload over one **shared crowd** on the sharded runtime:
/// all three schemes recorded from the same seeded population, merged in
/// [`CrowdMode::Shared`], and streamed through the gate. The marketplace
/// counterpart of [`run_mixed`] — one worker accrues points and affinity
/// history across all three applications, and the returned report carries
/// each scheme's per-worker split of that shared accounting.
pub fn run_mixed_shared(
    rt: &ShardedRuntime,
    config: &ScenarioConfig,
) -> Result<SharedMixedReport, PlatformError> {
    let algorithm = config.algorithm;
    for shard in 0..rt.shards() {
        rt.submit_job(shard, move |p| p.controller.algorithm = algorithm);
    }
    let traces: Vec<ScenarioTrace> = std::thread::scope(|scope| {
        let handles: Vec<_> = Scheme::all()
            .into_iter()
            .map(|scheme| scope.spawn(move || record_scheme(scheme, config)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("recording thread"))
            .collect::<Result<Vec<_>, PlatformError>>()
    })?;
    let (reports, splits) = stream_traces_shared(rt, &traces)?;
    Ok(SharedMixedReport {
        mixed: MixedReport::combine(reports),
        splits,
        crowd: traces.first().map(|t| t.crowd).unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RuntimeConfig;
    use crowd4u_core::error::ProjectId;
    use crowd4u_scenarios::run_scheme;

    fn config(shards: usize, mailbox_capacity: usize) -> RuntimeConfig {
        RuntimeConfig {
            shards,
            drain_every: 0,
            mailbox_capacity,
            recovery: false,
        }
    }

    fn assert_reports_equal(got: &ScenarioReport, want: &ScenarioReport, label: &str) {
        assert_eq!(got.scheme, want.scheme, "{label}");
        assert_eq!(got.items_completed, want.items_completed, "{label}");
        assert_eq!(got.items_total, want.items_total, "{label}");
        assert_eq!(got.answers, want.answers, "{label}");
        assert_eq!(got.teams_formed, want.teams_formed, "{label}");
        assert_eq!(got.reassignments, want.reassignments, "{label}");
        assert_eq!(got.points_awarded, want.points_awarded, "{label}");
        assert_eq!(got.makespan, want.makespan, "{label}");
        assert!(
            (got.mean_quality - want.mean_quality).abs() < 1e-12,
            "{label}"
        );
        assert!(
            (got.mean_team_affinity - want.mean_team_affinity).abs() < 1e-12,
            "{label}"
        );
    }

    #[test]
    fn streamed_scenario_reports_match_single_threaded_runs() {
        let rt = ShardedRuntime::new(config(3, 1024));
        let jobs: Vec<(Scheme, ScenarioConfig)> = Scheme::all()
            .into_iter()
            .map(|s| {
                (
                    s,
                    ScenarioConfig::default()
                        .with_crowd(30)
                        .with_items(2)
                        .with_seed(7),
                )
            })
            .collect();
        let streamed = run_scenarios(&rt, &jobs).unwrap();
        for ((scheme, cfg), got) in jobs.iter().zip(&streamed) {
            let want = run_scheme(*scheme, cfg).unwrap();
            assert_reports_equal(got, &want, scheme.name());
        }
        // The workload genuinely crossed shards: three projects,
        // round-robin ownership over three shards.
        let run = rt.finish().unwrap();
        let populated = run
            .platforms
            .iter()
            .filter(|p| !p.project_ids().is_empty())
            .count();
        assert_eq!(populated, 3, "each shard should own one project");
        assert_eq!(run.stats.dropped, 0);
    }

    #[test]
    fn interleaved_same_config_scenarios_stay_isolated() {
        // All three schemes with the *same* seed interleave through one
        // gate on one shard; id remapping keeps their crowds and projects
        // disjoint, so every report still equals a fresh standalone run.
        let rt = ShardedRuntime::new(config(1, 1024));
        let cfg = ScenarioConfig::default()
            .with_crowd(30)
            .with_items(2)
            .with_seed(9);
        let jobs: Vec<(Scheme, ScenarioConfig)> = Scheme::all()
            .into_iter()
            .map(|s| (s, cfg.clone()))
            .collect();
        let streamed = run_scenarios(&rt, &jobs).unwrap();
        for ((scheme, cfg), got) in jobs.iter().zip(&streamed) {
            let want = run_scheme(*scheme, cfg).unwrap();
            assert_reports_equal(got, &want, scheme.name());
        }
        rt.finish().unwrap();
    }

    #[test]
    fn run_mixed_aggregates_the_three_schemes() {
        let cfg = ScenarioConfig::default()
            .with_crowd(24)
            .with_items(1)
            .with_seed(13);
        let rt = ShardedRuntime::new(config(2, 512));
        let streamed = run_mixed(&rt, &cfg).unwrap();
        rt.finish().unwrap();
        let serial = crowd4u_scenarios::mixed::run(&cfg).unwrap();
        assert_eq!(streamed.items_completed, serial.items_completed);
        assert_eq!(streamed.answers, serial.answers);
        assert_eq!(streamed.points_awarded, serial.points_awarded);
        assert_eq!(streamed.makespan, serial.makespan);
    }

    #[test]
    fn reused_runtimes_are_rejected() {
        use crowd4u_core::error::WorkerId;
        use crowd4u_crowd::profile::WorkerProfile;
        // Any prior event advances the platform's id/clock sequences, so
        // the remap's predictions would silently mis-route the stream —
        // the scheduler must refuse instead.
        let rt = ShardedRuntime::new(config(2, 64));
        rt.submit(PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(1), "prior"),
        });
        rt.barrier();
        let cfg = ScenarioConfig::default().with_crowd(8).with_items(1);
        let err = run_scenarios(&rt, &[(Scheme::Sequential, cfg)]).unwrap_err();
        assert!(err.to_string().contains("fresh runtime"), "{err}");
        rt.finish().unwrap();
    }

    #[test]
    fn mismatched_algorithms_are_rejected() {
        use crowd4u_core::controller::AlgorithmChoice;
        let rt = ShardedRuntime::new(config(2, 64));
        let jobs = vec![
            (Scheme::Sequential, ScenarioConfig::default()),
            (
                Scheme::Hybrid,
                ScenarioConfig::default().with_algorithm(AlgorithmChoice::Greedy),
            ),
        ];
        assert!(run_scenarios(&rt, &jobs).is_err());
        rt.finish().unwrap();
    }

    /// Satellite pin: a `GateError::Full` handback must not reorder the
    /// stream. With a capacity-1 mailbox and the owner shard stalled in a
    /// job, the second submission is rejected and handed back; resubmitting
    /// it before anything later keeps the journal in stream order.
    #[test]
    fn full_mailbox_handback_preserves_stream_order() {
        use crowd4u_core::error::WorkerId;
        use crowd4u_crowd::profile::WorkerProfile;
        use crowd4u_storage::prelude::Value;

        let rt = ShardedRuntime::new(config(1, 1));
        let gate = rt.gate();
        rt.submit(PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(1), "w1"),
        });
        rt.submit(PlatformEvent::ProjectRegistered {
            name: "p".into(),
            source: "rel item(x: str).\n".into(),
            factors: Default::default(),
            scheme: Scheme::Sequential,
            owner: 0,
        });
        rt.barrier();
        let seed = |s: &str| PlatformEvent::FactSeeded {
            project: ProjectId(1),
            pred: "item".into(),
            values: vec![Value::Str(s.into())],
        };
        // Stall the only shard so the mailbox stays full.
        let release = rt.submit_job(0, |_| {
            std::thread::sleep(std::time::Duration::from_millis(50))
        });
        gate.submit(seed("first")).unwrap(); // fills the capacity-1 mailbox
        let err = gate.try_submit(seed("second")).unwrap_err();
        let GateError::Full { shard, event } = err else {
            panic!("expected Full, got Closed");
        };
        assert_eq!(shard, 0);
        assert_eq!(*event, seed("second")); // the event comes back intact
                                            // The streaming scheduler's policy: retry the handed-back event
                                            // before anything later due.
        submit_retrying(&gate, *event).unwrap();
        submit_retrying(&gate, seed("third")).unwrap();
        release.recv().unwrap();
        rt.drain();
        let run = rt.finish().unwrap();
        let seeds: Vec<String> = run
            .journal
            .iter()
            .filter(|e| e.kind == "seed")
            .map(|e| e.args.last().unwrap().to_string())
            .collect();
        assert_eq!(seeds, vec!["first", "second", "third"]);
    }
}
