//! # crowd4u-runtime — the sharded parallel execution layer
//!
//! The platform core (`crowd4u-core`) executes on one thread. This crate
//! scales it out: N **shards** (std threads), each owning an independent
//! [`Crowd4U`](crowd4u_core::platform::Crowd4U) slice, fed by a
//! [`router`](router::ShardedRuntime) that dispatches
//! [`PlatformEvent`](crowd4u_core::events::PlatformEvent)s over mpsc
//! channels. The partition axis is the **project** — collaborative
//! crowdsourcing workloads decompose naturally by project/group, and since
//! task ids are project-strided
//! ([`TaskId::compose`](crowd4u_core::error::TaskId::compose)) every
//! task-scoped event routes to its owner shard with pure bit arithmetic.
//!
//! ## Ownership convention (cross-shard state)
//!
//! * **Project-scoped events** (`seed`, `sync`, `collab`, `interest`,
//!   `assign`, `undertake`, `answer`, `complete`, `activity`) are delivered
//!   only to the owning shard — the shard whose slice holds the project's
//!   CyLog engine, tasks, relations and points ledger.
//! * **Worker-scoped and global events** (`worker`, `clock`) are
//!   **broadcast**: every shard applies them to its own
//!   [`WorkerManager`](crowd4u_core::workers::WorkerManager) replica in
//!   global sequence order, so
//!   [`WorkerManager::version`](crowd4u_core::workers::WorkerManager::version)
//!   advances in lockstep on every shard and the per-project
//!   epoch-cached eligibility sets stay correct without any locking —
//!   a replicated-state-machine variant of the "coordinator broadcasts
//!   read-only worker snapshots keyed by version" design.
//! * **Project registrations** are also broadcast (so every shard allocates
//!   the same [`ProjectId`](crowd4u_core::error::ProjectId) sequence), but
//!   each project is *owned* by exactly one shard (round-robin by id); the
//!   other shards keep an empty replica that never receives data events.
//! * The **points ledger** lives inside each project's engine and is
//!   therefore owned by the project's shard; global per-worker totals are
//!   aggregations over shards.
//!
//! ## Determinism contract
//!
//! Each shard records the journal entry of every event it applied, tagged
//! with the router's **global sequence number**; the per-shard streams are
//! stitched back with
//! [`EventJournal::merge_streams`](crowd4u_storage::journal::EventJournal::merge_streams).
//! In coordinated-drain mode (`drain_every == 0`, drains only at
//! [`ShardedRuntime::drain`](router::ShardedRuntime::drain) barriers) the
//! merged journal is byte-identical to the journal a single-threaded
//! platform produces for the same event sequence, and replaying it yields a
//! byte-identical
//! [`state_dump`](crowd4u_core::platform::Crowd4U::state_dump) — the PR 2
//! batch-equivalence guarantee extended to parallel execution
//! (`tests/shard_equivalence.rs` proves it property-style). In streaming
//! mode (`drain_every > 0`) each shard additionally syncs its dirty
//! projects after every K mailbox events, journaling per-project `sync`
//! entries at the triggering sequence number, so the merged journal stays
//! replayable; final state after a closing drain is identical either way.
//!
//! ## Scenario port
//!
//! [`scenario::run_scenarios`] dispatches the §2.5 demo workloads
//! (journalism / surveillance / translation) onto shard threads: each job
//! wraps the shard's resident platform in a
//! [`Driver`](crowd4u_scenarios::Driver) (`Driver::on_platform`) and runs
//! the scenario there, in parallel across shards.

pub mod router;
pub mod scenario;
pub mod shard;

pub use router::{RunReport, RuntimeConfig, ShardedRuntime};
pub use shard::ShardStats;

pub mod prelude {
    pub use crate::router::{RunReport, RuntimeConfig, ShardedRuntime};
    pub use crate::scenario::run_scenarios;
    pub use crate::shard::ShardStats;
}
