//! # crowd4u-runtime — the sharded parallel execution layer
//!
//! The platform core (`crowd4u-core`) executes on one thread. This crate
//! scales it out in two directions:
//!
//! * **across shards** — N shard threads, each owning an independent
//!   [`Crowd4U`](crowd4u_core::platform::Crowd4U) slice, partitioned by
//!   project ([`ShardedRuntime`]); and
//! * **across clients** — any number of producer threads submitting
//!   [`PlatformEvent`](crowd4u_core::events::PlatformEvent)s concurrently
//!   through cloned [`IngestGate`] handles, with a lock-free global
//!   sequence stamper and per-shard bounded mailboxes providing
//!   backpressure (block or typed error).
//!
//! The full design — layer map, event-sourcing rules, the determinism
//! contract, and the gate's ordering guarantees — is written down in the
//! repository's `ARCHITECTURE.md`; the module docs of [`gate`], [`router`]
//! and [`shard`] cover the mechanics. The short version:
//!
//! * **Ownership**: project-scoped events go to the owner shard only
//!   (round-robin by project id); clock/registration events are broadcast
//!   and applied by every shard in the same global sequence order; worker
//!   events go to the coordinator (shard 0) alone, which owns the profile
//!   registry via the [`workers::WorkerService`] — other shards pull
//!   version-keyed deltas/snapshots on demand at the exact points the old
//!   broadcast would have interleaved them, so replicated state (worker
//!   manager, project-id sequence) still advances in lockstep.
//! * **Determinism**: every event is stamped with a global sequence
//!   number; each mailbox is delivered in sequence order; per-shard
//!   journals are seq-tagged and stitched by
//!   [`EventJournal::merge_streams`](crowd4u_storage::journal::EventJournal::merge_streams).
//!   In coordinated-drain mode the merged journal is byte-identical to a
//!   serial run over the same sequence — even when the events were fanned
//!   in from many threads (`tests/shard_equivalence.rs` proptests both).
//!
//! ## A multi-submitter run
//!
//! Four client threads ingest answers for four projects concurrently; the
//! merged journal still replays to the exact final state:
//!
//! ```
//! use crowd4u_core::error::{ProjectId, TaskId, WorkerId};
//! use crowd4u_core::events::PlatformEvent;
//! use crowd4u_core::platform::Crowd4U;
//! use crowd4u_crowd::profile::WorkerProfile;
//! use crowd4u_forms::admin::DesiredFactors;
//! use crowd4u_runtime::prelude::*;
//!
//! let rt = ShardedRuntime::new(RuntimeConfig {
//!     shards: 2,
//!     drain_every: 0,     // coordinated mode: drains only at barriers
//!     mailbox_capacity: 64,
//!     recovery: false,    // shard panics propagate (set true to replay)
//! });
//!
//! // Register a worker (coordinator-owned, replicated on demand) and four
//! // single-question projects (broadcasts), then surface the micro-tasks
//! // with a drain barrier.
//! rt.submit(PlatformEvent::WorkerRegistered {
//!     profile: WorkerProfile::new(WorkerId(1), "ann"),
//! });
//! for p in 0..4 {
//!     rt.submit(PlatformEvent::ProjectRegistered {
//!         name: format!("proj-{p}"),
//!         source: "rel item(i: id).\nopen judge(i: id) -> (ok: bool) points 1.\n\
//!                  rel good(i: id).\ngood(I) :- item(I), judge(I, OK), OK = true.\n"
//!             .into(),
//!         factors: DesiredFactors::default(),
//!         scheme: crowd4u_collab::Scheme::Sequential,
//!         owner: 0,
//!     });
//!     rt.submit(PlatformEvent::FactSeeded {
//!         project: ProjectId(p + 1),
//!         pred: "item".into(),
//!         values: vec![1u64.into()],
//!     });
//! }
//! rt.drain();
//!
//! // Fan in answers from four concurrent submitter threads, one per
//! // project, each through its own cloned gate handle.
//! let mut clients = Vec::new();
//! for p in 1..=4u64 {
//!     let gate = rt.gate();
//!     clients.push(std::thread::spawn(move || {
//!         gate.submit(PlatformEvent::AnswerSubmitted {
//!             worker: WorkerId(1),
//!             task: TaskId::compose(ProjectId(p), 1),
//!             outputs: vec![true.into()],
//!         })
//!         .expect("runtime alive")
//!     }));
//! }
//! for c in clients {
//!     c.join().unwrap();
//! }
//!
//! rt.drain();
//! let run = rt.finish().unwrap();
//! assert_eq!(run.stats.applied, 13); // 1 worker + 4×(project, seed, answer)
//! assert_eq!(run.stats.dropped, 0);
//!
//! // The merged journal replays on one thread to the same state.
//! let replayed = Crowd4U::replay(&run.journal).unwrap();
//! assert_eq!(replayed.points_of(WorkerId(1)), 4);
//! ```
//!
//! ## Crash recovery, migration and chaos
//!
//! With `RuntimeConfig::recovery` on, a shard thread that panics is
//! respawned in place: its mailbox is held (blocking submitters park;
//! [`gate::GateError::Recovering`] on `try_submit`), its slice is rebuilt
//! by replaying the runtime-owned [ledger](recovery) — project events it
//! owns, broadcasts, and the worker feed re-interleaved at their exact
//! sequence positions — and held traffic then resumes, with the merged
//! journal byte-identical to a run where the failure never happened
//! (`tests/recovery_equivalence.rs` proptests this). Projects can also be
//! rebalanced while the runtime runs:
//! [`ShardedRuntime::migrate_project`] quiesces one project, replays its
//! slice into another shard, and flips the routing table.
//! Deterministic crash schedules come from [`recovery::FaultPlan`]
//! (`ShardedRuntime::new_chaos`, or the `FAULT_PLAN` environment
//! variable).
//!
//! ## Scenario streaming
//!
//! [`scenario::run_scenarios`] runs the §2.5 demo workloads **through the
//! gate**: each scenario's decision logic executes once on its own
//! shadow [`Driver`](crowd4u_scenarios::Driver) (recording is parallel
//! across jobs), and the recorded, timestamp-interleaved event streams
//! are pushed through cloned [`IngestGate`] handles — so one scenario's
//! projects span shards, several scenarios share one runtime, and the
//! merged journal stays byte-identical to a serial run. See the
//! [`scenario`] module docs and `docs/SCENARIOS.md` for the authoring
//! guide.

pub mod gate;
pub mod marketplace;
pub mod recovery;
pub mod router;
pub mod scenario;
pub mod shard;
pub mod workers;

pub use gate::{GateError, IngestGate};
pub use recovery::FaultPlan;
pub use router::{RunReport, RuntimeConfig, ShardedRuntime};
pub use shard::ShardStats;
pub use workers::WorkerService;

pub mod prelude {
    pub use crate::gate::{GateError, IngestGate};
    pub use crate::marketplace::{market_snapshot, propose_team, MarketSnapshot};
    pub use crate::recovery::FaultPlan;
    pub use crate::router::{RunReport, RuntimeConfig, ShardedRuntime};
    pub use crate::scenario::{
        run_mixed, run_mixed_shared, run_scenarios, stream_traces, stream_traces_shared,
    };
    pub use crate::shard::ShardStats;
}
