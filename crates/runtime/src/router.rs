//! The runtime orchestrator: spawns the shard threads, hands out
//! [`IngestGate`] submission handles, and stitches the per-shard journals
//! back into one replayable log when the run finishes.
//!
//! Since PR 4 the routing itself — sequence stamping, ownership/broadcast
//! dispatch, backpressure — lives in the concurrent [`gate`](crate::gate):
//! any number of client threads submit through cloned gate handles without
//! serialising on one submitter. `ShardedRuntime`'s own submission methods
//! delegate to an internal handle, so single-client code keeps working
//! unchanged (and no longer needs `&mut`).

use crate::gate::{GateCore, IngestGate};
use crate::recovery::{replay_slice, snapshot_allowed, FaultPlan, LedgerEntry};
use crate::shard::{shard_main, SeqKey, ShardCtx, ShardStats, ToShard};
use crowd4u_core::error::{PlatformError, ProjectId};
use crowd4u_core::events::{EventScope, PlatformEvent, DRAIN_KIND};
use crowd4u_core::platform::Crowd4U;
use crowd4u_storage::journal::EventJournal;
use crowd4u_telemetry::{stage, MetricsSnapshot, Registry};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Runtime tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Number of shard threads (≥ 1).
    pub shards: usize,
    /// Streaming-mode mailbox batching: after this many applied events a
    /// shard syncs its dirty projects (`0` = coordinated mode, drains only
    /// at explicit [`ShardedRuntime::drain`] barriers). Batching this way
    /// rides the PR 2 fast path: answers accumulate without per-answer
    /// fixpoints, and one sync amortises over the whole mailbox batch.
    pub drain_every: usize,
    /// Per-shard mailbox capacity for data events — the backpressure
    /// bound. A producer hitting a full mailbox blocks
    /// ([`IngestGate::submit`]) or gets the event back
    /// ([`IngestGate::try_submit`]). `0` disables the bound (unbounded
    /// queues, no backpressure). Control messages (drain barriers, jobs,
    /// flushes) are always exempt, so a full mailbox cannot wedge the
    /// barrier that would drain it.
    pub mailbox_capacity: usize,
    /// Restart a shard whose thread panics by replaying its ledger slice
    /// (see `crate::recovery`), instead of abandoning its mailbox and
    /// resurfacing the panic from [`ShardedRuntime::finish`]. Off by
    /// default: recovery deliberately swallows the panic, which is the
    /// wrong default while a panic usually means a bug. The event being
    /// applied when a mid-apply panic fires is *not* lost: the shard
    /// parks it in an in-flight slot before applying and the rebuilt
    /// shard re-applies it once; if it panics again (a poison event) it
    /// is dropped and counted rather than crash-looping the shard.
    pub recovery: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            shards: shards_from_env(4),
            drain_every: 0,
            mailbox_capacity: 1024,
            recovery: false,
        }
    }
}

/// Shard count from the `RUNTIME_SHARDS` environment variable, or
/// `default`. CI runs the integration suite with `RUNTIME_SHARDS=4` to
/// exercise the parallel path.
pub fn shards_from_env(default: usize) -> usize {
    std::env::var("RUNTIME_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// Everything a finished run hands back.
pub struct RunReport {
    /// The per-shard journals stitched by global sequence number. Replaying
    /// this on a single-threaded platform reconstructs the equivalent
    /// state (byte-identical in coordinated-drain mode).
    pub journal: EventJournal,
    /// Aggregated statistics across shards.
    pub stats: ShardStats,
    /// Per-shard statistics, by shard index.
    pub per_shard: Vec<ShardStats>,
    /// The shard platform slices, by shard index (for inspection and
    /// aggregation queries after the run).
    pub platforms: Vec<Crowd4U>,
}

/// The sharded runtime: N shard threads behind the [`IngestGate`]'s
/// bounded mailboxes, a lock-free global sequence stamper, and round-robin
/// project ownership. Shard 0 doubles as the **coordinator**: it records
/// broadcast events and drain barriers in the merged journal (every shard
/// *applies* broadcasts; exactly one records them), and it alone receives
/// worker events — the other shards pull profile deltas from the
/// coordinator-owned [`WorkerService`](crate::workers::WorkerService)
/// exactly where the old broadcast would have interleaved them.
///
/// Submission is concurrent: clone handles with
/// [`gate()`](ShardedRuntime::gate) and submit from as many threads as you
/// like; the convenience methods on the runtime itself
/// ([`submit`](ShardedRuntime::submit),
/// [`submit_batch`](ShardedRuntime::submit_batch),
/// [`drain`](ShardedRuntime::drain)) delegate to an internal handle and
/// only need `&self`.
pub struct ShardedRuntime {
    gate: IngestGate,
    handles: Vec<JoinHandle<()>>,
    drain_every: usize,
    telemetry: Registry,
    /// The per-shard platform builder (telemetry pre-wired) — the replay
    /// base migrations rebuild slices against. Shard recoveries hold
    /// their own clone inside the shard context.
    base: Arc<dyn Fn(usize) -> Crowd4U + Send + Sync>,
}

impl ShardedRuntime {
    /// Spawn the runtime with default (fresh) platform slices.
    pub fn new(config: RuntimeConfig) -> ShardedRuntime {
        ShardedRuntime::new_with(config, |_| Crowd4U::new())
    }

    /// Spawn the runtime with configured platform slices. The builder runs
    /// once per shard — use it to install a controller algorithm or retry
    /// budget on every slice (configuration is not journaled, so replay
    /// bases must be built the same way; recovery and migration re-run
    /// the builder, which is why it must be `Send + Sync`).
    ///
    /// Telemetry comes from the environment (the `TELEMETRY` variable; see
    /// [`Registry::from_env`]) — use
    /// [`new_instrumented_with`](Self::new_instrumented_with) to inject a
    /// registry explicitly.
    pub fn new_with(
        config: RuntimeConfig,
        base: impl Fn(usize) -> Crowd4U + Send + Sync + 'static,
    ) -> ShardedRuntime {
        ShardedRuntime::new_instrumented_with(config, Registry::from_env(), base)
    }

    /// Spawn the runtime with default platform slices and an explicit
    /// telemetry registry (pass [`Registry::disabled`] to force telemetry
    /// off regardless of the environment).
    pub fn new_instrumented(config: RuntimeConfig, telemetry: Registry) -> ShardedRuntime {
        ShardedRuntime::new_instrumented_with(config, telemetry, |_| Crowd4U::new())
    }

    /// Spawn the runtime with configured platform slices and an explicit
    /// telemetry registry. Every layer shares the one registry: the gate
    /// (admission + mailbox-dwell histograms), the worker service (delta-log
    /// gauges), each shard's platform slice (apply/journal/fixpoint stages,
    /// event and cache counters).
    pub fn new_instrumented_with(
        config: RuntimeConfig,
        telemetry: Registry,
        base: impl Fn(usize) -> Crowd4U + Send + Sync + 'static,
    ) -> ShardedRuntime {
        ShardedRuntime::spawn(config, telemetry, Arc::new(base), FaultPlan::from_env())
    }

    /// Spawn the runtime with an explicit [`FaultPlan`] — the deterministic
    /// chaos entry point. The default constructors read the plan from the
    /// `FAULT_PLAN` environment variable instead (usually empty). Pair
    /// with `config.recovery = true` to exercise crash recovery; with
    /// recovery off an injected kill behaves like any shard panic.
    pub fn new_chaos(config: RuntimeConfig, faults: FaultPlan) -> ShardedRuntime {
        ShardedRuntime::new_chaos_instrumented(config, Registry::from_env(), faults)
    }

    /// [`new_chaos`](Self::new_chaos) with an explicit telemetry registry —
    /// the recovery-latency harness (`report -- recovery`) scrapes the
    /// `crowd4u_recoveries_total` / `crowd4u_recovery_ns` cells from it
    /// after the run.
    pub fn new_chaos_instrumented(
        config: RuntimeConfig,
        telemetry: Registry,
        faults: FaultPlan,
    ) -> ShardedRuntime {
        ShardedRuntime::spawn(config, telemetry, Arc::new(|_| Crowd4U::new()), faults)
    }

    fn spawn(
        config: RuntimeConfig,
        telemetry: Registry,
        base: Arc<dyn Fn(usize) -> Crowd4U + Send + Sync>,
        faults: FaultPlan,
    ) -> ShardedRuntime {
        let shards = config.shards.max(1);
        let handle = telemetry.handle();
        let mut service = crate::workers::WorkerService::from_env();
        // Replica attachment must precede telemetry: the per-replica lag
        // gauges are created from the attached replica count.
        service.attach_replicas(shards);
        service.set_telemetry(&handle);
        let service = Arc::new(service);
        let core = Arc::new(GateCore::new(
            shards,
            config.mailbox_capacity,
            service,
            &handle,
        ));
        // Wrap the builder so every platform it produces — initial spawn,
        // recovery rebuild, migration replay — carries the telemetry.
        let base: Arc<dyn Fn(usize) -> Crowd4U + Send + Sync> = {
            let th = handle.clone();
            Arc::new(move |i| {
                let mut p = base(i);
                p.set_telemetry(&th);
                p
            })
        };
        let faults = Arc::new(faults);
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let ctx = ShardCtx {
                gate: Arc::clone(&core),
                shard: i,
                drain_every: config.drain_every,
                telemetry: handle.clone(),
                base: Arc::clone(&base),
                recovery: config.recovery,
                faults: Arc::clone(&faults),
            };
            let handle = std::thread::Builder::new()
                .name(format!("crowd4u-shard-{i}"))
                .spawn(move || shard_main(ctx))
                .expect("spawn shard thread");
            handles.push(handle);
        }
        ShardedRuntime {
            gate: IngestGate::new(core),
            handles,
            drain_every: config.drain_every,
            telemetry,
            base,
        }
    }

    /// The telemetry registry every layer of this runtime records into.
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Scrape: merge every shard's local cells into one snapshot. Safe to
    /// call any time — producers are never blocked (see the telemetry
    /// crate docs); mid-run values are racy-but-consistent per cell.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.telemetry.snapshot()
    }

    /// A cloneable concurrent submission handle onto this runtime's shard
    /// mailboxes. Hand one to each client thread; all handles share the
    /// same global sequence stamper, so cross-handle submissions are
    /// totally ordered. Handles outlive the runtime gracefully: after
    /// [`finish`](ShardedRuntime::finish) (or drop) their submissions
    /// return [`GateError::Closed`](crate::gate::GateError::Closed).
    pub fn gate(&self) -> IngestGate {
        self.gate.clone()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.gate.shards()
    }

    /// Streaming-mode mailbox batch size (0 in coordinated mode).
    pub fn drain_every(&self) -> usize {
        self.drain_every
    }

    /// The shard owning a project (round-robin over registration order).
    pub fn owner_of(&self, project: ProjectId) -> usize {
        self.gate.owner_of(project)
    }

    /// Submit one event through the runtime's own gate handle; returns its
    /// global sequence number. Broadcast events fan out to every shard
    /// (coordinator records); project-scoped events go to the owner only.
    /// Blocks while the destination mailbox is full — use
    /// [`gate()`](ShardedRuntime::gate) +
    /// [`try_submit`](IngestGate::try_submit) for the error policy.
    ///
    /// # Panics
    ///
    /// Panics if the gate reports the runtime closed. While the runtime is
    /// still borrowed that only happens when the destination shard thread
    /// has died (its mailbox closes as the thread unwinds, so callers fail
    /// fast instead of hanging); detached [`IngestGate`] handles get a
    /// typed error instead.
    pub fn submit(&self, event: PlatformEvent) -> u64 {
        self.gate.submit(event).expect("runtime alive")
    }

    /// Submit a batch of events in order (blocking policy). With
    /// concurrent gate handles active, other submitters' events may
    /// interleave between batch elements in the global order.
    pub fn submit_batch(&self, events: impl IntoIterator<Item = PlatformEvent>) {
        for e in events {
            self.submit(e);
        }
    }

    /// Coordinated drain barrier: every shard syncs its dirty projects, the
    /// coordinator records one `drain` entry — the sharded counterpart of
    /// the drain closing [`Crowd4U::apply_batch`]. The barrier takes one
    /// global sequence number under every shard lock, so it lands at the
    /// same position in every mailbox even while gate handles are
    /// submitting concurrently. Returns the barrier's sequence number.
    pub fn drain(&self) -> u64 {
        self.gate
            .core()
            .stamped_barrier(|shard, seq| ToShard::Drain {
                seq,
                record: shard == 0,
            })
            .expect("runtime alive")
    }

    fn push_control(&self, shard: usize, msg: ToShard) {
        assert!(
            self.gate.core().push_control(shard, msg),
            "shard {shard} mailbox closed under a live ShardedRuntime (shard thread died?)"
        );
    }

    /// Wait until every shard has processed its mailbox; returns per-shard
    /// statistics snapshots. This flushes events already enqueued, but
    /// concurrent gate handles may enqueue more while the barrier settles.
    pub fn barrier(&self) -> Vec<ShardStats> {
        let replies: Vec<Receiver<ShardStats>> = (0..self.shards())
            .map(|i| {
                let (reply_tx, reply_rx) = channel();
                self.push_control(i, ToShard::Flush(reply_tx));
                reply_rx
            })
            .collect();
        replies
            .into_iter()
            .map(|rx| rx.recv().expect("shard thread alive"))
            .collect()
    }

    /// Aggregated statistics across shards (barriers first).
    pub fn stats(&self) -> ShardStats {
        let mut total = ShardStats::default();
        for s in self.barrier() {
            total.absorb(&s);
        }
        total
    }

    /// Wait until one shard has processed everything already in its
    /// mailbox (the single-shard [`barrier`](Self::barrier)).
    fn barrier_one(&self, shard: usize) -> ShardStats {
        let (reply_tx, reply_rx) = channel();
        self.push_control(shard, ToShard::Flush(reply_tx));
        reply_rx.recv().expect("shard thread alive")
    }

    /// Move a project to another shard while the runtime keeps running —
    /// hot rebalancing. Returns the number of tasks that moved.
    ///
    /// The sequence: quiesce the project at the gate (its events, plus
    /// broadcasts and worker events, are held — blocking submitters park,
    /// `try_submit` gets
    /// [`GateError::Migrating`](crate::gate::GateError::Migrating)); flush
    /// the source shard so everything admitted is ledgered; **replay** the
    /// project's slice — its recorded ledger entries interleaved with the
    /// source's drains, broadcasts and the worker feed — onto a fresh
    /// base; extract the project from the replay and adopt it into the
    /// destination shard; drop it from the source; flip the routing
    /// table; release the hold. Unrelated projects keep flowing the whole
    /// time, and the merged journal is untouched — recorded entries stay
    /// in the slots that recorded them, sorted by global sequence number.
    ///
    /// Requires the worker history below the project's first event to be
    /// reconstructable (compacted prefix or resident deltas) — see
    /// ARCHITECTURE.md §10 for the exact contract.
    pub fn migrate_project(
        &self,
        project: ProjectId,
        to_shard: usize,
    ) -> Result<usize, PlatformError> {
        assert!(
            to_shard < self.shards(),
            "destination shard {to_shard} out of range ({} shards)",
            self.shards()
        );
        let core = self.gate.core();
        let from = core.owner_of(project);
        if from == to_shard {
            return Ok(0);
        }
        core.hold_for_migration(project);
        struct Release<'a> {
            core: &'a GateCore,
            project: ProjectId,
        }
        impl Drop for Release<'_> {
            fn drop(&mut self) {
                self.core.release_migration(self.project);
            }
        }
        let _release = Release { core, project };
        // Flush the source: every event admitted before the hold's fence
        // is applied and ledgered before the slice is read.
        self.barrier_one(from);
        // The project's replay slice: its recorded entries from every slot
        // (earlier owners keep the pre-migration history), interleaved
        // with the *source's* drain barriers and broadcast copies.
        let ledger = core.ledger();
        let mut entries: Vec<LedgerEntry> = Vec::new();
        for shard in 0..ledger.shards() {
            entries.extend(ledger.entries(shard).into_iter().filter(|e| {
                if e.entry.kind == DRAIN_KIND {
                    return shard == from;
                }
                match PlatformEvent::decode(&e.entry).map(|ev| ev.scope()) {
                    Ok(EventScope::Global) => shard == from,
                    Ok(EventScope::Project(p)) => e.recorded && p == project,
                    _ => false,
                }
            }));
        }
        entries.sort_by_key(|e| e.key);
        // Worker feed to the *full* log: worker admission is held, so the
        // log is stable, and the destination's adopt job syncs to this
        // same bound before adopting — eligibility rows in the slice must
        // cover every worker the destination will have installed.
        let service = core.worker_service();
        let feed = service.recovery_feed();
        let upto = service.log_len();
        let (mut replayed, _) = replay_slice(
            (self.base)(from),
            &entries,
            Some((&feed, upto)),
            snapshot_allowed(),
        );
        let slice = replayed.extract_project(project)?;
        let moved = slice.task_count();
        // Demote at the source (extract and drop) and adopt at the
        // destination; the jobs run concurrently on their shards, and the
        // adopt's captured bound equals `upto` (the log is held stable).
        let demoted = self.submit_job(from, move |p| p.extract_project(project).map(drop));
        let adopted = self.submit_job(to_shard, move |p| p.adopt_project(slice));
        demoted.recv().expect("source shard alive")?;
        adopted.recv().expect("destination shard alive");
        core.set_owner(project, to_shard);
        self.telemetry.handle().counter(stage::MIGRATIONS).incr();
        Ok(moved)
    }

    /// Ship a job to a shard and return a receiver for its result without
    /// blocking — jobs on different shards run in parallel. The job sees
    /// the shard's platform slice after every event enqueued before it.
    pub fn submit_job<R: Send + 'static>(
        &self,
        shard: usize,
        job: impl FnOnce(&mut Crowd4U) -> R + Send + 'static,
    ) -> Receiver<R> {
        let (tx, rx) = channel();
        self.push_control(
            shard,
            ToShard::Job {
                // The gate captures the real worker-log bound under the
                // mailbox lock; 0 is just the placeholder.
                bound: 0,
                run: Box::new(move |platform: &mut Crowd4U| {
                    let _ = tx.send(job(platform));
                }),
            },
        );
        rx
    }

    /// Run a closure against the owner slice of a project and wait for the
    /// result (a synchronous cross-shard query).
    pub fn with_project<R: Send + 'static>(
        &self,
        project: ProjectId,
        job: impl FnOnce(&mut Crowd4U) -> R + Send + 'static,
    ) -> R {
        self.submit_job(self.owner_of(project), job)
            .recv()
            .expect("shard thread alive")
    }

    /// Global per-worker points: the sum of the worker's points over every
    /// shard slice (the ledger is project-owned, so totals are aggregates).
    /// All shards are queried concurrently before any reply is awaited.
    pub fn points_of(&self, worker: crowd4u_core::error::WorkerId) -> i64 {
        let replies: Vec<Receiver<i64>> = (0..self.shards())
            .map(|s| self.submit_job(s, move |p| p.points_of(worker)))
            .collect();
        replies
            .into_iter()
            .map(|rx| rx.recv().expect("shard thread alive"))
            .sum()
    }

    /// Cross-application assignment load per worker: how many suggested or
    /// in-progress teams each worker is on across **every** project of the
    /// runtime. Tasks live only on their owner shard (broadcast shells
    /// hold none), so summing the per-shard maps counts each membership
    /// exactly once. All shards are queried concurrently. This is the load
    /// table a marketplace front-end feeds to
    /// `crowd4u_assign::load::LeastLoaded` before proposing a team from a
    /// shared crowd.
    pub fn assignment_loads(
        &self,
    ) -> std::collections::BTreeMap<crowd4u_core::error::WorkerId, u64> {
        let replies: Vec<Receiver<_>> = (0..self.shards())
            .map(|s| self.submit_job(s, |p| p.assignment_loads()))
            .collect();
        let mut loads = std::collections::BTreeMap::new();
        for rx in replies {
            for (w, n) in rx.recv().expect("shard thread alive") {
                *loads.entry(w).or_insert(0) += n;
            }
        }
        loads
    }

    /// Stop the runtime: the gate closes (later submissions through
    /// detached handles get
    /// [`GateError::Closed`](crate::gate::GateError::Closed)), every
    /// shard applies what is already in its mailbox and hands back its
    /// statistics, its
    /// seq-tagged journal stream and its platform slice; the streams are
    /// stitched into the merged journal.
    pub fn finish(mut self) -> Result<RunReport, PlatformError> {
        let mut reply_txs = Vec::with_capacity(self.shards());
        let mut reply_rxs = Vec::with_capacity(self.shards());
        for _ in 0..self.shards() {
            let (tx, rx) = channel();
            reply_txs.push(tx);
            reply_rxs.push(rx);
        }
        // Closing with the Finish message in the same critical section
        // means no submission can slip in behind it.
        self.gate.core().close_each(|i| ToShard::Finish {
            bound: 0, // patched by the gate under the mailbox lock
            reply: reply_txs[i].clone(),
        });
        // The queued clones are now the only live senders: if a shard died
        // (its mailbox guard drops everything queued), the matching `recv`
        // below fails fast instead of waiting on a reply that cannot come.
        drop(reply_txs);
        let mut platforms = Vec::new();
        for rx in reply_rxs {
            match rx.recv() {
                Ok(report) => platforms.push(report.platform),
                // A shard died before reporting — join to surface its
                // original panic rather than a bare channel error.
                Err(_) => {
                    for h in self.handles.drain(..) {
                        if let Err(panic) = h.join() {
                            std::panic::resume_unwind(panic);
                        }
                    }
                    panic!("shard reply channel closed but no shard thread panicked");
                }
            }
        }
        for h in self.handles.drain(..) {
            h.join().expect("shard thread panicked");
        }
        // Statistics and recorded streams live in the runtime-owned
        // ledger, where they survived any shard deaths along the way.
        let ledger = self.gate.core().ledger();
        let mut per_shard = Vec::new();
        let mut streams: Vec<Vec<(SeqKey, crowd4u_storage::journal::JournalEntry)>> = Vec::new();
        let mut stats = ShardStats::default();
        for shard in 0..ledger.shards() {
            let s = ledger.stats(shard);
            stats.absorb(&s);
            per_shard.push(s);
            streams.push(ledger.recorded_stream(shard));
        }
        let journal = EventJournal::merge_streams(streams)?;
        Ok(RunReport {
            journal,
            stats,
            per_shard,
            platforms,
        })
    }
}

impl Drop for ShardedRuntime {
    fn drop(&mut self) {
        // Closing the gate ends each shard loop once its mailbox is
        // drained; join to avoid leaks.
        self.gate.core().close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_collab::Scheme;
    use crowd4u_core::error::{TaskId, WorkerId};
    use crowd4u_crowd::profile::WorkerProfile;
    use crowd4u_forms::admin::DesiredFactors;

    const SRC: &str = "\
rel item(x: str).
open label(x: str) -> (y: str) points 1.
rel out(x: str, y: str).
out(X, Y) :- item(X), label(X, Y).
";

    fn config(shards: usize, drain_every: usize) -> RuntimeConfig {
        RuntimeConfig {
            shards,
            drain_every,
            mailbox_capacity: 1024,
            recovery: false,
        }
    }

    fn worker(i: u64) -> PlatformEvent {
        PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(i), format!("w{i}")),
        }
    }

    fn project(name: &str) -> PlatformEvent {
        PlatformEvent::ProjectRegistered {
            name: name.into(),
            source: SRC.into(),
            factors: DesiredFactors::default(),
            scheme: Scheme::Sequential,
            owner: 0,
        }
    }

    fn seed(p: u64, s: &str) -> PlatformEvent {
        PlatformEvent::FactSeeded {
            project: ProjectId(p),
            pred: "item".into(),
            values: vec![s.into()],
        }
    }

    fn answer(p: u64, local: u64, w: u64, out: &str) -> PlatformEvent {
        PlatformEvent::AnswerSubmitted {
            worker: WorkerId(w),
            task: TaskId::compose(ProjectId(p), local),
            outputs: vec![out.into()],
        }
    }

    #[test]
    fn ownership_is_round_robin_and_stable() {
        let rt = ShardedRuntime::new(config(3, 0));
        assert_eq!(rt.shards(), 3);
        assert_eq!(rt.owner_of(ProjectId(1)), 0);
        assert_eq!(rt.owner_of(ProjectId(2)), 1);
        assert_eq!(rt.owner_of(ProjectId(3)), 2);
        assert_eq!(rt.owner_of(ProjectId(4)), 0);
        // Ids that never came from a pool land on the coordinator.
        assert_eq!(rt.owner_of(ProjectId(0)), 0);
    }

    #[test]
    fn routed_run_matches_serial_platform() {
        // The same event sequence, applied serially and through 2 shards.
        let mut events = vec![worker(1), worker(2), project("a"), project("b")];
        for s in ["x", "y", "z"] {
            events.push(seed(1, s));
            events.push(seed(2, s));
        }

        let mut serial = Crowd4U::new();
        let report = serial.apply_batch(events.clone()).unwrap();
        assert!(report.errors.is_empty());

        let rt = ShardedRuntime::new(config(2, 0));
        rt.submit_batch(events);
        rt.drain();
        let run = rt.finish().unwrap();
        assert_eq!(run.stats.applied, 10);
        assert_eq!(run.stats.dropped, 0);

        // Merged journal is byte-identical to the serial journal, and
        // replays to the serial platform's exact state.
        assert_eq!(run.journal.dump(), serial.journal().dump());
        let replayed = Crowd4U::replay(&run.journal).unwrap();
        assert_eq!(replayed.state_dump(), serial.state_dump());

        // Each project lives where ownership says; the other slice holds an
        // empty replica.
        let owner_a = &run.platforms[0];
        assert_eq!(
            owner_a
                .project(ProjectId(1))
                .unwrap()
                .engine
                .fact_count("item")
                .unwrap(),
            3
        );
        assert_eq!(
            run.platforms[1]
                .project(ProjectId(1))
                .unwrap()
                .engine
                .fact_count("item")
                .unwrap(),
            0
        );
    }

    #[test]
    fn invalid_events_are_dropped_and_counted() {
        let rt = ShardedRuntime::new(config(2, 0));
        rt.submit_batch(vec![worker(1), project("a")]);
        rt.submit(seed(9, "nope")); // unknown project → owner drops it
        rt.submit(answer(1, 7, 1, "nope")); // unknown task → dropped
        rt.drain();
        let run = rt.finish().unwrap();
        assert_eq!(run.stats.applied, 2);
        assert_eq!(run.stats.dropped, 2);
        // Dropped events never reach the journal; the run still replays.
        let replayed = Crowd4U::replay(&run.journal).unwrap();
        assert_eq!(replayed.project_ids(), vec![ProjectId(1)]);
    }

    #[test]
    fn streaming_auto_drain_syncs_and_stays_replayable() {
        let rt = ShardedRuntime::new(config(2, 2));
        rt.submit_batch(vec![worker(1), project("a"), project("b")]);
        for s in ["x", "y", "z", "w"] {
            rt.submit(seed(1, s));
            rt.submit(seed(2, s));
        }
        rt.barrier();
        // Auto-drains already surfaced micro tasks without an explicit
        // drain: answer one through the routed path.
        let open = rt.with_project(ProjectId(1), |p| {
            p.pool.open_tasks(Some(ProjectId(1))).len()
        });
        assert!(open > 0, "auto-drain should have synced project 1");
        rt.submit(answer(1, 1, 1, "lab"));
        rt.drain();
        let run = rt.finish().unwrap();
        assert!(run.stats.auto_drains > 0);
        // The merged journal (with per-project `sync` entries) replays to
        // the exact live state of the shards.
        let replayed = Crowd4U::replay(&run.journal).unwrap();
        assert_eq!(
            replayed
                .project(ProjectId(1))
                .unwrap()
                .engine
                .fact_count("out")
                .unwrap(),
            1
        );
    }

    #[test]
    fn jobs_and_aggregation_queries() {
        let rt = ShardedRuntime::new(config(2, 0));
        rt.submit_batch(vec![worker(1), project("a"), project("b")]);
        rt.submit(seed(1, "x"));
        rt.submit(seed(2, "y"));
        rt.drain();
        rt.submit(answer(1, 1, 1, "out-a"));
        rt.submit(answer(2, 1, 1, "out-b"));
        rt.drain();
        // Worker 1 earned 1 point in each project, owned by different
        // shards; the global total aggregates both.
        assert_eq!(rt.points_of(WorkerId(1)), 2);
        let n1 = rt.with_project(ProjectId(1), |p| p.workers.len());
        assert_eq!(n1, 1); // the worker delta reached the owning shard
        rt.finish().unwrap();
    }

    #[test]
    fn dead_shard_closes_its_mailbox_instead_of_hanging() {
        let rt = ShardedRuntime::new(config(2, 0));
        let gate = rt.gate();
        rt.submit_batch(vec![project("a"), project("b")]);
        let _ = rt.submit_job(1, |_| panic!("boom"));
        // The mailbox guard closes shard 1's queue as the thread unwinds;
        // until then submissions may still be accepted, so keep submitting
        // until the death surfaces as a typed error (a hang here is the
        // regression this test pins) — scoped to the dead shard, not the
        // runtime-wide `Closed`.
        loop {
            match gate.submit(seed(2, "x")) {
                Ok(_) => std::thread::yield_now(),
                Err(err) => {
                    assert!(
                        matches!(err, crate::gate::GateError::ShardDown { shard: 1, .. }),
                        "a shard death must scope its error, got {err:?}"
                    );
                    break;
                }
            }
        }
        // Shard 0 is untouched and still serves queries.
        assert!(rt.with_project(ProjectId(1), |p| p.project(ProjectId(1)).is_ok()));
    }

    #[test]
    fn recovery_replays_a_killed_shard_and_keeps_the_journal_identical() {
        // Reference: the same traffic with no fault.
        let events = || {
            let mut evs = vec![worker(1), project("a"), project("b")];
            for s in ["x", "y", "z"] {
                evs.push(seed(1, s));
                evs.push(seed(2, s));
            }
            evs
        };
        let rt = ShardedRuntime::new(config(2, 0));
        rt.submit_batch(events());
        rt.drain();
        let clean = rt.finish().unwrap();

        let mut cfg = config(2, 0);
        cfg.recovery = true;
        // Kill shard 1 after its 2nd applied event, mid-stream.
        let rt = ShardedRuntime::new_chaos(cfg, FaultPlan::kill(1, 2));
        rt.submit_batch(events());
        rt.drain();
        let run = rt.finish().unwrap();
        assert_eq!(run.journal.dump(), clean.journal.dump());
        assert_eq!(run.stats.applied, clean.stats.applied);
        let replayed = Crowd4U::replay(&run.journal).unwrap();
        let clean_replayed = Crowd4U::replay(&clean.journal).unwrap();
        assert_eq!(replayed.state_dump(), clean_replayed.state_dump());
    }

    #[test]
    fn migration_moves_a_live_project_between_shards() {
        let rt = ShardedRuntime::new(config(2, 0));
        rt.submit_batch(vec![worker(1), project("a"), project("b")]);
        rt.submit(seed(1, "x"));
        rt.submit(seed(1, "y"));
        rt.submit(seed(2, "z"));
        rt.drain();
        rt.submit(answer(1, 1, 1, "lab"));
        rt.drain();
        assert_eq!(rt.owner_of(ProjectId(1)), 0);
        let moved = rt.migrate_project(ProjectId(1), 1).unwrap();
        assert!(moved >= 2, "project 1 had at least its two label tasks");
        assert_eq!(rt.owner_of(ProjectId(1)), 1);
        // The project now answers queries from its new owner, with state
        // intact (the submitted answer's derived fact included) …
        let out = rt.with_project(ProjectId(1), |p| {
            p.project(ProjectId(1))
                .unwrap()
                .engine
                .fact_count("out")
                .unwrap()
        });
        assert_eq!(out, 1);
        // … keeps taking new traffic through the routed path …
        rt.submit(seed(1, "w"));
        rt.submit(answer(1, 2, 1, "lab2"));
        rt.drain();
        // … and the merged journal still replays to the exact state.
        let run = rt.finish().unwrap();
        assert_eq!(run.stats.dropped, 0);
        let replayed = Crowd4U::replay(&run.journal).unwrap();
        assert_eq!(
            replayed
                .project(ProjectId(1))
                .unwrap()
                .engine
                .fact_count("out")
                .unwrap(),
            2
        );
        // The live slices agree with ownership: project 1 lives on shard 1
        // with all three of its seeded items (x, y pre-migration, w post).
        assert_eq!(
            run.platforms[1]
                .project(ProjectId(1))
                .unwrap()
                .engine
                .fact_count("item")
                .unwrap(),
            3
        );
        assert!(run.platforms[0].project(ProjectId(1)).is_err());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn finish_surfaces_a_dead_shards_panic() {
        let rt = ShardedRuntime::new(config(2, 0));
        let _ = rt.submit_job(1, |_| panic!("boom"));
        let _ = rt.finish();
    }

    #[test]
    fn detached_gate_handles_survive_shutdown() {
        let rt = ShardedRuntime::new(config(2, 0));
        let gate = rt.gate();
        rt.submit_batch(vec![worker(1), project("a")]);
        gate.submit(seed(1, "via-gate")).unwrap();
        rt.drain();
        let run = rt.finish().unwrap();
        assert_eq!(run.stats.applied, 3);
        // The handle outlives the runtime; submissions now fail typed.
        let err = gate.submit(seed(1, "late")).unwrap_err();
        assert!(matches!(err, crate::gate::GateError::Closed(_)));
    }
}
