//! The router: owns the shard threads, stamps every event with a global
//! sequence number, dispatches it by project, and stitches the per-shard
//! journals back into one replayable log.

use crate::shard::{shard_main, SeqKey, ShardReport, ShardStats, ToShard};
use crowd4u_core::error::{PlatformError, ProjectId};
use crowd4u_core::events::PlatformEvent;
use crowd4u_core::platform::Crowd4U;
use crowd4u_storage::journal::EventJournal;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// Runtime tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Number of shard threads (≥ 1).
    pub shards: usize,
    /// Streaming-mode mailbox batching: after this many applied events a
    /// shard syncs its dirty projects (`0` = coordinated mode, drains only
    /// at explicit [`ShardedRuntime::drain`] barriers). Batching this way
    /// rides the PR 2 fast path: answers accumulate without per-answer
    /// fixpoints, and one sync amortises over the whole mailbox batch.
    pub drain_every: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            shards: shards_from_env(4),
            drain_every: 0,
        }
    }
}

/// Shard count from the `RUNTIME_SHARDS` environment variable, or
/// `default`. CI runs the integration suite with `RUNTIME_SHARDS=4` to
/// exercise the parallel path.
pub fn shards_from_env(default: usize) -> usize {
    std::env::var("RUNTIME_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// Where one event must be delivered.
enum Scope {
    /// Every shard applies it (worker-scoped / global / registration).
    Broadcast,
    /// Only the owner of this project applies it.
    Project(ProjectId),
}

fn scope_of(event: &PlatformEvent) -> Scope {
    match event {
        PlatformEvent::WorkerRegistered { .. }
        | PlatformEvent::ClockAdvanced { .. }
        | PlatformEvent::ProjectRegistered { .. } => Scope::Broadcast,
        PlatformEvent::FactSeeded { project, .. }
        | PlatformEvent::TasksSynced { project }
        | PlatformEvent::CollabTaskCreated { project, .. } => Scope::Project(*project),
        PlatformEvent::InterestExpressed { task, .. }
        | PlatformEvent::AssignmentRun { task }
        | PlatformEvent::Undertaken { task, .. }
        | PlatformEvent::AnswerSubmitted { task, .. }
        | PlatformEvent::TaskCompleted { task, .. }
        | PlatformEvent::ActivityRecorded { task, .. } => Scope::Project(task.project()),
    }
}

/// Everything a finished run hands back.
pub struct RunReport {
    /// The per-shard journals stitched by global sequence number. Replaying
    /// this on a single-threaded platform reconstructs the equivalent
    /// state (byte-identical in coordinated-drain mode).
    pub journal: EventJournal,
    /// Aggregated statistics across shards.
    pub stats: ShardStats,
    /// Per-shard statistics, by shard index.
    pub per_shard: Vec<ShardStats>,
    /// The shard platform slices, by shard index (for inspection and
    /// aggregation queries after the run).
    pub platforms: Vec<Crowd4U>,
}

/// The sharded runtime: N shard threads behind mpsc mailboxes, a global
/// sequence counter, and round-robin project ownership. Shard 0 doubles as
/// the **coordinator**: it records broadcast events and drain barriers in
/// the merged journal (every shard *applies* broadcasts; exactly one
/// records them).
pub struct ShardedRuntime {
    txs: Vec<Sender<ToShard>>,
    handles: Vec<JoinHandle<()>>,
    drain_every: usize,
    next_seq: u64,
}

impl ShardedRuntime {
    /// Spawn the runtime with default (fresh) platform slices.
    pub fn new(config: RuntimeConfig) -> ShardedRuntime {
        ShardedRuntime::new_with(config, |_| Crowd4U::new())
    }

    /// Spawn the runtime with configured platform slices. The builder runs
    /// once per shard — use it to install a controller algorithm or retry
    /// budget on every slice (configuration is not journaled, so replay
    /// bases must be built the same way).
    pub fn new_with(config: RuntimeConfig, base: impl Fn(usize) -> Crowd4U) -> ShardedRuntime {
        let shards = config.shards.max(1);
        let mut txs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx): (Sender<ToShard>, Receiver<ToShard>) = channel();
            let platform = base(i);
            let drain_every = config.drain_every;
            let handle = std::thread::Builder::new()
                .name(format!("crowd4u-shard-{i}"))
                .spawn(move || shard_main(rx, platform, drain_every))
                .expect("spawn shard thread");
            txs.push(tx);
            handles.push(handle);
        }
        ShardedRuntime {
            txs,
            handles,
            drain_every: config.drain_every,
            next_seq: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.txs.len()
    }

    /// Streaming-mode mailbox batch size (0 in coordinated mode).
    pub fn drain_every(&self) -> usize {
        self.drain_every
    }

    /// The shard owning a project (round-robin over registration order).
    pub fn owner_of(&self, project: ProjectId) -> usize {
        if project.0 == 0 {
            0
        } else {
            ((project.0 - 1) % self.txs.len() as u64) as usize
        }
    }

    fn send(&self, shard: usize, msg: ToShard) {
        self.txs[shard].send(msg).expect("shard thread alive");
    }

    /// Submit one event; returns its global sequence number. Broadcast
    /// events fan out to every shard (coordinator records); project-scoped
    /// events go to the owner only.
    pub fn submit(&mut self, event: PlatformEvent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        match scope_of(&event) {
            Scope::Broadcast => {
                let last = self.txs.len() - 1;
                for i in 0..last {
                    self.send(
                        i,
                        ToShard::Apply {
                            seq,
                            event: event.clone(),
                            record: i == 0,
                        },
                    );
                }
                self.send(
                    last,
                    ToShard::Apply {
                        seq,
                        event,
                        record: last == 0,
                    },
                );
            }
            Scope::Project(p) => {
                let owner = self.owner_of(p);
                self.send(
                    owner,
                    ToShard::Apply {
                        seq,
                        event,
                        record: true,
                    },
                );
            }
        }
        seq
    }

    /// Submit a batch of events in order.
    pub fn submit_batch(&mut self, events: impl IntoIterator<Item = PlatformEvent>) {
        for e in events {
            self.submit(e);
        }
    }

    /// Coordinated drain barrier: every shard syncs its dirty projects, the
    /// coordinator records one `drain` entry — the sharded counterpart of
    /// the drain closing [`Crowd4U::apply_batch`]. Returns the barrier's
    /// sequence number.
    pub fn drain(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        for i in 0..self.txs.len() {
            self.send(
                i,
                ToShard::Drain {
                    seq,
                    record: i == 0,
                },
            );
        }
        seq
    }

    /// Wait until every shard has processed its mailbox; returns per-shard
    /// statistics snapshots.
    pub fn barrier(&self) -> Vec<ShardStats> {
        let replies: Vec<Receiver<ShardStats>> = self
            .txs
            .iter()
            .map(|tx| {
                let (reply_tx, reply_rx) = channel();
                tx.send(ToShard::Flush(reply_tx))
                    .expect("shard thread alive");
                reply_rx
            })
            .collect();
        replies
            .into_iter()
            .map(|rx| rx.recv().expect("shard thread alive"))
            .collect()
    }

    /// Aggregated statistics across shards (barriers first).
    pub fn stats(&self) -> ShardStats {
        let mut total = ShardStats::default();
        for s in self.barrier() {
            total.absorb(&s);
        }
        total
    }

    /// Ship a job to a shard and return a receiver for its result without
    /// blocking — jobs on different shards run in parallel. The job sees
    /// the shard's platform slice after every previously submitted event.
    pub fn submit_job<R: Send + 'static>(
        &self,
        shard: usize,
        job: impl FnOnce(&mut Crowd4U) -> R + Send + 'static,
    ) -> Receiver<R> {
        let (tx, rx) = channel();
        self.send(
            shard,
            ToShard::Job(Box::new(move |platform: &mut Crowd4U| {
                let _ = tx.send(job(platform));
            })),
        );
        rx
    }

    /// Run a closure against the owner slice of a project and wait for the
    /// result (a synchronous cross-shard query).
    pub fn with_project<R: Send + 'static>(
        &self,
        project: ProjectId,
        job: impl FnOnce(&mut Crowd4U) -> R + Send + 'static,
    ) -> R {
        self.submit_job(self.owner_of(project), job)
            .recv()
            .expect("shard thread alive")
    }

    /// Global per-worker points: the sum of the worker's points over every
    /// shard slice (the ledger is project-owned, so totals are aggregates).
    /// All shards are queried concurrently before any reply is awaited.
    pub fn points_of(&self, worker: crowd4u_core::error::WorkerId) -> i64 {
        let replies: Vec<Receiver<i64>> = (0..self.shards())
            .map(|s| self.submit_job(s, move |p| p.points_of(worker)))
            .collect();
        replies
            .into_iter()
            .map(|rx| rx.recv().expect("shard thread alive"))
            .sum()
    }

    /// Stop the runtime: every shard hands back its statistics, its
    /// seq-tagged journal stream and its platform slice; the streams are
    /// stitched into the merged journal.
    pub fn finish(mut self) -> Result<RunReport, PlatformError> {
        let replies: Vec<Receiver<ShardReport>> = self
            .txs
            .iter()
            .map(|tx| {
                let (reply_tx, reply_rx) = channel();
                tx.send(ToShard::Finish(reply_tx))
                    .expect("shard thread alive");
                reply_rx
            })
            .collect();
        let mut per_shard = Vec::new();
        let mut platforms = Vec::new();
        let mut streams: Vec<Vec<(SeqKey, crowd4u_storage::journal::JournalEntry)>> = Vec::new();
        let mut stats = ShardStats::default();
        for rx in replies {
            let report = rx.recv().expect("shard thread alive");
            stats.absorb(&report.stats);
            per_shard.push(report.stats);
            streams.push(report.recorded);
            platforms.push(report.platform);
        }
        self.txs.clear();
        for h in self.handles.drain(..) {
            h.join().expect("shard thread panicked");
        }
        let journal = EventJournal::merge_streams(streams)?;
        Ok(RunReport {
            journal,
            stats,
            per_shard,
            platforms,
        })
    }
}

impl Drop for ShardedRuntime {
    fn drop(&mut self) {
        // Closing the mailboxes ends each shard loop; join to avoid leaks.
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_collab::Scheme;
    use crowd4u_core::error::{TaskId, WorkerId};
    use crowd4u_crowd::profile::WorkerProfile;
    use crowd4u_forms::admin::DesiredFactors;

    const SRC: &str = "\
rel item(x: str).
open label(x: str) -> (y: str) points 1.
rel out(x: str, y: str).
out(X, Y) :- item(X), label(X, Y).
";

    fn worker(i: u64) -> PlatformEvent {
        PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(i), format!("w{i}")),
        }
    }

    fn project(name: &str) -> PlatformEvent {
        PlatformEvent::ProjectRegistered {
            name: name.into(),
            source: SRC.into(),
            factors: DesiredFactors::default(),
            scheme: Scheme::Sequential,
        }
    }

    fn seed(p: u64, s: &str) -> PlatformEvent {
        PlatformEvent::FactSeeded {
            project: ProjectId(p),
            pred: "item".into(),
            values: vec![s.into()],
        }
    }

    fn answer(p: u64, local: u64, w: u64, out: &str) -> PlatformEvent {
        PlatformEvent::AnswerSubmitted {
            worker: WorkerId(w),
            task: TaskId::compose(ProjectId(p), local),
            outputs: vec![out.into()],
        }
    }

    #[test]
    fn ownership_is_round_robin_and_stable() {
        let rt = ShardedRuntime::new(RuntimeConfig {
            shards: 3,
            drain_every: 0,
        });
        assert_eq!(rt.shards(), 3);
        assert_eq!(rt.owner_of(ProjectId(1)), 0);
        assert_eq!(rt.owner_of(ProjectId(2)), 1);
        assert_eq!(rt.owner_of(ProjectId(3)), 2);
        assert_eq!(rt.owner_of(ProjectId(4)), 0);
        // Ids that never came from a pool land on the coordinator.
        assert_eq!(rt.owner_of(ProjectId(0)), 0);
    }

    #[test]
    fn routed_run_matches_serial_platform() {
        // The same event sequence, applied serially and through 2 shards.
        let mut events = vec![worker(1), worker(2), project("a"), project("b")];
        for s in ["x", "y", "z"] {
            events.push(seed(1, s));
            events.push(seed(2, s));
        }

        let mut serial = Crowd4U::new();
        let report = serial.apply_batch(events.clone()).unwrap();
        assert!(report.errors.is_empty());

        let mut rt = ShardedRuntime::new(RuntimeConfig {
            shards: 2,
            drain_every: 0,
        });
        rt.submit_batch(events);
        rt.drain();
        let run = rt.finish().unwrap();
        assert_eq!(run.stats.applied, 10);
        assert_eq!(run.stats.dropped, 0);

        // Merged journal is byte-identical to the serial journal, and
        // replays to the serial platform's exact state.
        assert_eq!(run.journal.dump(), serial.journal().dump());
        let replayed = Crowd4U::replay(&run.journal).unwrap();
        assert_eq!(replayed.state_dump(), serial.state_dump());

        // Each project lives where ownership says; the other slice holds an
        // empty replica.
        let owner_a = &run.platforms[0];
        assert_eq!(
            owner_a
                .project(ProjectId(1))
                .unwrap()
                .engine
                .fact_count("item")
                .unwrap(),
            3
        );
        assert_eq!(
            run.platforms[1]
                .project(ProjectId(1))
                .unwrap()
                .engine
                .fact_count("item")
                .unwrap(),
            0
        );
    }

    #[test]
    fn invalid_events_are_dropped_and_counted() {
        let mut rt = ShardedRuntime::new(RuntimeConfig {
            shards: 2,
            drain_every: 0,
        });
        rt.submit_batch(vec![worker(1), project("a")]);
        rt.submit(seed(9, "nope")); // unknown project → owner drops it
        rt.submit(answer(1, 7, 1, "nope")); // unknown task → dropped
        rt.drain();
        let run = rt.finish().unwrap();
        assert_eq!(run.stats.applied, 2);
        assert_eq!(run.stats.dropped, 2);
        // Dropped events never reach the journal; the run still replays.
        let replayed = Crowd4U::replay(&run.journal).unwrap();
        assert_eq!(replayed.project_ids(), vec![ProjectId(1)]);
    }

    #[test]
    fn streaming_auto_drain_syncs_and_stays_replayable() {
        let mut rt = ShardedRuntime::new(RuntimeConfig {
            shards: 2,
            drain_every: 2,
        });
        rt.submit_batch(vec![worker(1), project("a"), project("b")]);
        for s in ["x", "y", "z", "w"] {
            rt.submit(seed(1, s));
            rt.submit(seed(2, s));
        }
        rt.barrier();
        // Auto-drains already surfaced micro tasks without an explicit
        // drain: answer one through the routed path.
        let open = rt.with_project(ProjectId(1), |p| {
            p.pool.open_tasks(Some(ProjectId(1))).len()
        });
        assert!(open > 0, "auto-drain should have synced project 1");
        rt.submit(answer(1, 1, 1, "lab"));
        rt.drain();
        let run = rt.finish().unwrap();
        assert!(run.stats.auto_drains > 0);
        // The merged journal (with per-project `sync` entries) replays to
        // the exact live state of the shards.
        let replayed = Crowd4U::replay(&run.journal).unwrap();
        assert_eq!(
            replayed
                .project(ProjectId(1))
                .unwrap()
                .engine
                .fact_count("out")
                .unwrap(),
            1
        );
    }

    #[test]
    fn jobs_and_aggregation_queries() {
        let mut rt = ShardedRuntime::new(RuntimeConfig {
            shards: 2,
            drain_every: 0,
        });
        rt.submit_batch(vec![worker(1), project("a"), project("b")]);
        rt.submit(seed(1, "x"));
        rt.submit(seed(2, "y"));
        rt.drain();
        rt.submit(answer(1, 1, 1, "out-a"));
        rt.submit(answer(2, 1, 1, "out-b"));
        rt.drain();
        // Worker 1 earned 1 point in each project, owned by different
        // shards; the global total aggregates both.
        assert_eq!(rt.points_of(WorkerId(1)), 2);
        let n1 = rt.with_project(ProjectId(1), |p| p.workers.len());
        assert_eq!(n1, 1); // the worker replica reached every shard
        rt.finish().unwrap();
    }
}
