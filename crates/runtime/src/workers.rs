//! The coordinator-owned worker service.
//!
//! Before PR 7, every `WorkerRegistered` event was broadcast to all shard
//! mailboxes, so one registration cost O(shards) queue pushes and O(shards)
//! full applies — the fan-out that made million-worker churn infeasible.
//! Now the event is routed to **shard 0 (the coordinator) only**, which
//! journals and applies it; this service is the side channel the other
//! shards use to replicate the effect *exactly where the broadcast would
//! have placed it* in their own apply order.
//!
//! ## The seq-keyed delta log
//!
//! The service keeps an append-only log of `(seq, profile)` pairs, one per
//! worker event, in stamping order. The gate appends **while holding both
//! shard 0's mailbox lock and this service's lock, drawing the sequence
//! number inside the critical section** (`WorkerService::append_with`).
//! That coupling is what makes a replica's pull race-free: when a shard
//! holds the service lock, any worker event with a smaller seq has already
//! completed its append (it drew its seq inside an earlier critical
//! section), and any event still waiting for the lock will draw a larger
//! seq. So "install every log entry with seq < S, then apply S" replays
//! precisely the prefix the broadcast would have delivered before S.
//!
//! ## Sync points
//!
//! A non-coordinator shard syncs at exactly the places the old broadcast
//! interleaved worker events with its stream:
//!
//! * before applying a seq-stamped message (event or drain) at seq `S`:
//!   install all log entries with seq < `S`;
//! * before running a seq-less control message (job, finish): install up
//!   to the log length captured when the message was enqueued (the
//!   *bound*, recorded under the mailbox lock by the gate).
//!
//! Installs go through `Crowd4U::install_worker_delta` — registration
//! minus the journal entry and counter — so `WorkerManager::version()`
//! advances in the same lockstep the eligibility epoch cache and the
//! determinism contract key on.
//!
//! ## Snapshots
//!
//! Every `WORKER_SNAPSHOT_EVERY` appends (default 1024; 0 disables) the
//! service compacts the log prefix into a version-keyed snapshot (latest
//! profile per worker + how many events it covers). A **fresh** replica
//! (no workers, no projects) fast-forwards through the snapshot instead of
//! replaying each delta; `events_covered` keeps its worker version in
//! lockstep. Replicas that already hold projects take the delta path —
//! project registrations are broadcast, so in practice snapshots serve the
//! "bulk-register the crowd first" phase, which is exactly where 10⁵–10⁶
//! registrations happen.
//!
//! ## Truncation (bounded log)
//!
//! Cursors and bounds are **logical** positions in the append stream. The
//! resident `log` vector only holds the suffix `[base..]`: each replica
//! reports its cursor back to the service inside the sync critical
//! section, and once every reported cursor (and, when snapshots are
//! enabled, the running compaction) has moved at least
//! [`TRUNCATE_CHUNK`] entries past `base`, the consumed prefix is
//! dropped and `base` advances. A runtime with no replicas (one shard)
//! treats the whole log as consumed. Entries being installed are `Arc`
//! clones planned under the lock, so a concurrent truncation by another
//! replica can never pull data out from under an install. The bound is
//! observable: the service exports `crowd4u_worker_delta_log_len`
//! (resident entries) and `crowd4u_worker_min_cursor` gauges, both
//! written under the service lock.

use crowd4u_core::platform::Crowd4U;
use crowd4u_crowd::profile::{WorkerId, WorkerProfile};
use crowd4u_telemetry::{Counter, Gauge, TelemetryHandle};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Snapshot cadence env knob: compact every N appends (0 disables).
pub const SNAPSHOT_EVERY_ENV: &str = "WORKER_SNAPSHOT_EVERY";
const SNAPSHOT_EVERY_DEFAULT: usize = 1024;

/// Truncate the consumed log prefix in chunks of this many entries (the
/// drain is O(chunk), so amortised cost per append stays O(1)).
pub const TRUNCATE_CHUNK: usize = 64;

/// Coordinator-owned worker registry side channel (see module docs).
pub struct WorkerService {
    state: Mutex<ServiceState>,
    snapshot_every: usize,
    /// Number of replica shards (shards 1..=replicas) reporting cursors;
    /// set by [`WorkerService::attach_replicas`] before the runtime runs.
    replicas: usize,
    telemetry: ServiceTelemetry,
}

#[derive(Default)]
struct ServiceTelemetry {
    /// `crowd4u_worker_delta_log_len` — resident (un-truncated) entries.
    log_len: Gauge,
    /// `crowd4u_worker_min_cursor` — slowest reported replica cursor.
    min_cursor: Gauge,
    /// `crowd4u_worker_log_truncated_total` — entries dropped so far.
    truncated: Counter,
    /// `crowd4u_worker_snapshots_published_total`.
    snapshots: Counter,
    /// `crowd4u_worker_snapshot_covered` — logical events the latest
    /// published snapshot covers.
    snapshot_covered: Gauge,
    /// `crowd4u_worker_replica_lag{shard="i"}` — logical entries shard
    /// `i` has not yet installed, one gauge per replica.
    lag: Vec<Gauge>,
}

#[derive(Default)]
struct ServiceState {
    /// `(seq, profile)` per worker event, ascending seq by construction
    /// (appends draw their seq inside this lock's critical section).
    /// Physically holds only the logical suffix `[base..]`.
    log: Vec<(u64, Arc<WorkerProfile>)>,
    /// Logical position of `log[0]`: entries below `base` were consumed
    /// by every replica and truncated.
    base: usize,
    /// Running compaction of the logical prefix `[..covered]`: latest
    /// profile per worker. Maintained even with snapshots disabled —
    /// truncation folds entries in before dropping them, so a recovery
    /// can always reconstruct the full registration history
    /// (compacted prefix + resident deltas).
    compacted: BTreeMap<WorkerId, Arc<WorkerProfile>>,
    covered: usize,
    /// Sequence number of the last event folded into `compacted` (only
    /// meaningful while `covered > 0`). Recovery replays use it to check
    /// the prefix sits strictly below the first ledger entry they must
    /// interleave with.
    covered_seq: u64,
    /// Latest published snapshot, shared with every shard that uses it.
    published: Option<Arc<Snapshot>>,
    /// Per-replica logical cursors (index `shard − 1`), reported inside
    /// the sync critical sections. Empty until replicas attach.
    cursors: Vec<usize>,
    /// Whether the replica set was declared — truncation stays off until
    /// it is, so a service used bare (unit tests) keeps the full log.
    attached: bool,
}

impl ServiceState {
    /// Logical length of the append stream (what bounds are captured
    /// against).
    fn logical_len(&self) -> usize {
        self.base + self.log.len()
    }

    /// The slowest consumer: min reported cursor, or the full stream
    /// when there are no replicas to wait for.
    fn min_cursor(&self) -> usize {
        self.cursors
            .iter()
            .copied()
            .min()
            .unwrap_or_else(|| self.logical_len())
    }
}

impl WorkerService {
    pub fn new(snapshot_every: usize) -> WorkerService {
        WorkerService {
            state: Mutex::new(ServiceState::default()),
            snapshot_every,
            replicas: 0,
            telemetry: ServiceTelemetry::default(),
        }
    }

    /// Cadence from `WORKER_SNAPSHOT_EVERY` (default 1024, 0 disables).
    pub fn from_env() -> WorkerService {
        let every = std::env::var(SNAPSHOT_EVERY_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(SNAPSHOT_EVERY_DEFAULT);
        WorkerService::new(every)
    }

    /// Declare the runtime's shard count so the service knows which
    /// replica cursors gate truncation (shards `1..shards`; shard 0 is
    /// the coordinator and consumes events through its own mailbox).
    /// Must be called before the shards start pulling.
    pub fn attach_replicas(&mut self, shards: usize) {
        self.replicas = shards.saturating_sub(1);
        let s = self.state.get_mut().expect("worker service poisoned");
        s.cursors = vec![0; self.replicas];
        s.attached = true;
    }

    /// Wire the service's gauges/counters to a telemetry handle. Call
    /// after [`WorkerService::attach_replicas`] so per-replica lag gauges
    /// exist for every shard.
    pub fn set_telemetry(&mut self, handle: &TelemetryHandle) {
        self.telemetry = ServiceTelemetry {
            log_len: handle.gauge("crowd4u_worker_delta_log_len"),
            min_cursor: handle.gauge("crowd4u_worker_min_cursor"),
            truncated: handle.counter("crowd4u_worker_log_truncated_total"),
            snapshots: handle.counter("crowd4u_worker_snapshots_published_total"),
            snapshot_covered: handle.gauge("crowd4u_worker_snapshot_covered"),
            lag: (1..=self.replicas)
                .map(|shard| {
                    handle.gauge_with("crowd4u_worker_replica_lag", &format!("shard=\"{shard}\""))
                })
                .collect(),
        };
    }

    /// Append a worker event, drawing its sequence number **inside** the
    /// service critical section. The caller must already hold the
    /// coordinator mailbox lock (lock order: mailbox → service); `stamp`
    /// is the gate's stamper. Returns the drawn seq.
    pub(crate) fn append_with(&self, profile: WorkerProfile, stamp: impl FnOnce() -> u64) -> u64 {
        let mut s = self.state.lock().expect("worker service poisoned");
        let seq = stamp();
        s.log.push((seq, Arc::new(profile)));
        if self.snapshot_every > 0 && s.logical_len() - s.covered >= self.snapshot_every {
            s.refresh_snapshot();
            self.telemetry.snapshots.incr();
            self.telemetry.snapshot_covered.set(s.covered as i64);
        }
        self.truncate_and_observe(&mut s);
        seq
    }

    /// Current *logical* log length — the *bound* captured for seq-less
    /// control messages. Must be read under the destination mailbox's
    /// lock for the bound to compose with seq-ordered sync.
    pub(crate) fn log_len(&self) -> usize {
        self.state
            .lock()
            .expect("worker service poisoned")
            .logical_len()
    }

    /// Number of worker events appended so far (test/bench introspection).
    pub fn events_logged(&self) -> usize {
        self.log_len()
    }

    /// Resident (un-truncated) log entries (test/bench introspection).
    pub fn resident_log_len(&self) -> usize {
        self.state
            .lock()
            .expect("worker service poisoned")
            .log
            .len()
    }

    /// Whether a snapshot has been published (test/bench introspection).
    pub fn has_snapshot(&self) -> bool {
        self.state
            .lock()
            .expect("worker service poisoned")
            .published
            .is_some()
    }

    /// Install every log entry with seq < `upto` that `cursor` has not
    /// yet consumed. Called by replica shard `shard` right before it
    /// applies its own message stamped `upto`.
    pub(crate) fn sync_below_seq(
        &self,
        shard: usize,
        cursor: &mut usize,
        upto: u64,
        platform: &mut Crowd4U,
    ) {
        let plan = {
            let mut s = self.state.lock().expect("worker service poisoned");
            // Scan physically from the resident prefix end; a cursor
            // below `base` (late fresh consumer) is served by the
            // snapshot fast-forward in `plan_install`.
            let mut target = (*cursor).max(s.base);
            while target < s.logical_len() && s.log[target - s.base].0 < upto {
                target += 1;
            }
            let plan = plan_install(&s, cursor, target, is_fresh(platform));
            self.report_cursor(&mut s, shard, *cursor);
            plan
        };
        install(plan, platform);
    }

    /// Install every log entry up to logical position `bound` (a log
    /// length captured at enqueue time) that `cursor` has not yet
    /// consumed. Called by replica shard `shard` right before it runs a
    /// seq-less control message.
    pub(crate) fn sync_to_index(
        &self,
        shard: usize,
        cursor: &mut usize,
        bound: usize,
        platform: &mut Crowd4U,
    ) {
        if *cursor >= bound {
            return;
        }
        let plan = {
            let mut s = self.state.lock().expect("worker service poisoned");
            let target = bound.min(s.logical_len());
            let plan = plan_install(&s, cursor, target, is_fresh(platform));
            self.report_cursor(&mut s, shard, *cursor);
            plan
        };
        install(plan, platform);
    }

    /// A point-in-time view of the registration history for a recovery
    /// replay: the running compaction (everything folded below the
    /// truncation point) plus the resident delta suffix. Taken under the
    /// service lock, so it is internally consistent; the caller holds the
    /// dead shard's gate traffic, so nothing the rebuilt shard needs can
    /// append after this reads.
    ///
    /// The prefix comes from the **live** compaction, not the published
    /// snapshot — truncation advances `covered` without republishing, so
    /// the snapshot can sit below `base` and strand a replay that needs
    /// the folded entries.
    pub(crate) fn recovery_feed(&self) -> crate::recovery::WorkerFeed {
        let s = self.state.lock().expect("worker service poisoned");
        let prefix = (s.covered > 0).then(|| {
            (
                s.compacted.values().cloned().collect(),
                s.covered,
                s.covered_seq,
            )
        });
        crate::recovery::WorkerFeed {
            prefix,
            deltas: s.log.clone(),
            base: s.base,
        }
    }

    /// The last cursor replica `shard` reported (0 for the coordinator or
    /// before any sync) — the worker-install high-water mark a recovery
    /// replay must reproduce, no further.
    pub(crate) fn replica_cursor(&self, shard: usize) -> usize {
        let s = self.state.lock().expect("worker service poisoned");
        if shard >= 1 && shard <= s.cursors.len() {
            s.cursors[shard - 1]
        } else {
            0
        }
    }

    /// Re-register a rebuilt replica's cursor so truncation accounting
    /// stays correct across the restart (the dead incarnation's last
    /// report is replaced, not orphaned).
    pub(crate) fn reattach(&self, shard: usize, cursor: usize) {
        let mut s = self.state.lock().expect("worker service poisoned");
        self.report_cursor(&mut s, shard, cursor);
    }

    /// Record a replica's cursor, update its lag gauge, and truncate the
    /// prefix every replica (and the compaction) is done with. Runs under
    /// the service lock.
    fn report_cursor(&self, s: &mut ServiceState, shard: usize, cursor: usize) {
        if s.attached && shard >= 1 && shard <= s.cursors.len() {
            s.cursors[shard - 1] = cursor;
            if let Some(lag) = self.telemetry.lag.get(shard - 1) {
                lag.set((s.logical_len() - cursor) as i64);
            }
        }
        self.truncate_and_observe(s);
    }

    /// Drop the consumed log prefix (in [`TRUNCATE_CHUNK`] steps) and
    /// refresh the `delta_log_len` / `min_cursor` gauges.
    fn truncate_and_observe(&self, s: &mut ServiceState) {
        let min = s.min_cursor();
        if s.attached && min - s.base >= TRUNCATE_CHUNK {
            // Fold the entries about to drop into the running compaction
            // first — unconditionally, not just when snapshots are on —
            // so a later snapshot still covers them and a recovery replay
            // can always rebuild the full history.
            if s.covered < min {
                let (from, to) = (s.covered - s.base, min - s.base);
                s.covered_seq = s.log[to - 1].0;
                let (log, compacted) = (&s.log, &mut s.compacted);
                for (_, p) in &log[from..to] {
                    compacted.insert(p.id, Arc::clone(p));
                }
                s.covered = min;
            }
            let dropped = min - s.base;
            s.log.drain(..dropped);
            s.base = min;
            self.telemetry.truncated.add(dropped as u64);
        }
        self.telemetry.log_len.set(s.log.len() as i64);
        self.telemetry.min_cursor.set(min as i64);
    }
}

/// A compacted, version-keyed view of the logical log prefix
/// `[..covered]`.
struct Snapshot {
    covered: usize,
    profiles: BTreeMap<WorkerId, Arc<WorkerProfile>>,
}

/// What a sync resolved to, computed under the service lock but installed
/// outside it (the plan holds `Arc` clones, so truncation by another
/// replica cannot invalidate it).
struct InstallPlan {
    snapshot: Option<Arc<Snapshot>>,
    deltas: Vec<Arc<WorkerProfile>>,
}

fn is_fresh(platform: &Crowd4U) -> bool {
    platform.workers.is_empty() && platform.project_ids().is_empty()
}

fn plan_install(s: &ServiceState, cursor: &mut usize, target: usize, fresh: bool) -> InstallPlan {
    let mut snapshot = None;
    if *cursor == 0 && fresh {
        if let Some(p) = &s.published {
            if p.covered <= target {
                snapshot = Some(Arc::clone(p));
                *cursor = p.covered;
            }
        }
    }
    // Attached replicas always sit at or above `base` (truncation stops
    // at their minimum); an unattached late consumer below `base` must
    // have been fast-forwarded by a covering snapshot above.
    assert!(
        *cursor >= s.base,
        "worker log truncated past an unattached replica cursor"
    );
    let deltas = s.log[(*cursor - s.base)..(target - s.base)]
        .iter()
        .map(|(_, p)| Arc::clone(p))
        .collect();
    *cursor = target;
    InstallPlan { snapshot, deltas }
}

fn install(plan: InstallPlan, platform: &mut Crowd4U) {
    if let Some(snap) = plan.snapshot {
        platform.install_worker_snapshot(
            snap.profiles.values().map(|p| (**p).clone()),
            snap.covered as u64,
        );
    }
    for p in plan.deltas {
        platform.install_worker_delta((*p).clone());
    }
}

impl ServiceState {
    fn refresh_snapshot(&mut self) {
        // Split-borrow: extend the running compaction with the new log
        // suffix, then publish an Arc'd copy keyed by how much it covers.
        let covered = self.covered - self.base;
        if let Some((seq, _)) = self.log.last() {
            self.covered_seq = *seq;
        }
        for (_, p) in &self.log[covered..] {
            self.compacted.insert(p.id, Arc::clone(p));
        }
        self.covered = self.logical_len();
        self.published = Some(Arc::new(Snapshot {
            covered: self.covered,
            profiles: self.compacted.clone(),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(i: u64) -> WorkerProfile {
        WorkerProfile::new(WorkerId(i), format!("w{i}"))
    }

    fn fill(svc: &WorkerService, ids: impl IntoIterator<Item = u64>, seq: &mut u64) {
        for i in ids {
            svc.append_with(profile(i), || {
                *seq += 1;
                *seq
            });
        }
    }

    #[test]
    fn deltas_install_in_seq_order_with_version_lockstep() {
        let svc = WorkerService::new(0);
        let mut seq = 0u64;
        fill(&svc, 1..=5, &mut seq);
        let mut replica = Crowd4U::new();
        let mut cursor = 0;
        svc.sync_below_seq(1, &mut cursor, 4, &mut replica); // seqs 1..3
        assert_eq!(replica.workers.len(), 3);
        assert_eq!(replica.workers.version(), 3);
        svc.sync_below_seq(1, &mut cursor, u64::MAX, &mut replica);
        assert_eq!(replica.workers.len(), 5);
        assert_eq!(replica.workers.version(), 5);
        // Idempotent: the cursor remembers what is already installed.
        svc.sync_below_seq(1, &mut cursor, u64::MAX, &mut replica);
        assert_eq!(replica.workers.version(), 5);
    }

    #[test]
    fn index_bound_sync_stops_at_the_bound() {
        let svc = WorkerService::new(0);
        let mut seq = 0u64;
        fill(&svc, 1..=4, &mut seq);
        let mut replica = Crowd4U::new();
        let mut cursor = 0;
        svc.sync_to_index(1, &mut cursor, 2, &mut replica);
        assert_eq!(replica.workers.len(), 2);
        svc.sync_to_index(1, &mut cursor, 2, &mut replica); // no-op
        assert_eq!(replica.workers.version(), 2);
        svc.sync_to_index(1, &mut cursor, 4, &mut replica);
        assert_eq!(replica.workers.len(), 4);
    }

    #[test]
    fn fresh_replica_fast_forwards_through_snapshot() {
        let svc = WorkerService::new(2); // compact every 2 appends
        let mut seq = 0u64;
        // 3 events over 2 distinct workers: the snapshot compacts
        // re-registration churn.
        fill(&svc, [1, 2, 1], &mut seq);
        assert!(svc.has_snapshot());
        let mut replica = Crowd4U::new();
        let mut cursor = 0;
        svc.sync_below_seq(1, &mut cursor, u64::MAX, &mut replica);
        // 2 profiles resident, but version counts all 3 events — the
        // lockstep a delta-by-delta replica would reach.
        assert_eq!(replica.workers.len(), 2);
        assert_eq!(replica.workers.version(), 3);
    }

    #[test]
    fn non_fresh_replica_takes_the_delta_path() {
        let svc = WorkerService::new(1);
        let mut seq = 0u64;
        fill(&svc, 1..=3, &mut seq);
        assert!(svc.has_snapshot());
        let mut replica = Crowd4U::new();
        // Any pre-existing worker disqualifies the snapshot fast-path …
        replica.workers.register(profile(9));
        let mut cursor = 0;
        svc.sync_below_seq(1, &mut cursor, u64::MAX, &mut replica);
        // … so all 3 deltas install individually on top of it.
        assert_eq!(replica.workers.len(), 4);
        assert_eq!(replica.workers.version(), 1 + 3);
    }

    #[test]
    fn log_truncates_below_the_minimum_replica_cursor() {
        let mut svc = WorkerService::new(0);
        svc.attach_replicas(3); // replicas are shards 1 and 2
        let mut seq = 0u64;
        fill(&svc, 1..=200, &mut seq);
        assert_eq!(svc.events_logged(), 200);
        assert_eq!(svc.resident_log_len(), 200); // nobody consumed yet

        let (mut r1, mut r2) = (Crowd4U::new(), Crowd4U::new());
        let (mut c1, mut c2) = (0usize, 0usize);
        svc.sync_to_index(1, &mut c1, 150, &mut r1);
        // Replica 2 still at 0 — min cursor pins the log.
        assert_eq!(svc.resident_log_len(), 200);
        svc.sync_to_index(2, &mut c2, 100, &mut r2);
        // min cursor = 100: prefix dropped, logical length unchanged.
        assert_eq!(svc.resident_log_len(), 100);
        assert_eq!(svc.events_logged(), 200);
        // Logical cursors keep working across the truncation.
        svc.sync_to_index(2, &mut c2, 200, &mut r2);
        svc.sync_below_seq(1, &mut c1, u64::MAX, &mut r1);
        assert_eq!(r1.workers.len(), 200);
        assert_eq!(r2.workers.len(), 200);
        assert_eq!(r1.workers.version(), r2.workers.version());
        // Everyone at 200 ⇒ the whole log is reclaimable.
        assert!(svc.resident_log_len() < TRUNCATE_CHUNK);
    }

    #[test]
    fn truncation_folds_into_the_compaction_before_dropping() {
        let mut svc = WorkerService::new(1000); // snapshots on, far cadence
        svc.attach_replicas(2); // one replica: shard 1
        let mut seq = 0u64;
        fill(&svc, (1..=80).map(|i| i % 7 + 1), &mut seq);
        let mut r1 = Crowd4U::new();
        let mut c1 = 0usize;
        svc.sync_to_index(1, &mut c1, 80, &mut r1);
        assert!(svc.resident_log_len() < 80, "prefix should truncate");
        // A snapshot published *after* truncation must still cover the
        // dropped entries (the compaction absorbed them first).
        fill(&svc, 1..=1000, &mut seq);
        assert!(svc.has_snapshot());
        let mut fresh = Crowd4U::new();
        let mut c2 = 0usize;
        // Unattached replica id 2 (not in cursor set): plain consumer.
        svc.sync_below_seq(2, &mut c2, u64::MAX, &mut fresh);
        assert_eq!(fresh.workers.version(), 1080);
        assert_eq!(r1.workers.len(), 7); // ids 1..=7 from the churn prefix
        assert_eq!(fresh.workers.len(), 1000);
    }

    #[test]
    fn single_shard_runtime_reclaims_the_whole_log() {
        let mut svc = WorkerService::new(0);
        svc.attach_replicas(1); // no replicas: nothing ever pulls
        let mut seq = 0u64;
        fill(&svc, 1..=130, &mut seq);
        assert_eq!(svc.events_logged(), 130);
        assert!(svc.resident_log_len() < TRUNCATE_CHUNK);
    }

    /// A replica re-attaching after the delta log truncated below its old
    /// cursor must fast-forward through the compacted prefix — not panic,
    /// and not silently skip deltas (version lockstep pins that).
    #[test]
    fn recovery_feed_fast_forwards_past_truncation() {
        let mut svc = WorkerService::new(0); // snapshots fully disabled
        svc.attach_replicas(3); // replicas: shards 1 and 2
        let mut seq = 0u64;
        fill(&svc, 1..=150, &mut seq);
        let (mut r1, mut r2) = (Crowd4U::new(), Crowd4U::new());
        let (mut c1, mut c2) = (0usize, 0usize);
        svc.sync_to_index(1, &mut c1, 150, &mut r1);
        svc.sync_to_index(2, &mut c2, 100, &mut r2);
        // min cursor 100: the log truncated below replica 1's cursor.
        assert!(svc.resident_log_len() <= 50);
        let feed = svc.recovery_feed();
        assert!(feed.base >= 100, "prefix below base must be compacted");
        let (covered, covered_seq) = {
            let (_, covered, covered_seq) = feed.prefix.as_ref().expect("fold ran");
            (*covered, *covered_seq)
        };
        assert_eq!(covered, feed.base);
        assert_eq!(covered_seq, feed.base as u64); // seqs are 1-based here
                                                   // Rebuild replica 1 from the feed, capped at its reported cursor.
        let upto = svc.replica_cursor(1);
        assert_eq!(upto, 150);
        let (rebuilt, cursor) =
            crate::recovery::replay_slice(Crowd4U::new(), &[], Some((&feed, upto)), true);
        assert_eq!(cursor, 150);
        svc.reattach(1, cursor);
        assert_eq!(svc.replica_cursor(1), 150);
        // Same registry, same version lockstep as the live replica — a
        // silent delta skip would show up as a version mismatch.
        assert_eq!(rebuilt.workers.len(), 150);
        assert_eq!(rebuilt.workers.version(), r1.workers.version());
    }

    /// With the snapshot fast-forward disabled, a rebuild whose history
    /// was truncated must refuse loudly instead of replaying a hole.
    #[test]
    #[should_panic(expected = "recovery replay needs worker-log entries below the truncation")]
    fn recovery_replay_refuses_a_truncated_history_without_snapshots() {
        let mut svc = WorkerService::new(0);
        svc.attach_replicas(2); // one replica: shard 1
        let mut seq = 0u64;
        fill(&svc, 1..=150, &mut seq);
        let mut r1 = Crowd4U::new();
        let mut c1 = 0usize;
        svc.sync_to_index(1, &mut c1, 150, &mut r1);
        let feed = svc.recovery_feed();
        assert!(feed.base > 0, "the consumed prefix must have truncated");
        let _ = crate::recovery::replay_slice(Crowd4U::new(), &[], Some((&feed, 150)), false);
    }

    #[test]
    fn truncation_exports_gauges() {
        let registry = crowd4u_telemetry::Registry::new();
        let mut svc = WorkerService::new(0);
        svc.attach_replicas(2);
        svc.set_telemetry(&registry.handle());
        let mut seq = 0u64;
        fill(&svc, 1..=100, &mut seq);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge_total("crowd4u_worker_delta_log_len"), Some(100));
        assert_eq!(snap.gauge_total("crowd4u_worker_min_cursor"), Some(0));
        let mut r1 = Crowd4U::new();
        let mut c1 = 0usize;
        svc.sync_to_index(1, &mut c1, 100, &mut r1);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge_total("crowd4u_worker_delta_log_len"), Some(0));
        assert_eq!(snap.gauge_total("crowd4u_worker_min_cursor"), Some(100));
        assert_eq!(
            snap.counter_total("crowd4u_worker_log_truncated_total"),
            100
        );
        assert_eq!(snap.gauge_total("crowd4u_worker_replica_lag"), Some(0));
    }
}
