//! The coordinator-owned worker service.
//!
//! Before PR 7, every `WorkerRegistered` event was broadcast to all shard
//! mailboxes, so one registration cost O(shards) queue pushes and O(shards)
//! full applies — the fan-out that made million-worker churn infeasible.
//! Now the event is routed to **shard 0 (the coordinator) only**, which
//! journals and applies it; this service is the side channel the other
//! shards use to replicate the effect *exactly where the broadcast would
//! have placed it* in their own apply order.
//!
//! ## The seq-keyed delta log
//!
//! The service keeps an append-only log of `(seq, profile)` pairs, one per
//! worker event, in stamping order. The gate appends **while holding both
//! shard 0's mailbox lock and this service's lock, drawing the sequence
//! number inside the critical section** (`WorkerService::append_with`).
//! That coupling is what makes a replica's pull race-free: when a shard
//! holds the service lock, any worker event with a smaller seq has already
//! completed its append (it drew its seq inside an earlier critical
//! section), and any event still waiting for the lock will draw a larger
//! seq. So "install every log entry with seq < S, then apply S" replays
//! precisely the prefix the broadcast would have delivered before S.
//!
//! ## Sync points
//!
//! A non-coordinator shard syncs at exactly the places the old broadcast
//! interleaved worker events with its stream:
//!
//! * before applying a seq-stamped message (event or drain) at seq `S`:
//!   install all log entries with seq < `S`;
//! * before running a seq-less control message (job, finish): install up
//!   to the log length captured when the message was enqueued (the
//!   *bound*, recorded under the mailbox lock by the gate).
//!
//! Installs go through `Crowd4U::install_worker_delta` — registration
//! minus the journal entry and counter — so `WorkerManager::version()`
//! advances in the same lockstep the eligibility epoch cache and the
//! determinism contract key on.
//!
//! ## Snapshots
//!
//! Every `WORKER_SNAPSHOT_EVERY` appends (default 1024; 0 disables) the
//! service compacts the log prefix into a version-keyed snapshot (latest
//! profile per worker + how many events it covers). A **fresh** replica
//! (no workers, no projects) fast-forwards through the snapshot instead of
//! replaying each delta; `events_covered` keeps its worker version in
//! lockstep. Replicas that already hold projects take the delta path —
//! project registrations are broadcast, so in practice snapshots serve the
//! "bulk-register the crowd first" phase, which is exactly where 10⁵–10⁶
//! registrations happen.
//!
//! The log itself is currently unbounded (profiles are `Arc`-shared with
//! snapshots, so the overhead per entry is one pointer + seq); truncating
//! below the minimum shard cursor is recorded as ROADMAP residue.

use crowd4u_core::platform::Crowd4U;
use crowd4u_crowd::profile::{WorkerId, WorkerProfile};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Snapshot cadence env knob: compact every N appends (0 disables).
pub const SNAPSHOT_EVERY_ENV: &str = "WORKER_SNAPSHOT_EVERY";
const SNAPSHOT_EVERY_DEFAULT: usize = 1024;

/// Coordinator-owned worker registry side channel (see module docs).
pub struct WorkerService {
    state: Mutex<ServiceState>,
    snapshot_every: usize,
}

#[derive(Default)]
struct ServiceState {
    /// `(seq, profile)` per worker event, ascending seq by construction
    /// (appends draw their seq inside this lock's critical section).
    log: Vec<(u64, Arc<WorkerProfile>)>,
    /// Running compaction of `log[..covered]`: latest profile per worker.
    compacted: BTreeMap<WorkerId, Arc<WorkerProfile>>,
    covered: usize,
    /// Latest published snapshot, shared with every shard that uses it.
    published: Option<Arc<Snapshot>>,
}

/// A compacted, version-keyed view of the log prefix `[..covered]`.
struct Snapshot {
    covered: usize,
    profiles: BTreeMap<WorkerId, Arc<WorkerProfile>>,
}

impl WorkerService {
    pub fn new(snapshot_every: usize) -> WorkerService {
        WorkerService {
            state: Mutex::new(ServiceState::default()),
            snapshot_every,
        }
    }

    /// Cadence from `WORKER_SNAPSHOT_EVERY` (default 1024, 0 disables).
    pub fn from_env() -> WorkerService {
        let every = std::env::var(SNAPSHOT_EVERY_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(SNAPSHOT_EVERY_DEFAULT);
        WorkerService::new(every)
    }

    /// Append a worker event, drawing its sequence number **inside** the
    /// service critical section. The caller must already hold the
    /// coordinator mailbox lock (lock order: mailbox → service); `stamp`
    /// is the gate's stamper. Returns the drawn seq.
    pub(crate) fn append_with(&self, profile: WorkerProfile, stamp: impl FnOnce() -> u64) -> u64 {
        let mut s = self.state.lock().expect("worker service poisoned");
        let seq = stamp();
        s.log.push((seq, Arc::new(profile)));
        if self.snapshot_every > 0 && s.log.len() - s.covered >= self.snapshot_every {
            s.refresh_snapshot();
        }
        seq
    }

    /// Current log length — the *bound* captured for seq-less control
    /// messages. Must be read under the destination mailbox's lock for
    /// the bound to compose with seq-ordered sync.
    pub(crate) fn log_len(&self) -> usize {
        self.state
            .lock()
            .expect("worker service poisoned")
            .log
            .len()
    }

    /// Number of worker events appended so far (test/bench introspection).
    pub fn events_logged(&self) -> usize {
        self.log_len()
    }

    /// Whether a snapshot has been published (test/bench introspection).
    pub fn has_snapshot(&self) -> bool {
        self.state
            .lock()
            .expect("worker service poisoned")
            .published
            .is_some()
    }

    /// Install every log entry with seq < `upto` that `cursor` has not
    /// yet consumed. Called by a replica right before it applies its own
    /// message stamped `upto`.
    pub(crate) fn sync_below_seq(&self, cursor: &mut usize, upto: u64, platform: &mut Crowd4U) {
        let plan = {
            let s = self.state.lock().expect("worker service poisoned");
            let mut target = *cursor;
            while target < s.log.len() && s.log[target].0 < upto {
                target += 1;
            }
            plan_install(&s, cursor, target, is_fresh(platform))
        };
        install(plan, platform);
    }

    /// Install every log entry up to index `bound` (a log length captured
    /// at enqueue time) that `cursor` has not yet consumed. Called by a
    /// replica right before it runs a seq-less control message.
    pub(crate) fn sync_to_index(&self, cursor: &mut usize, bound: usize, platform: &mut Crowd4U) {
        if *cursor >= bound {
            return;
        }
        let plan = {
            let s = self.state.lock().expect("worker service poisoned");
            let target = bound.min(s.log.len());
            plan_install(&s, cursor, target, is_fresh(platform))
        };
        install(plan, platform);
    }
}

/// What a sync resolved to, computed under the service lock but installed
/// outside it (entries below the target are immutable once planned).
struct InstallPlan {
    snapshot: Option<Arc<Snapshot>>,
    deltas: Vec<Arc<WorkerProfile>>,
}

fn is_fresh(platform: &Crowd4U) -> bool {
    platform.workers.is_empty() && platform.project_ids().is_empty()
}

fn plan_install(s: &ServiceState, cursor: &mut usize, target: usize, fresh: bool) -> InstallPlan {
    let mut snapshot = None;
    if *cursor == 0 && fresh {
        if let Some(p) = &s.published {
            if p.covered <= target {
                snapshot = Some(Arc::clone(p));
                *cursor = p.covered;
            }
        }
    }
    let deltas = s.log[*cursor..target]
        .iter()
        .map(|(_, p)| Arc::clone(p))
        .collect();
    *cursor = target;
    InstallPlan { snapshot, deltas }
}

fn install(plan: InstallPlan, platform: &mut Crowd4U) {
    if let Some(snap) = plan.snapshot {
        platform.install_worker_snapshot(
            snap.profiles.values().map(|p| (**p).clone()),
            snap.covered as u64,
        );
    }
    for p in plan.deltas {
        platform.install_worker_delta((*p).clone());
    }
}

impl ServiceState {
    fn refresh_snapshot(&mut self) {
        // Split-borrow: extend the running compaction with the new log
        // suffix, then publish an Arc'd copy keyed by how much it covers.
        let (log, covered) = (&self.log, self.covered);
        for (_, p) in &log[covered..] {
            self.compacted.insert(p.id, Arc::clone(p));
        }
        self.covered = log.len();
        self.published = Some(Arc::new(Snapshot {
            covered: self.covered,
            profiles: self.compacted.clone(),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(i: u64) -> WorkerProfile {
        WorkerProfile::new(WorkerId(i), format!("w{i}"))
    }

    #[test]
    fn deltas_install_in_seq_order_with_version_lockstep() {
        let svc = WorkerService::new(0);
        let mut seq = 0u64;
        for i in 1..=5 {
            svc.append_with(profile(i), || {
                seq += 1;
                seq
            });
        }
        let mut replica = Crowd4U::new();
        let mut cursor = 0;
        svc.sync_below_seq(&mut cursor, 4, &mut replica); // seqs 1..3
        assert_eq!(replica.workers.len(), 3);
        assert_eq!(replica.workers.version(), 3);
        svc.sync_below_seq(&mut cursor, u64::MAX, &mut replica);
        assert_eq!(replica.workers.len(), 5);
        assert_eq!(replica.workers.version(), 5);
        // Idempotent: the cursor remembers what is already installed.
        svc.sync_below_seq(&mut cursor, u64::MAX, &mut replica);
        assert_eq!(replica.workers.version(), 5);
    }

    #[test]
    fn index_bound_sync_stops_at_the_bound() {
        let svc = WorkerService::new(0);
        let mut seq = 0u64;
        for i in 1..=4 {
            svc.append_with(profile(i), || {
                seq += 1;
                seq
            });
        }
        let mut replica = Crowd4U::new();
        let mut cursor = 0;
        svc.sync_to_index(&mut cursor, 2, &mut replica);
        assert_eq!(replica.workers.len(), 2);
        svc.sync_to_index(&mut cursor, 2, &mut replica); // no-op
        assert_eq!(replica.workers.version(), 2);
        svc.sync_to_index(&mut cursor, 4, &mut replica);
        assert_eq!(replica.workers.len(), 4);
    }

    #[test]
    fn fresh_replica_fast_forwards_through_snapshot() {
        let svc = WorkerService::new(2); // compact every 2 appends
        let mut seq = 0u64;
        // 3 events over 2 distinct workers: the snapshot compacts
        // re-registration churn.
        for i in [1, 2, 1] {
            svc.append_with(profile(i), || {
                seq += 1;
                seq
            });
        }
        assert!(svc.has_snapshot());
        let mut replica = Crowd4U::new();
        let mut cursor = 0;
        svc.sync_below_seq(&mut cursor, u64::MAX, &mut replica);
        // 2 profiles resident, but version counts all 3 events — the
        // lockstep a delta-by-delta replica would reach.
        assert_eq!(replica.workers.len(), 2);
        assert_eq!(replica.workers.version(), 3);
    }

    #[test]
    fn non_fresh_replica_takes_the_delta_path() {
        let svc = WorkerService::new(1);
        let mut seq = 0u64;
        for i in 1..=3 {
            svc.append_with(profile(i), || {
                seq += 1;
                seq
            });
        }
        assert!(svc.has_snapshot());
        let mut replica = Crowd4U::new();
        // Any pre-existing worker disqualifies the snapshot fast-path …
        replica.workers.register(profile(9));
        let mut cursor = 0;
        svc.sync_below_seq(&mut cursor, u64::MAX, &mut replica);
        // … so all 3 deltas install individually on top of it.
        assert_eq!(replica.workers.len(), 4);
        assert_eq!(replica.workers.version(), 1 + 3);
    }
}
