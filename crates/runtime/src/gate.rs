//! The ingestion front door: many concurrent producers, one deterministic
//! event order.
//!
//! [`IngestGate`] is a cloneable handle that any number of client threads
//! can submit [`PlatformEvent`]s through simultaneously. It replaces the
//! single-submitter router bottleneck (the PR 3 `&mut self` API, where
//! every client had to funnel through one thread) with:
//!
//! * a **lock-free global sequence stamper** — one `AtomicU64` fetch-add
//!   is the only state all producers share;
//! * **per-shard bounded MPSC mailboxes** — producers targeting different
//!   shards proceed in parallel and contend only on the owner shard's
//!   queue; and
//! * **backpressure** when a mailbox is full, with both policies: block
//!   ([`IngestGate::submit`]) or typed error ([`IngestGate::try_submit`],
//!   which hands the event back in [`GateError::Full`]). A rejected event
//!   is returned to the caller, and no accepted event is ever dropped —
//!   except when its destination shard thread dies before applying it
//!   *with recovery disabled*, in which case the shard's mailbox is
//!   abandoned (queued events discarded, the mailbox closed) so callers
//!   fail fast with [`GateError::ShardDown`] — scoped to the dead shard,
//!   healthy shards keep accepting — and the panic resurfaces from
//!   `ShardedRuntime::finish`. With recovery enabled the mailbox is
//!   instead *held* ([`GateError::Recovering`] on `try_submit`, a wait on
//!   blocking `submit`) while the shard respawns and replays its slice;
//!   queued events are preserved and applied by the rebuilt consumer, so
//!   nothing is lost. Migrations quiesce a single project the same way
//!   ([`GateError::Migrating`]).
//!
//! # Ordering guarantee (why the stamp happens inside the shard lock)
//!
//! The determinism contract (ARCHITECTURE.md) requires each shard to apply
//! its slice of the event stream **in global sequence order** — that is
//! what makes the merged journal byte-identical to a serial run. A naive
//! "stamp, then enqueue" scheme breaks it: producer A could take seq 5,
//! get preempted, and producer B could take seq 6 and enqueue to the same
//! shard first. The gate therefore acquires the destination mailbox lock
//! *first*, waits for room (waiting releases the lock, so it never blocks
//! the consumer), and only then stamps and pushes while still holding the
//! lock. Two consequences:
//!
//! * per mailbox, queue order == sequence order, always;
//! * sequence numbers may have gaps (a `try_submit` that found the queue
//!   full never stamps, but a producer that panics between operations
//!   cannot leave one — stamp and push are adjacent under the lock).
//!   Nothing in the runtime requires density: the merged journal sorts by
//!   sequence number, not by counting.
//!
//! Global-scope events (see [`EventScope`]) are fanned out to **every**
//! mailbox under **all** shard locks (acquired in ascending index order, so
//! two broadcasts cannot deadlock), which keeps the broadcast-lockstep rule
//! intact: every shard sees a broadcast at the same position relative to
//! its project-scoped events. Broadcast admission is all-or-nothing — with
//! every lock held, room is verified on every mailbox before any push, so
//! `try_submit` can never leave a partial broadcast behind.
//!
//! Worker-scoped events are **not** broadcast: they are delivered to the
//! coordinator's mailbox only and simultaneously appended to the
//! [`WorkerService`] delta log, with the
//! sequence number drawn inside the service's critical section (while the
//! mailbox lock is still held). Replicas pull seq-keyed deltas from the
//! service before applying any later-stamped message, reproducing the
//! broadcast's interleaving at O(1) submission cost per event instead of
//! O(shards) — see `crate::workers` for the ordering argument.
//!
//! Producers to distinct shards share nothing but the atomic stamper; the
//! per-shard critical section is a few `VecDeque` operations. The gate is
//! wired into [`ShardedRuntime`](crate::router::ShardedRuntime), which
//! spawns the shard consumers and hands out handles via
//! [`gate()`](crate::router::ShardedRuntime::gate).

use crate::recovery::ShardLedger;
use crate::shard::ToShard;
use crate::workers::WorkerService;
use crowd4u_core::error::ProjectId;
use crowd4u_core::events::{EventScope, PlatformEvent};
use crowd4u_telemetry::{stage, Histogram, TelemetryHandle};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Why a submission did not enter the runtime. Every variant hands the
/// event back so the caller can retry, reroute or surface it — the gate
/// never swallows an event it did not accept.
#[derive(Debug)]
pub enum GateError {
    /// The runtime has shut down (or is shutting down); nothing is
    /// accepted any more.
    Closed(Box<PlatformEvent>),
    /// `try_submit` only: the destination mailbox (for a broadcast: the
    /// first full mailbox found) had no room. Retry later, or use the
    /// blocking [`IngestGate::submit`].
    Full {
        /// The shard whose mailbox was full.
        shard: usize,
        /// The rejected event, handed back for retry.
        event: Box<PlatformEvent>,
    },
    /// The destination shard's thread died and recovery is disabled —
    /// the error is scoped to that shard: events owned by healthy
    /// shards (and worker events, while the coordinator lives) keep
    /// flowing. The dead shard's panic resurfaces from
    /// `ShardedRuntime::finish`.
    ShardDown {
        /// The shard whose consumer is gone.
        shard: usize,
        /// The rejected event, handed back.
        event: Box<PlatformEvent>,
    },
    /// `try_submit` only: the destination shard died and is currently
    /// rebuilding its slice from the ledger. Retry shortly, or use the
    /// blocking [`IngestGate::submit`], which waits out the recovery.
    Recovering {
        /// The shard being respawned.
        shard: usize,
        /// The rejected event, handed back for retry.
        event: Box<PlatformEvent>,
    },
    /// `try_submit` only: admission is briefly held while a project
    /// migrates between shards (the quiesced project's events, plus
    /// broadcasts and worker events — they interleave with every
    /// slice). Retry shortly, or use the blocking
    /// [`IngestGate::submit`], which waits out the migration.
    Migrating {
        /// A project currently being migrated.
        project: ProjectId,
        /// The rejected event, handed back for retry.
        event: Box<PlatformEvent>,
    },
}

impl GateError {
    /// Recover the event that was not accepted.
    pub fn into_event(self) -> PlatformEvent {
        match self {
            GateError::Closed(e) => *e,
            GateError::Full { event, .. }
            | GateError::ShardDown { event, .. }
            | GateError::Recovering { event, .. }
            | GateError::Migrating { event, .. } => *event,
        }
    }
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::Closed(_) => write!(f, "ingestion gate closed (runtime shut down)"),
            GateError::Full { shard, .. } => {
                write!(f, "shard {shard} mailbox full (backpressure)")
            }
            GateError::ShardDown { shard, .. } => {
                write!(
                    f,
                    "shard {shard} is down (its thread panicked; recovery disabled)"
                )
            }
            GateError::Recovering { shard, .. } => {
                write!(f, "shard {shard} is recovering (slice replay in progress)")
            }
            GateError::Migrating { project, .. } => {
                write!(f, "admission held while project {project} migrates")
            }
        }
    }
}

impl std::error::Error for GateError {}

/// One shard's bounded MPSC mailbox. The mutex covers only a few
/// `VecDeque` operations; waiting (producer on `not_full`, consumer on
/// `not_empty`) always releases it.
struct ShardQueue {
    state: Mutex<QueueState>,
    not_full: Condvar,
    not_empty: Condvar,
}

struct QueueState {
    /// Messages with their enqueue timestamp (`None` when telemetry is
    /// off — the mailbox-dwell histogram is fed on pop).
    queue: VecDeque<(ToShard, Option<Instant>)>,
    /// Data events ([`ToShard::Apply`]) currently queued. The capacity
    /// bound applies to this count only — control messages (jobs, flushes,
    /// barriers) ride along unbounded, so a full mailbox can never wedge
    /// the control plane, and a queued job never eats a data slot.
    data_len: usize,
    closed: bool,
    /// The consumer thread died unrecoverably (abandoned mailbox while
    /// the runtime was live). Implies `closed`; scopes the producer
    /// error to [`GateError::ShardDown`] instead of the runtime-wide
    /// [`GateError::Closed`].
    dead: bool,
    /// The consumer thread died and is rebuilding its slice. New data
    /// events are held ([`GateError::Recovering`] / blocking wait);
    /// queued messages are preserved — they are the traffic the
    /// recovered shard resumes with, still in sequence order.
    recovering: bool,
    /// True while the shard consumer is parked on `not_empty`; producers
    /// skip the signal entirely when it is not (the common case under
    /// load), keeping the hot submit path to a lock + stamp + push.
    consumer_waiting: bool,
    /// Producers currently parked on `not_full`; the consumer skips the
    /// signal when nobody is (always, in unbounded mode), keeping the hot
    /// pop path to a lock + pop — the mirror of `consumer_waiting`.
    producers_waiting: usize,
}

impl QueueState {
    fn push_data(&mut self, msg: ToShard, at: Option<Instant>) {
        self.queue.push_back((msg, at));
        self.data_len += 1;
    }

    fn notify_consumer(&mut self, q: &ShardQueue) {
        if self.consumer_waiting {
            self.consumer_waiting = false;
            q.not_empty.notify_one();
        }
    }
}

fn lock(q: &ShardQueue) -> MutexGuard<'_, QueueState> {
    q.state.lock().unwrap_or_else(PoisonError::into_inner)
}

fn lock_plain<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The shared state behind every [`IngestGate`] handle and every shard
/// consumer.
pub(crate) struct GateCore {
    /// The lock-free global sequence stamper.
    stamper: AtomicU64,
    /// Mailbox capacity (data events only; runtime control messages are
    /// exempt so a full queue can never wedge a drain barrier).
    capacity: usize,
    queues: Vec<ShardQueue>,
    /// The coordinator-owned worker registry side channel; worker events
    /// are appended here (instead of broadcast) and replicas pull them.
    service: Arc<WorkerService>,
    /// Gate-admission span histogram (the whole route: lock, stamp, push).
    admit: Histogram,
    /// Mailbox-dwell histogram: enqueue → pop, observed by the consumer.
    dwell: Histogram,
    /// Per-shard applied-history slots: the replay source for recovery
    /// and migration, and where `finish()` collects the merged journal.
    ledger: ShardLedger,
    /// Routing-table overrides installed by migrations. `owner_of`
    /// consults this only while `overridden != 0` — the common
    /// no-migration case stays a pure function of the id.
    overrides: Mutex<BTreeMap<u64, usize>>,
    /// Number of projects with a routing override (fast-path guard).
    overridden: AtomicUsize,
    /// Projects currently quiesced by an in-flight migration. While any
    /// hold is active, broadcasts and worker events are held too — they
    /// interleave with every shard's slice.
    holds: Mutex<BTreeSet<u64>>,
    /// Number of active migration holds (fast-path guard, checked inside
    /// mailbox critical sections so admission cannot race a hold).
    holding: AtomicUsize,
    /// Signalled when a migration hold is released.
    released: Condvar,
}

impl GateCore {
    pub(crate) fn new(
        shards: usize,
        capacity: usize,
        service: Arc<WorkerService>,
        telemetry: &TelemetryHandle,
    ) -> GateCore {
        GateCore {
            stamper: AtomicU64::new(0),
            service,
            admit: telemetry.histogram(stage::GATE_ADMIT),
            dwell: telemetry.histogram(stage::MAILBOX_DWELL),
            ledger: ShardLedger::new(shards),
            overrides: Mutex::new(BTreeMap::new()),
            overridden: AtomicUsize::new(0),
            holds: Mutex::new(BTreeSet::new()),
            holding: AtomicUsize::new(0),
            released: Condvar::new(),
            // `0` means unbounded (backpressure disabled).
            capacity: if capacity == 0 { usize::MAX } else { capacity },
            queues: (0..shards.max(1))
                .map(|_| ShardQueue {
                    state: Mutex::new(QueueState {
                        // Pre-size bounded mailboxes (within reason) so the
                        // hot submit path never pays a reallocation.
                        queue: if capacity == 0 {
                            VecDeque::new()
                        } else {
                            VecDeque::with_capacity(capacity.min(8192))
                        },
                        data_len: 0,
                        closed: false,
                        dead: false,
                        recovering: false,
                        consumer_waiting: false,
                        producers_waiting: 0,
                    }),
                    not_full: Condvar::new(),
                    not_empty: Condvar::new(),
                })
                .collect(),
        }
    }

    /// The per-shard applied-history ledger.
    pub(crate) fn ledger(&self) -> &ShardLedger {
        &self.ledger
    }

    pub(crate) fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The worker service replicas sync from (shard consumers hold a
    /// clone; tests and benches introspect it).
    pub(crate) fn worker_service(&self) -> &Arc<WorkerService> {
        &self.service
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// The shard owning a project: a routing-table override when a
    /// migration installed one, else round-robin over registration order
    /// (raw/unregistered ids land on the coordinator). The override map
    /// is consulted only while at least one override exists, so the
    /// no-migration fast path stays a pure function of the id.
    pub(crate) fn owner_of(&self, project: ProjectId) -> usize {
        if self.overridden.load(Ordering::Acquire) != 0 {
            if let Some(&shard) = lock_plain(&self.overrides).get(&project.0) {
                return shard;
            }
        }
        if project.0 == 0 {
            0
        } else {
            ((project.0 - 1) % self.queues.len() as u64) as usize
        }
    }

    /// Flip a project's ownership in the routing table (migration
    /// commit). Callers must have the project's traffic held — the flip
    /// itself is atomic but not fenced against in-flight routing.
    pub(crate) fn set_owner(&self, project: ProjectId, shard: usize) {
        assert!(shard < self.queues.len(), "owner shard out of range");
        let mut map = lock_plain(&self.overrides);
        let fresh = map.insert(project.0, shard).is_none();
        if fresh {
            self.overridden.fetch_add(1, Ordering::Release);
        }
    }

    /// Are any routing overrides installed? (Recovery uses this to skip
    /// the cross-slot scan for migrated-in projects.)
    pub(crate) fn has_overrides(&self) -> bool {
        self.overridden.load(Ordering::Acquire) != 0
    }

    /// Quiesce one project's admission (plus broadcasts and worker
    /// events) for a migration. After this returns, no new event that
    /// could touch the project's slice can enter any mailbox until
    /// [`release_migration`](GateCore::release_migration).
    pub(crate) fn hold_for_migration(&self, project: ProjectId) {
        {
            let mut holds = lock_plain(&self.holds);
            assert!(
                holds.insert(project.0),
                "project {project} is already migrating"
            );
            self.holding.fetch_add(1, Ordering::Release);
        }
        // Fence: every producer checks the hold *inside* a mailbox
        // critical section, so taking each queue lock once guarantees
        // any submission that raced past the flag has fully enqueued —
        // and is therefore covered by the migration's source flush —
        // while everything after this loop observes the hold.
        for q in &self.queues {
            drop(lock(q));
        }
    }

    /// Release a migration hold and wake every producer waiting on it.
    pub(crate) fn release_migration(&self, project: ProjectId) {
        let mut holds = lock_plain(&self.holds);
        if holds.remove(&project.0) {
            self.holding.fetch_sub(1, Ordering::Release);
        }
        drop(holds);
        self.released.notify_all();
        for q in &self.queues {
            q.not_full.notify_all();
        }
    }

    /// Is `project` currently quiesced? Only meaningful inside a mailbox
    /// critical section (see [`hold_for_migration`]'s fence).
    fn project_held(&self, project: u64) -> bool {
        self.holding.load(Ordering::Acquire) != 0 && lock_plain(&self.holds).contains(&project)
    }

    /// Park until no migration hold is active (or the gate closes).
    fn wait_for_release(&self) {
        let mut holds = lock_plain(&self.holds);
        while self.holding.load(Ordering::Acquire) != 0 {
            holds = self
                .released
                .wait(holds)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Any project currently held (for typed errors on broadcast/worker
    /// submissions, which aren't project-scoped themselves).
    fn held_project(&self) -> ProjectId {
        ProjectId(lock_plain(&self.holds).iter().next().copied().unwrap_or(0))
    }

    /// Mark one shard as recovering: its mailbox holds new data events
    /// (blocking submits park, `try_submit` gets
    /// [`GateError::Recovering`]) while everything already queued stays
    /// put, awaiting the rebuilt consumer.
    pub(crate) fn begin_recovery(&self, shard: usize) {
        lock(&self.queues[shard]).recovering = true;
    }

    /// Recovery finished: release held producers; the respawned consumer
    /// resumes popping the intact mailbox.
    pub(crate) fn end_recovery(&self, shard: usize) {
        let q = &self.queues[shard];
        lock(q).recovering = false;
        q.not_full.notify_all();
        q.not_empty.notify_all();
    }

    /// Park until `shard` leaves recovery (or closes); the caller
    /// re-validates under its own locks afterwards.
    fn wait_for_recovery(&self, shard: usize) {
        let q = &self.queues[shard];
        let mut s = lock(q);
        while s.recovering && !s.closed {
            s.producers_waiting += 1;
            s = q.not_full.wait(s).unwrap_or_else(PoisonError::into_inner);
            s.producers_waiting -= 1;
        }
    }

    /// Data events queued for a shard right now (diagnostics; racy by
    /// nature).
    pub(crate) fn queued(&self, shard: usize) -> usize {
        lock(&self.queues[shard]).data_len
    }

    /// Route one event: stamp it with the next global sequence number and
    /// enqueue it on its destination mailbox(es). `wait` selects the
    /// backpressure policy.
    fn route(&self, event: PlatformEvent, wait: bool) -> Result<u64, GateError> {
        let _span = self.admit.span();
        match event.scope() {
            EventScope::Project(p) => self.route_project(p, event, wait),
            EventScope::Worker => self.route_worker(event, wait),
            EventScope::Global => self.route_global(event, wait),
        }
    }

    /// Worker-scoped delivery: the coordinator's mailbox only, plus an
    /// append to the worker service's delta log for replicas to pull.
    /// The sequence number is drawn **inside the service's critical
    /// section** (while the mailbox lock is still held): that is what
    /// lets a replica, by briefly holding the service lock, know that
    /// every worker event below its current seq has finished appending —
    /// see `crate::workers` for the full argument. Lock order is
    /// mailbox → service, same as the control-plane bound capture, so the
    /// pair cannot deadlock.
    fn route_worker(&self, event: PlatformEvent, wait: bool) -> Result<u64, GateError> {
        let q = &self.queues[0];
        let mut s = lock(q);
        loop {
            if s.dead {
                return Err(GateError::ShardDown {
                    shard: 0,
                    event: Box::new(event),
                });
            }
            if s.closed {
                return Err(GateError::Closed(Box::new(event)));
            }
            // Worker events interleave with every shard's slice, so any
            // active migration hold quiesces them too (checked inside the
            // critical section — see `hold_for_migration`'s fence).
            if self.holding.load(Ordering::Acquire) != 0 {
                drop(s);
                if !wait {
                    return Err(GateError::Migrating {
                        project: self.held_project(),
                        event: Box::new(event),
                    });
                }
                self.wait_for_release();
                s = lock(q);
                continue;
            }
            if s.recovering {
                if !wait {
                    return Err(GateError::Recovering {
                        shard: 0,
                        event: Box::new(event),
                    });
                }
                s.producers_waiting += 1;
                s = q.not_full.wait(s).unwrap_or_else(PoisonError::into_inner);
                s.producers_waiting -= 1;
                continue;
            }
            if s.data_len < self.capacity {
                break;
            }
            if !wait {
                return Err(GateError::Full {
                    shard: 0,
                    event: Box::new(event),
                });
            }
            s.producers_waiting += 1;
            s = q.not_full.wait(s).unwrap_or_else(PoisonError::into_inner);
            s.producers_waiting -= 1;
        }
        let PlatformEvent::WorkerRegistered { profile } = &event else {
            unreachable!("EventScope::Worker classifies worker registrations only");
        };
        let profile = profile.clone();
        let seq = self
            .service
            .append_with(profile, || self.stamper.fetch_add(1, Ordering::Relaxed));
        // Still holding the mailbox lock: stamp (inside the append) and
        // push are adjacent, so the coordinator mailbox stays in sequence
        // order, and the log entry is visible before the lock drops.
        let at = self.dwell.stamp();
        s.push_data(
            ToShard::Apply {
                seq,
                event,
                record: true,
            },
            at,
        );
        s.notify_consumer(q);
        Ok(seq)
    }

    /// Project-scoped delivery: one mailbox, `record: true` (the owner is
    /// the unique recorder). The owner is re-resolved after any migration
    /// wait — the hold exists precisely because ownership may flip.
    fn route_project(
        &self,
        project: ProjectId,
        event: PlatformEvent,
        wait: bool,
    ) -> Result<u64, GateError> {
        'resolve: loop {
            let shard = self.owner_of(project);
            let q = &self.queues[shard];
            let mut s = lock(q);
            loop {
                if s.dead {
                    return Err(GateError::ShardDown {
                        shard,
                        event: Box::new(event),
                    });
                }
                if s.closed {
                    return Err(GateError::Closed(Box::new(event)));
                }
                // Hold check inside the critical section: a submission
                // that misses the flag completes before the migration's
                // fence and is therefore swept up by its source flush.
                if self.project_held(project.0) {
                    drop(s);
                    if !wait {
                        return Err(GateError::Migrating {
                            project,
                            event: Box::new(event),
                        });
                    }
                    self.wait_for_release();
                    continue 'resolve;
                }
                if s.recovering {
                    if !wait {
                        return Err(GateError::Recovering {
                            shard,
                            event: Box::new(event),
                        });
                    }
                    s.producers_waiting += 1;
                    s = q.not_full.wait(s).unwrap_or_else(PoisonError::into_inner);
                    s.producers_waiting -= 1;
                    continue;
                }
                if s.data_len < self.capacity {
                    break;
                }
                if !wait {
                    return Err(GateError::Full {
                        shard,
                        event: Box::new(event),
                    });
                }
                s.producers_waiting += 1;
                s = q.not_full.wait(s).unwrap_or_else(PoisonError::into_inner);
                s.producers_waiting -= 1;
            }
            // Still holding the lock: nothing can interleave between the
            // stamp and the push, so this mailbox stays in sequence order.
            let seq = self.stamper.fetch_add(1, Ordering::Relaxed);
            let at = self.dwell.stamp();
            s.push_data(
                ToShard::Apply {
                    seq,
                    event,
                    record: true,
                },
                at,
            );
            s.notify_consumer(q);
            return Ok(seq);
        }
    }

    /// Global-scope delivery: every mailbox, under every shard lock
    /// (ascending order), all-or-nothing; the coordinator (shard 0) is the
    /// unique recorder. Dead shards (thread gone, recovery disabled) are
    /// skipped — their slice is already lost, and stalling every healthy
    /// shard's broadcasts on a corpse would globalise a scoped failure —
    /// unless the coordinator itself died, which leaves the broadcast with
    /// no recorder and must error.
    fn route_global(&self, event: PlatformEvent, wait: bool) -> Result<u64, GateError> {
        loop {
            let mut guards: Vec<MutexGuard<'_, QueueState>> =
                self.queues.iter().map(lock).collect();
            if guards[0].dead {
                return Err(GateError::ShardDown {
                    shard: 0,
                    event: Box::new(event),
                });
            }
            if guards.iter().any(|g| g.closed && !g.dead) {
                return Err(GateError::Closed(Box::new(event)));
            }
            // Broadcasts interleave with every slice: any migration hold
            // quiesces them (checked under all locks, same fence argument
            // as the project route).
            if self.holding.load(Ordering::Acquire) != 0 {
                drop(guards);
                if !wait {
                    return Err(GateError::Migrating {
                        project: self.held_project(),
                        event: Box::new(event),
                    });
                }
                self.wait_for_release();
                continue;
            }
            if let Some(r) = guards.iter().position(|g| g.recovering) {
                drop(guards);
                if !wait {
                    return Err(GateError::Recovering {
                        shard: r,
                        event: Box::new(event),
                    });
                }
                self.wait_for_recovery(r);
                continue;
            }
            if let Some(full) = guards
                .iter()
                .position(|g| !g.dead && g.data_len >= self.capacity)
            {
                // Drop every lock before waiting so no consumer is stalled
                // while we sleep; re-validate from scratch afterwards.
                drop(guards);
                if !wait {
                    return Err(GateError::Full {
                        shard: full,
                        event: Box::new(event),
                    });
                }
                // On a close (or death) of the full shard, re-validate from
                // the top: a genuine shutdown hits the closed check, a dead
                // shard is skipped by the dead check.
                self.wait_for_room(full);
                continue;
            }
            let live: Vec<usize> = (0..guards.len()).filter(|&i| !guards[i].dead).collect();
            let seq = self.stamper.fetch_add(1, Ordering::Relaxed);
            let at = self.dwell.stamp();
            let last = *live.last().expect("the coordinator is live");
            let mut event = Some(event);
            for &i in &live {
                let ev = if i == last {
                    event.take().expect("event consumed once")
                } else {
                    event.as_ref().expect("event alive").clone()
                };
                guards[i].push_data(
                    ToShard::Apply {
                        seq,
                        event: ev,
                        record: i == 0,
                    },
                    at,
                );
                guards[i].notify_consumer(&self.queues[i]);
            }
            return Ok(seq);
        }
    }

    /// Block until `shard`'s mailbox has room (or the gate closes —
    /// returns `false`).
    fn wait_for_room(&self, shard: usize) -> bool {
        let q = &self.queues[shard];
        let mut s = lock(q);
        while !s.closed && s.data_len >= self.capacity {
            s.producers_waiting += 1;
            s = q.not_full.wait(s).unwrap_or_else(PoisonError::into_inner);
            s.producers_waiting -= 1;
        }
        !s.closed
    }

    /// Seq-less control messages (jobs, finishes) carry a *bound*: the
    /// worker-service log length at enqueue time, captured under the
    /// destination mailbox lock. A replica installs log entries up to the
    /// bound before running the message, which reproduces exactly the
    /// worker events the old broadcast would have delivered ahead of it —
    /// any worker event already queued ahead of this message appended
    /// before this capture (its append happens under the same mailbox
    /// lock), and any event that appends after it will also be queued (or
    /// seq-stamped) after it.
    fn capture_bound(&self, msg: &mut ToShard) {
        match msg {
            ToShard::Job { bound, .. } | ToShard::Finish { bound, .. } => {
                *bound = self.service.log_len();
            }
            _ => {}
        }
    }

    /// Enqueue a runtime control message (job, flush) on one mailbox,
    /// capacity-exempt. Returns `false` if the gate is closed.
    pub(crate) fn push_control(&self, shard: usize, mut msg: ToShard) -> bool {
        let q = &self.queues[shard];
        let mut s = lock(q);
        if s.closed {
            return false;
        }
        self.capture_bound(&mut msg);
        let at = self.dwell.stamp();
        s.queue.push_back((msg, at));
        s.notify_consumer(q);
        true
    }

    /// A stamped barrier: under every shard lock, take one sequence number
    /// and enqueue `mk(shard, seq)` on every mailbox (capacity-exempt, so
    /// a full mailbox can never wedge the barrier that would drain it).
    /// Returns `None` if the gate is closed.
    pub(crate) fn stamped_barrier(&self, mk: impl Fn(usize, u64) -> ToShard) -> Option<u64> {
        let mut guards: Vec<MutexGuard<'_, QueueState>> = self.queues.iter().map(lock).collect();
        if guards.iter().any(|g| g.closed) {
            return None;
        }
        let seq = self.stamper.fetch_add(1, Ordering::Relaxed);
        let at = self.dwell.stamp();
        for (i, g) in guards.iter_mut().enumerate() {
            g.queue.push_back((mk(i, seq), at));
            g.notify_consumer(&self.queues[i]);
        }
        Some(seq)
    }

    /// Close every mailbox, enqueueing `mk(shard)` as each one's final
    /// message (atomically with the close, so no later submission can slip
    /// in behind it). Queued messages are still delivered; new submissions
    /// fail with [`GateError::Closed`].
    pub(crate) fn close_each(&self, mk: impl Fn(usize) -> ToShard) {
        // Ascending order matters: the coordinator's mailbox (shard 0)
        // closes first, so no further worker event can append once the
        // replicas' final messages capture their log bounds — a finish
        // bound therefore always covers the whole log.
        for (i, q) in self.queues.iter().enumerate() {
            let mut s = lock(q);
            if !s.closed {
                let mut msg = mk(i);
                self.capture_bound(&mut msg);
                let at = self.dwell.stamp();
                s.queue.push_back((msg, at));
                s.closed = true;
            }
            q.not_empty.notify_all();
            q.not_full.notify_all();
        }
    }

    /// Consumer-death guard (see `shard_main`): close one mailbox and drop
    /// everything still queued. Producers blocked on the full mailbox wake
    /// to [`GateError::ShardDown`] — scoped to this shard, so traffic for
    /// healthy shards keeps flowing — and reply `Sender`s queued for the
    /// dead shard are dropped so their `Receiver`s fail fast instead of
    /// waiting on a reply that can never come. On a normal shard exit the
    /// mailbox is already closed and drained, so this is a no-op (in
    /// particular it does *not* mark an orderly-shutdown shard dead).
    pub(crate) fn abandon(&self, shard: usize) {
        let q = &self.queues[shard];
        let mut s = lock(q);
        if !s.closed {
            s.dead = true;
        }
        s.closed = true;
        s.recovering = false;
        s.queue.clear();
        s.data_len = 0;
        drop(s);
        q.not_empty.notify_all();
        q.not_full.notify_all();
    }

    /// Close every mailbox without a final message (shutdown path).
    pub(crate) fn close(&self) {
        for q in &self.queues {
            let mut s = lock(q);
            s.closed = true;
            q.not_empty.notify_all();
            q.not_full.notify_all();
        }
    }

    /// Consumer side: the next message for `shard`, or `None` once the
    /// gate is closed and the mailbox drained.
    pub(crate) fn recv(&self, shard: usize) -> Option<ToShard> {
        let q = &self.queues[shard];
        let mut s = lock(q);
        loop {
            if let Some((msg, at)) = s.queue.pop_front() {
                self.dwell.since(at);
                if matches!(msg, ToShard::Apply { .. }) {
                    s.data_len -= 1;
                    if s.producers_waiting > 0 {
                        q.not_full.notify_all();
                    }
                }
                return Some(msg);
            }
            if s.closed {
                return None;
            }
            s.consumer_waiting = true;
            s = q.not_empty.wait(s).unwrap_or_else(PoisonError::into_inner);
            s.consumer_waiting = false;
        }
    }
}

/// A cloneable, thread-safe submission handle onto a
/// [`ShardedRuntime`](crate::router::ShardedRuntime)'s shard mailboxes.
///
/// Clone one per client thread; every handle shares the same global
/// sequence stamper and mailboxes. See the [module docs](self) for the
/// ordering and backpressure guarantees, and the crate docs for a runnable
/// multi-submitter example.
#[derive(Clone)]
pub struct IngestGate {
    core: Arc<GateCore>,
}

impl IngestGate {
    pub(crate) fn new(core: Arc<GateCore>) -> IngestGate {
        IngestGate { core }
    }

    pub(crate) fn core(&self) -> &Arc<GateCore> {
        &self.core
    }

    /// Submit one event, **blocking** while the destination mailbox is
    /// full (the backpressure default). Returns the event's global
    /// sequence number, or [`GateError::Closed`] with the event handed
    /// back if the runtime has shut down.
    pub fn submit(&self, event: PlatformEvent) -> Result<u64, GateError> {
        self.core.route(event, true)
    }

    /// Submit one event, **failing fast** when the destination mailbox is
    /// full: returns [`GateError::Full`] carrying the shard index and the
    /// event itself, so the caller decides — retry, shed load, or fall
    /// back to the blocking [`submit`](Self::submit). Broadcast events are
    /// admitted all-or-nothing: on `Full`, no shard received anything.
    pub fn try_submit(&self, event: PlatformEvent) -> Result<u64, GateError> {
        self.core.route(event, false)
    }

    /// Submit a batch in order (blocking policy). Sequence numbers of a
    /// batch are *not* guaranteed contiguous when other handles submit
    /// concurrently. Stops at the first error (runtime shut down).
    pub fn submit_batch(
        &self,
        events: impl IntoIterator<Item = PlatformEvent>,
    ) -> Result<(), GateError> {
        for e in events {
            self.submit(e)?;
        }
        Ok(())
    }

    /// Number of shards behind this gate.
    pub fn shards(&self) -> usize {
        self.core.shards()
    }

    /// Per-mailbox capacity (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.core.capacity()
    }

    /// The shard owning a project (round-robin by id, like the runtime).
    pub fn owner_of(&self, project: ProjectId) -> usize {
        self.core.owner_of(project)
    }

    /// Data events currently queued for one shard (a racy diagnostic —
    /// useful for load shedding and tests, not for synchronisation).
    pub fn queued(&self, shard: usize) -> usize {
        self.core.queued(shard)
    }
}

impl std::fmt::Debug for IngestGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestGate")
            .field("shards", &self.shards())
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_core::error::WorkerId;
    use crowd4u_crowd::profile::WorkerProfile;
    use std::sync::Arc;

    const _: () = {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IngestGate>();
    };

    fn gate(shards: usize, capacity: usize) -> (IngestGate, Arc<GateCore>) {
        let core = Arc::new(GateCore::new(
            shards,
            capacity,
            Arc::new(WorkerService::new(0)),
            &TelemetryHandle::disabled(),
        ));
        (IngestGate::new(Arc::clone(&core)), core)
    }

    fn seed(p: u64, s: &str) -> PlatformEvent {
        PlatformEvent::FactSeeded {
            project: ProjectId(p),
            pred: "item".into(),
            values: vec![s.into()],
        }
    }

    fn worker(i: u64) -> PlatformEvent {
        PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(i), format!("w{i}")),
        }
    }

    fn clock(t: u64) -> PlatformEvent {
        PlatformEvent::ClockAdvanced {
            to: crowd4u_sim::time::SimTime(t),
            owner: 0,
        }
    }

    /// Drain a mailbox after closing; returns (seq, record) of Apply
    /// messages in queue order.
    fn drain_applies(core: &GateCore, shard: usize) -> Vec<(u64, bool)> {
        let mut out = Vec::new();
        while let Some(msg) = core.recv(shard) {
            if let ToShard::Apply { seq, record, .. } = msg {
                out.push((seq, record));
            }
        }
        out
    }

    #[test]
    fn mailbox_order_is_seq_order_under_contention() {
        let (gate, core) = gate(2, 0);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let g = gate.clone();
            handles.push(std::thread::spawn(move || {
                let mut seqs = Vec::new();
                for i in 0..200u64 {
                    // Both shards, plus occasional coordinator-only worker
                    // events and true broadcasts.
                    let ev = if i % 50 == 49 {
                        worker(t * 1000 + i)
                    } else if i % 50 == 24 {
                        clock(t * 1000 + i)
                    } else {
                        seed(1 + (i % 2), "x")
                    };
                    seqs.push(g.submit(ev).unwrap());
                }
                seqs
            }));
        }
        let mut all_seqs: Vec<u64> = Vec::new();
        for h in handles {
            all_seqs.extend(h.join().unwrap());
        }
        core.close();
        // Every seq unique; per-mailbox order strictly increasing; every
        // event has exactly one recorder (broadcast replicas on shard > 0
        // are unrecorded).
        all_seqs.sort_unstable();
        all_seqs.dedup();
        assert_eq!(all_seqs.len(), 800);
        let mut recorded = 0usize;
        for shard in 0..2 {
            let applies = drain_applies(&core, shard);
            assert!(
                applies.windows(2).all(|w| w[0].0 < w[1].0),
                "shard {shard} mailbox out of sequence order"
            );
            recorded += applies.iter().filter(|(_, record)| *record).count();
        }
        assert_eq!(recorded, 800);
    }

    #[test]
    fn try_submit_fills_then_errors_and_hands_the_event_back() {
        let (gate, core) = gate(1, 3);
        for i in 0..3 {
            gate.try_submit(seed(1, &format!("{i}"))).unwrap();
        }
        let err = gate.try_submit(seed(1, "overflow")).unwrap_err();
        match err {
            GateError::Full { shard, event } => {
                assert_eq!(shard, 0);
                assert_eq!(*event, seed(1, "overflow"));
            }
            other => panic!("expected Full, got {other:?}"),
        }
        // Popping one frees room for exactly one more.
        assert!(core.recv(0).is_some());
        gate.try_submit(seed(1, "fits")).unwrap();
        assert_eq!(gate.queued(0), 3);
    }

    #[test]
    fn broadcast_admission_is_all_or_nothing() {
        let (gate, core) = gate(2, 2);
        // Fill shard 1 only.
        gate.submit(seed(2, "a")).unwrap();
        gate.submit(seed(2, "b")).unwrap();
        assert_eq!(gate.queued(0), 0);
        let err = gate.try_submit(clock(7)).unwrap_err();
        assert!(matches!(err, GateError::Full { shard: 1, .. }));
        // Nothing leaked into shard 0's mailbox.
        assert_eq!(gate.queued(0), 0);
        // Free shard 1; the broadcast now lands on both.
        assert!(core.recv(1).is_some());
        gate.try_submit(clock(7)).unwrap();
        assert_eq!(gate.queued(0), 1);
        assert_eq!(gate.queued(1), 2);
    }

    #[test]
    fn worker_events_reach_the_coordinator_only() {
        let (gate, core) = gate(3, 0);
        gate.submit(worker(1)).unwrap();
        gate.submit(worker(2)).unwrap();
        // No broadcast: replicas' mailboxes stay empty; the delta log has
        // both events for them to pull instead.
        assert_eq!(gate.queued(0), 2);
        assert_eq!(gate.queued(1), 0);
        assert_eq!(gate.queued(2), 0);
        assert_eq!(core.worker_service().events_logged(), 2);
        core.close();
        // The coordinator records them (it is the unique recorder).
        let applies = drain_applies(&core, 0);
        assert_eq!(applies.len(), 2);
        assert!(applies.iter().all(|(_, record)| *record));
    }

    #[test]
    fn worker_backpressure_reports_the_coordinator() {
        let (gate, _core) = gate(2, 1);
        gate.try_submit(worker(1)).unwrap();
        let err = gate.try_submit(worker(2)).unwrap_err();
        assert!(matches!(err, GateError::Full { shard: 0, .. }));
    }

    #[test]
    fn blocking_submit_waits_for_room_then_completes() {
        let (gate, core) = gate(1, 1);
        gate.submit(seed(1, "first")).unwrap();
        let g = gate.clone();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let seq = g.submit(seed(1, "second")).unwrap();
            done_tx.send(seq).unwrap();
        });
        // The submitter must still be blocked on the full mailbox.
        assert!(done_rx
            .recv_timeout(std::time::Duration::from_millis(100))
            .is_err());
        assert!(core.recv(0).is_some()); // make room
        let seq = done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("blocked submit must complete once room appears");
        assert_eq!(seq, 1);
        assert_eq!(gate.queued(0), 1);
    }

    #[test]
    fn abandoned_mailbox_wakes_blocked_producers_with_shard_down() {
        let (gate, core) = gate(1, 1);
        gate.submit(seed(1, "fill")).unwrap();
        let g = gate.clone();
        let blocked = std::thread::spawn(move || g.submit(seed(1, "blocked")));
        // Let the producer park on the full mailbox (benign race: if the
        // abandon lands first, submit sees `dead` and errors directly).
        std::thread::sleep(std::time::Duration::from_millis(50));
        core.abandon(0);
        let err = blocked.join().unwrap().unwrap_err();
        assert!(
            matches!(err, GateError::ShardDown { shard: 0, .. }),
            "abandoning a live mailbox scopes the error to the dead shard, got {err:?}"
        );
        // The queued event was dropped with the mailbox.
        assert!(core.recv(0).is_none());
    }

    #[test]
    fn routing_overrides_redirect_owner_of() {
        let (gate, core) = gate(4, 0);
        assert_eq!(gate.owner_of(ProjectId(5)), 0); // (5-1) % 4
        core.set_owner(ProjectId(5), 3);
        assert_eq!(gate.owner_of(ProjectId(5)), 3);
        // Other projects keep the round-robin mapping.
        assert_eq!(gate.owner_of(ProjectId(6)), 1);
        gate.submit(seed(5, "migrated")).unwrap();
        assert_eq!(gate.queued(3), 1);
        assert_eq!(gate.queued(0), 0);
    }

    #[test]
    fn migration_hold_parks_held_project_and_broadcasts_only() {
        let (gate, core) = gate(2, 0);
        core.hold_for_migration(ProjectId(1));
        // try_submit on the held project (owner shard 0) and on broadcasts
        // reports Migrating; an unrelated project keeps flowing.
        let err = gate.try_submit(seed(1, "held")).unwrap_err();
        assert!(matches!(
            err,
            GateError::Migrating {
                project: ProjectId(1),
                ..
            }
        ));
        let err = gate.try_submit(clock(9)).unwrap_err();
        assert!(matches!(err, GateError::Migrating { .. }));
        let err = gate.try_submit(worker(7)).unwrap_err();
        assert!(matches!(err, GateError::Migrating { .. }));
        gate.try_submit(seed(2, "flows")).unwrap();
        // A blocking submit parks until the release, then lands on the
        // *new* owner installed while it waited.
        let g = gate.clone();
        let parked = std::thread::spawn(move || g.submit(seed(1, "after")));
        std::thread::sleep(std::time::Duration::from_millis(50));
        core.set_owner(ProjectId(1), 1);
        core.release_migration(ProjectId(1));
        parked.join().unwrap().unwrap();
        assert_eq!(gate.queued(1), 2); // "flows" + re-routed "after"
    }

    #[test]
    fn closed_gate_rejects_and_returns_the_event() {
        let (gate, core) = gate(2, 0);
        gate.submit(seed(1, "in")).unwrap();
        core.close();
        let err = gate.submit(seed(1, "late")).unwrap_err();
        assert!(matches!(err, GateError::Closed(_)));
        assert_eq!(err.into_event(), seed(1, "late"));
        let err = gate.submit(worker(9)).unwrap_err();
        assert!(matches!(err, GateError::Closed(_)));
        // Queued messages still drain, then the mailbox reports closed.
        assert_eq!(drain_applies(&core, 0).len(), 1);
        assert!(core.recv(0).is_none());
    }
}
