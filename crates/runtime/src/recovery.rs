//! Crash recovery: the shared apply ledger, deterministic fault
//! injection, and the journal-slice replay that rebuilds a dead shard's
//! platform (and powers hot-project migration).
//!
//! # Why recovery is replay
//!
//! Everything a shard's platform slice *is* was produced by applying a
//! prefix of the global event stream: its owned projects' events, every
//! broadcast, and (replicas) the worker deltas interleaved at their
//! sequence positions. The runtime therefore keeps each shard's applied
//! stream in a shared per-shard ledger — outside the shard thread, so a
//! panic cannot take it down — and a restart is nothing more than
//! replaying that ledger slice onto a fresh base platform:
//!
//! * **project + broadcast entries** come from the dead shard's own
//!   ledger slot (broadcast copies are ledgered even on shards that
//!   don't record them, because the coordinator may not have applied the
//!   broadcast yet when a replica dies);
//! * **worker deltas** are re-pulled from the
//!   [`WorkerService`](crate::workers::WorkerService) — compacted
//!   snapshot prefix plus resident deltas — and re-interleaved at
//!   exactly the sequence positions the live shard installed them,
//!   **up to the dead shard's last reported cursor**. Stopping at the
//!   old cursor matters: the service log may already contain deltas
//!   stamped *after* events still waiting in the mailbox, and
//!   installing those early would change how the pending events apply.
//! * entries for projects the routing table has since moved elsewhere
//!   are filtered out (the rebuilt shard keeps only the shell every
//!   platform holds), and entries for projects migrated *in* are pulled
//!   from the previous owners' slots.
//!
//! The mailbox itself is left intact while the shard recovers — queued
//! events are part of the *future*, not the slice — so held traffic
//! resumes in the exact order it was admitted and the merged journal is
//! byte-identical to a run where the failure never happened.
//!
//! # Deterministic chaos
//!
//! [`FaultPlan`] injects crashes at exact points: *kill shard S after
//! its k-th applied event*. The panic fires after the k-th recorded
//! apply is already ledgered, so the injection lands on a clean
//! boundary and the equivalence proptests can assert byte-identity
//! between faulted and fault-free runs. Plans are plain data derived
//! from the test's proptest seed (`PROPTEST_SEED`), or from the
//! `FAULT_PLAN` environment variable (`"shard:after[,shard:after...]"`)
//! for CI chaos replays.

use crate::shard::{SeqKey, ShardStats};
use crowd4u_core::events::{EventScope, PlatformEvent, DRAIN_KIND};
use crowd4u_core::platform::Crowd4U;
use crowd4u_crowd::profile::WorkerProfile;
use crowd4u_storage::journal::JournalEntry;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// One applied message in a shard's history: its sort key, the encoded
/// journal entry, and whether this shard is the event's unique recorder
/// (broadcast copies on replica shards are ledgered but not recorded).
#[derive(Debug, Clone)]
pub(crate) struct LedgerEntry {
    pub key: SeqKey,
    pub entry: JournalEntry,
    pub recorded: bool,
}

/// One shard's applied history and counters, owned by the runtime (not
/// the shard thread) so they survive a shard death.
#[derive(Debug, Default)]
pub(crate) struct LedgerSlot {
    /// Every applied message in apply order (keys strictly increase).
    pub entries: Vec<LedgerEntry>,
    /// Monotonic across shard incarnations — also what a [`FaultPlan`]
    /// kill point counts, so an injected fault cannot re-fire after the
    /// recovery it caused.
    pub stats: ShardStats,
    /// Streaming-mode auto-drain phase, persisted so a recovered shard
    /// places its next auto-drain exactly where the dead one would have.
    pub since_drain: usize,
}

/// The per-shard apply ledger: the replay source of truth for recovery,
/// migration slices, and the runtime's merged journal.
#[derive(Debug)]
pub(crate) struct ShardLedger {
    slots: Vec<Mutex<LedgerSlot>>,
}

impl ShardLedger {
    pub(crate) fn new(shards: usize) -> ShardLedger {
        ShardLedger {
            slots: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
        }
    }

    pub(crate) fn slot(&self, shard: usize) -> MutexGuard<'_, LedgerSlot> {
        self.slots[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn shards(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn stats(&self, shard: usize) -> ShardStats {
        self.slot(shard).stats
    }

    /// A clone of one shard's applied history (recovery + migration read
    /// path; the slot stays in place for the live shard to append to).
    pub(crate) fn entries(&self, shard: usize) -> Vec<LedgerEntry> {
        self.slot(shard).entries.clone()
    }

    /// The recorded journal stream of one shard, for the merged journal.
    pub(crate) fn recorded_stream(&self, shard: usize) -> Vec<(SeqKey, JournalEntry)> {
        self.slot(shard)
            .entries
            .iter()
            .filter(|e| e.recorded)
            .map(|e| (e.key, e.entry.clone()))
            .collect()
    }
}

/// A deterministic crash schedule: kill shard *S* after its *k*-th
/// applied (recorded) event. Plans are plain data — derive them from a
/// proptest seed, build them with [`FaultPlan::kill`], or parse them
/// from the `FAULT_PLAN` environment variable — and the injected panic
/// always fires at the same event boundary, which is what makes chaos
/// runs replayable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    kills: Vec<(usize, u64)>,
    /// Mid-apply kill points: panic *inside* the k-th recorded apply,
    /// before anything is ledgered — the genuine-crash shape (a bug in
    /// `apply_event`, an OOM) as opposed to the clean boundary above.
    mid_kills: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// No injected faults (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Kill `shard` right after its `after_applied`-th applied event.
    pub fn kill(shard: usize, after_applied: u64) -> FaultPlan {
        FaultPlan::none().and_kill(shard, after_applied)
    }

    /// Kill `shard` *inside* its `nth_apply`-th recorded apply — after the
    /// message left the mailbox, before the ledger saw it. Exercises the
    /// in-flight redo path rather than boundary replay.
    pub fn kill_mid_apply(shard: usize, nth_apply: u64) -> FaultPlan {
        FaultPlan::none().and_kill_mid(shard, nth_apply)
    }

    /// Add another kill point to the plan.
    pub fn and_kill(mut self, shard: usize, after_applied: u64) -> FaultPlan {
        if after_applied > 0 {
            self.kills.push((shard, after_applied));
        }
        self
    }

    /// Add another mid-apply kill point to the plan.
    pub fn and_kill_mid(mut self, shard: usize, nth_apply: u64) -> FaultPlan {
        if nth_apply > 0 {
            self.mid_kills.push((shard, nth_apply));
        }
        self
    }

    /// Parse the `FAULT_PLAN` environment variable
    /// (`"shard:after[,shard:after...]"`, e.g. `FAULT_PLAN=1:5,0:9`; a
    /// `mid` suffix — `1:5:mid` — makes the kill fire mid-apply).
    /// Unset, empty or malformed pairs yield an empty plan.
    pub fn from_env() -> FaultPlan {
        match std::env::var("FAULT_PLAN") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => FaultPlan::none(),
        }
    }

    /// Parse a `"shard:after[,shard:after...]"` spec (the `FAULT_PLAN`
    /// format; `shard:after:mid` injects mid-apply); malformed pairs are
    /// ignored.
    pub fn parse(spec: &str) -> FaultPlan {
        let mut plan = FaultPlan::none();
        for pair in spec.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (pair, mid) = match pair.strip_suffix(":mid") {
                Some(head) => (head, true),
                None => (pair, false),
            };
            if let Some((shard, after)) = pair.split_once(':') {
                if let (Ok(shard), Ok(after)) =
                    (shard.trim().parse::<usize>(), after.trim().parse::<u64>())
                {
                    plan = if mid {
                        plan.and_kill_mid(shard, after)
                    } else {
                        plan.and_kill(shard, after)
                    };
                }
            }
        }
        plan
    }

    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.mid_kills.is_empty()
    }

    /// Does the plan fire for `shard` at exactly `applied` applied
    /// events? Applied counts are monotonic across recoveries, so a kill
    /// point fires at most once.
    pub(crate) fn fires(&self, shard: usize, applied: u64) -> bool {
        self.kills.iter().any(|&(s, k)| s == shard && k == applied)
    }

    /// Does the plan fire for `shard` *inside* its `next_applied`-th
    /// recorded apply? Checked before the ledger sees the event; the
    /// post-recovery redo path skips injection, so a mid-apply kill also
    /// fires at most once.
    pub(crate) fn fires_mid(&self, shard: usize, next_applied: u64) -> bool {
        self.mid_kills
            .iter()
            .any(|&(s, k)| s == shard && k == next_applied)
    }
}

/// The worker-registration history a rebuilding shard re-syncs from —
/// a point-in-time view of the [`WorkerService`](crate::workers) state:
/// an optional compacted prefix (everything folded below the truncation
/// point) and the resident delta suffix.
pub(crate) struct WorkerFeed {
    /// Compacted prefix: `(profiles, events_covered, last_covered_seq)`.
    pub prefix: Option<(Vec<Arc<WorkerProfile>>, usize, u64)>,
    /// Resident log entries from `base` upward, as `(seq, profile)`.
    pub deltas: Vec<(u64, Arc<WorkerProfile>)>,
    /// Logical index of `deltas[0]` (entries below it were truncated and
    /// live only in the prefix).
    pub base: usize,
}

/// Is the snapshot fast-forward path enabled for recovery replays?
/// On by default; `RECOVERY_SNAPSHOT=0|off|false|no` forces delta-only
/// rebuilds (which then require the delta log to still be complete).
pub(crate) fn snapshot_allowed() -> bool {
    !matches!(
        std::env::var("RECOVERY_SNAPSHOT").as_deref(),
        Ok("0") | Ok("off") | Ok("false") | Ok("no")
    )
}

/// Replay one shard slice — ledger entries plus (for worker-service
/// consumers) the re-interleaved worker feed up to `upto` installed
/// registrations — onto a fresh `platform`. Returns the rebuilt
/// platform and the final worker-log cursor.
///
/// `feed: None` is the coordinator shape: its worker events are ledger
/// entries, there is nothing to re-interleave. With a feed, deltas are
/// installed before each entry exactly as the live shard's
/// `sync_below_seq` did — every delta stamped below the entry's
/// sequence number, capped at `upto` (the dead shard's last reported
/// cursor, or the full log for a migration slice).
pub(crate) fn replay_slice(
    mut platform: Crowd4U,
    entries: &[LedgerEntry],
    feed: Option<(&WorkerFeed, usize)>,
    allow_snapshot: bool,
) -> (Crowd4U, usize) {
    let mut cursor = 0usize;
    let mut delta_at = 0usize; // index into feed.deltas
    if let Some((feed, upto)) = feed {
        // Fast-forward through the compacted prefix when it fits below
        // both the target cursor and the first entry's sequence number
        // (the platform is fresh here by construction, the other half of
        // `install_worker_snapshot`'s precondition).
        if let Some((profiles, covered, covered_seq)) = &feed.prefix {
            let first_seq = entries.first().map(|e| e.key.0);
            if allow_snapshot
                && *covered > 0
                && *covered <= upto
                && first_seq.is_none_or(|s| *covered_seq < s)
            {
                platform.install_worker_snapshot(
                    profiles.iter().map(|p| (**p).clone()),
                    *covered as u64,
                );
                cursor = *covered;
            }
        }
        assert!(
            cursor >= feed.base,
            "recovery replay needs worker-log entries below the truncation \
             point (cursor {cursor} < base {}); re-enable RECOVERY_SNAPSHOT \
             or raise WORKER_SNAPSHOT_EVERY",
            feed.base
        );
        delta_at = cursor - feed.base;
    }
    for e in entries {
        if let Some((feed, upto)) = feed {
            while cursor < upto && delta_at < feed.deltas.len() && feed.deltas[delta_at].0 < e.key.0
            {
                platform.install_worker_delta((*feed.deltas[delta_at].1).clone());
                delta_at += 1;
                cursor += 1;
            }
        }
        if e.entry.kind == DRAIN_KIND {
            platform
                .drain_events()
                .expect("ledgered drain must replay — it applied cleanly live");
        } else {
            let event = PlatformEvent::decode(&e.entry)
                .expect("ledgered entry must decode — it was encoded from a live event");
            platform
                .apply_event(event)
                .expect("ledgered event must re-apply — it applied cleanly live");
        }
    }
    if let Some((feed, upto)) = feed {
        while cursor < upto && delta_at < feed.deltas.len() {
            platform.install_worker_delta((*feed.deltas[delta_at].1).clone());
            delta_at += 1;
            cursor += 1;
        }
    }
    (platform, cursor)
}

/// Filter predicate for rebuilding `shard`'s slice from ledger entries:
/// keep drains and broadcasts, keep worker events (only the coordinator
/// ledgers those), and keep project events owned by `shard` under the
/// *current* routing table `owner_of`.
pub(crate) fn owned_by(
    entry: &LedgerEntry,
    shard: usize,
    owner_of: &impl Fn(crowd4u_core::error::ProjectId) -> usize,
) -> bool {
    if entry.entry.kind == DRAIN_KIND {
        return true;
    }
    match PlatformEvent::decode(&entry.entry) {
        Ok(event) => match event.scope() {
            EventScope::Global => true,
            EventScope::Worker => shard == 0,
            EventScope::Project(p) => owner_of(p) == shard,
        },
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_parse_and_fire_exactly() {
        let plan = FaultPlan::parse("1:5, 0:9,junk,7,:3,2:");
        assert_eq!(plan, FaultPlan::kill(1, 5).and_kill(0, 9));
        assert!(plan.fires(1, 5));
        assert!(!plan.fires(1, 6));
        assert!(!plan.fires(2, 5));
        assert!(plan.fires(0, 9));
        assert!(FaultPlan::parse("").is_empty());
        // A zero kill point would fire before any event; it is dropped.
        assert!(FaultPlan::kill(3, 0).is_empty());
    }

    #[test]
    fn mid_apply_kill_points_parse_and_fire_separately() {
        let plan = FaultPlan::parse("1:5:mid, 0:9");
        assert_eq!(plan, FaultPlan::kill_mid_apply(1, 5).and_kill(0, 9));
        assert!(plan.fires_mid(1, 5));
        assert!(!plan.fires(1, 5), "mid kill is not a boundary kill");
        assert!(plan.fires(0, 9));
        assert!(!plan.fires_mid(0, 9), "boundary kill is not a mid kill");
        assert!(FaultPlan::kill_mid_apply(2, 0).is_empty());
    }

    #[test]
    fn ledger_slots_filter_recorded_streams() {
        let ledger = ShardLedger::new(2);
        {
            let mut slot = ledger.slot(1);
            slot.entries.push(LedgerEntry {
                key: (3, 0),
                entry: JournalEntry::new("clock", vec![7i64.into()]),
                recorded: false,
            });
            slot.entries.push(LedgerEntry {
                key: (4, 0),
                entry: JournalEntry::new("seed", vec![2i64.into()]),
                recorded: true,
            });
            slot.stats.applied = 1;
        }
        let stream = ledger.recorded_stream(1);
        assert_eq!(stream.len(), 1);
        assert_eq!(stream[0].0, (4, 0));
        assert_eq!(ledger.stats(1).applied, 1);
        assert_eq!(ledger.entries(1).len(), 2);
        assert!(ledger.recorded_stream(0).is_empty());
    }
}
