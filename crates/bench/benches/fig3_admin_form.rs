//! E3 (paper Figure 3): constraint entry form — validation/parsing
//! throughput for valid and invalid requester submissions.

use criterion::{criterion_group, criterion_main, Criterion};
use crowd4u_forms::admin::{constraint_form, parse_constraints};
use crowd4u_forms::form::FormResponse;

fn valid_response() -> FormResponse {
    FormResponse::new()
        .set("language", "en")
        .set("skill", "translation")
        .set("min_quality", 0.6)
        .set("min_team", 3i64)
        .set("max_team", 5i64)
        .set("max_cost", 10.0)
        .set("recruitment_secs", 3600i64)
        .set("require_login", true)
}

fn bench_admin_form(c: &mut Criterion) {
    let form = constraint_form(
        &["translation", "journalism", "surveillance"],
        &["en", "ja", "fr"],
    );
    let valid = valid_response();
    let invalid = valid_response()
        .set("language", "xx")
        .set("min_quality", 2.0)
        .set("min_team", 9i64)
        .set("max_team", 2i64);

    let mut group = c.benchmark_group("fig3_admin_form");
    group.bench_function("parse_valid", |b| {
        b.iter(|| {
            let d = parse_constraints(&form, std::hint::black_box(&valid)).unwrap();
            std::hint::black_box(d.max_team)
        })
    });
    group.bench_function("parse_invalid", |b| {
        b.iter(|| {
            let e = parse_constraints(&form, std::hint::black_box(&invalid)).unwrap_err();
            std::hint::black_box(e.to_string().len())
        })
    });
    group.bench_function("build_form", |b| {
        b.iter(|| {
            let f = constraint_form(&["a", "b", "c"], &["en", "ja"]);
            std::hint::black_box(f.fields.len())
        })
    });
    group.bench_function("render_form", |b| {
        b.iter(|| std::hint::black_box(form.to_string().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_admin_form);
criterion_main!(benches);
