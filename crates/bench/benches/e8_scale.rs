//! E8: platform scale. Crowd4U §2 reports "more than 600,000 tasks have
//! been performed"; this bench measures the CyLog task pipeline (seed →
//! question generation → answer ingestion → derivation) at 10k tasks per
//! iteration so Criterion can sample it; the `report` binary runs the full
//! 600k pass (`--bin report -- e8full`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_cylog::engine::CylogEngine;

const SRC: &str = "rel item(i: id).\nopen judge(i: id) -> (ok: bool).\n\
     rel good(i: id).\ngood(I) :- item(I), judge(I, OK), OK = true.\n";

fn pipeline(n: u64) -> usize {
    let mut engine = CylogEngine::from_source(SRC).unwrap();
    for i in 0..n {
        engine.add_fact("item", vec![(i + 1).into()]).unwrap();
    }
    engine.run().unwrap();
    let pending = engine.pending_requests().to_vec();
    for (k, req) in pending.iter().enumerate() {
        engine
            .answer(
                &req.pred_name,
                req.inputs.clone(),
                vec![(k % 10 != 0).into()],
                None,
            )
            .unwrap();
    }
    engine.run().unwrap();
    engine.fact_count("good").unwrap()
}

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_scale");
    group.sample_size(10);
    for &n in &[1_000u64, 10_000] {
        group.throughput(criterion::Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("cylog_pipeline", n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(pipeline(n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
