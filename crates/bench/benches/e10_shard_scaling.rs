//! E10: shard-scaling of the event-routed runtime.
//!
//! A mixed multi-project workload (answers interleaved round-robin over
//! the projects) is ingested through the `ShardedRuntime` at 1/2/4/8
//! shards in streaming mode. Throughput rises with the shard count for two
//! compounding reasons:
//!
//! * on multi-core hardware the shards' fixpoint work runs in parallel;
//! * independently of core count, mailbox batching gets *deeper* per
//!   project as shards are added — each shard syncs only its own dirty
//!   projects every `drain_every` mailbox events, so the redundant
//!   re-sync work per project (pending-queue scans, demand recomputation)
//!   shrinks roughly linearly with the shard count. This is the same
//!   group-commit amortisation that makes `apply_batch` beat per-answer
//!   ingestion in E9, applied per partition.
//!
//! `ci.sh` runs this bench on a tiny budget and asserts the 4-shard
//! configuration actually beats 1 shard; `report -- shard` records the
//! full-size baseline to `BENCH_shard.json` and requires ≥ 2×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_bench::{run_shard_workload, ShardWorkload};

fn bench_shards(c: &mut Criterion) {
    let workload = ShardWorkload {
        projects: 8,
        items: 120,
        workers: 8,
        drain_every: 48,
    };
    let mut group = c.benchmark_group("e10_shard_scaling");
    group.sample_size(10);
    for &shards in &[1usize, 2, 4, 8] {
        group.throughput(criterion::Throughput::Elements(
            (workload.projects * workload.items) as u64,
        ));
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| run_shard_workload(shards, &workload))
        });
    }
    group.finish();

    // Smoke gate (runs under any CRITERION_BUDGET_MS): one direct
    // measurement per configuration; 4 shards must beat 1 shard even on a
    // single-core container, via the per-shard mailbox-batching effect.
    let (t1, events, good1) = run_shard_workload(1, &workload);
    let (t4, _, good4) = run_shard_workload(4, &workload);
    assert_eq!(good1, good4, "shard counts must derive identical facts");
    let speedup = t1.as_secs_f64() / t4.as_secs_f64();
    println!("e10 smoke: {events} events — 1 shard {t1:.2?}, 4 shards {t4:.2?} ({speedup:.2}x)");
    assert!(
        speedup > 1.0,
        "4 shards must out-ingest 1 shard (got {speedup:.2}x)"
    );
}

criterion_group!(benches, bench_shards);
criterion_main!(benches);
