//! E15-recovery: what a shard crash costs under the PR 9 recovery
//! runtime.
//!
//! A chaos [`FaultPlan`](crowd4u_runtime::recovery::FaultPlan) kills one
//! shard mid-answer-stream; the supervisor rebuilds its slice by replaying
//! the runtime ledger (plus the worker-service snapshot + delta feed) and
//! the run completes with the exact facts of a no-fault run. Two claims
//! are pinned:
//!
//! * **correctness** — the chaos run derives the same `good` facts as the
//!   clean run, and the planned kill genuinely fired
//!   (`crowd4u_recoveries_total ≥ 1`);
//! * **latency** — recovery replay touches one shard's slice, not the
//!   whole workload, so its cost (`crowd4u_recovery_ns`) stays a small
//!   fraction of rerunning everything. The smoke gate here is a loose
//!   2×; the strict ≥10× gate runs full-size in `report -- recovery` and
//!   lands in `BENCH_recovery.json`.
//!
//! `ci.sh` runs this budget-bounded as a smoke.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_bench::{run_recovery_workload, run_shard_workload, ShardWorkload};

const SHARDS: usize = 4;
/// Kill shard 1 after 300 applied events — mid-stream for the smoke
/// workload below (shard 1 records two projects × 150 seeds + answers).
const KILL: (usize, u64) = (1, 300);

fn smoke_workload() -> ShardWorkload {
    ShardWorkload {
        items: 150,
        ..ShardWorkload::default()
    }
}

fn bench_recovery(c: &mut Criterion) {
    let w = smoke_workload();

    // Correctness gate: the fault fired, was recovered, and changed
    // nothing observable.
    let (_, _, good_clean) = run_shard_workload(SHARDS, &w);
    let chaos = run_recovery_workload(SHARDS, &w, KILL);
    assert!(chaos.recoveries >= 1, "the planned kill never fired");
    assert_eq!(chaos.good, good_clean, "recovery changed derived facts");

    // Loose smoke gate on the ratio; `report -- recovery` holds the
    // strict one at full size.
    let recovery_secs = chaos.recovery_ns as f64 / 1e9;
    let full_secs = chaos.elapsed.as_secs_f64();
    assert!(
        recovery_secs * 2.0 < full_secs,
        "recovery replay ({recovery_secs:.4}s) should be well under the \
         full run ({full_secs:.4}s)"
    );

    let mut group = c.benchmark_group("e15_recovery_latency");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("run", "no_fault"), &w, |b, w| {
        b.iter(|| run_shard_workload(SHARDS, w).2)
    });
    group.bench_with_input(BenchmarkId::new("run", "kill_and_recover"), &w, |b, w| {
        b.iter(|| run_recovery_workload(SHARDS, w, KILL).good)
    });
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
