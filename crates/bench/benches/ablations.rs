//! Ablation benches for the design choices called out in DESIGN.md §5:
//!
//! 1. semi-naive vs naive Datalog evaluation (recursive workload);
//! 2. dense vs sparse affinity representation (team-objective reads);
//! 3. branch-and-bound pruning on vs off;
//! 4. storage point lookups with vs without a secondary index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_assign::prelude::*;
use crowd4u_bench::random_instance;
use crowd4u_crowd::affinity::{group_affinity, AffinityMatrix, SparseAffinity};
use crowd4u_crowd::profile::WorkerId;
use crowd4u_cylog::engine::CylogEngine;
use crowd4u_cylog::eval::EvalMode;
use crowd4u_sim::rng::SimRng;
use crowd4u_storage::prelude::*;

/// Ablation 1: evaluation strategy on a recursive chain (transitive
/// closure over a 150-node path + chords).
fn ablation_seminaive(c: &mut Criterion) {
    let src = "rel edge(a: int, b: int).\nrel path(a: int, b: int).\n\
               path(X, Y) :- edge(X, Y).\n\
               path(X, Z) :- edge(X, Y), path(Y, Z).\n";
    let build = |mode: EvalMode| {
        let mut e = CylogEngine::from_source(src).unwrap();
        e.set_mode(mode);
        for i in 0..150i64 {
            e.add_fact("edge", vec![i.into(), (i + 1).into()]).unwrap();
            if i % 10 == 0 {
                e.add_fact("edge", vec![i.into(), (i + 5).min(150).into()])
                    .unwrap();
            }
        }
        e
    };
    let mut group = c.benchmark_group("ablation_seminaive");
    group.sample_size(10);
    for (name, mode) in [
        ("semi-naive", EvalMode::SemiNaive),
        ("naive", EvalMode::Naive),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || build(mode),
                |mut e| {
                    e.run().unwrap();
                    std::hint::black_box(e.fact_count("path").unwrap())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Ablation 2: affinity storage — team formation reads O(k²) pairs per
/// candidate team; dense triangular wins on lookup-heavy workloads.
fn ablation_affinity_repr(c: &mut Criterion) {
    let n = 300u64;
    let ids: Vec<WorkerId> = (0..n).map(WorkerId).collect();
    let mut rng = SimRng::seed_from(2);
    let mut dense = AffinityMatrix::new(ids.clone());
    let mut sparse = SparseAffinity::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let v = rng.unit();
            dense.set(WorkerId(i), WorkerId(j), v);
            sparse.set(WorkerId(i), WorkerId(j), v);
        }
    }
    let group_ids: Vec<WorkerId> = (0..20).map(WorkerId).collect();
    let mut group = c.benchmark_group("ablation_affinity_repr");
    group.bench_function("dense", |b| {
        b.iter(|| std::hint::black_box(group_affinity(&dense, &group_ids)))
    });
    group.bench_function("sparse", |b| {
        b.iter(|| std::hint::black_box(group_affinity(&sparse, &group_ids)))
    });
    group.finish();
}

/// Ablation 3: branch-and-bound pruning.
fn ablation_bb_pruning(c: &mut Criterion) {
    let constraints = TeamConstraints::sized(3, 5);
    let mut group = c.benchmark_group("ablation_bb_pruning");
    group.sample_size(10);
    for &n in &[14usize, 18] {
        let (cands, aff) = random_instance(n, 5);
        group.bench_with_input(BenchmarkId::new("pruned", n), &n, |b, _| {
            let alg = ExactBB::default();
            b.iter(|| std::hint::black_box(alg.form(&cands, &aff, &constraints)))
        });
        group.bench_with_input(BenchmarkId::new("unpruned", n), &n, |b, _| {
            let alg = ExactBB::without_pruning();
            b.iter(|| std::hint::black_box(alg.form(&cands, &aff, &constraints)))
        });
    }
    group.finish();
}

/// Ablation 4: storage point lookups, indexed vs scan.
fn ablation_storage_index(c: &mut Criterion) {
    let n = 10_000i64;
    let make = |indexed: bool| {
        let mut rel = Relation::new(
            "t",
            Schema::of(&[("k", ValueType::Int), ("v", ValueType::Int)]),
        );
        if indexed {
            rel.create_index(&["k"], false).unwrap();
        }
        for i in 0..n {
            rel.insert(tuple![i % 1000, i]).unwrap();
        }
        rel
    };
    let indexed = make(true);
    let plain = make(false);
    let mut group = c.benchmark_group("ablation_storage_index");
    group.bench_function("indexed_lookup", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7) % 1000;
            std::hint::black_box(indexed.lookup(&[0], &[Value::Int(k)]).len())
        })
    });
    group.bench_function("scan_lookup", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7) % 1000;
            std::hint::black_box(plain.lookup(&[0], &[Value::Int(k)]).len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_seminaive,
    ablation_affinity_repr,
    ablation_bb_pruning,
    ablation_storage_index
);
criterion_main!(benches);
