//! E7: team-formation *runtime* vs worker-pool size — where the exact
//! solver stops being viable for "a large real-time crowdsourcing
//! platform" (§2.2), and how the approximations scale past it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_assign::prelude::*;
use crowd4u_bench::random_instance;

fn bench_runtime(c: &mut Criterion) {
    let constraints = TeamConstraints::sized(3, 5);
    let mut group = c.benchmark_group("e7_assignment_runtime");

    // Exact: feasible region (watch the blow-up).
    for &n in &[8usize, 12, 16, 20] {
        let (cands, aff) = random_instance(n, 3);
        group.bench_with_input(BenchmarkId::new("exact-bb", n), &n, |b, _| {
            let alg = ExactBB::default();
            b.iter(|| std::hint::black_box(alg.form(&cands, &aff, &constraints)))
        });
    }
    // Unpruned exact: only the small end (ablation 3 shows the gap).
    for &n in &[8usize, 12, 16] {
        let (cands, aff) = random_instance(n, 3);
        group.bench_with_input(BenchmarkId::new("exact-exhaustive", n), &n, |b, _| {
            let alg = ExactBB::without_pruning();
            b.iter(|| std::hint::black_box(alg.form(&cands, &aff, &constraints)))
        });
    }
    // Approximations: into the hundreds of workers.
    for &n in &[20usize, 100, 400] {
        let (cands, aff) = random_instance(n, 3);
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            let alg = GreedyAff::default();
            b.iter(|| std::hint::black_box(alg.form(&cands, &aff, &constraints)))
        });
        group.bench_with_input(BenchmarkId::new("local-search", n), &n, |b, _| {
            let alg = LocalSearch::default();
            b.iter(|| std::hint::black_box(alg.form(&cands, &aff, &constraints)))
        });
        group.bench_with_input(BenchmarkId::new("grp-split", n), &n, |b, _| {
            let alg = GrpSplit::new(3);
            b.iter(|| std::hint::black_box(alg.split(&cands, &aff, &constraints)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
