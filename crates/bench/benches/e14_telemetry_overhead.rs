//! E14-telemetry: what observability costs on the ingest hot path.
//!
//! The PR 8 telemetry layer must be cheap enough to leave on: recording is
//! a pre-fetched atomic add, spans are two `Instant::now()` reads, and the
//! disabled registry compiles every record to a no-op on an `Option` that
//! is always `None`. This bench pins both claims against the E10 sharded
//! ingest workload (the same stream `report -- shards` measures):
//!
//! * `runtime/enabled` vs `runtime/disabled` — the full five-stage span
//!   pipeline (gate admit, mailbox dwell, shard apply, fixpoint, journal
//!   append) against a registry whose every cell is disabled;
//! * `engine/plain` vs `engine/disabled_handles` — the engine-level
//!   ingest path (E9's `answer_batch` shape) untouched vs with disabled
//!   telemetry cells attached, isolating the no-op overhead from the
//!   runtime's thread machinery.
//!
//! `ci.sh` runs this budget-bounded as a smoke (loose sanity gates below);
//! the strict ≤5 %-enabled / ~0 %-disabled gates run full-size in
//! `report -- obs` and land in `BENCH_obs.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_bench::{ingest_workload, run_shard_workload_instrumented, ShardWorkload};
use crowd4u_telemetry::{stage, Registry};

fn smoke_workload() -> ShardWorkload {
    ShardWorkload {
        items: 150,
        ..ShardWorkload::default()
    }
}

fn bench_overhead(c: &mut Criterion) {
    let w = smoke_workload();

    // Equivalence gate: telemetry on and off must derive the same facts
    // from the same stream, or the timing compares different computations.
    // Doubles as the five-stage coverage check: after one instrumented
    // run, every pipeline-stage histogram must have recorded.
    let enabled = Registry::new();
    let (_, _, good_on) = run_shard_workload_instrumented(4, &w, enabled.clone());
    let (_, _, good_off) = run_shard_workload_instrumented(4, &w, Registry::disabled());
    assert_eq!(good_on, good_off, "telemetry changed derived facts");
    let snap = enabled.snapshot();
    for name in stage::ALL {
        assert!(
            snap.histogram_count(name) > 0,
            "stage histogram {name} empty after an instrumented run"
        );
    }

    let mut group = c.benchmark_group("e14_telemetry_overhead");
    group.sample_size(10);
    let n = (w.projects * w.items * 2) as u64; // setup seeds + answers
    group.throughput(criterion::Throughput::Elements(n));
    group.bench_with_input(BenchmarkId::new("runtime", "enabled"), &w, |b, w| {
        b.iter(|| run_shard_workload_instrumented(4, w, Registry::new()).2)
    });
    group.bench_with_input(BenchmarkId::new("runtime", "disabled"), &w, |b, w| {
        b.iter(|| run_shard_workload_instrumented(4, w, Registry::disabled()).2)
    });

    // Engine-level A/B: the ~0 %-disabled claim without runtime noise.
    let answers = 5_000u64;
    group.throughput(criterion::Throughput::Elements(answers));
    group.bench_with_input(BenchmarkId::new("engine", "plain"), &answers, |b, &n| {
        b.iter_batched(
            || ingest_workload(n),
            |(mut engine, answers)| {
                engine.answer_batch(&answers).unwrap();
                engine.fact_count("good").unwrap()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_with_input(
        BenchmarkId::new("engine", "disabled_handles"),
        &answers,
        |b, &n| {
            b.iter_batched(
                || {
                    let (mut engine, answers) = ingest_workload(n);
                    engine.set_telemetry(&Registry::disabled().handle());
                    (engine, answers)
                },
                |(mut engine, answers)| {
                    engine.answer_batch(&answers).unwrap();
                    engine.fact_count("good").unwrap()
                },
                criterion::BatchSize::LargeInput,
            )
        },
    );
    group.finish();

    // Loose smoke gate (the strict gates run full-size in `report -- obs`):
    // best-of-3 enabled must stay within 1.5× of best-of-3 disabled even
    // on a budget-bounded CI box.
    let best = |registry: fn() -> Registry| {
        (0..3)
            .map(|_| run_shard_workload_instrumented(4, &smoke_workload(), registry()).0)
            .min()
            .expect("three runs")
    };
    let on = best(Registry::new);
    let off = best(Registry::disabled);
    assert!(
        on.as_secs_f64() <= off.as_secs_f64() * 1.5,
        "telemetry overhead smoke: enabled {:?} vs disabled {:?} exceeds 1.5x",
        on,
        off
    );
    println!(
        "e14 smoke: enabled best {:.1}ms, disabled best {:.1}ms ({:+.1}%)",
        on.as_secs_f64() * 1e3,
        off.as_secs_f64() * 1e3,
        (on.as_secs_f64() / off.as_secs_f64() - 1.0) * 100.0
    );
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
