//! E4 (paper Figure 4): worker human factors — profile updates, affinity
//! matrix rebuilds, and system-side skill estimation from task history.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_core::workers::WorkerManager;
use crowd4u_crowd::estimate::{estimate_skills, EstimatorConfig, TeamObservation};
use crowd4u_crowd::profile::{Region, WorkerId, WorkerProfile};
use crowd4u_sim::rng::SimRng;

fn manager(n: u64) -> WorkerManager {
    let mut m = WorkerManager::new();
    for i in 1..=n {
        m.register(
            WorkerProfile::new(WorkerId(i), format!("w{i}"))
                .with_native_lang(if i % 2 == 0 { "en" } else { "ja" })
                .with_region(Region::new("r", (i % 10) as f64 / 10.0, 0.5))
                .with_skill("translation", (i % 100) as f64 / 100.0),
        );
    }
    m
}

fn bench_worker_factors(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_worker_factors");
    // Figure 4's "update your factors" action, at scale.
    group.bench_function("update_10k_factors", |b| {
        b.iter_batched(
            || manager(100),
            |mut m| {
                for k in 0..10_000u64 {
                    let id = WorkerId(1 + (k % 100));
                    let p = m.get_mut(id).unwrap();
                    p.factors.set_skill("translation", (k % 100) as f64 / 100.0);
                    p.factors.logged_in = k % 7 != 0;
                }
                std::hint::black_box(m.len())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    // Candidate-set affinity submatrix from the lazy provider (the dense
    // full-population matrix no longer exists anywhere).
    for &n in &[50u64, 200] {
        group.bench_with_input(BenchmarkId::new("candidate_affinity", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let m = manager(n);
                    let ids = m.ids();
                    (m, ids)
                },
                |(m, ids)| {
                    let a = m.candidate_affinity(&ids);
                    std::hint::black_box(a.len())
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    // Single-pair lazy queries against a large population: O(1) per probe,
    // cache warm after the first pass.
    group.bench_function("pair_probe_10k", |b| {
        b.iter_batched(
            || manager(5_000),
            |mut m| {
                let mut acc = 0.0;
                for k in 0..10_000u64 {
                    let a = WorkerId(1 + (k % 5_000));
                    let bw = WorkerId(1 + ((k * 7 + 3) % 5_000));
                    acc += m.pair_affinity(a, bw);
                }
                std::hint::black_box(acc)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    // System-computed skills (paper [10]) from team history.
    for &obs_count in &[100usize, 1000] {
        group.bench_with_input(
            BenchmarkId::new("skill_estimation", obs_count),
            &obs_count,
            |b, &obs_count| {
                let mut rng = SimRng::seed_from(4);
                let observations: Vec<TeamObservation> = (0..obs_count)
                    .map(|_| {
                        let k = 2 + rng.index(3);
                        let members = rng
                            .sample_indices(30, k)
                            .into_iter()
                            .map(|i| WorkerId(i as u64))
                            .collect();
                        TeamObservation::new(members, rng.unit())
                    })
                    .collect();
                b.iter(|| {
                    let e = estimate_skills(&observations, &EstimatorConfig::default());
                    std::hint::black_box(e.skills.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_worker_factors);
criterion_main!(benches);
