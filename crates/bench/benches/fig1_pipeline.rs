//! E1 (paper Figure 1): the full deployment pipeline — decomposition →
//! assignment → completion — timed per collaboration scheme.
//!
//! The *shape* to reproduce: all three schemes complete the same item
//! budget; sequential pays per-item latency for quality, simultaneous
//! parallelises, hybrid does the most crowd work per item.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_collab::Scheme;
use crowd4u_scenarios::{run_scheme, ScenarioConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_pipeline");
    group.sample_size(10);
    for scheme in Scheme::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &scheme| {
                let cfg = ScenarioConfig::default()
                    .with_crowd(40)
                    .with_items(4)
                    .with_seed(42);
                b.iter(|| {
                    let r = run_scheme(scheme, &cfg).expect("scenario");
                    std::hint::black_box(r.items_completed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
