//! E2 (paper Figure 2): the five-step assignment workflow in isolation —
//! project registration, interest collection, team suggestion, undertakes,
//! completion — measured as platform-operation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_collab::Scheme;
use crowd4u_core::prelude::*;
use crowd4u_crowd::profile::{WorkerId, WorkerProfile};
use crowd4u_forms::admin::DesiredFactors;

const SRC: &str = "rel item(x: str).\nopen label(x: str) -> (y: str).\nrel out(x: str, y: str).\nout(X, Y) :- item(X), label(X, Y).\n";

fn world(n: u64) -> Crowd4U {
    let mut p = Crowd4U::new();
    for i in 1..=n {
        p.register_worker(WorkerProfile::new(WorkerId(i), format!("w{i}")));
    }
    p
}

fn bench_workflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_workflow");
    for &crowd in &[20u64, 50, 100] {
        group.bench_with_input(
            BenchmarkId::new("steps_1_to_5", crowd),
            &crowd,
            |b, &crowd| {
                b.iter_batched(
                    || {
                        let mut p = world(crowd);
                        let proj = p
                            .register_project(
                                "bench",
                                SRC,
                                DesiredFactors {
                                    min_team: 3,
                                    max_team: 5,
                                    ..Default::default()
                                },
                                Scheme::Sequential,
                            )
                            .unwrap();
                        (p, proj)
                    },
                    |(mut p, proj)| {
                        let task = p.create_collab_task(proj, "job").unwrap();
                        for w in p.workers.ids() {
                            p.express_interest(w, task).unwrap();
                        }
                        let team = p.run_assignment(task).unwrap();
                        for &m in &team.members {
                            p.undertake(m, task).unwrap();
                        }
                        p.complete_collab_task(task, 0.8).unwrap();
                        std::hint::black_box(team.size())
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    // Eligibility recomputation cost when a micro-task wave arrives.
    group.bench_function("task_generation_100_items", |b| {
        b.iter_batched(
            || {
                let mut p = world(50);
                let proj = p
                    .register_project("gen", SRC, DesiredFactors::default(), Scheme::Sequential)
                    .unwrap();
                for i in 0..100 {
                    p.seed_fact(proj, "item", vec![format!("item-{i}").into()])
                        .unwrap();
                }
                (p, proj)
            },
            |(mut p, proj)| {
                let n = p.sync_tasks(proj).unwrap();
                std::hint::black_box(n)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_workflow);
criterion_main!(benches);
