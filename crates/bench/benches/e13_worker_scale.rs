//! E13: million-worker crowds — lazy sparse affinity + the
//! coordinator-owned worker service.
//!
//! Before PR 7 the platform cached a dense `AffinityMatrix` (n²/2 floats,
//! invalidated on every registration) and broadcast every worker event to
//! every shard. This bench registers 10⁵ (smoke) to 10⁶ workers with
//! re-registration churn and gates the properties that make that scale
//! feasible:
//!
//! * **O(1) amortised registration** — the last decile of registrations
//!   costs about the same per event as the first (no per-registration
//!   dense-state invalidation, no O(n) rebuild downstream);
//! * **o(n²) affinity state** — resident provider state stays ≤
//!   `2 · top_k · n` entries and the process peak RSS stays far below the
//!   dense-matrix footprint;
//! * **population-independent assignment latency** — p99 of
//!   `run_assignment` over a fixed candidate slice is flat as the
//!   population grows 25×;
//! * **coordinator-owned replication** — the same stream through the
//!   4-shard runtime (workers first: the snapshot fast-forward phase)
//!   lands every shard on identical `(workers, version)`.
//!
//! `ci.sh` runs this bench on a tiny budget with the default 10⁵-worker
//! smoke; `report -- workers` records the full-size baseline to
//! `BENCH_workers.json`. Set `E13_WORKERS` to override the population.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_bench::{
    assignment_p99, peak_rss_bytes, registration_deciles, run_worker_scale_runtime, scale_profile,
    worker_scale_project, WorkerScaleWorkload,
};

fn workload_from_env() -> WorkerScaleWorkload {
    let mut w = WorkerScaleWorkload::default();
    if let Some(n) = std::env::var("E13_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        w.workers = n;
    }
    w
}

fn bench_worker_scale(c: &mut Criterion) {
    // Criterion leg: registration throughput at two population sizes (the
    // sampled sizes are small — the smoke gates below cover the full n).
    let mut group = c.benchmark_group("e13_worker_scale");
    group.sample_size(10);
    for &n in &[5_000usize, 20_000] {
        let w = WorkerScaleWorkload {
            workers: n,
            ..WorkerScaleWorkload::default()
        };
        group.throughput(criterion::Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("register", n), &w, |b, w| {
            b.iter(|| registration_deciles(w))
        });
    }
    group.finish();

    smoke_gates(&workload_from_env());
}

/// The in-bench gates (run once under any `CRITERION_BUDGET_MS`).
fn smoke_gates(w: &WorkerScaleWorkload) {
    let n = w.workers;

    // Gate 1: O(1) amortised registration — last decile vs first decile.
    let (first, last, events, mut platform) = registration_deciles(w);
    let ratio = last.as_secs_f64() / first.as_secs_f64().max(1e-9);
    println!(
        "e13 smoke: {events} registrations ({n} workers + churn) — \
         first decile {first:.2?}, last decile {last:.2?} ({ratio:.2}x)"
    );
    assert!(
        ratio < 8.0,
        "registration is not O(1) amortised: last decile {ratio:.2}x the first"
    );

    // Gate 2: o(n²) affinity state. Probe the provider with a bounded
    // top-k cache policy and a sample of pair lookups several times the
    // population size, then bound its resident state.
    platform.workers.set_affinity_cache(0.0, w.top_k);
    let sample = (4 * n).min(200_000) as u64;
    for k in 0..sample {
        let a = 1 + k % n as u64;
        let b = 1 + (k * 7 + 13) % n as u64;
        platform.workers.pair_affinity(
            crowd4u_crowd::profile::WorkerId(a),
            crowd4u_crowd::profile::WorkerId(b),
        );
    }
    let entries = platform.workers.cached_affinity_entries();
    let dense_pairs = n * (n - 1) / 2;
    println!(
        "e13 smoke: {sample} pair probes — {entries} cached entries \
         (bound {}, dense would be {dense_pairs})",
        2 * w.top_k * n
    );
    assert!(
        entries <= 2 * w.top_k * n,
        "affinity cache exceeded its 2·top_k·n bound: {entries}"
    );
    assert!(
        entries * 50 < dense_pairs,
        "affinity state is not o(n²): {entries} entries vs {dense_pairs} dense pairs"
    );

    // Gate 3: population-independent assignment latency. Same candidate
    // slice on a 25×-smaller population; p99 must stay comparable.
    let small = WorkerScaleWorkload {
        workers: (n / 25).max(w.eligible * 2),
        ..*w
    };
    let (_, _, _, mut small_platform) = registration_deciles(&small);
    let sp = worker_scale_project(&mut small_platform);
    let p99_small = assignment_p99(&mut small_platform, sp, w.eligible, 100);
    let lp = worker_scale_project(&mut platform);
    let p99_large = assignment_p99(&mut platform, lp, w.eligible, 100);
    println!(
        "e13 smoke: p99 assignment — {} workers {p99_small:.2?}, {n} workers {p99_large:.2?}",
        small.workers
    );
    assert!(
        p99_large.as_secs_f64() < 5.0 * p99_small.as_secs_f64() + 2e-3,
        "p99 assignment latency scales with population: \
         {p99_small:.2?} → {p99_large:.2?}"
    );

    // Gate 4: the runtime leg — same stream, 4 shards, workers first (the
    // snapshot fast-forward phase), churn included. Every shard must land
    // on the same (workers, version), and peak RSS must stay far below the
    // dense-matrix footprint.
    let (elapsed, applied, per_shard) = run_worker_scale_runtime(4, w);
    // The version a serial register reaches: one bump per worker event
    // (registration_deciles truncates to equal deciles; the runtime does
    // not, so recompute the full stream length).
    let serial_version = (n + n * w.churn_percent / 100) as u64;
    println!(
        "e13 smoke: 4-shard runtime — {applied} applied in {elapsed:.2?}, \
         per-shard (workers, version) {per_shard:?}"
    );
    for (shard, (len, version)) in per_shard.iter().enumerate() {
        assert_eq!(*len, n, "shard {shard} worker population diverged");
        assert_eq!(
            *version, serial_version,
            "shard {shard} worker version out of lockstep"
        );
    }
    if let Some(peak) = peak_rss_bytes() {
        let dense_bytes = (n as u64) * (n as u64 - 1) / 2 * 8;
        println!(
            "e13 smoke: peak RSS {} MiB (dense matrix would be {} MiB)",
            peak >> 20,
            dense_bytes >> 20
        );
        // The 256 MiB term absorbs the process baseline so the gate stays
        // meaningful at small E13_WORKERS overrides too.
        assert!(
            peak < dense_bytes / 10 + (256 << 20),
            "peak RSS {peak} is not far below the dense-matrix footprint {dense_bytes}"
        );
    }

    // Spot-check the profile generator: the eligible slice is fluent in
    // the rare language, everyone else is not.
    assert!(
        scale_profile(1, w.eligible)
            .factors
            .fluency_in(&crowd4u_crowd::profile::Lang::new("xh"))
            >= 0.5
    );
    assert!(
        scale_profile(w.eligible as u64 + 1, w.eligible)
            .factors
            .fluency_in(&crowd4u_crowd::profile::Lang::new("xh"))
            < 0.5
    );
}

criterion_group!(benches, bench_worker_scale);
criterion_main!(benches);
