//! E6: team-formation *quality* — the objective value (mean intra-team
//! affinity) each algorithm achieves, plus its runtime. Reproduces the
//! evaluation shape of Rahman et al. [9], which the demo paper adapts:
//! exact ≥ local-search ≥ greedy ≫ random.
//!
//! Quality numbers are printed once at startup (criterion measures time;
//! the table is the paper-facing result — see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_assign::prelude::*;
use crowd4u_bench::{all_algorithms, clustered_instance, TablePrinter};

fn print_quality_table() {
    let constraints = TeamConstraints::sized(3, 5).with_quality(0.3);
    let mut t = TablePrinter::new(&["n", "exact", "greedy", "local-search", "random"]);
    for &n in &[10usize, 14, 18] {
        let mut row = vec![n.to_string()];
        let (cands, aff) = clustered_instance(n, 3, 1);
        for alg in all_algorithms(1) {
            let a = alg
                .form(&cands, &aff, &constraints)
                .map(|team| format!("{:.3}", team.affinity))
                .unwrap_or_else(|| "-".into());
            row.push(a);
        }
        // reorder: all_algorithms gives exact, greedy, local, random — match headers
        t.row(row);
    }
    println!("\nE6 quality (mean team affinity, clustered instances):");
    println!("{}", t.render());
}

fn bench_quality(c: &mut Criterion) {
    print_quality_table();
    let constraints = TeamConstraints::sized(3, 5).with_quality(0.3);
    let mut group = c.benchmark_group("e6_assignment_quality");
    for &n in &[14usize, 18] {
        let (cands, aff) = clustered_instance(n, 3, 1);
        for alg in all_algorithms(1) {
            group.bench_with_input(BenchmarkId::new(alg.name(), n), &n, |b, _| {
                b.iter(|| {
                    let t = alg.form(&cands, &aff, &constraints);
                    std::hint::black_box(t.map(|t| t.affinity))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
