//! E16-marketplace: the shared-crowd marketplace (PR 10).
//!
//! One worker population serves all three §2.5 applications at once. Two
//! claims are pinned before anything is timed:
//!
//! * **equivalence** — the shared streamed run is byte-identical to the
//!   serial shared composite, and the per-scenario split ledgers
//!   partition the platform's point total *exactly* (each scheme's ledger
//!   sums to its report; the scheme sums reproduce the leaderboard) —
//!   asserted inside [`run_marketplace_workload`];
//! * **policy** — the least-loaded marketplace proposal never fields a
//!   team whose busiest member is busier than the base algorithm's pick,
//!   and on the star-skewed workload it strictly improves (the base
//!   algorithm keeps picking the busy stars; the marketplace passes them
//!   over for the idle bench).
//!
//! `ci.sh` runs this budget-bounded as a smoke; `report -- marketplace`
//! records the full baseline to `BENCH_marketplace.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_bench::{run_marketplace_proposal, run_marketplace_workload};
use crowd4u_scenarios::ScenarioConfig;

const PROPOSAL_SHARDS: usize = 4;
const PROPOSAL_CROWD: u64 = 12;

fn smoke_config() -> ScenarioConfig {
    ScenarioConfig::default()
        .with_crowd(16)
        .with_items(2)
        .with_seed(42)
}

fn bench_marketplace(c: &mut Criterion) {
    let cfg = smoke_config();

    // Correctness gates, once up front: byte-identity and exact splits
    // fire inside the workload; the policy gate is checked here.
    let clean = run_marketplace_workload(PROPOSAL_SHARDS, &cfg);
    assert!(
        clean.platform_points > 0,
        "the shared composite must award points"
    );
    let prop = run_marketplace_proposal(PROPOSAL_SHARDS, PROPOSAL_CROWD);
    assert!(
        prop.market_max_load <= prop.base_max_load,
        "least-loaded proposal ({}) busier than the base pick ({})",
        prop.market_max_load,
        prop.base_max_load
    );
    assert!(
        prop.market_max_load < prop.base_max_load,
        "star-skewed workload should make the marketplace strictly better \
         (market {} vs base {})",
        prop.market_max_load,
        prop.base_max_load
    );

    let mut group = c.benchmark_group("e16_marketplace");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("shared_stream", shards),
            &shards,
            |b, &s| b.iter(|| run_marketplace_workload(s, &cfg).platform_points),
        );
    }
    group.bench_with_input(
        BenchmarkId::new("proposal", PROPOSAL_SHARDS),
        &PROPOSAL_SHARDS,
        |b, &s| b.iter(|| run_marketplace_proposal(s, PROPOSAL_CROWD).market_max_load),
    );
    group.finish();
}

criterion_group!(benches, bench_marketplace);
criterion_main!(benches);
