//! E11: ingestion front-door throughput of the sharded runtime.
//!
//! Concurrent clients ingest the mixed multi-project answer stream while
//! every shard is busy — the regime where front-door capacity decides
//! whether clients stall. Two doors are compared at 4 shards:
//!
//! * **single-submitter** (the PR 3 shape): the runtime's submission API
//!   allows one submitter, so clients stage events over a shared channel
//!   to the one permitted thread — every event pays an extra queue hop
//!   and the staging thread's wakeups;
//! * **gate** (the PR 4 shape): every client owns a cloned `IngestGate`
//!   handle and pushes straight into the owner shard's mailbox — one hop,
//!   a lock-free sequence stamp, no staging thread.
//!
//! On multi-core hosts the gate additionally lets the submit work itself
//! run in parallel; the ≥ 1.5× smoke gate below holds even on a
//! single-core container, where the win is purely the removed hop.
//!
//! `ci.sh` runs this bench on a tiny budget; `report -- gate` records the
//! full-size baseline to `BENCH_gate.json` with the same ≥ 1.5× gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_bench::{
    best_gate_admission, run_gate_workload, FrontDoor, GateWorkload, ShardWorkload,
};

fn bench_gate(c: &mut Criterion) {
    const SHARDS: usize = 4;
    let workload = GateWorkload {
        shape: ShardWorkload {
            projects: 8,
            items: 120,
            workers: 8,
            drain_every: 48,
        },
        submitters: 4,
    };
    let mut group = c.benchmark_group("e11_gate_throughput");
    group.sample_size(10);
    for door in [FrontDoor::SingleSubmitter, FrontDoor::Gate] {
        group.throughput(criterion::Throughput::Elements(
            (workload.shape.projects * workload.shape.items) as u64,
        ));
        group.bench_with_input(BenchmarkId::new("door", door.name()), &door, |b, &door| {
            b.iter(|| run_gate_workload(door, SHARDS, &workload))
        });
    }
    group.finish();

    // Smoke gate (runs under any CRITERION_BUDGET_MS): best-of-5 admission
    // per door at the full E11 stream length (short streams are dominated
    // by constants and under-resolve the door difference); the
    // multi-submitter gate must out-admit the single-submitter front door
    // by ≥ 1.5× even on one core.
    let smoke = GateWorkload::default();
    let (t_single, events, good_single) =
        best_gate_admission(FrontDoor::SingleSubmitter, SHARDS, &smoke, 5);
    let (t_gate, _, good_gate) = best_gate_admission(FrontDoor::Gate, SHARDS, &smoke, 5);
    assert_eq!(good_single, good_gate, "doors must derive identical facts");
    let speedup = t_single.as_secs_f64() / t_gate.as_secs_f64();
    println!(
        "e11 smoke: {events} events — single-submitter {t_single:.2?}, \
         gate {t_gate:.2?} ({speedup:.2}x)"
    );
    assert!(
        speedup >= 1.5,
        "gate must out-admit the single-submitter front door by 1.5x (got {speedup:.2}x)"
    );
}

criterion_group!(benches, bench_gate);
criterion_main!(benches);
