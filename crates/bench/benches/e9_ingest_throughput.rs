//! E9-ingest: batched vs per-answer ingestion throughput.
//!
//! The motivation for the event-driven execution core: ingesting each
//! worker answer with its own fixpoint run (`answer` + `run`, the
//! call-at-a-time path) re-derives the whole database N times, while
//! `answer_batch` applies N answers and runs the fixpoint **once**. At 10k
//! answers the batched path must be ≥5× faster (in practice it is orders
//! of magnitude faster); `ci.sh` runs this bench as a smoke test and the
//! `report` binary records the `BENCH_ingest.json` baseline.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use crowd4u_bench::ingest_workload;

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_ingest_throughput");
    group.sample_size(10);
    for &n in &[1_000u64, 10_000] {
        group.throughput(criterion::Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, &n| {
            b.iter_batched(
                || ingest_workload(n),
                |(mut engine, answers)| {
                    engine.answer_batch(&answers).unwrap();
                    engine.fact_count("good").unwrap()
                },
                BatchSize::LargeInput,
            )
        });
    }
    // The per-answer baseline runs the fixpoint once per answer — that
    // slowness is the point of the comparison, and why `ci.sh` runs this
    // bench with CRITERION_SKIP_WARMUP=1 (one full pass, not two).
    for &n in &[1_000u64, 10_000] {
        group.throughput(criterion::Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("per_answer", n), &n, |b, &n| {
            b.iter_batched(
                || ingest_workload(n),
                |(mut engine, answers)| {
                    for a in answers {
                        engine
                            .answer(&a.pred, a.inputs, a.outputs, a.worker)
                            .unwrap();
                        engine.run().unwrap();
                    }
                    engine.fact_count("good").unwrap()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
