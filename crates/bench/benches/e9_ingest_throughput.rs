//! E9-ingest: batched vs per-answer vs cross-batch-incremental ingestion.
//!
//! The motivation for the event-driven execution core: ingesting each
//! worker answer with its own fixpoint run (`answer` + `run`, the
//! call-at-a-time path) re-derives the whole database N times, while
//! `answer_batch` applies N answers and runs the fixpoint **once**. At 10k
//! answers the batched path must be ≥5× faster (in practice it is orders
//! of magnitude faster); `ci.sh` runs this bench as a smoke test and the
//! `report` binary records the `BENCH_ingest.json` baseline.
//!
//! The `*_waves` cases measure the *many-small-batches* regime a live
//! platform actually runs in: items arrive in 100-element waves, each wave
//! is fixpointed and answered before the next. There the win comes from
//! cross-batch incremental evaluation (`EvalMode::Incremental`, the
//! default) versus clear-and-rerun (`EvalMode::SemiNaive`) — both modes
//! are asserted byte-identical on the final state before measuring.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use crowd4u_bench::{incremental_stream_workload, ingest_workload};
use crowd4u_cylog::eval::EvalMode;
use crowd4u_storage::snapshot;

fn bench_ingest(c: &mut Criterion) {
    // Equivalence gate for the waves comparison: the two modes must reach
    // byte-identical engines (canonical dump, ledger, pending queue), or
    // the timing below compares different computations.
    let inc = incremental_stream_workload(2_000, 50, EvalMode::Incremental);
    let rerun = incremental_stream_workload(2_000, 50, EvalMode::SemiNaive);
    assert_eq!(
        snapshot::dump(inc.database()),
        snapshot::dump(rerun.database()),
        "incremental and clear-and-rerun final state diverged"
    );
    assert_eq!(inc.leaderboard(), rerun.leaderboard());
    assert_eq!(inc.pending_requests(), rerun.pending_requests());

    let mut group = c.benchmark_group("e9_ingest_throughput");
    group.sample_size(10);
    for &n in &[1_000u64, 10_000] {
        group.throughput(criterion::Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, &n| {
            b.iter_batched(
                || ingest_workload(n),
                |(mut engine, answers)| {
                    engine.answer_batch(&answers).unwrap();
                    engine.fact_count("good").unwrap()
                },
                BatchSize::LargeInput,
            )
        });
    }
    // The per-answer baseline runs the fixpoint once per answer — that
    // slowness is the point of the comparison, and why `ci.sh` runs this
    // bench with CRITERION_SKIP_WARMUP=1 (one full pass, not two).
    for &n in &[1_000u64, 10_000] {
        group.throughput(criterion::Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("per_answer", n), &n, |b, &n| {
            b.iter_batched(
                || ingest_workload(n),
                |(mut engine, answers)| {
                    for a in answers {
                        engine
                            .answer(&a.pred, a.inputs, a.outputs, a.worker)
                            .unwrap();
                        engine.run().unwrap();
                    }
                    engine.fact_count("good").unwrap()
                },
                BatchSize::LargeInput,
            )
        });
    }
    // The many-small-batches regime: 100-item waves, each fixpointed and
    // answered before the next arrives. Incremental advances from deltas;
    // clear-and-rerun pays the whole database twice per wave.
    for &n in &[1_000u64, 10_000] {
        group.throughput(criterion::Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("incremental_waves", n), &n, |b, &n| {
            b.iter(|| {
                incremental_stream_workload(n, 100, EvalMode::Incremental)
                    .fact_count("good")
                    .unwrap()
            })
        });
    }
    for &n in &[1_000u64, 10_000] {
        group.throughput(criterion::Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("clear_rerun_waves", n), &n, |b, &n| {
            b.iter(|| {
                incremental_stream_workload(n, 100, EvalMode::SemiNaive)
                    .fact_count("good")
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
