//! E5 (paper Figure 5): a simultaneous collaboration session end-to-end —
//! SNS-id solicitation, shared-workspace editing, team submission.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_collab::prelude::*;
use crowd4u_crowd::profile::WorkerId;
use crowd4u_sim::rng::SimRng;

fn run_session(members: usize, edits_per_member: usize, seed: u64) -> f64 {
    let ids: Vec<WorkerId> = (0..members as u64).map(WorkerId).collect();
    let mut s = SimultaneousSession::new("doc", ids.clone(), &["a", "b", "c"], 0.7);
    for &m in &ids {
        s.provide_sns_id(m, format!("{m}@sns")).unwrap();
    }
    let mut rng = SimRng::seed_from(seed);
    for round in 0..edits_per_member {
        for (k, &m) in ids.iter().enumerate() {
            s.contribute(
                m,
                (k + round) % 3,
                format!("text {round} by {m}"),
                rng.unit(),
            )
            .unwrap();
        }
    }
    let (_, q) = s.submit(ids[0]).unwrap();
    q
}

fn bench_simultaneous(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_simultaneous");
    for &members in &[3usize, 6, 12] {
        group.bench_with_input(
            BenchmarkId::new("session", members),
            &members,
            |b, &members| b.iter(|| std::hint::black_box(run_session(members, 5, 9))),
        );
    }
    // Heavy-edit workspace merge.
    group.bench_function("merge_1000_edits", |b| {
        b.iter_batched(
            || {
                let ids: Vec<WorkerId> = (0..10).map(WorkerId).collect();
                let mut ws = SharedWorkspace::new("doc", ids.clone(), &["s"]);
                for k in 0..1000u64 {
                    ws.contribute(ids[(k % 10) as usize], 0, format!("edit {k}"), 0.5)
                        .unwrap();
                }
                ws
            },
            |ws| std::hint::black_box(ws.sections()[0].merged_text().len()),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_simultaneous);
criterion_main!(benches);
