//! E12: scenario streaming through the ingestion gate vs the retired
//! whole-`Driver` shard-job execution model.
//!
//! Workload: multi-project scenarios — one seeded crowd driving all three
//! §2.5 schemes on one `Driver`, three projects each. The retired model
//! ships each scenario whole to a single shard (its projects are pinned
//! together; other shards cannot help); the PR 5 streaming port records
//! the scenario's decision stream once (untimed client-side work) and
//! pushes it through `IngestGate` handles, so every project lands on its
//! owner shard and concurrent scenarios interleave.
//!
//! What the numbers mean **on this single-core container**: both models
//! execute the same platform operations serially, and the scenario's
//! decision logic is only a few percent of a run, so matched shard counts
//! measure at parity; at 4 shards the streamed path additionally pays the
//! broadcast-replication cost (clocks and registrations apply on every
//! shard) with no parallel payback. Multi-core hosts get that payback —
//! a lone scenario's three projects genuinely apply in parallel, which
//! the pinned model cannot do at any core count. The smoke gates below
//! are therefore *parity/regression floors*, not a victory margin, plus
//! the byte-level correctness checks that are the port's actual point:
//! the streamed merged journal must equal the serial reference at every
//! shard count, and the shard-job model's slice journals must equal the
//! decision shadows'.
//!
//! `report -- scenario` records the full sweep to `BENCH_scenario.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd4u_bench::{
    best_multi_project_run, multi_project_configs, multi_project_serial_reference,
    record_multi_project_trace, run_multi_project_shard_jobs, run_multi_project_streamed,
    ScenarioStreamWorkload,
};

fn bench_scenario_streaming(c: &mut Criterion) {
    let w = ScenarioStreamWorkload::default();
    let configs = multi_project_configs(&w);
    let recorded: Vec<_> = configs.iter().map(record_multi_project_trace).collect();
    let traces: Vec<_> = recorded.iter().map(|(t, _)| t.clone()).collect();

    let mut group = c.benchmark_group("e12_scenario_streaming");
    group.sample_size(10);
    for &shards in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("shard-jobs", shards),
            &shards,
            |b, &shards| b.iter(|| run_multi_project_shard_jobs(shards, &configs)),
        );
        group.bench_with_input(
            BenchmarkId::new("streamed", shards),
            &shards,
            |b, &shards| b.iter(|| run_multi_project_streamed(shards, &traces)),
        );
    }
    group.finish();

    // Smoke gates (run under any CRITERION_BUDGET_MS).
    // 1. Byte-level correctness: the streamed journal equals the serial
    //    reference at 1 and 4 shards (shard-count invariance), and each
    //    shard-job slice journal equals its decision shadow's.
    let serial_ref = multi_project_serial_reference(&traces);
    let (tb1, _) = best_multi_project_run(3, || run_multi_project_shard_jobs(1, &configs));
    let (ts1, j1) = best_multi_project_run(3, || run_multi_project_streamed(1, &traces));
    assert_eq!(
        j1, serial_ref,
        "streamed journal != serial reference at 1 shard"
    );
    let (tb4, base_journals) =
        best_multi_project_run(3, || run_multi_project_shard_jobs(4, &configs));
    // Valid only with one scenario per shard: on fewer shards the second
    // job lands on the first's slice and its journal is appended there —
    // the retired model's actual (and limiting) semantics.
    for (journal, (_, shadow)) in base_journals.iter().zip(&recorded) {
        assert_eq!(journal, shadow, "shard job diverged from the shadow run");
    }
    let (ts4, j4) = best_multi_project_run(3, || run_multi_project_streamed(4, &traces));
    assert_eq!(
        j4, serial_ref,
        "streamed journal must be shard-count-invariant"
    );

    // 2. Throughput floors: parity at the matched single-shard
    //    configuration, bounded broadcast-replication cost at 4 shards.
    let r1 = tb1.as_secs_f64() / ts1.as_secs_f64();
    let r4 = tb4.as_secs_f64() / ts4.as_secs_f64();
    println!(
        "e12 smoke: {} drivers x 3 projects — 1 shard: jobs {tb1:.2?} vs streamed {ts1:.2?} \
         ({r1:.2}x); 4 shards: jobs {tb4:.2?} vs streamed {ts4:.2?} ({r4:.2}x)",
        w.drivers
    );
    assert!(
        r1 >= 0.8,
        "streamed scenario ingestion regressed: {r1:.2}x the shard-job model at 1 shard \
         (parity floor 0.8)"
    );
    assert!(
        r4 >= 0.55,
        "streamed scenario ingestion regressed: {r4:.2}x the shard-job model at 4 shards \
         (replication floor 0.55)"
    );
}

criterion_group!(benches, bench_scenario_streaming);
criterion_main!(benches);
