//! Regenerate every paper figure/experiment as a text report.
//!
//! ```text
//! cargo run --release -p crowd4u-bench --bin report            # all
//! cargo run --release -p crowd4u-bench --bin report -- e6 e7   # subset
//! cargo run --release -p crowd4u-bench --bin report -- e8full  # full 600k
//! cargo run --release -p crowd4u-bench --bin report -- ingest  # BENCH_ingest.json
//! cargo run --release -p crowd4u-bench --bin report -- obs     # BENCH_obs.json
//! ```
//!
//! The output of this binary is what EXPERIMENTS.md records. The `ingest`
//! experiment (explicit only — its per-answer baseline runs ~10⁴ fixpoints
//! and takes minutes) records the batched-vs-per-answer ingestion baseline
//! to `BENCH_ingest.json` and fails if batching is less than 5× faster.

use crowd4u_assign::prelude::*;
use crowd4u_bench::{all_algorithms, clustered_instance, random_instance, TablePrinter};
use crowd4u_collab::Scheme;
use crowd4u_core::controller::AlgorithmChoice;
use crowd4u_crowd::estimate::{estimate_skills, EstimatorConfig, TeamObservation};
use crowd4u_crowd::profile::WorkerId;
use crowd4u_cylog::engine::CylogEngine;
use crowd4u_forms::admin::{constraint_form, parse_constraints};
use crowd4u_forms::form::FormResponse;
use crowd4u_scenarios::{journalism, surveillance, translation, ScenarioConfig};
use crowd4u_sim::rng::SimRng;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    println!("# Crowd4U reproduction report\n");
    if want("e1") {
        e1_pipeline();
    }
    if want("e2") {
        e2_workflow();
    }
    if want("e3") {
        e3_admin_form();
    }
    if want("e4") {
        e4_worker_factors();
    }
    if want("e5") {
        e5_simultaneous();
    }
    if want("e6") {
        e6_assignment_quality();
    }
    if want("e7") {
        e7_assignment_runtime();
    }
    if want("e8") || args.iter().any(|a| a == "e8full") {
        e8_scale(args.iter().any(|a| a == "e8full"));
    }
    if want("e9") {
        e9_scenarios();
    }
    // Explicit only: the per-answer baseline takes minutes by design.
    if args.iter().any(|a| a == "ingest") {
        ingest_baseline();
    }
    // Explicit only: the shard-scaling sweep ingests the full workload at
    // four shard counts (records BENCH_shard.json).
    if args.iter().any(|a| a == "shard") {
        shard_baseline();
    }
    // Explicit only: the ingestion front-door comparison (records
    // BENCH_gate.json).
    if args.iter().any(|a| a == "gate") {
        gate_baseline();
    }
    // Explicit only: the scenario-streaming comparison (records
    // BENCH_scenario.json).
    if args.iter().any(|a| a == "scenario") {
        scenario_baseline();
    }
    // Explicit only: the million-worker crowd baseline (records
    // BENCH_workers.json; ~minutes at the default 10⁶ population —
    // override with E13_WORKERS).
    if args.iter().any(|a| a == "workers") {
        workers_baseline();
    }
    // Explicit only: the telemetry-overhead baseline and observability
    // surface check (records BENCH_obs.json).
    if args.iter().any(|a| a == "obs") {
        obs_baseline();
    }
    // Explicit only: the crash-recovery latency baseline (records
    // BENCH_recovery.json).
    if args.iter().any(|a| a == "recovery") {
        recovery_baseline();
    }
    // Explicit only: the shared-crowd marketplace baseline (records
    // BENCH_marketplace.json).
    if args.iter().any(|a| a == "marketplace") {
        marketplace_baseline();
    }
}

/// E16 baseline: the shared-crowd marketplace. Streams the three §2.5
/// scenarios over one population at 1/2/4 shards — byte-identity against
/// the serial shared composite and the exact split partition are asserted
/// inside every run — then measures what the least-loaded proposal buys
/// over a skill-only formation on a star-skewed crowd. Records
/// `BENCH_marketplace.json` and exits non-zero if any run's totals drift
/// across shard counts or the marketplace proposal fields a busier team
/// than the base algorithm.
fn marketplace_baseline() {
    use crowd4u_bench::{run_marketplace_proposal, run_marketplace_workload};
    const SHARD_SWEEP: [usize; 3] = [1, 2, 4];
    const REPS: usize = 3;
    const PROPOSAL_CROWD: u64 = 12;
    let cfg = ScenarioConfig::default()
        .with_crowd(20)
        .with_items(3)
        .with_seed(1016);
    println!(
        "\n## E16 — shared-crowd marketplace (3 scenarios, one crowd of 20, \
         best of {REPS})\n"
    );

    let mut t = TablePrinter::new(&["shards", "seconds", "platform points"]);
    let mut per_shard_s = Vec::new();
    let mut reference: Option<crowd4u_bench::MarketplaceRun> = None;
    for shards in SHARD_SWEEP {
        let mut best = f64::MAX;
        let mut last = None;
        for _ in 0..REPS {
            let run = run_marketplace_workload(shards, &cfg);
            best = best.min(run.elapsed.as_secs_f64());
            last = Some(run);
        }
        let run = last.expect("at least one rep");
        if let Some(r) = &reference {
            assert_eq!(
                r.scheme_points, run.scheme_points,
                "per-scheme totals drifted between shard counts"
            );
            assert_eq!(
                r.platform_points, run.platform_points,
                "platform total drifted between shard counts"
            );
        }
        t.row(vec![
            shards.to_string(),
            format!("{best:.4}"),
            run.platform_points.to_string(),
        ]);
        per_shard_s.push((shards, best));
        reference.get_or_insert(run);
    }
    println!("{}", t.render());
    let reference = reference.expect("sweep ran");

    let prop = run_marketplace_proposal(4, PROPOSAL_CROWD);
    assert!(
        prop.market_max_load <= prop.base_max_load,
        "least-loaded proposal ({}) busier than the base pick ({})",
        prop.market_max_load,
        prop.base_max_load
    );
    let mut t = TablePrinter::new(&["proposal", "busiest member's load"]);
    t.row(vec![
        "base algorithm (skill only)".into(),
        prop.base_max_load.to_string(),
    ]);
    t.row(vec![
        "marketplace (least-loaded)".into(),
        prop.market_max_load.to_string(),
    ]);
    println!("{}", t.render());

    let scheme_points: Vec<String> = reference
        .scheme_points
        .iter()
        .map(|p| p.to_string())
        .collect();
    let shard_json: Vec<String> = per_shard_s
        .iter()
        .map(|(s, secs)| format!("{{\"shards\": {s}, \"seconds\": {secs:.6}}}"))
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e16_marketplace\",\n  \"crowd\": 20,\n  \
         \"items\": 3,\n  \"reps\": {REPS},\n  \
         \"runs\": [{}],\n  \"scheme_points\": [{}],\n  \
         \"platform_points\": {},\n  \"proposal_crowd\": {PROPOSAL_CROWD},\n  \
         \"base_max_load\": {},\n  \"market_max_load\": {}\n}}\n",
        shard_json.join(", "),
        scheme_points.join(", "),
        reference.platform_points,
        prop.base_max_load,
        prop.market_max_load,
    );
    std::fs::write("BENCH_marketplace.json", &json).expect("write BENCH_marketplace.json");
    println!("baseline recorded to BENCH_marketplace.json");
}

/// E15 baseline: what crash recovery costs relative to rerunning the
/// workload. Runs the E10 stream clean, then under a chaos plan that
/// kills one shard mid-answer-stream and crash-recovers it by
/// journal-slice replay. Records `BENCH_recovery.json` and exits non-zero
/// if the kill never fired, the chaos run derived different facts, or
/// recovery replay is less than 10× faster than the full workload — the
/// whole point of slice replay is paying for one shard's history, not
/// everyone's.
fn recovery_baseline() {
    use crowd4u_bench::{run_recovery_workload, run_shard_workload, ShardWorkload};
    const SHARDS: usize = 4;
    const REPS: usize = 3;
    let w = ShardWorkload::default();
    // Kill shard 1 midway through its seed stream: it owns 2 of the 8
    // projects, each contributing `items` seeds + `items` answers, so the
    // replayed slice is a quarter of one shard's history — small enough
    // that the ≥10× gate below holds with real margin.
    let kill = (1usize, w.items as u64 / 2);
    println!(
        "\n## E15 — crash-recovery latency ({} projects × {} items, {SHARDS} shards, \
         kill shard {} after {} applies)\n",
        w.projects, w.items, kill.0, kill.1
    );

    let mut clean_best = f64::MAX;
    let mut good_clean = 0usize;
    for _ in 0..REPS {
        let (elapsed, _, good) = run_shard_workload(SHARDS, &w);
        clean_best = clean_best.min(elapsed.as_secs_f64());
        good_clean = good;
    }
    let mut chaos_best = f64::MAX;
    let mut recovery_best = f64::MAX;
    for _ in 0..REPS {
        let run = run_recovery_workload(SHARDS, &w, kill);
        assert!(run.recoveries >= 1, "the planned kill never fired");
        assert_eq!(run.good, good_clean, "recovery changed derived facts");
        chaos_best = chaos_best.min(run.elapsed.as_secs_f64());
        recovery_best = recovery_best.min(run.recovery_ns as f64 / 1e9);
    }
    let ratio = clean_best / recovery_best;

    let mut t = TablePrinter::new(&["measure", "seconds"]);
    t.row(vec![
        "full workload (no fault)".into(),
        format!("{clean_best:.4}"),
    ]);
    t.row(vec![
        "full workload (kill + recover)".into(),
        format!("{chaos_best:.4}"),
    ]);
    t.row(vec![
        "recovery replay alone".into(),
        format!("{recovery_best:.4}"),
    ]);
    t.row(vec![
        "workload / recovery ratio".into(),
        format!("{ratio:.1}×"),
    ]);
    println!("{}", t.render());

    let json = format!(
        "{{\n  \"experiment\": \"e15_recovery_latency\",\n  \"shards\": {SHARDS},\n  \
         \"projects\": {},\n  \"items\": {},\n  \"reps\": {REPS},\n  \
         \"kill_shard\": {},\n  \"kill_after_applies\": {},\n  \
         \"clean_run_s\": {clean_best:.6},\n  \"chaos_run_s\": {chaos_best:.6},\n  \
         \"recovery_replay_s\": {recovery_best:.6},\n  \"workload_over_recovery\": {ratio:.2},\n  \
         \"good_facts\": {good_clean}\n}}\n",
        w.projects, w.items, kill.0, kill.1,
    );
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    println!("baseline recorded to BENCH_recovery.json");
    assert!(
        ratio >= 10.0,
        "recovery replay must be ≥10× faster than rerunning the workload \
         (got {ratio:.1}×: replay {recovery_best:.4}s vs workload {clean_best:.4}s)"
    );
}

/// E14 baseline: what the PR 8 telemetry layer costs, and whether the
/// exposition surface holds. Runs the E10 shard workload with telemetry
/// enabled vs disabled (min-of-N), the engine-level ingest path plain vs
/// with disabled handles attached, renders the enabled run's metrics in
/// Prometheus text format, validates it, and prints the full metric
/// inventory. Records `BENCH_obs.json` and exits non-zero if enabled
/// telemetry costs more than 5% ingest throughput, disabled telemetry is
/// not free (>3% at the engine level), the exposition fails to parse, or
/// any of the five pipeline-stage histograms is empty.
fn obs_baseline() {
    use crowd4u_bench::{ingest_workload, run_shard_workload_instrumented, ShardWorkload};
    use crowd4u_telemetry::{stage, validate_exposition, Registry};
    const SHARDS: usize = 4;
    const REPS: usize = 5;
    let w = ShardWorkload::default();
    println!(
        "## E14 — telemetry overhead: {} projects x {} items, {SHARDS} shards, best of {REPS}\n",
        w.projects, w.items
    );

    // Runtime-level A/B: the full five-stage span pipeline against a
    // registry whose every cell is a no-op. The derived facts must match
    // (telemetry is observe-only) before any timing is compared.
    let best = |mk: fn() -> Registry| {
        let mut min = std::time::Duration::MAX;
        let mut good = 0;
        for _ in 0..REPS {
            let (t, _, g) = run_shard_workload_instrumented(SHARDS, &w, mk());
            min = min.min(t);
            good = g;
        }
        (min, good)
    };
    let (t_on, good_on) = best(Registry::new);
    let (t_off, good_off) = best(Registry::disabled);
    assert_eq!(good_on, good_off, "telemetry changed derived facts");
    let enabled_pct = (t_on.as_secs_f64() / t_off.as_secs_f64() - 1.0) * 100.0;

    // Engine-level A/B: the same `answer_batch` path E9 measures, plain
    // vs with disabled telemetry cells attached — the evidence that the
    // disabled registry is free on the hot path.
    const ANSWERS: u64 = 10_000;
    let engine_best = |attach: bool| {
        let mut min = std::time::Duration::MAX;
        for _ in 0..7 {
            let (mut engine, answers) = ingest_workload(ANSWERS);
            if attach {
                engine.set_telemetry(&Registry::disabled().handle());
            }
            let start = Instant::now();
            engine.answer_batch(&answers).unwrap();
            min = min.min(start.elapsed());
        }
        min
    };
    let t_plain = engine_best(false);
    let t_disabled = engine_best(true);
    let disabled_pct = (t_disabled.as_secs_f64() / t_plain.as_secs_f64() - 1.0) * 100.0;

    let mut t = TablePrinter::new(&["path", "telemetry", "time", "overhead"]);
    t.row(vec![
        "runtime (4 shards)".into(),
        "disabled".into(),
        format!("{t_off:.2?}"),
        String::new(),
    ]);
    t.row(vec![
        "runtime (4 shards)".into(),
        "enabled".into(),
        format!("{t_on:.2?}"),
        format!("{enabled_pct:+.1}%"),
    ]);
    t.row(vec![
        "engine (answer_batch)".into(),
        "none".into(),
        format!("{t_plain:.2?}"),
        String::new(),
    ]);
    t.row(vec![
        "engine (answer_batch)".into(),
        "disabled handles".into(),
        format!("{t_disabled:.2?}"),
        format!("{disabled_pct:+.1}%"),
    ]);
    println!("{}", t.render());

    // Exposition surface: one more instrumented run, scraped and rendered.
    let registry = Registry::new();
    run_shard_workload_instrumented(SHARDS, &w, registry.clone());
    let snap = registry.snapshot();
    let text = snap.render();
    let series = validate_exposition(&text).expect("exposition must parse");
    for name in stage::ALL {
        assert!(
            snap.histogram_count(name) > 0,
            "stage histogram {name} empty after the workload"
        );
    }

    println!("### Metric inventory ({series} series rendered)\n");
    let mut inv = TablePrinter::new(&["metric", "type", "value"]);
    for ((name, labels), v) in &snap.counters {
        inv.row(vec![
            label_key(name, labels),
            "counter".into(),
            v.to_string(),
        ]);
    }
    for ((name, labels), v) in &snap.gauges {
        inv.row(vec![label_key(name, labels), "gauge".into(), v.to_string()]);
    }
    for ((name, labels), h) in &snap.histograms {
        inv.row(vec![
            label_key(name, labels),
            "histogram".into(),
            format!("count {} sum {}", h.count, h.sum),
        ]);
    }
    println!("{}", inv.render());

    let stages: Vec<String> = stage::ALL
        .iter()
        .map(|name| format!("    \"{name}\": {}", snap.histogram_count(name)))
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e14_telemetry_overhead\",\n  \"shards\": {SHARDS},\n  \
         \"projects\": {},\n  \"items\": {},\n  \"reps\": {REPS},\n  \
         \"runtime_enabled_ms\": {:.3},\n  \"runtime_disabled_ms\": {:.3},\n  \
         \"enabled_overhead_pct\": {enabled_pct:.2},\n  \"engine_answers\": {ANSWERS},\n  \
         \"engine_plain_ms\": {:.3},\n  \"engine_disabled_ms\": {:.3},\n  \
         \"disabled_overhead_pct\": {disabled_pct:.2},\n  \"series_rendered\": {series},\n  \
         \"stage_histogram_counts\": {{\n{}\n  }}\n}}\n",
        w.projects,
        w.items,
        t_on.as_secs_f64() * 1e3,
        t_off.as_secs_f64() * 1e3,
        t_plain.as_secs_f64() * 1e3,
        t_disabled.as_secs_f64() * 1e3,
        stages.join(",\n"),
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("baseline recorded to BENCH_obs.json");

    assert!(
        enabled_pct <= 5.0,
        "enabled telemetry costs {enabled_pct:.1}% ingest throughput (budget: 5%)"
    );
    assert!(
        disabled_pct <= 3.0,
        "disabled telemetry is not free: {disabled_pct:.1}% on the engine hot path"
    );
}

/// `name{labels}` or bare `name` for the inventory table.
fn label_key(name: &str, labels: &str) -> String {
    if labels.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{labels}}}")
    }
}

/// E13 baseline: a million-worker crowd with churn through the lazy
/// affinity provider and the coordinator-owned worker service. Records
/// `BENCH_workers.json` and exits non-zero if registration stops being
/// O(1) amortised, the provider's resident affinity state outgrows its
/// `2·top_k·n` bound, p99 assignment latency scales with the population,
/// or the 4-shard runtime drops worker-version lockstep.
fn workers_baseline() {
    use crowd4u_bench::{
        assignment_p99, peak_rss_bytes, registration_deciles, run_worker_scale_runtime,
        worker_scale_project, WorkerScaleWorkload,
    };
    let mut w = WorkerScaleWorkload {
        workers: 1_000_000,
        ..WorkerScaleWorkload::default()
    };
    if let Some(n) = std::env::var("E13_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        w.workers = n;
    }
    let n = w.workers;
    println!(
        "## E13 — worker scale: {n} workers + {}% churn, {} eligible, top_k {}\n",
        w.churn_percent, w.eligible, w.top_k
    );

    let (first, last, events, mut platform) = registration_deciles(&w);
    let ratio = last.as_secs_f64() / first.as_secs_f64().max(1e-9);

    platform.workers.set_affinity_cache(0.0, w.top_k);
    let sample = (4 * n).min(200_000) as u64;
    for k in 0..sample {
        let a = 1 + k % n as u64;
        let b = 1 + (k * 7 + 13) % n as u64;
        platform.workers.pair_affinity(WorkerId(a), WorkerId(b));
    }
    let entries = platform.workers.cached_affinity_entries();
    let entry_bound = 2 * w.top_k * n;

    let small = WorkerScaleWorkload {
        workers: (n / 25).max(w.eligible * 2),
        ..w
    };
    let (_, _, _, mut small_platform) = registration_deciles(&small);
    let sp = worker_scale_project(&mut small_platform);
    let p99_small = assignment_p99(&mut small_platform, sp, w.eligible, 100);
    let lp = worker_scale_project(&mut platform);
    let p99_large = assignment_p99(&mut platform, lp, w.eligible, 100);
    drop(platform);
    drop(small_platform);

    let (elapsed, applied, per_shard) = run_worker_scale_runtime(4, &w);
    let churn = n * w.churn_percent / 100;
    let lockstep = per_shard
        .iter()
        .all(|(len, v)| *len == n && *v == (n + churn) as u64);
    let peak_mib = peak_rss_bytes().map(|b| b >> 20).unwrap_or(0);
    let dense_mib = ((n as u64) * (n as u64 - 1) / 2 * 8) >> 20;

    let mut t = TablePrinter::new(&["measure", "value"]);
    t.row(vec![
        "registrations (incl. churn)".into(),
        events.to_string(),
    ]);
    t.row(vec!["first decile".into(), format!("{:.1?}", first)]);
    t.row(vec![
        "last decile".into(),
        format!("{:.1?} ({ratio:.2}x)", last),
    ]);
    t.row(vec![
        "cached affinity entries".into(),
        format!("{entries} (bound {entry_bound})"),
    ]);
    t.row(vec![
        format!("p99 assignment, {} workers", small.workers),
        format!("{p99_small:.1?}"),
    ]);
    t.row(vec![
        format!("p99 assignment, {n} workers"),
        format!("{p99_large:.1?}"),
    ]);
    t.row(vec![
        "4-shard runtime (workers first)".into(),
        format!("{elapsed:.2?} / {applied} applied"),
    ]);
    t.row(vec![
        "worker lockstep across shards".into(),
        lockstep.to_string(),
    ]);
    t.row(vec![
        "peak RSS".into(),
        format!("{peak_mib} MiB (dense matrix: {dense_mib} MiB)"),
    ]);
    println!("{}", t.render());

    let json = format!(
        "{{\n  \"experiment\": \"e13_worker_scale\",\n  \"workers\": {n},\n  \
         \"churn_percent\": {},\n  \"eligible\": {},\n  \"top_k\": {},\n  \
         \"registrations\": {events},\n  \"first_decile_ms\": {:.3},\n  \
         \"last_decile_ms\": {:.3},\n  \"decile_ratio\": {ratio:.2},\n  \
         \"cached_affinity_entries\": {entries},\n  \"entry_bound\": {entry_bound},\n  \
         \"p99_small_us\": {:.1},\n  \"p99_large_us\": {:.1},\n  \
         \"runtime_4_shards_ms\": {:.1},\n  \"runtime_applied\": {applied},\n  \
         \"worker_lockstep\": {lockstep},\n  \"peak_rss_mib\": {peak_mib},\n  \
         \"dense_matrix_mib\": {dense_mib}\n}}\n",
        w.churn_percent,
        w.eligible,
        w.top_k,
        first.as_secs_f64() * 1e3,
        last.as_secs_f64() * 1e3,
        p99_small.as_secs_f64() * 1e6,
        p99_large.as_secs_f64() * 1e6,
        elapsed.as_secs_f64() * 1e3,
    );
    std::fs::write("BENCH_workers.json", &json).expect("write BENCH_workers.json");
    println!("baseline recorded to BENCH_workers.json");

    assert!(
        ratio < 8.0,
        "registration is not O(1) amortised: last decile {ratio:.2}x the first"
    );
    assert!(
        entries <= entry_bound,
        "affinity cache exceeded its 2·top_k·n bound: {entries}"
    );
    assert!(
        p99_large.as_secs_f64() < 5.0 * p99_small.as_secs_f64() + 2e-3,
        "p99 assignment latency scales with population: {p99_small:.2?} → {p99_large:.2?}"
    );
    assert!(lockstep, "worker registry out of lockstep: {per_shard:?}");
}

/// E12 baseline: multi-project scenarios (one crowd driving all three
/// schemes — three projects each) through the two execution models at
/// 1/2/4 shards: whole-`Driver` shard jobs (the retired PR 3 model, each
/// scenario pinned to one shard) vs recorded streams through the
/// ingestion gate (projects span shards). Records the sweep to
/// `BENCH_scenario.json`; byte-level correctness is asserted inline
/// (streamed merged journal == serial reference at every shard count,
/// shard-job slice journals == the decision shadows'). On this
/// single-core container the models measure at parity at matched shard
/// counts and the streamed path pays broadcast replication at 4 shards —
/// the recorded ratios gate *regressions*, the cross-shard capability is
/// the point (see ARCHITECTURE.md §5).
fn scenario_baseline() {
    use crowd4u_bench::{
        best_multi_project_run, multi_project_configs, multi_project_serial_reference,
        record_multi_project_trace, run_multi_project_shard_jobs, run_multi_project_streamed,
        ScenarioStreamWorkload,
    };
    const REPS: usize = 5;
    let w = ScenarioStreamWorkload::default();
    println!(
        "## E12 — scenario streaming: {} drivers x 3 projects, {} workers, {} items, best of {REPS}\n",
        w.drivers, w.crowd, w.items
    );
    let configs = multi_project_configs(&w);
    let recorded: Vec<_> = configs.iter().map(record_multi_project_trace).collect();
    let traces: Vec<_> = recorded.iter().map(|(t, _)| t.clone()).collect();
    let serial_ref = multi_project_serial_reference(&traces);

    let mut t = TablePrinter::new(&["model", "shards", "time", "streamed/jobs"]);
    let mut rows: Vec<(String, usize, f64, f64)> = Vec::new();
    let mut ratio_1 = 0.0f64;
    let mut ratio_4 = 0.0f64;
    for &shards in &[1usize, 2, 4] {
        let (tj, journals) =
            best_multi_project_run(REPS, || run_multi_project_shard_jobs(shards, &configs));
        if shards >= w.drivers {
            // One scenario per shard: each fresh slice must reproduce its
            // decision shadow byte for byte. (On fewer shards the second
            // job appends onto the first's slice — the retired model's
            // actual semantics — so the per-driver comparison is void.)
            for (journal, (_, shadow)) in journals.iter().zip(&recorded) {
                assert_eq!(journal, shadow, "shard job diverged from the shadow run");
            }
        }
        let (ts, streamed_journal) =
            best_multi_project_run(REPS, || run_multi_project_streamed(shards, &traces));
        assert_eq!(
            streamed_journal, serial_ref,
            "streamed journal != serial reference at {shards} shards"
        );
        let ratio = tj.as_secs_f64() / ts.as_secs_f64();
        if shards == 1 {
            ratio_1 = ratio;
        }
        if shards == 4 {
            ratio_4 = ratio;
        }
        t.row(vec![
            "shard-jobs".into(),
            shards.to_string(),
            format!("{tj:.2?}"),
            String::new(),
        ]);
        t.row(vec![
            "streamed".into(),
            shards.to_string(),
            format!("{ts:.2?}"),
            format!("{ratio:.2}x"),
        ]);
        rows.push(("shard-jobs".into(), shards, tj.as_secs_f64() * 1e3, 0.0));
        rows.push(("streamed".into(), shards, ts.as_secs_f64() * 1e3, ratio));
    }
    println!("{}", t.render());

    let runs: Vec<String> = rows
        .iter()
        .map(|(model, shards, ms, ratio)| {
            format!(
                "    {{ \"model\": \"{model}\", \"shards\": {shards}, \"ms\": {ms:.3}, \
                 \"streamed_vs_jobs\": {ratio:.2} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e12_scenario_streaming\",\n  \"drivers\": {},\n  \
         \"crowd\": {},\n  \"items\": {},\n  \"journals_byte_identical\": true,\n  \
         \"runs\": [\n{}\n  ],\n  \"streamed_vs_jobs_1_shard\": {ratio_1:.2},\n  \
         \"streamed_vs_jobs_4_shards\": {ratio_4:.2}\n}}\n",
        w.drivers,
        w.crowd,
        w.items,
        runs.join(",\n"),
    );
    std::fs::write("BENCH_scenario.json", &json).expect("write BENCH_scenario.json");
    println!("baseline recorded to BENCH_scenario.json");
    assert!(
        ratio_1 >= 0.8,
        "streamed scenario ingestion regressed: {ratio_1:.2}x the shard-job model at 1 shard"
    );
    assert!(
        ratio_4 >= 0.55,
        "streamed scenario ingestion regressed: {ratio_4:.2}x the shard-job model at 4 shards"
    );
}

/// E1 (Figure 1): deployment pipeline decomposition → assignment →
/// completion, per collaboration scheme.
fn e1_pipeline() {
    println!("## E1 (Figure 1) — deployment pipeline per scheme\n");
    let mut t = TablePrinter::new(&[
        "scheme",
        "items",
        "completed",
        "quality",
        "makespan",
        "answers",
        "teams",
        "reassign",
    ]);
    let cfg = ScenarioConfig::default()
        .with_crowd(60)
        .with_items(8)
        .with_seed(42);
    for scheme in Scheme::all() {
        let r = crowd4u_scenarios::run_scheme(scheme, &cfg).expect("scenario");
        t.row(vec![
            scheme.to_string(),
            r.items_total.to_string(),
            r.items_completed.to_string(),
            format!("{:.3}", r.mean_quality),
            r.makespan.to_string(),
            r.answers.to_string(),
            r.teams_formed.to_string(),
            r.reassignments.to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// E2 (Figure 2): the 5-step assignment workflow — counts of each
/// transition over a deadline-heavy run.
fn e2_workflow() {
    println!("## E2 (Figure 2) — workflow step counts under worker churn\n");
    use crowd4u_core::prelude::*;
    use crowd4u_crowd::profile::WorkerProfile;
    use crowd4u_forms::admin::DesiredFactors;
    use crowd4u_sim::time::SimTime;

    let mut p = Crowd4U::new();
    let mut rng = SimRng::seed_from(7);
    for i in 1..=30u64 {
        p.register_worker(WorkerProfile::new(WorkerId(i), format!("w{i}")));
    }
    let proj = p
        .register_project(
            "workflow",
            "rel item(x: str).\nopen label(x: str) -> (y: str).\n\
             rel out(x: str, y: str).\nout(X, Y) :- item(X), label(X, Y).\n",
            DesiredFactors {
                min_team: 3,
                max_team: 5,
                recruitment_secs: 300,
                ..Default::default()
            },
            Scheme::Sequential,
        )
        .unwrap();
    let mut now = 0u64;
    for round in 0..10 {
        let task = p.create_collab_task(proj, format!("job {round}")).unwrap();
        for w in p.workers.ids() {
            if rng.chance(0.5) {
                let _ = p.express_interest(w, task);
            }
        }
        if let Ok(team) = p.run_assignment(task) {
            for &m in &team.members {
                if rng.chance(0.7) {
                    let _ = p.undertake(m, task);
                }
            }
        }
        now += 301;
        p.advance_to(SimTime(now)).unwrap();
        // Second chance for re-suggested teams.
        if let TaskState::Suggested { team, .. } = p.pool.get(task).unwrap().state.clone() {
            for m in team {
                let _ = p.undertake(m, task);
            }
        }
        if matches!(
            p.pool.get(task).unwrap().state,
            TaskState::InProgress { .. }
        ) {
            p.complete_collab_task(task, 0.7 + 0.3 * rng.unit())
                .unwrap();
        }
    }
    let mut t = TablePrinter::new(&["counter", "value"]);
    for (k, v) in p.counters.iter() {
        t.row(vec![k.to_string(), v.to_string()]);
    }
    println!("{}", t.render());
}

/// E3 (Figure 3): the constraint entry form — valid/invalid submissions.
fn e3_admin_form() {
    println!("## E3 (Figure 3) — admin constraint form validation matrix\n");
    let form = constraint_form(&["translation", "journalism"], &["en", "ja", "fr"]);
    let base = || {
        FormResponse::new()
            .set("language", "en")
            .set("skill", "translation")
            .set("min_quality", 0.6)
            .set("min_team", 3i64)
            .set("max_team", 5i64)
            .set("max_cost", 10.0)
            .set("recruitment_secs", 3600i64)
            .set("require_login", true)
    };
    let cases: Vec<(&str, FormResponse)> = vec![
        ("valid", base()),
        ("bad language", base().set("language", "xx")),
        ("quality out of range", base().set("min_quality", 1.5)),
        (
            "inverted team bounds",
            base().set("min_team", 6i64).set("max_team", 2i64),
        ),
        ("non-integer team size", base().set("min_team", 2.5)),
        ("zero recruitment", base().set("recruitment_secs", 0i64)),
        ("unknown field", base().set("bogus", 1i64)),
    ];
    let mut t = TablePrinter::new(&["submission", "outcome"]);
    for (name, resp) in cases {
        let outcome = match parse_constraints(&form, &resp) {
            Ok(d) => format!(
                "accepted (team {}–{}, quality ≥ {:.1})",
                d.min_team, d.max_team, d.min_quality
            ),
            Err(e) => format!("rejected: {e}"),
        };
        t.row(vec![name.to_string(), outcome]);
    }
    println!("{}", t.render());
}

/// E4 (Figure 4): worker human factors — user-provided updates plus
/// system-computed skill estimation from team history.
fn e4_worker_factors() {
    println!("## E4 (Figure 4) — worker factors & skill estimation\n");
    // Ground-truth skills; observe noisy team means; recover.
    let truth: Vec<(u64, f64)> = (0..12).map(|i| (i, 0.2 + 0.06 * i as f64)).collect();
    let mut rng = SimRng::seed_from(9);
    let mut obs = Vec::new();
    for _ in 0..400 {
        let k = 2 + rng.index(3);
        let members: Vec<u64> = rng
            .sample_indices(truth.len(), k)
            .into_iter()
            .map(|i| i as u64)
            .collect();
        let mean: f64 =
            members.iter().map(|m| truth[*m as usize].1).sum::<f64>() / members.len() as f64;
        let q = (mean + rng.normal(0.0, 0.05)).clamp(0.0, 1.0);
        obs.push(TeamObservation::new(
            members.into_iter().map(WorkerId).collect(),
            q,
        ));
    }
    let est = estimate_skills(&obs, &EstimatorConfig::default());
    let mut t = TablePrinter::new(&["worker", "true skill", "estimated", "abs err"]);
    let mut total_err = 0.0;
    for (w, s) in &truth {
        let e = est.skill(WorkerId(*w)).unwrap_or(f64::NAN);
        total_err += (e - s).abs();
        t.row(vec![
            format!("w{w}"),
            format!("{s:.3}"),
            format!("{e:.3}"),
            format!("{:.3}", (e - s).abs()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "mean abs error {:.3} over {} observations (fit rmse {:.3}, {} sweeps)\n",
        total_err / truth.len() as f64,
        obs.len(),
        est.rmse,
        est.sweeps
    );
}

/// E5 (Figure 5): simultaneous collaboration session metrics.
fn e5_simultaneous() {
    println!("## E5 (Figure 5) — simultaneous collaboration session\n");
    let mut t = TablePrinter::new(&["team affinity", "members", "merged quality"]);
    use crowd4u_collab::prelude::*;
    for &aff in &[0.1, 0.5, 0.9] {
        for &k in &[2usize, 4, 6] {
            let members: Vec<WorkerId> = (0..k as u64).map(WorkerId).collect();
            let mut s = SimultaneousSession::new("doc", members.clone(), &["a", "b"], aff);
            for &m in &members {
                s.provide_sns_id(m, format!("{m}@sns")).unwrap();
            }
            let mut rng = SimRng::seed_from(5 + k as u64);
            for (i, &m) in members.iter().enumerate() {
                s.contribute(m, i % 2, "text", 0.55 + 0.3 * rng.unit())
                    .unwrap();
            }
            let (_, q) = s.submit(members[0]).unwrap();
            t.row(vec![format!("{aff:.1}"), k.to_string(), format!("{q:.3}")]);
        }
    }
    println!("{}", t.render());
    println!("higher team affinity ⇒ higher merged quality (synergy model)\n");
}

/// E6: assignment quality — who wins, by how much.
fn e6_assignment_quality() {
    println!("## E6 — team quality (mean affinity) by algorithm [9]\n");
    let constraints = TeamConstraints::sized(3, 5).with_quality(0.3);
    let mut t = TablePrinter::new(&["n workers", "exact", "local-search", "greedy", "random"]);
    for &n in &[10usize, 14, 18] {
        let mut means = [0.0f64; 4];
        let runs = 5;
        for seed in 0..runs {
            let (cands, aff) = clustered_instance(n, 3, seed);
            for (i, alg) in all_algorithms(seed).iter().enumerate() {
                if let Some(team) = alg.form(&cands, &aff, &constraints) {
                    means[i] += team.affinity / runs as f64;
                }
            }
        }
        t.row(vec![
            n.to_string(),
            format!("{:.3}", means[0]),
            format!("{:.3}", means[2]),
            format!("{:.3}", means[1]),
            format!("{:.3}", means[3]),
        ]);
    }
    // Larger pools: exact infeasible, approximations keep working.
    for &n in &[100usize, 300] {
        let mut means = [0.0f64; 4];
        let runs = 3;
        for seed in 0..runs {
            let (cands, aff) = clustered_instance(n, 8, seed);
            for (i, alg) in all_algorithms(seed).iter().enumerate() {
                if i == 0 {
                    continue; // exact skipped: infeasible (see E7)
                }
                if let Some(team) = alg.form(&cands, &aff, &constraints) {
                    means[i] += team.affinity / runs as f64;
                }
            }
        }
        t.row(vec![
            n.to_string(),
            "—".into(),
            format!("{:.3}", means[2]),
            format!("{:.3}", means[1]),
            format!("{:.3}", means[3]),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: exact ≥ local-search ≥ greedy ≫ random\n");
}

/// E7: assignment runtime — where exact explodes (why \[9\]'s approximations
/// exist).
fn e7_assignment_runtime() {
    println!("## E7 — assignment runtime vs pool size\n");
    let constraints = TeamConstraints::sized(3, 5);
    let mut t = TablePrinter::new(&["n", "exact", "exact (no prune)", "local-search", "greedy"]);
    for &n in &[8usize, 12, 16, 20, 24] {
        let (cands, aff) = random_instance(n, 3);
        let time = |f: &dyn Fn() -> Option<Team>| -> String {
            let start = Instant::now();
            let _ = f();
            format!("{:>9.3?}", start.elapsed())
        };
        let exact = ExactBB::default();
        let noprune = ExactBB::without_pruning();
        let local = LocalSearch::default();
        let greedy = GreedyAff::default();
        t.row(vec![
            n.to_string(),
            time(&|| exact.form(&cands, &aff, &constraints)),
            if n <= 20 {
                time(&|| noprune.form(&cands, &aff, &constraints))
            } else {
                "(skipped)".into()
            },
            time(&|| local.form(&cands, &aff, &constraints)),
            time(&|| greedy.form(&cands, &aff, &constraints)),
        ]);
    }
    for &n in &[100usize, 400] {
        let (cands, aff) = random_instance(n, 3);
        let local = LocalSearch::default();
        let greedy = GreedyAff::default();
        let t0 = Instant::now();
        let _ = local.form(&cands, &aff, &constraints);
        let tl = t0.elapsed();
        let t0 = Instant::now();
        let _ = greedy.form(&cands, &aff, &constraints);
        let tg = t0.elapsed();
        t.row(vec![
            n.to_string(),
            "(infeasible)".into(),
            "(infeasible)".into(),
            format!("{tl:>9.3?}"),
            format!("{tg:>9.3?}"),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: exact cost explodes combinatorially; greedy/local stay polynomial\n");
}

/// E8: platform-scale task throughput (§2: ">600,000 tasks performed").
fn e8_scale(full: bool) {
    let n: usize = if full { 600_000 } else { 60_000 };
    println!("## E8 — platform scale: {n} micro-tasks through the CyLog pipeline\n");
    let mut engine = CylogEngine::from_source(
        "rel item(i: id).\nopen judge(i: id) -> (ok: bool).\n\
         rel good(i: id).\ngood(I) :- item(I), judge(I, OK), OK = true.\n\
         rel summary(n: int).\nsummary(count<I>) :- good(I).\n",
    )
    .unwrap();
    let start = Instant::now();
    for i in 0..n as u64 {
        engine.add_fact("item", vec![(i + 1).into()]).unwrap();
    }
    let t_seed = start.elapsed();
    let start = Instant::now();
    engine.run().unwrap();
    let t_demand = start.elapsed();
    let questions = engine.pending_requests().len();
    let start = Instant::now();
    let pending: Vec<_> = engine.pending_requests().to_vec();
    for (k, req) in pending.iter().enumerate() {
        engine
            .answer(
                &req.pred_name,
                req.inputs.clone(),
                vec![(k % 10 != 0).into()],
                Some(1 + (k % 100) as u64),
            )
            .unwrap();
    }
    let t_answer = start.elapsed();
    let start = Instant::now();
    engine.run().unwrap();
    let t_derive = start.elapsed();
    let good = engine.fact_count("good").unwrap();
    let mut t = TablePrinter::new(&["phase", "items", "time", "rate (items/s)"]);
    let rate = |n: usize, d: std::time::Duration| format!("{:.0}", n as f64 / d.as_secs_f64());
    t.row(vec![
        "seed facts".into(),
        n.to_string(),
        format!("{t_seed:.2?}"),
        rate(n, t_seed),
    ]);
    t.row(vec![
        "generate questions".into(),
        questions.to_string(),
        format!("{t_demand:.2?}"),
        rate(questions, t_demand),
    ]);
    t.row(vec![
        "ingest answers".into(),
        questions.to_string(),
        format!("{t_answer:.2?}"),
        rate(questions, t_answer),
    ]);
    t.row(vec![
        "derive results".into(),
        good.to_string(),
        format!("{t_derive:.2?}"),
        rate(good, t_derive),
    ]);
    println!("{}", t.render());
    let summary = engine.facts("summary").unwrap();
    println!("summary fact: {} good items of {n}\n", summary.rows[0][0]);
}

/// Ingest baseline: batched (`answer_batch`, one fixpoint) vs per-answer
/// (`answer` + `run` each) ingestion of 10k answers, plus the
/// many-small-batches regime (100-item waves) where cross-batch
/// incremental evaluation is compared against clear-and-rerun on a
/// byte-identical final state. Records all figures to `BENCH_ingest.json`
/// so CI and future sessions can compare against them, and exits non-zero
/// if the batched path or the incremental path is less than 5× faster
/// than its baseline.
fn ingest_baseline() {
    const N: u64 = 10_000;
    println!("## Ingest baseline — batched vs per-answer at {N} answers\n");

    let (mut engine, answers) = crowd4u_bench::ingest_workload(N);
    let start = Instant::now();
    engine.answer_batch(&answers).unwrap();
    let t_batched = start.elapsed();
    let good_batched = engine.fact_count("good").unwrap();

    let (mut engine, answers) = crowd4u_bench::ingest_workload(N);
    let start = Instant::now();
    for a in answers {
        engine
            .answer(&a.pred, a.inputs, a.outputs, a.worker)
            .unwrap();
        engine.run().unwrap();
    }
    let t_per_answer = start.elapsed();
    assert_eq!(engine.fact_count("good").unwrap(), good_batched);

    let speedup = t_per_answer.as_secs_f64() / t_batched.as_secs_f64();
    let mut t = TablePrinter::new(&["path", "fixpoint runs", "time", "answers/s"]);
    t.row(vec![
        "batched (answer_batch)".into(),
        "1".into(),
        format!("{t_batched:.2?}"),
        format!("{:.0}", N as f64 / t_batched.as_secs_f64()),
    ]);
    t.row(vec![
        "per-answer (answer + run)".into(),
        N.to_string(),
        format!("{t_per_answer:.2?}"),
        format!("{:.0}", N as f64 / t_per_answer.as_secs_f64()),
    ]);
    println!("{}", t.render());
    println!("speedup: {speedup:.1}×\n");

    // Many-small-batches regime: the same items and answers arriving in
    // `WAVE`-sized waves, each fixpointed and answered before the next.
    // Cross-batch incremental evaluation (the default mode) must beat
    // clear-and-rerun by ≥5× *and* land on byte-identical state.
    use crowd4u_cylog::eval::EvalMode;
    const WAVE: u64 = 100;
    println!(
        "## Ingest baseline — incremental vs clear-and-rerun at {N} items in {WAVE}-item waves\n"
    );

    let start = Instant::now();
    let inc = crowd4u_bench::incremental_stream_workload(N, WAVE, EvalMode::Incremental);
    let t_inc = start.elapsed();
    let start = Instant::now();
    let rerun = crowd4u_bench::incremental_stream_workload(N, WAVE, EvalMode::SemiNaive);
    let t_rerun = start.elapsed();
    assert_eq!(
        crowd4u_storage::snapshot::dump(inc.database()),
        crowd4u_storage::snapshot::dump(rerun.database()),
        "incremental and clear-and-rerun must reach byte-identical state"
    );
    assert_eq!(inc.leaderboard(), rerun.leaderboard());
    assert_eq!(inc.pending_requests(), rerun.pending_requests());
    assert_eq!(inc.fact_count("good").unwrap(), good_batched);

    let inc_speedup = t_rerun.as_secs_f64() / t_inc.as_secs_f64();
    let waves = N.div_ceil(WAVE);
    let mut t = TablePrinter::new(&["mode", "waves", "time", "items/s"]);
    t.row(vec![
        "incremental (default)".into(),
        waves.to_string(),
        format!("{t_inc:.2?}"),
        format!("{:.0}", N as f64 / t_inc.as_secs_f64()),
    ]);
    t.row(vec![
        "clear-and-rerun (SemiNaive)".into(),
        waves.to_string(),
        format!("{t_rerun:.2?}"),
        format!("{:.0}", N as f64 / t_rerun.as_secs_f64()),
    ]);
    println!("{}", t.render());
    println!("incremental speedup: {inc_speedup:.1}×\n");

    let json = format!(
        "{{\n  \"experiment\": \"e9_ingest_throughput\",\n  \"answers\": {N},\n  \
         \"batched_ms\": {:.3},\n  \"per_answer_ms\": {:.3},\n  \"speedup\": {:.1},\n  \
         \"wave_items\": {WAVE},\n  \"incremental_ms\": {:.3},\n  \
         \"clear_rerun_ms\": {:.3},\n  \"incremental_speedup\": {:.1},\n  \
         \"good_facts\": {good_batched}\n}}\n",
        t_batched.as_secs_f64() * 1e3,
        t_per_answer.as_secs_f64() * 1e3,
        speedup,
        t_inc.as_secs_f64() * 1e3,
        t_rerun.as_secs_f64() * 1e3,
        inc_speedup,
    );
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    println!("baseline recorded to BENCH_ingest.json");
    assert!(
        speedup >= 5.0,
        "batched ingestion regressed: only {speedup:.1}× faster than per-answer"
    );
    assert!(
        inc_speedup >= 5.0,
        "cross-batch incremental evaluation regressed: only {inc_speedup:.1}× \
         faster than clear-and-rerun"
    );
}

/// E10 baseline: the mixed multi-project workload through the sharded
/// runtime at 1/2/4/8 shards (streaming mode). Records the sweep to
/// `BENCH_shard.json` so CI and future sessions can compare against it,
/// and exits non-zero if 4 shards are less than 2× faster than 1 shard.
/// The speedup has two sources: parallel fixpoint work on multi-core
/// hosts, and — independent of core count — deeper per-project mailbox
/// batching (each shard syncs only its own dirty projects every
/// `drain_every` events, so redundant re-sync work shrinks with the shard
/// count).
fn shard_baseline() {
    use crowd4u_bench::{run_shard_workload, ShardWorkload};
    let w = ShardWorkload::default();
    println!(
        "## E10 — shard scaling: {} projects x {} items, drain_every {}\n",
        w.projects, w.items, w.drain_every
    );
    let mut t = TablePrinter::new(&["shards", "time", "events/s", "speedup"]);
    let mut rows = Vec::new();
    let mut t1 = 0.0f64;
    let mut good_ref = None;
    for &shards in &[1usize, 2, 4, 8] {
        let (elapsed, events, good) = run_shard_workload(shards, &w);
        match good_ref {
            None => good_ref = Some(good),
            Some(g) => assert_eq!(g, good, "shard counts must derive identical facts"),
        }
        let secs = elapsed.as_secs_f64();
        if shards == 1 {
            t1 = secs;
        }
        let rate = events as f64 / secs;
        let speedup = t1 / secs;
        t.row(vec![
            shards.to_string(),
            format!("{elapsed:.2?}"),
            format!("{rate:.0}"),
            format!("{speedup:.2}x"),
        ]);
        rows.push((shards, secs * 1e3, rate, speedup));
    }
    println!("{}", t.render());

    let speedup_4 = rows
        .iter()
        .find(|(s, ..)| *s == 4)
        .map(|(_, _, _, x)| *x)
        .expect("4-shard row");
    let runs: Vec<String> = rows
        .iter()
        .map(|(s, ms, rate, x)| {
            format!(
                "    {{ \"shards\": {s}, \"ms\": {ms:.3}, \"events_per_sec\": {rate:.0}, \
                 \"speedup\": {x:.2} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e10_shard_scaling\",\n  \"projects\": {},\n  \
         \"items\": {},\n  \"drain_every\": {},\n  \"good_facts\": {},\n  \"runs\": [\n{}\n  ],\n  \
         \"speedup_4_shards\": {:.2}\n}}\n",
        w.projects,
        w.items,
        w.drain_every,
        good_ref.unwrap_or(0),
        runs.join(",\n"),
        speedup_4,
    );
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("baseline recorded to BENCH_shard.json");
    assert!(
        speedup_4 >= 2.0,
        "shard scaling regressed: 4 shards only {speedup_4:.2}x faster than 1"
    );
}

/// E11 baseline: concurrent-client admission through the two front doors
/// at 4 shards, with every shard busy (the regime where door capacity
/// matters) — `submitters` client threads staging events over a channel
/// to the one permitted submitter thread (the PR 3 shape) vs the same
/// clients pushing through cloned `IngestGate` handles. Records the
/// comparison to `BENCH_gate.json` and exits non-zero if the gate is less
/// than 1.5× the single-submitter front door.
fn gate_baseline() {
    use crowd4u_bench::{best_gate_admission, FrontDoor, GateWorkload};
    const SHARDS: usize = 4;
    const REPS: usize = 5;
    let w = GateWorkload::default();
    println!(
        "## E11 — ingestion front door: {} clients, {} projects x {} items, {} shards, best of {}\n",
        w.submitters, w.shape.projects, w.shape.items, SHARDS, REPS
    );
    let mut t = TablePrinter::new(&["front door", "admission", "events/s", "speedup"]);
    let mut rows = Vec::new();
    let mut single_secs = 0.0f64;
    let mut good_ref = None;
    for door in [FrontDoor::SingleSubmitter, FrontDoor::Gate] {
        let (elapsed, events, good) = best_gate_admission(door, SHARDS, &w, REPS);
        match good_ref {
            None => good_ref = Some(good),
            Some(g) => assert_eq!(g, good, "front doors must derive identical facts"),
        }
        let secs = elapsed.as_secs_f64();
        if door == FrontDoor::SingleSubmitter {
            single_secs = secs;
        }
        let rate = events as f64 / secs;
        let speedup = single_secs / secs;
        t.row(vec![
            door.name().into(),
            format!("{elapsed:.2?}"),
            format!("{rate:.0}"),
            format!("{speedup:.2}x"),
        ]);
        rows.push((door, secs * 1e3, rate, speedup));
    }
    println!("{}", t.render());

    let speedup = rows
        .iter()
        .find(|(d, ..)| *d == FrontDoor::Gate)
        .map(|(_, _, _, x)| *x)
        .expect("gate row");
    let runs: Vec<String> = rows
        .iter()
        .map(|(d, ms, rate, x)| {
            format!(
                "    {{ \"front_door\": \"{}\", \"ms\": {ms:.3}, \"events_per_sec\": {rate:.0}, \
                 \"speedup\": {x:.2} }}",
                d.name()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e11_gate_throughput\",\n  \"shards\": {SHARDS},\n  \
         \"submitters\": {},\n  \"projects\": {},\n  \"items\": {},\n  \"drain_every\": {},\n  \
         \"good_facts\": {},\n  \"runs\": [\n{}\n  ],\n  \"gate_speedup\": {speedup:.2}\n}}\n",
        w.submitters,
        w.shape.projects,
        w.shape.items,
        w.shape.drain_every,
        good_ref.unwrap_or(0),
        runs.join(",\n"),
    );
    std::fs::write("BENCH_gate.json", &json).expect("write BENCH_gate.json");
    println!("baseline recorded to BENCH_gate.json");
    assert!(
        speedup >= 1.5,
        "gate front door regressed: only {speedup:.2}x the single-submitter front door"
    );
}

/// E9: the three demo scenarios at demo scale, all algorithms.
fn e9_scenarios() {
    println!("## E9 (§2.5) — demo scenarios × assignment algorithms\n");
    let mut t = TablePrinter::new(&[
        "scenario",
        "algorithm",
        "completed",
        "quality",
        "affinity",
        "makespan",
    ]);
    for alg in [AlgorithmChoice::Greedy, AlgorithmChoice::LocalSearch] {
        let cfg = ScenarioConfig::default()
            .with_crowd(60)
            .with_items(6)
            .with_seed(42)
            .with_algorithm(alg);
        for (name, r) in [
            ("translation", translation::run(&cfg).unwrap()),
            ("journalism", journalism::run(&cfg).unwrap()),
            ("surveillance", surveillance::run(&cfg).unwrap()),
        ] {
            t.row(vec![
                name.to_string(),
                alg.name().to_string(),
                format!("{}/{}", r.items_completed, r.items_total),
                format!("{:.3}", r.mean_quality),
                format!("{:.3}", r.mean_team_affinity),
                r.makespan.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
}
