//! # crowd4u-bench — benchmark harness support
//!
//! Shared workload generators and table printers used by the Criterion
//! benches (`crates/bench/benches/`) and by the `report` binary that
//! regenerates every paper figure/experiment as a text table
//! (`cargo run -p crowd4u-bench --bin report`).
//!
//! Experiment map (see DESIGN.md §4): E1 = Figure 1 pipeline, E2 = Figure 2
//! workflow, E3 = Figure 3 admin form, E4 = Figure 4 worker factors,
//! E5 = Figure 5 simultaneous session, E6/E7 = the assignment-algorithm
//! quality/runtime evaluation the demo adapts from Rahman et al. \[9\],
//! E8 = platform scale ("600,000 tasks performed"), E9 = the three demo
//! scenarios.

use crowd4u_assign::prelude::*;
use crowd4u_crowd::affinity::AffinityMatrix;
use crowd4u_crowd::profile::{Region, WorkerId, WorkerProfile};
use crowd4u_cylog::engine::{AnswerRecord, CylogEngine};
use crowd4u_sim::rng::SimRng;

/// The CyLog program of the ingestion-throughput experiment (E9-ingest):
/// one open judge question per item, one derived relation consuming it.
pub const INGEST_SRC: &str = "rel item(i: id).\nopen judge(i: id) -> (ok: bool) points 1.\n\
     rel good(i: id).\ngood(I) :- item(I), judge(I, OK), OK = true.\n";

/// The E9-ingest workload: an engine with `n` open questions plus the
/// answers for all of them (90% approvals, workers rotating over 100 ids).
/// Shared by the `e9_ingest_throughput` bench and the `report -- ingest`
/// baseline so both measure the same experiment.
pub fn ingest_workload(n: u64) -> (CylogEngine, Vec<AnswerRecord>) {
    let mut engine = CylogEngine::from_source(INGEST_SRC).expect("static program");
    for i in 0..n {
        engine
            .add_fact("item", vec![(i + 1).into()])
            .expect("typed fact");
    }
    engine.run().expect("stratified program");
    let answers: Vec<AnswerRecord> = engine
        .pending_requests()
        .iter()
        .enumerate()
        .map(|(k, req)| AnswerRecord {
            pred: req.pred_name.clone(),
            inputs: req.inputs.clone(),
            outputs: vec![(k % 10 != 0).into()],
            worker: Some(1 + (k % 100) as u64),
        })
        .collect();
    (engine, answers)
}

/// The cross-batch incremental workload: the E9 program fed by many
/// *small* waves — `batch` items seeded, the fixpoint run (generating that
/// wave's questions), the wave's questions answered in one batch — until
/// `n` items have flowed through. This is the steady-state shape of a
/// live platform, and the case cross-batch incremental evaluation exists
/// for: in `EvalMode::Incremental` each wave advances the fixpoint from
/// its delta, while `EvalMode::SemiNaive` clears and re-derives the whole
/// database twice per wave. Answers and workers are a pure function of
/// the item id, so any two modes must land on byte-identical state.
pub fn incremental_stream_workload(
    n: u64,
    batch: u64,
    mode: crowd4u_cylog::eval::EvalMode,
) -> CylogEngine {
    let mut engine = CylogEngine::from_source(INGEST_SRC).expect("static program");
    engine.set_mode(mode);
    let mut next = 1u64;
    while next <= n {
        let hi = (next + batch - 1).min(n);
        for i in next..=hi {
            engine.add_fact("item", vec![i.into()]).expect("typed fact");
        }
        engine.run().expect("stratified program");
        let answers: Vec<AnswerRecord> = engine
            .pending_requests()
            .iter()
            .map(|req| {
                let id = req.inputs[0].as_id().expect("item ids");
                AnswerRecord {
                    pred: req.pred_name.clone(),
                    inputs: req.inputs.clone(),
                    outputs: vec![(id % 10 != 0).into()],
                    worker: Some(1 + (id % 100)),
                }
            })
            .collect();
        engine.answer_batch(&answers).expect("valid answers");
        next = hi + 1;
    }
    engine
}

/// The E10 shard-scaling workload shape: a mixed multi-project stream —
/// `projects` CyLog projects, `items` judged items each, answers arriving
/// round-robin across projects (the interleaving a router has to unpick).
#[derive(Debug, Clone, Copy)]
pub struct ShardWorkload {
    pub projects: usize,
    pub items: usize,
    pub workers: u64,
    /// Streaming-mode mailbox batch size handed to the runtime: each shard
    /// syncs its dirty projects after this many mailbox events.
    pub drain_every: usize,
}

impl Default for ShardWorkload {
    fn default() -> Self {
        ShardWorkload {
            projects: 8,
            items: 400,
            workers: 8,
            drain_every: 48,
        }
    }
}

/// The E10 event stream: `(setup, answers)`. Setup registers workers and
/// projects and seeds every item; answers approve/reject each project's
/// judge tasks round-robin across projects. Task ids are project-strided,
/// so the answer stream is written without touching a platform.
pub fn shard_workload_events(
    w: &ShardWorkload,
) -> (
    Vec<crowd4u_core::events::PlatformEvent>,
    Vec<crowd4u_core::events::PlatformEvent>,
) {
    use crowd4u_core::error::{ProjectId, TaskId};
    use crowd4u_core::events::PlatformEvent;
    use crowd4u_crowd::profile::WorkerProfile;
    use crowd4u_forms::admin::DesiredFactors;

    let mut setup = Vec::new();
    for i in 1..=w.workers {
        setup.push(PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(i), format!("w{i}")),
        });
    }
    for p in 0..w.projects {
        setup.push(PlatformEvent::ProjectRegistered {
            name: format!("proj-{p}"),
            source: INGEST_SRC.into(),
            factors: DesiredFactors::default(),
            scheme: crowd4u_collab::Scheme::Sequential,
            owner: 0,
        });
    }
    for i in 0..w.items {
        for p in 0..w.projects {
            setup.push(PlatformEvent::FactSeeded {
                project: ProjectId(p as u64 + 1),
                pred: "item".into(),
                values: vec![(i as u64 + 1).into()],
            });
        }
    }
    let mut answers = Vec::new();
    for i in 0..w.items {
        for p in 0..w.projects {
            answers.push(PlatformEvent::AnswerSubmitted {
                worker: WorkerId(1 + (i as u64 % w.workers)),
                task: TaskId::compose(ProjectId(p as u64 + 1), i as u64 + 1),
                outputs: vec![(i % 10 != 0).into()],
            });
        }
    }
    (setup, answers)
}

/// Run the E10 workload through a `ShardedRuntime` at the given shard
/// count; returns (elapsed, events ingested, derived `good` facts). The
/// `good` count is the correctness check — every shard count must derive
/// the same facts.
pub fn run_shard_workload(shards: usize, w: &ShardWorkload) -> (std::time::Duration, u64, usize) {
    run_shard_workload_instrumented(shards, w, crowd4u_telemetry::Registry::from_env())
}

/// [`run_shard_workload`] with an explicit telemetry registry instead of
/// the environment default — the E14 overhead A/B harness: run the same
/// stream with `Registry::new()` and `Registry::disabled()` and compare
/// elapsed times. Scrape the registry afterwards for coverage checks.
pub fn run_shard_workload_instrumented(
    shards: usize,
    w: &ShardWorkload,
    telemetry: crowd4u_telemetry::Registry,
) -> (std::time::Duration, u64, usize) {
    use crowd4u_core::error::ProjectId;
    use crowd4u_runtime::prelude::*;

    let (setup, answers) = shard_workload_events(w);
    let total = (setup.len() + answers.len()) as u64;
    let rt = ShardedRuntime::new_instrumented(
        RuntimeConfig {
            shards,
            drain_every: w.drain_every,
            mailbox_capacity: 0, // unbounded: E10 measures shard scaling, not admission
            recovery: false,
        },
        telemetry,
    );
    let start = std::time::Instant::now();
    rt.submit_batch(setup);
    rt.drain();
    rt.barrier(); // every judge task exists before the answer stream starts
    rt.submit_batch(answers);
    rt.drain();
    rt.barrier();
    let elapsed = start.elapsed();
    // Capture placements from the router itself before it shuts down —
    // the owner's slice holds the real facts, replicas are empty.
    let owners: Vec<usize> = (0..w.projects)
        .map(|p| rt.owner_of(ProjectId(p as u64 + 1)))
        .collect();
    let run = rt.finish().expect("runtime finish");
    assert_eq!(run.stats.dropped, 0, "E10 workload must be fully valid");
    let mut good = 0usize;
    for (p, &owner) in owners.iter().enumerate() {
        let project = ProjectId(p as u64 + 1);
        good += run.platforms[owner]
            .project(project)
            .expect("registered")
            .engine
            .fact_count("good")
            .expect("derived");
    }
    (elapsed, total, good)
}

/// What one chaos run of the E10 workload measured (E15).
pub struct RecoveryRun {
    /// Wall-clock for the whole ingest, fault and recovery included.
    pub elapsed: std::time::Duration,
    /// Total time spent inside recovery replay (`crowd4u_recovery_ns`).
    pub recovery_ns: u64,
    /// Recoveries performed (`crowd4u_recoveries_total`) — the harness
    /// asserts the planned kill actually fired.
    pub recoveries: u64,
    /// Derived `good` facts — must equal the no-fault run's count.
    pub good: usize,
}

/// E15: the E10 workload on a chaos runtime whose [`FaultPlan`] kills
/// `kill.0` after its `kill.1`-th applied event, mid-answer-stream; the
/// shard is crash-recovered by journal-slice replay and the run completes
/// normally. The point of the experiment: recovery replays only the dead
/// shard's slice, so its cost must stay a small fraction of rerunning the
/// whole workload — `report -- recovery` gates on ≥10×.
///
/// [`FaultPlan`]: crowd4u_runtime::recovery::FaultPlan
pub fn run_recovery_workload(shards: usize, w: &ShardWorkload, kill: (usize, u64)) -> RecoveryRun {
    use crowd4u_core::error::ProjectId;
    use crowd4u_runtime::prelude::*;
    use crowd4u_telemetry::{stage, Registry};

    let telemetry = Registry::new();
    let (setup, answers) = shard_workload_events(w);
    let rt = ShardedRuntime::new_chaos_instrumented(
        RuntimeConfig {
            shards,
            drain_every: w.drain_every,
            mailbox_capacity: 0,
            recovery: true,
        },
        telemetry.clone(),
        FaultPlan::kill(kill.0, kill.1),
    );
    let start = std::time::Instant::now();
    rt.submit_batch(setup);
    rt.drain();
    rt.barrier();
    rt.submit_batch(answers);
    rt.drain();
    rt.barrier();
    let elapsed = start.elapsed();
    let owners: Vec<usize> = (0..w.projects)
        .map(|p| rt.owner_of(ProjectId(p as u64 + 1)))
        .collect();
    let run = rt.finish().expect("runtime finish");
    assert_eq!(run.stats.dropped, 0, "E15 workload must be fully valid");
    let mut good = 0usize;
    for (p, &owner) in owners.iter().enumerate() {
        let project = ProjectId(p as u64 + 1);
        good += run.platforms[owner]
            .project(project)
            .expect("registered")
            .engine
            .fact_count("good")
            .expect("derived");
    }
    let snap = telemetry.snapshot();
    let recovery_ns = snap
        .histograms
        .get(&(stage::RECOVERY_SPAN.to_string(), String::new()))
        .map(|h| h.sum)
        .unwrap_or(0);
    RecoveryRun {
        elapsed,
        recovery_ns,
        recoveries: snap.counter_total(stage::RECOVERIES),
        good,
    }
}

/// One E16 shared-crowd measurement: the three §2.5 scenarios streamed
/// over **one** worker population, with the PR 10 contract asserted
/// in-run.
#[derive(Debug, Clone)]
pub struct MarketplaceRun {
    /// Wall-clock of the shared streamed run (submission → final drain).
    pub elapsed: std::time::Duration,
    /// Per-scheme split-ledger totals, in `Scheme::all()` order.
    pub scheme_points: Vec<i64>,
    /// The replayed platform's whole leaderboard — what the splits must
    /// partition exactly.
    pub platform_points: i64,
}

/// E16: stream the three scenarios' traces in [`CrowdMode::Shared`] at
/// `shards` shards and hold the marketplace contract: the merged journal
/// is **byte-identical** to the serial shared composite, and the
/// per-scenario split ledgers **partition** the platform's point total
/// exactly (every scheme's ledger sums to its report, the scheme sums
/// reproduce the global leaderboard). Panics if either gate fails.
///
/// [`CrowdMode::Shared`]: crowd4u_scenarios::stream::CrowdMode
pub fn run_marketplace_workload(
    shards: usize,
    cfg: &crowd4u_scenarios::ScenarioConfig,
) -> MarketplaceRun {
    use crowd4u_core::platform::Crowd4U;
    use crowd4u_runtime::prelude::*;
    use crowd4u_scenarios::mixed;
    use crowd4u_scenarios::stream::{apply_stream, merge_traces_with, CrowdMode};

    let traces = mixed::record(cfg).expect("record traces");
    let merged = merge_traces_with(&traces, CrowdMode::Shared).expect("shared merge");
    let mut serial = Crowd4U::new();
    let serial_dropped = apply_stream(&mut serial, &merged).expect("serial apply");
    let serial_journal = serial.journal().dump();

    let rt = ShardedRuntime::new(RuntimeConfig {
        shards,
        drain_every: 0,
        mailbox_capacity: 0,
        recovery: false,
    });
    let start = std::time::Instant::now();
    let (reports, splits) = stream_traces_shared(&rt, &traces).expect("shared stream");
    let elapsed = start.elapsed();
    let run = rt.finish().expect("runtime finish");
    assert_eq!(
        run.stats.dropped, serial_dropped,
        "E16 stream validity drift"
    );
    assert_eq!(
        run.journal.dump(),
        serial_journal,
        "E16 shared stream must be byte-identical to the serial composite"
    );
    let replayed = Crowd4U::replay(&run.journal).expect("replay");

    // Exact-partition gate: ledger == report per scheme, and the scheme
    // sums reproduce the platform leaderboard with nothing counted twice
    // and nothing lost.
    let mut scheme_points = Vec::with_capacity(splits.len());
    for (i, split) in splits.iter().enumerate() {
        assert_eq!(
            split.total_points(),
            reports[i].points_awarded,
            "scheme {i}'s split ledger diverges from its report"
        );
        scheme_points.push(split.total_points());
    }
    let platform_points: i64 = replayed
        .workers
        .iter_ids()
        .map(|w| replayed.points_of(w))
        .sum();
    assert_eq!(
        scheme_points.iter().sum::<i64>(),
        platform_points,
        "scenario splits must partition the platform total exactly"
    );
    MarketplaceRun {
        elapsed,
        scheme_points,
        platform_points,
    }
}

/// The E16 proposal A/B: what the cross-application marketplace policy
/// buys over a per-application view of the same crowd.
#[derive(Debug, Clone)]
pub struct MarketProposal {
    /// Busiest member's cross-application load in the base algorithm's
    /// team (the base sees skills, not loads).
    pub base_max_load: u64,
    /// Busiest member's load in the least-loaded marketplace proposal.
    pub market_max_load: u64,
}

/// E16 proposal workload: a shared runtime where the three
/// highest-skilled workers are already suggested onto a team in one
/// application, then a team for the *next* task is formed twice — by the
/// base algorithm alone (which, seeing only skill, keeps picking the busy
/// stars) and through [`crowd4u_runtime::marketplace::propose_team`],
/// which weighs total load across applications. Returns both teams'
/// busiest-member loads; the marketplace one must never be worse.
pub fn run_marketplace_proposal(shards: usize, crowd: u64) -> MarketProposal {
    use crowd4u_collab::Scheme;
    use crowd4u_core::error::{ProjectId, TaskId};
    use crowd4u_core::events::PlatformEvent;
    use crowd4u_forms::admin::DesiredFactors;
    use crowd4u_runtime::prelude::*;

    assert!(crowd >= 6, "need busy stars plus an idle bench");
    let rt = ShardedRuntime::new(RuntimeConfig {
        shards,
        drain_every: 0,
        mailbox_capacity: 0,
        recovery: false,
    });
    // Workers 1–3 are the skill leaders; everyone else is competent but
    // slightly behind, so a skill-only formation always wants the stars.
    for i in 1..=crowd {
        let skill = if i <= 3 { 0.95 } else { 0.90 };
        rt.submit(PlatformEvent::WorkerRegistered {
            profile: WorkerProfile::new(WorkerId(i), format!("w{i}")).with_skill("label", skill),
        });
    }
    rt.submit(PlatformEvent::ProjectRegistered {
        name: "app-a".into(),
        source: INGEST_SRC.into(),
        factors: DesiredFactors {
            min_team: 2,
            max_team: 3,
            recruitment_secs: 600,
            ..Default::default()
        },
        scheme: Scheme::Simultaneous,
        owner: 0,
    });
    rt.drain();
    // App A's assignment suggests the stars onto its team...
    rt.submit(PlatformEvent::CollabTaskCreated {
        project: ProjectId(1),
        description: "app A's team".into(),
    });
    let task = TaskId::compose(ProjectId(1), 1);
    for w in 1..=3 {
        rt.submit(PlatformEvent::InterestExpressed {
            worker: WorkerId(w),
            task,
        });
    }
    rt.submit(PlatformEvent::AssignmentRun { task });
    rt.drain();

    // ...and app B forms its team both ways off the same snapshot.
    let snap = market_snapshot(&rt, Some("label".into()));
    let base = crowd4u_assign::greedy::LocalSearch::default();
    let constraints = TeamConstraints::sized(2, 3);
    let base_team = base
        .form(&snap.candidates, &snap.affinity, &constraints)
        .expect("full crowd is feasible");
    let market_team = propose_team(&rt, Some("label".into()), &base, &constraints)
        .expect("idle bench is feasible");
    rt.finish().expect("runtime finish");
    let max_load = |team: &crowd4u_assign::types::Team| {
        team.members
            .iter()
            .map(|w| snap.loads.get(w).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    };
    MarketProposal {
        base_max_load: max_load(&base_team),
        market_max_load: max_load(&market_team),
    }
}

/// How concurrent clients reach the sharded runtime in E11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontDoor {
    /// The pre-gate (PR 3) shape: the runtime's submission API is
    /// single-submitter, so concurrent clients must stage their events
    /// over a shared channel to the one thread allowed to submit —
    /// "every client serialises on one submitter thread". Each event pays
    /// an extra queue hop (client → staging channel → submitter → shard
    /// mailbox) plus the submitter's wakeups.
    SingleSubmitter,
    /// The gate (PR 4) shape: every client owns a cloned
    /// [`IngestGate`](crowd4u_runtime::gate::IngestGate) handle and pushes
    /// straight into the owner shard's mailbox — one hop, no staging
    /// thread.
    Gate,
}

impl FrontDoor {
    pub fn name(&self) -> &'static str {
        match self {
            FrontDoor::SingleSubmitter => "single-submitter",
            FrontDoor::Gate => "gate",
        }
    }
}

/// The E11 gate-throughput workload: the E10 mixed multi-project stream,
/// with the answer phase driven by `submitters` concurrent client threads
/// (each owning a disjoint set of projects — disjoint owner shards is the
/// partitioning axis clients are expected to follow for peak ingest).
#[derive(Debug, Clone, Copy)]
pub struct GateWorkload {
    /// The event-stream shape (projects, items, workers, drain batching).
    pub shape: ShardWorkload,
    /// Concurrent client threads submitting the answer stream.
    pub submitters: usize,
}

impl Default for GateWorkload {
    fn default() -> Self {
        GateWorkload {
            // More items than E10: the admission window must be long
            // enough to time robustly (the answer stream is the timed
            // part). A deep drain_every keeps the *untimed* apply phase
            // cheap — E11 tunes for door measurement, not sync latency.
            shape: ShardWorkload {
                items: 2000,
                drain_every: 512,
                ..ShardWorkload::default()
            },
            submitters: 4,
        }
    }
}

/// Run the E11 workload at the given shard count through one of the two
/// front doors; returns (admission elapsed, answer events ingested,
/// derived `good` facts).
///
/// The timed region is **front-door admission**: how fast `submitters`
/// concurrent clients can push the answer stream into the shard mailboxes
/// while every shard is busy (stalled inside a job for the duration, the
/// regime where door capacity matters — a saturated platform must still
/// absorb client bursts without stalling them). Apply work is identical
/// through either door and deliberately excluded from the timer; after
/// admission the shards are released and the run completes normally. The
/// `good` count is the correctness check — both doors must derive the
/// same facts.
pub fn run_gate_workload(
    door: FrontDoor,
    shards: usize,
    w: &GateWorkload,
) -> (std::time::Duration, u64, usize) {
    use crowd4u_core::error::ProjectId;
    use crowd4u_core::events::{EventScope, PlatformEvent};
    use crowd4u_runtime::prelude::*;
    use std::time::Instant;

    let (setup, answers) = shard_workload_events(&w.shape);
    let total = answers.len() as u64;
    // Bounded mailboxes sized for the whole answer stream: the shards are
    // stalled for the entire admission window, so in the worst case every
    // answer queues on one shard. Deriving the bound from the workload
    // (instead of a fixed constant) keeps backpressure from ever engaging
    // — E11 measures the door, not shedding — for any workload size.
    // Telemetry is pinned off: the admission hop is ~150ns/event, so the
    // per-event span/stamp clock reads would dominate both doors and
    // compress the ratio the 1.5x gate watches. Telemetry cost has its
    // own budget and bench (e14 / `report -- obs`).
    let rt = ShardedRuntime::new_instrumented(
        RuntimeConfig {
            shards,
            drain_every: w.shape.drain_every,
            mailbox_capacity: answers.len() + 1,
            recovery: false,
        },
        crowd4u_telemetry::Registry::disabled(),
    );
    rt.submit_batch(setup);
    rt.drain();
    rt.barrier(); // every judge task exists before the answer fan-in starts

    // Partition the answer stream by project over the client threads.
    let submitters = w.submitters.max(1);
    let mut parts: Vec<Vec<PlatformEvent>> = vec![Vec::new(); submitters];
    for a in answers {
        let EventScope::Project(p) = a.scope() else {
            unreachable!("answer events are project-scoped");
        };
        parts[(p.0 as usize - 1) % submitters].push(a);
    }

    // Stall every shard: the admission window measures the front door,
    // not the (door-independent) apply work behind it.
    let stalls: Vec<_> = (0..shards)
        .map(|s| {
            let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
            let done = rt.submit_job(s, move |_| {
                release_rx.recv().expect("released");
            });
            (release_tx, done)
        })
        .collect();

    // Clients spawn before the timer and hold at a start barrier: thread
    // creation cost is front-door-independent and excluded from the
    // admission window.
    let go = std::sync::Barrier::new(submitters + 1);
    let elapsed = match door {
        FrontDoor::SingleSubmitter => std::thread::scope(|scope| {
            // The one thread allowed to touch the runtime's submission
            // API, fed by a shared staging channel.
            let (stage_tx, stage_rx) = std::sync::mpsc::channel::<PlatformEvent>();
            let submitter = scope.spawn(|| {
                for e in stage_rx {
                    rt.submit(e);
                }
            });
            for part in parts {
                let stage_tx = stage_tx.clone();
                let go = &go;
                scope.spawn(move || {
                    go.wait();
                    for e in part {
                        stage_tx.send(e).expect("submitter alive");
                    }
                });
            }
            drop(stage_tx);
            let start = Instant::now();
            go.wait();
            submitter.join().expect("submitter thread");
            start.elapsed()
        }),
        FrontDoor::Gate => std::thread::scope(|scope| {
            let clients: Vec<_> = parts
                .into_iter()
                .map(|part| {
                    let gate = rt.gate();
                    let go = &go;
                    scope.spawn(move || {
                        go.wait();
                        for e in part {
                            gate.submit(e).expect("runtime alive");
                        }
                    })
                })
                .collect();
            let start = Instant::now();
            go.wait();
            for c in clients {
                c.join().expect("client thread");
            }
            start.elapsed()
        }),
    };

    // Release the shards and let the run complete normally.
    for (release_tx, done) in stalls {
        release_tx.send(()).expect("shard alive");
        done.recv().expect("stall job finished");
    }
    rt.drain();
    rt.barrier();

    let owners: Vec<usize> = (0..w.shape.projects)
        .map(|p| rt.owner_of(ProjectId(p as u64 + 1)))
        .collect();
    let run = rt.finish().expect("runtime finish");
    assert_eq!(run.stats.dropped, 0, "E11 workload must be fully valid");
    let mut good = 0usize;
    for (p, &owner) in owners.iter().enumerate() {
        let project = ProjectId(p as u64 + 1);
        good += run.platforms[owner]
            .project(project)
            .expect("registered")
            .engine
            .fact_count("good")
            .expect("derived");
    }
    (elapsed, total, good)
}

/// Best-of-`reps` admission time for one front door (each repetition is a
/// fresh runtime + full workload; the minimum filters scheduler noise the
/// way Criterion's sampling does). Returns (best elapsed, events, good).
pub fn best_gate_admission(
    door: FrontDoor,
    shards: usize,
    w: &GateWorkload,
    reps: usize,
) -> (std::time::Duration, u64, usize) {
    let mut best: Option<(std::time::Duration, u64, usize)> = None;
    for _ in 0..reps.max(1) {
        let (elapsed, events, good) = run_gate_workload(door, shards, w);
        if let Some((b, be, bg)) = best {
            assert_eq!((events, good), (be, bg), "repetitions must agree");
            if elapsed < b {
                best = Some((elapsed, events, good));
            }
        } else {
            best = Some((elapsed, events, good));
        }
    }
    best.expect("reps >= 1")
}

/// The E12 scenario-streaming workload: `drivers` multi-project
/// scenarios, each ONE seeded crowd running all three §2.5 schemes on one
/// `Driver` — three projects per scenario. This is exactly the shape the
/// retired PR 3 execution model could not exploit: a whole-`Driver` shard
/// job pins all of a scenario's projects to one shard, while the PR 5
/// streaming port routes each project to its owner and the scenario spans
/// the runtime.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioStreamWorkload {
    /// Multi-project scenarios (keep ≤ the shard count: the baseline
    /// round-robins one whole scenario per shard).
    pub drivers: usize,
    pub crowd: usize,
    pub items: usize,
    pub seed: u64,
}

impl Default for ScenarioStreamWorkload {
    fn default() -> Self {
        ScenarioStreamWorkload {
            drivers: 2,
            crowd: 40,
            items: 4,
            seed: 29,
        }
    }
}

/// Per-driver scenario configs (distinct seeds).
pub fn multi_project_configs(w: &ScenarioStreamWorkload) -> Vec<crowd4u_scenarios::ScenarioConfig> {
    (0..w.drivers)
        .map(|i| {
            crowd4u_scenarios::ScenarioConfig::default()
                .with_crowd(w.crowd)
                .with_items(w.items)
                .with_seed(w.seed + i as u64 * 17)
        })
        .collect()
}

/// Drive one decision shadow through all three schemes back to back —
/// one crowd, three projects — and record its stream. Returns the trace
/// plus the shadow's journal dump (the byte-level correctness reference).
/// The trace's `shadow`/`completion` report fields are not meaningful for
/// a heterogeneous multi-project trace; E12 checks correctness by journal
/// byte-equality instead of report assembly.
pub fn record_multi_project_trace(
    config: &crowd4u_scenarios::ScenarioConfig,
) -> (crowd4u_scenarios::ScenarioTrace, String) {
    use crowd4u_scenarios::{run_scheme_on, Driver};
    let mut d = Driver::new(config);
    let mut last = None;
    for scheme in crowd4u_collab::Scheme::all() {
        last = Some(run_scheme_on(&mut d, scheme, config).expect("scenario run"));
    }
    let trace = crowd4u_scenarios::ScenarioTrace {
        scheme: crowd4u_collab::Scheme::Hybrid,
        ops: d.ops_since(0).expect("decode own journal"),
        crowd: config.crowd as u64,
        projects: d.platform.project_ids(),
        completion: crowd4u_scenarios::stream::Completion::CollabsCompleted,
        shadow: last.expect("three schemes ran"),
    };
    (trace, d.platform.journal().dump())
}

/// The **retired** PR 3 scenario execution model, kept as the E12
/// baseline: each multi-project scenario ships whole — crowd generation,
/// decision logic and platform work — to one shard as a resident-slice
/// job (`Driver::on_platform`), so its three projects are pinned together
/// and other shards cannot help. Returns per-driver slice journal dumps
/// for the correctness check (fresh slice ⇒ must equal the shadow's).
pub fn run_multi_project_shard_jobs(
    shards: usize,
    configs: &[crowd4u_scenarios::ScenarioConfig],
) -> (std::time::Duration, Vec<String>) {
    use crowd4u_runtime::prelude::*;
    use crowd4u_scenarios::{run_scheme_on, Driver};

    let rt = ShardedRuntime::new(RuntimeConfig {
        shards,
        drain_every: 0,
        mailbox_capacity: 0,
        recovery: false,
    });
    let start = std::time::Instant::now();
    let receivers: Vec<_> = configs
        .iter()
        .enumerate()
        .map(|(i, config)| {
            let config = config.clone();
            rt.submit_job(i % rt.shards(), move |platform| {
                let base = std::mem::take(platform);
                let mut driver = Driver::on_platform(base, &config);
                for scheme in crowd4u_collab::Scheme::all() {
                    run_scheme_on(&mut driver, scheme, &config).expect("scenario run");
                }
                let journal = driver.platform.journal().dump();
                *platform = driver.into_platform();
                journal
            })
        })
        .collect();
    let journals: Vec<String> = receivers
        .into_iter()
        .map(|rx| rx.recv().expect("shard alive"))
        .collect();
    let elapsed = start.elapsed();
    drop(rt);
    (elapsed, journals)
}

/// The PR 5 streaming path: push the pre-recorded scenario streams
/// through the ingestion gate — every project routed to its owner shard,
/// scenarios interleaved by timestamp, drain markers as coordinated
/// barriers. Timed region: submission and apply (the platform-side cost);
/// recording is untimed client-side decision work, exactly like a
/// production front-end deciding *before* it calls the ingestion API.
/// Returns the merged journal dump (must equal the serial
/// `apply_stream` reference byte for byte).
pub fn run_multi_project_streamed(
    shards: usize,
    traces: &[crowd4u_scenarios::ScenarioTrace],
) -> (std::time::Duration, String) {
    use crowd4u_runtime::prelude::*;
    use crowd4u_runtime::scenario::submit_retrying;
    use crowd4u_scenarios::stream::StreamOp;

    let rt = ShardedRuntime::new(RuntimeConfig {
        shards,
        drain_every: 0,
        mailbox_capacity: 0,
        recovery: false,
    });
    let mut merged = crowd4u_scenarios::merge_traces(traces);
    let gate = rt.gate();
    let start = std::time::Instant::now();
    for (_, op) in merged.ops.drain(..) {
        match op {
            StreamOp::Event(e) => {
                submit_retrying(&gate, e).expect("runtime alive");
            }
            StreamOp::Drain => {
                rt.drain();
            }
        }
    }
    rt.barrier();
    let elapsed = start.elapsed();
    let run = rt.finish().expect("finish");
    (elapsed, run.journal.dump())
}

/// The untimed serial reference for the streamed run's correctness
/// check: the same merged stream applied by one thread to one platform.
pub fn multi_project_serial_reference(traces: &[crowd4u_scenarios::ScenarioTrace]) -> String {
    let merged = crowd4u_scenarios::merge_traces(traces);
    let mut platform = crowd4u_core::platform::Crowd4U::new();
    crowd4u_scenarios::stream::apply_stream(&mut platform, &merged).expect("serial apply");
    platform.journal().dump()
}

/// Best-of-`reps` timing for an E12 run; every repetition must reproduce
/// the same journal dumps (byte-level correctness inside the bench).
pub fn best_multi_project_run<T: PartialEq + std::fmt::Debug>(
    reps: usize,
    mut run: impl FnMut() -> (std::time::Duration, T),
) -> (std::time::Duration, T) {
    let mut best: Option<(std::time::Duration, T)> = None;
    for _ in 0..reps.max(1) {
        let (elapsed, out) = run();
        match &mut best {
            Some((b, prev)) => {
                assert_eq!(prev, &out, "repetitions must agree byte for byte");
                if elapsed < *b {
                    *b = elapsed;
                }
            }
            None => best = Some((elapsed, out)),
        }
    }
    best.expect("reps >= 1")
}

/// A random team-formation instance: `n` workers with uniform skills,
/// costs in `[0, 3)` and uniform pairwise affinities.
pub fn random_instance(n: usize, seed: u64) -> (Vec<Candidate>, AffinityMatrix) {
    let mut rng = SimRng::seed_from(seed);
    let cands: Vec<Candidate> = (0..n as u64)
        .map(|i| Candidate::new(WorkerId(i), rng.unit(), rng.range_f64(0.0, 3.0)))
        .collect();
    let mut m = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
    for i in 0..n as u64 {
        for j in (i + 1)..n as u64 {
            m.set(WorkerId(i), WorkerId(j), rng.unit());
        }
    }
    (cands, m)
}

/// A clustered instance (k clusters, high intra / low inter affinity) —
/// the regime where affinity-aware assignment visibly beats random.
pub fn clustered_instance(
    n: usize,
    clusters: usize,
    seed: u64,
) -> (Vec<Candidate>, AffinityMatrix) {
    let mut rng = SimRng::seed_from(seed);
    let cands: Vec<Candidate> = (0..n as u64)
        .map(|i| Candidate::new(WorkerId(i), 0.4 + 0.6 * rng.unit(), 0.0))
        .collect();
    let mut m = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
    let k = clusters.max(1);
    for i in 0..n {
        for j in (i + 1)..n {
            let same = (i % k) == (j % k);
            let base = if same { 0.75 } else { 0.15 };
            let v = (base + 0.15 * rng.gaussian()).clamp(0.0, 1.0);
            m.set(WorkerId(i as u64), WorkerId(j as u64), v);
        }
    }
    (cands, m)
}

/// All competing formation algorithms for E6/E7, boxed behind the trait.
pub fn all_algorithms(seed: u64) -> Vec<Box<dyn TeamFormation>> {
    vec![
        Box::new(ExactBB::default()),
        Box::new(GreedyAff::default()),
        Box::new(LocalSearch::default()),
        Box::new(RandomTeam::new(seed)),
    ]
}

/// Markdown-style table printer for experiment reports.
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    pub fn new(headers: &[&str]) -> TablePrinter {
        TablePrinter {
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(width) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &width));
        out.push('|');
        for w in &width {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
        }
        out
    }
}

// ---- E13: worker scale (lazy affinity + coordinator-owned service) ----

/// The E13 worker-scale workload shape: a large synthetic crowd with a
/// small slice speaking the project's rare required language (so the
/// assignment candidate set stays fixed while the population grows), plus
/// re-registration churn.
#[derive(Debug, Clone, Copy)]
pub struct WorkerScaleWorkload {
    /// Population size (10⁵ in the CI smoke, 10⁶ in the recorded baseline).
    pub workers: usize,
    /// Extra re-registrations, as a percentage of `workers`.
    pub churn_percent: usize,
    /// Crowd slice fluent in the rare project language — the assignment
    /// candidate pool, deliberately independent of `workers`.
    pub eligible: usize,
    /// Provider cache policy probed by the memory gate (top-k per worker).
    pub top_k: usize,
}

impl Default for WorkerScaleWorkload {
    fn default() -> Self {
        WorkerScaleWorkload {
            workers: 100_000,
            churn_percent: 10,
            eligible: 16,
            top_k: 8,
        }
    }
}

/// CyLog program of the E13 collaborative project (the declarative part is
/// irrelevant to the experiment; eligibility is the human-factor screen).
pub const WORKER_SCALE_SRC: &str = "rel doc(d: id).\n\
     open draft(d: id) -> (t: str) points 2.\nrel drafted(d: id, t: str).\n\
     drafted(D, T) :- doc(D), draft(D, T).\n";

/// Deterministic synthetic profile for worker `i` (1-based id): spread over
/// the unit square with a few languages and skills. Workers `i <= eligible`
/// are fluent in the rare language `"xh"` the E13 project requires.
pub fn scale_profile(i: u64, eligible: usize) -> WorkerProfile {
    // Cheap splitmix-style hash: profile features must be a pure function
    // of the id so churn re-registrations are reproducible.
    let mut h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 31;
    let x = (h & 0xFFFF) as f64 / 65536.0;
    let y = ((h >> 16) & 0xFFFF) as f64 / 65536.0;
    let langs = ["en", "ja", "fr", "pt"];
    let mut p = WorkerProfile::new(WorkerId(i), format!("w{i}"))
        .with_region(Region::new(format!("r{}", h % 7), x, y))
        .with_native_lang(langs[(h % 4) as usize])
        .with_skill("survey", ((h >> 32) & 0xFF) as f64 / 255.0);
    if i as usize <= eligible {
        p = p.with_fluency("xh", 1.0).with_skill("drafting", 0.9);
    }
    p
}

/// The E13 event stream: `workers` registrations followed by churn
/// re-registrations (every `100 / churn_percent`-th worker comes back with
/// a bumped skill). Workers come **first** — the bulk-onboarding phase the
/// worker service's snapshot fast-forward exists for.
pub fn worker_scale_events(w: &WorkerScaleWorkload) -> Vec<crowd4u_core::events::PlatformEvent> {
    use crowd4u_core::events::PlatformEvent;
    let churn = w.workers * w.churn_percent / 100;
    let mut events = Vec::with_capacity(w.workers + churn);
    for i in 1..=w.workers as u64 {
        events.push(PlatformEvent::WorkerRegistered {
            profile: scale_profile(i, w.eligible),
        });
    }
    let stride = (w.workers / churn.max(1)).max(1) as u64;
    for k in 0..churn as u64 {
        let i = 1 + (k * stride) % w.workers as u64;
        events.push(PlatformEvent::WorkerRegistered {
            profile: scale_profile(i, w.eligible).with_skill("survey", 0.99),
        });
    }
    events
}

/// Register the E13 crowd (with churn) on one platform, timing the first
/// and last decile of registrations. With the lazy provider both deciles
/// cost the same per event — there is no per-registration dense-state
/// invalidation, and nothing downstream rebuilds an O(n²) matrix.
/// Returns `(first_decile, last_decile, events, platform)`.
pub fn registration_deciles(
    w: &WorkerScaleWorkload,
) -> (
    std::time::Duration,
    std::time::Duration,
    usize,
    crowd4u_core::platform::Crowd4U,
) {
    let mut events = worker_scale_events(w);
    let decile = (events.len() / 10).max(1);
    events.truncate(decile * 10); // equal-length deciles
    let n = events.len();
    let mut platform = crowd4u_core::platform::Crowd4U::new();
    let mut first = std::time::Duration::ZERO;
    let mut last = std::time::Duration::ZERO;
    for (k, chunk) in events.chunks(decile).enumerate() {
        let t = std::time::Instant::now();
        for e in chunk {
            platform.apply_event(e.clone()).expect("registration");
        }
        let dt = t.elapsed();
        if k == 0 {
            first = dt;
        }
        last = dt;
    }
    (first, last, n, platform)
}

/// Set up the E13 collaborative project on a populated platform and return
/// its id. The project requires the rare language, so its candidate pool
/// is the `eligible` slice regardless of population size.
pub fn worker_scale_project(
    platform: &mut crowd4u_core::platform::Crowd4U,
) -> crowd4u_core::error::ProjectId {
    use crowd4u_forms::admin::DesiredFactors;
    platform
        .register_project(
            "e13-drafting",
            WORKER_SCALE_SRC,
            DesiredFactors {
                required_language: Some("xh".into()),
                skill_name: Some("drafting".into()),
                min_quality: 0.6,
                min_team: 2,
                max_team: 4,
                recruitment_secs: 600,
                ..Default::default()
            },
            crowd4u_collab::Scheme::Sequential,
        )
        .expect("e13 project")
}

/// p99 latency of `run_assignment` over `iters` fresh collaborative tasks
/// (each with the eligible slice's interest expressed). The candidate set
/// is the fixed eligible slice, so this latency must not scale with the
/// total population — the relative gate the E13 bench asserts.
pub fn assignment_p99(
    platform: &mut crowd4u_core::platform::Crowd4U,
    project: crowd4u_core::error::ProjectId,
    eligible: usize,
    iters: usize,
) -> std::time::Duration {
    let mut samples = Vec::with_capacity(iters);
    for k in 0..iters {
        let task = platform
            .create_collab_task(project, format!("draft {k}"))
            .expect("collab task");
        for i in 1..=eligible as u64 {
            platform
                .express_interest(WorkerId(i), task)
                .expect("eligible interest");
        }
        let t = std::time::Instant::now();
        let team = platform.run_assignment(task);
        samples.push(t.elapsed());
        team.expect("feasible team from the eligible slice");
    }
    samples.sort();
    samples[(samples.len() * 99 / 100).min(samples.len() - 1)]
}

/// Peak resident set size of this process (Linux `VmHWM`), if readable.
/// The E13 memory gate bounds it far below the dense-matrix footprint.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// The E13 runtime leg: the registration + churn stream through the
/// sharded runtime (workers first — the snapshot fast-forward phase), then
/// the project, a collaborative assignment, and `finish`. Returns the wall
/// time, total applied events, and each shard's `(workers, version)` —
/// which must agree across shards and with a serial register.
pub fn run_worker_scale_runtime(
    shards: usize,
    w: &WorkerScaleWorkload,
) -> (std::time::Duration, u64, Vec<(usize, u64)>) {
    use crowd4u_core::events::PlatformEvent;
    use crowd4u_runtime::prelude::*;
    let events = worker_scale_events(w);
    let start = std::time::Instant::now();
    let rt = ShardedRuntime::new(RuntimeConfig {
        shards,
        drain_every: 0,
        mailbox_capacity: 4096,
        recovery: false,
    });
    rt.submit_batch(events);
    // Mailbox order makes the sequencing safe: the project broadcast lands
    // behind every registration, and the collab/interest/assignment events
    // land behind the project on its owning shard.
    rt.submit(PlatformEvent::ProjectRegistered {
        name: "e13-drafting".into(),
        source: WORKER_SCALE_SRC.into(),
        factors: crowd4u_forms::admin::DesiredFactors {
            required_language: Some("xh".into()),
            skill_name: Some("drafting".into()),
            min_quality: 0.6,
            min_team: 2,
            max_team: 4,
            recruitment_secs: 600,
            ..Default::default()
        },
        scheme: crowd4u_collab::Scheme::Sequential,
        owner: 0,
    });
    let project = crowd4u_core::error::ProjectId(1);
    rt.submit(PlatformEvent::CollabTaskCreated {
        project,
        description: "draft 0".into(),
    });
    let task = crowd4u_core::error::TaskId::compose(project, 1);
    for i in 1..=w.eligible as u64 {
        rt.submit(PlatformEvent::InterestExpressed {
            worker: WorkerId(i),
            task,
        });
    }
    rt.submit(PlatformEvent::AssignmentRun { task });
    rt.drain();
    let run = rt.finish().expect("clean finish");
    let elapsed = start.elapsed();
    let per_shard = run
        .platforms
        .iter()
        .map(|p| (p.workers.len(), p.workers.version()))
        .collect();
    (elapsed, run.stats.applied, per_shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_crowd::affinity::AffinityLookup;

    #[test]
    fn random_instance_is_seeded() {
        let (c1, m1) = random_instance(12, 5);
        let (c2, m2) = random_instance(12, 5);
        assert_eq!(c1, c2);
        assert_eq!(
            m1.affinity(WorkerId(0), WorkerId(5)),
            m2.affinity(WorkerId(0), WorkerId(5))
        );
        let (c3, _) = random_instance(12, 6);
        assert_ne!(c1, c3);
    }

    #[test]
    fn clustered_instance_has_structure() {
        let (_, m) = clustered_instance(30, 3, 7);
        let mut same = Vec::new();
        let mut cross = Vec::new();
        for i in 0..30u64 {
            for j in (i + 1)..30 {
                let a = m.affinity(WorkerId(i), WorkerId(j));
                if i % 3 == j % 3 {
                    same.push(a);
                } else {
                    cross.push(a);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&same) > mean(&cross) + 0.3);
    }

    #[test]
    fn shard_workload_runs_and_agrees_across_shard_counts() {
        let w = ShardWorkload {
            projects: 4,
            items: 20,
            workers: 4,
            drain_every: 8,
        };
        let (setup, answers) = shard_workload_events(&w);
        assert_eq!(setup.len(), 4 + 4 + 4 * 20);
        assert_eq!(answers.len(), 4 * 20);
        let (_, total1, good1) = run_shard_workload(1, &w);
        let (_, total2, good2) = run_shard_workload(2, &w);
        assert_eq!(total1, total2);
        assert_eq!(good1, good2);
        assert_eq!(good1, 4 * 18); // 10% of 20 rejected per project
    }

    #[test]
    fn algorithms_enumerated() {
        let algs = all_algorithms(1);
        assert_eq!(algs.len(), 4);
        let names: Vec<&str> = algs.iter().map(|a| a.name()).collect();
        assert!(names.contains(&"exact-bb"));
        assert!(names.contains(&"random"));
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = TablePrinter::new(&["alg", "affinity"]);
        t.row(vec!["exact".into(), "0.91".into()]);
        t.row(vec!["greedy-longer-name".into(), "0.88".into()]);
        let out = t.render();
        assert!(out.contains("| alg"));
        assert!(out.lines().count() == 4);
        assert!(out.contains("|---"));
    }

    #[test]
    #[should_panic]
    fn table_rejects_bad_arity() {
        let mut t = TablePrinter::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
