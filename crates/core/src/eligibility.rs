//! Eligibility computation: project description × worker human factors.
//!
//! Paper §2.2: "*Eligible* means that a worker is eligible for performing a
//! task. This is computed by the CyLog processor using the project
//! description and worker human factors. For example, … a task requester
//! may specify that only workers who log in to Crowd4U and speak English as
//! a native language are eligible."
//!
//! Screening rules (documented so benchmarks are interpretable):
//! * `require_login` ⇒ the worker must be logged in;
//! * `required_language` ⇒ native **or** fluency ≥ 0.5;
//! * `skill_name` with `min_quality` q ⇒ individual skill ≥ q/2. The full
//!   `q` is a *team-mean* constraint enforced by the assignment controller;
//!   the individual screen only "filters out unqualified workers" (§1), so
//!   a team of mixed skills can still average above the bar.

use crowd4u_crowd::profile::{Lang, WorkerProfile};
use crowd4u_forms::admin::DesiredFactors;

/// Individual screening threshold derived from the team-quality bound.
pub fn individual_skill_floor(factors: &DesiredFactors) -> f64 {
    factors.min_quality / 2.0
}

/// Why a worker is not eligible (shown on admin diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ineligibility {
    NotLoggedIn,
    LacksLanguage(String),
    LacksSkill(String),
}

impl std::fmt::Display for Ineligibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ineligibility::NotLoggedIn => f.write_str("not logged in"),
            Ineligibility::LacksLanguage(l) => write!(f, "does not speak {l}"),
            Ineligibility::LacksSkill(s) => write!(f, "insufficient {s} skill"),
        }
    }
}

/// Full eligibility check with the failure reason.
pub fn check_eligibility(
    profile: &WorkerProfile,
    factors: &DesiredFactors,
) -> Result<(), Ineligibility> {
    if factors.require_login && !profile.factors.logged_in {
        return Err(Ineligibility::NotLoggedIn);
    }
    if let Some(lang) = &factors.required_language {
        let l = Lang::new(lang.clone());
        if profile.factors.fluency_in(&l) < 0.5 {
            return Err(Ineligibility::LacksLanguage(lang.clone()));
        }
    }
    if let Some(skill) = &factors.skill_name {
        if profile.factors.skill(skill) < individual_skill_floor(factors) {
            return Err(Ineligibility::LacksSkill(skill.clone()));
        }
    }
    Ok(())
}

/// Boolean convenience.
pub fn is_eligible(profile: &WorkerProfile, factors: &DesiredFactors) -> bool {
    check_eligibility(profile, factors).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_crowd::profile::WorkerId;

    fn factors() -> DesiredFactors {
        DesiredFactors {
            required_language: Some("en".into()),
            skill_name: Some("translation".into()),
            min_quality: 0.6,
            ..Default::default()
        }
    }

    fn qualified() -> WorkerProfile {
        WorkerProfile::new(WorkerId(1), "ann")
            .with_native_lang("en")
            .with_skill("translation", 0.7)
    }

    #[test]
    fn qualified_worker_passes() {
        assert!(is_eligible(&qualified(), &factors()));
    }

    #[test]
    fn login_required() {
        let mut w = qualified();
        w.factors.logged_in = false;
        assert_eq!(
            check_eligibility(&w, &factors()).unwrap_err(),
            Ineligibility::NotLoggedIn
        );
        // unless the requester does not care
        let mut f = factors();
        f.require_login = false;
        assert!(is_eligible(&w, &f));
    }

    #[test]
    fn language_native_or_fluent() {
        let fluent = WorkerProfile::new(WorkerId(2), "bob")
            .with_native_lang("ja")
            .with_fluency("en", 0.6)
            .with_skill("translation", 0.7);
        assert!(is_eligible(&fluent, &factors()));
        let weak = WorkerProfile::new(WorkerId(3), "caz")
            .with_native_lang("ja")
            .with_fluency("en", 0.3)
            .with_skill("translation", 0.7);
        assert_eq!(
            check_eligibility(&weak, &factors()).unwrap_err(),
            Ineligibility::LacksLanguage("en".into())
        );
    }

    #[test]
    fn skill_floor_is_half_quality() {
        let f = factors(); // min_quality 0.6 → floor 0.3
        assert_eq!(individual_skill_floor(&f), 0.3);
        let borderline = WorkerProfile::new(WorkerId(4), "dee")
            .with_native_lang("en")
            .with_skill("translation", 0.3);
        assert!(is_eligible(&borderline, &f));
        let below = WorkerProfile::new(WorkerId(5), "eli")
            .with_native_lang("en")
            .with_skill("translation", 0.29);
        assert_eq!(
            check_eligibility(&below, &f).unwrap_err(),
            Ineligibility::LacksSkill("translation".into())
        );
    }

    #[test]
    fn no_constraints_accepts_anyone_logged_in() {
        let d = DesiredFactors::default();
        let w = WorkerProfile::new(WorkerId(6), "raw");
        assert!(is_eligible(&w, &d));
    }

    #[test]
    fn reasons_display() {
        assert!(Ineligibility::NotLoggedIn.to_string().contains("logged"));
        assert!(Ineligibility::LacksLanguage("en".into())
            .to_string()
            .contains("en"));
        assert!(Ineligibility::LacksSkill("x".into())
            .to_string()
            .contains("x"));
    }
}
