//! The three worker↔task relationships, stored relationally.
//!
//! Paper §2.2: "Crowd4U manages three types of relationships between
//! workers and tasks explicitly. (1) *Eligible* … computed by the CyLog
//! processor using the project description and worker human factors.
//! (2) *InterestedIn* … declared by each worker when she is shown a list of
//! eligible tasks. (3) *Undertakes* … A (worker,task) pair can go into this
//! relationship status only when the worker is Eligible for that task."
//!
//! The relationships live in indexed `crowd4u-storage` relations — the same
//! substrate the production platform's SQL tables provide — so scans,
//! lookups and cascading deletes exercise the storage engine.

use crate::error::{PlatformError, TaskId, WorkerId};
use crowd4u_storage::prelude::*;

const RELS: [&str; 3] = ["eligible", "interested_in", "undertakes"];

/// Relational store of Eligible / InterestedIn / Undertakes.
pub struct RelationStore {
    db: Database,
}

impl Default for RelationStore {
    fn default() -> Self {
        let mut db = Database::new();
        for name in RELS {
            let rel = db
                .create_relation(
                    name,
                    Schema::of(&[("worker", ValueType::Id), ("task", ValueType::Id)]),
                )
                .expect("fresh database");
            rel.create_index(&["worker"], false).expect("index");
            rel.create_index(&["task"], false).expect("index");
        }
        RelationStore { db }
    }
}

impl RelationStore {
    pub fn new() -> RelationStore {
        RelationStore::default()
    }

    fn insert(&mut self, rel: &str, w: WorkerId, t: TaskId) -> Result<bool, PlatformError> {
        let (_, fresh) = self
            .db
            .relation_mut(rel)?
            .insert_distinct(tuple![w.0, t.0])?;
        Ok(fresh)
    }

    fn contains(&self, rel: &str, w: WorkerId, t: TaskId) -> bool {
        self.db
            .relation(rel)
            .map(|r| r.contains(&tuple![w.0, t.0]))
            .unwrap_or(false)
    }

    fn workers_of(&self, rel: &str, t: TaskId) -> Vec<WorkerId> {
        let Ok(r) = self.db.relation(rel) else {
            return Vec::new();
        };
        let mut out: Vec<WorkerId> = r
            .lookup(&[1], &[Value::Id(t.0)])
            .into_iter()
            .filter_map(|row| row[0].as_id().map(WorkerId))
            .collect();
        out.sort();
        out
    }

    fn tasks_of(&self, rel: &str, w: WorkerId) -> Vec<TaskId> {
        let Ok(r) = self.db.relation(rel) else {
            return Vec::new();
        };
        let mut out: Vec<TaskId> = r
            .lookup(&[0], &[Value::Id(w.0)])
            .into_iter()
            .filter_map(|row| row[1].as_id().map(TaskId))
            .collect();
        out.sort();
        out
    }

    // ---- Eligible ----

    /// Mark a worker eligible for a task (computed by the platform).
    pub fn mark_eligible(&mut self, w: WorkerId, t: TaskId) -> Result<bool, PlatformError> {
        self.insert("eligible", w, t)
    }

    pub fn is_eligible(&self, w: WorkerId, t: TaskId) -> bool {
        self.contains("eligible", w, t)
    }

    pub fn eligible_workers(&self, t: TaskId) -> Vec<WorkerId> {
        self.workers_of("eligible", t)
    }

    pub fn eligible_tasks(&self, w: WorkerId) -> Vec<TaskId> {
        self.tasks_of("eligible", w)
    }

    /// Withdraw eligibility (e.g. worker logged out); cascades to
    /// InterestedIn and Undertakes, preserving the state-machine invariant.
    pub fn revoke_eligibility(&mut self, w: WorkerId, t: TaskId) -> Result<(), PlatformError> {
        for rel in RELS {
            self.db
                .relation_mut(rel)?
                .delete_matching(&[0, 1], &[Value::Id(w.0), Value::Id(t.0)]);
        }
        Ok(())
    }

    // ---- InterestedIn ----

    /// A worker declares interest. Only eligible workers may (§2.2 (2) —
    /// the user page only *shows* eligible tasks, so the API enforces it).
    pub fn express_interest(&mut self, w: WorkerId, t: TaskId) -> Result<bool, PlatformError> {
        if !self.is_eligible(w, t) {
            return Err(PlatformError::NotEligible { worker: w, task: t });
        }
        self.insert("interested_in", w, t)
    }

    pub fn is_interested(&self, w: WorkerId, t: TaskId) -> bool {
        self.contains("interested_in", w, t)
    }

    pub fn interested_workers(&self, t: TaskId) -> Vec<WorkerId> {
        self.workers_of("interested_in", t)
    }

    /// Withdraw interest (does not touch undertakes).
    pub fn withdraw_interest(&mut self, w: WorkerId, t: TaskId) -> Result<(), PlatformError> {
        self.db
            .relation_mut("interested_in")?
            .delete_matching(&[0, 1], &[Value::Id(w.0), Value::Id(t.0)]);
        Ok(())
    }

    // ---- Undertakes ----

    /// A worker confirms they perform the task. "A (worker,task) pair can
    /// go into this relationship status only when the worker is Eligible."
    pub fn undertake(&mut self, w: WorkerId, t: TaskId) -> Result<bool, PlatformError> {
        if !self.is_eligible(w, t) {
            return Err(PlatformError::NotEligible { worker: w, task: t });
        }
        self.insert("undertakes", w, t)
    }

    pub fn is_undertaking(&self, w: WorkerId, t: TaskId) -> bool {
        self.contains("undertakes", w, t)
    }

    pub fn undertaking_workers(&self, t: TaskId) -> Vec<WorkerId> {
        self.workers_of("undertakes", t)
    }

    /// Remove every relationship of a finished/abandoned task.
    pub fn clear_task(&mut self, t: TaskId) -> Result<(), PlatformError> {
        // Point deletion through the task index — a task's rows are a
        // vanishing fraction of the store on a platform with many tasks
        // and workers, and this runs on every answer and completion.
        for rel in RELS {
            self.db
                .relation_mut(rel)?
                .delete_matching(&[1], &[Value::Id(t.0)]);
        }
        Ok(())
    }

    /// The underlying database (read-only), e.g. for snapshots and
    /// replay-equality checks.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Relationship row counts `(eligible, interested, undertakes)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.db.relation("eligible").map(|r| r.len()).unwrap_or(0),
            self.db
                .relation("interested_in")
                .map(|r| r.len())
                .unwrap_or(0),
            self.db.relation("undertakes").map(|r| r.len()).unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u64) -> WorkerId {
        WorkerId(i)
    }

    fn t(i: u64) -> TaskId {
        TaskId(i)
    }

    #[test]
    fn state_machine_order_enforced() {
        let mut rs = RelationStore::new();
        // interest before eligibility: rejected
        assert!(matches!(
            rs.express_interest(w(1), t(1)),
            Err(PlatformError::NotEligible { .. })
        ));
        // undertake before eligibility: rejected
        assert!(matches!(
            rs.undertake(w(1), t(1)),
            Err(PlatformError::NotEligible { .. })
        ));
        assert!(rs.mark_eligible(w(1), t(1)).unwrap());
        assert!(rs.express_interest(w(1), t(1)).unwrap());
        assert!(rs.undertake(w(1), t(1)).unwrap());
        assert!(rs.is_eligible(w(1), t(1)));
        assert!(rs.is_interested(w(1), t(1)));
        assert!(rs.is_undertaking(w(1), t(1)));
        assert_eq!(rs.counts(), (1, 1, 1));
    }

    #[test]
    fn duplicates_are_idempotent() {
        let mut rs = RelationStore::new();
        rs.mark_eligible(w(1), t(1)).unwrap();
        assert!(!rs.mark_eligible(w(1), t(1)).unwrap());
        rs.express_interest(w(1), t(1)).unwrap();
        assert!(!rs.express_interest(w(1), t(1)).unwrap());
        assert_eq!(rs.counts(), (1, 1, 0));
    }

    #[test]
    fn lookups_sorted() {
        let mut rs = RelationStore::new();
        for i in [3u64, 1, 2] {
            rs.mark_eligible(w(i), t(7)).unwrap();
            rs.express_interest(w(i), t(7)).unwrap();
        }
        assert_eq!(rs.eligible_workers(t(7)), vec![w(1), w(2), w(3)]);
        assert_eq!(rs.interested_workers(t(7)), vec![w(1), w(2), w(3)]);
        rs.mark_eligible(w(1), t(9)).unwrap();
        assert_eq!(rs.eligible_tasks(w(1)), vec![t(7), t(9)]);
        assert!(rs.undertaking_workers(t(7)).is_empty());
    }

    #[test]
    fn revoke_cascades() {
        let mut rs = RelationStore::new();
        rs.mark_eligible(w(1), t(1)).unwrap();
        rs.express_interest(w(1), t(1)).unwrap();
        rs.undertake(w(1), t(1)).unwrap();
        rs.revoke_eligibility(w(1), t(1)).unwrap();
        assert!(!rs.is_eligible(w(1), t(1)));
        assert!(!rs.is_interested(w(1), t(1)));
        assert!(!rs.is_undertaking(w(1), t(1)));
        assert_eq!(rs.counts(), (0, 0, 0));
    }

    #[test]
    fn withdraw_interest_keeps_eligibility() {
        let mut rs = RelationStore::new();
        rs.mark_eligible(w(1), t(1)).unwrap();
        rs.express_interest(w(1), t(1)).unwrap();
        rs.withdraw_interest(w(1), t(1)).unwrap();
        assert!(rs.is_eligible(w(1), t(1)));
        assert!(!rs.is_interested(w(1), t(1)));
    }

    #[test]
    fn clear_task_removes_only_that_task() {
        let mut rs = RelationStore::new();
        for task in [t(1), t(2)] {
            rs.mark_eligible(w(1), task).unwrap();
            rs.express_interest(w(1), task).unwrap();
        }
        rs.clear_task(t(1)).unwrap();
        assert!(!rs.is_eligible(w(1), t(1)));
        assert!(rs.is_eligible(w(1), t(2)));
        assert!(rs.is_interested(w(1), t(2)));
    }
}
