//! The typed event vocabulary of the platform's execution core.
//!
//! Every state-changing entry point of [`crate::platform::Crowd4U`] has a
//! [`PlatformEvent`] counterpart. The platform appends one journal entry
//! per successful call (see [`crowd4u_storage::journal::EventJournal`]),
//! batched ingestion ([`crate::platform::Crowd4U::apply_batch`]) consumes
//! streams of these, and replaying a journal through
//! [`crate::platform::Crowd4U::replay_with`] reconstructs the platform
//! deterministically — relations, points ledgers and pending queues come
//! back byte-identical.
//!
//! Each variant round-trips through a `(kind, args)` journal entry via
//! [`PlatformEvent::encode`] / [`PlatformEvent::decode`]. The journal also
//! carries one platform-level entry with no event counterpart: `drain`,
//! written by [`crate::platform::Crowd4U::drain_events`] to mark the point
//! where dirty projects were synchronised.

use crate::error::{PlatformError, ProjectId, TaskId, WorkerId};
use crowd4u_collab::Scheme;
use crowd4u_crowd::profile::{Lang, Region, WorkerProfile};
use crowd4u_forms::admin::DesiredFactors;
use crowd4u_sim::time::SimTime;
use crowd4u_storage::prelude::{JournalEntry, Value};

/// One platform-level occurrence, in journalable form.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformEvent {
    /// A worker registered (or re-registered with updated factors).
    WorkerRegistered { profile: WorkerProfile },
    /// A project was registered from CyLog source + desired factors.
    ProjectRegistered {
        name: String,
        source: String,
        factors: DesiredFactors,
        scheme: Scheme,
        /// Clock-domain tag of the project's recruitment deadlines: only
        /// [`PlatformEvent::ClockAdvanced`] events carrying the same owner
        /// sweep them. `0` is the global domain (every standalone run);
        /// merged scenario streams tag each trace with its own owner so one
        /// scenario's clock cannot fire another's deadline (ARCHITECTURE.md
        /// §11). Encoded only when non-zero, so pre-existing journals decode
        /// unchanged.
        owner: u64,
    },
    /// A base fact was added to a project's CyLog database.
    FactSeeded {
        project: ProjectId,
        pred: String,
        values: Vec<Value>,
    },
    /// A project's rules were run and new demands became micro-tasks.
    TasksSynced { project: ProjectId },
    /// A collaborative (team) task was created.
    CollabTaskCreated {
        project: ProjectId,
        description: String,
    },
    /// Workflow step (3): a worker declared interest.
    InterestExpressed { worker: WorkerId, task: TaskId },
    /// Workflow steps (4)+(5): assignment was executed for a task.
    AssignmentRun { task: TaskId },
    /// A suggested worker confirmed they start the task.
    Undertaken { worker: WorkerId, task: TaskId },
    /// The platform clock advanced (deadline processing point).
    ClockAdvanced {
        to: SimTime,
        /// Clock domain being advanced. `0` (the default, encoded as an
        /// absent trailing argument) is the global clock; a non-zero owner
        /// advances that domain's clock and sweeps only deadlines of
        /// projects registered with the same owner. See
        /// [`PlatformEvent::ProjectRegistered::owner`].
        owner: u64,
    },
    /// A worker answered a micro-task.
    AnswerSubmitted {
        worker: WorkerId,
        task: TaskId,
        outputs: Vec<Value>,
    },
    /// A collaborative task finished with an observed quality.
    TaskCompleted { task: TaskId, quality: f64 },
    /// A team member showed activity on an in-progress task (feeds the
    /// collaboration monitor).
    ActivityRecorded { worker: WorkerId, task: TaskId },
}

/// Journal-entry kind reserved for [`crate::platform::Crowd4U::drain_events`].
pub const DRAIN_KIND: &str = "drain";

/// Where an event must be delivered in a partitioned (sharded) runtime —
/// the ordering metadata a router needs, kept next to the event vocabulary
/// so adding a variant forces a routing decision.
///
/// The scopes carry different ordering obligations:
///
/// * [`EventScope::Project`] events touch exactly one project's state
///   (CyLog engine, tasks, relations, points ledger) and may be applied on
///   the owning partition alone, concurrently with other projects' events.
/// * [`EventScope::Global`] events mutate state every partition replicates
///   (the clock, the project-id sequence) and must be applied by **every**
///   partition **in the same relative order** — the broadcast-lockstep
///   rule that keeps the project-id sequence identical across replicas.
/// * [`EventScope::Worker`] events mutate the worker registry. They are
///   delivered to the **coordinator partition only** (which journals
///   them); other partitions replicate the effect by pulling seq-keyed
///   deltas from the coordinator's worker service *before* applying any
///   later-stamped event, which preserves the same relative order the old
///   broadcast gave while making worker churn O(1) platform-wide instead
///   of O(partitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventScope {
    /// Replicated state: every partition must apply it, in sequence order.
    Global,
    /// Worker-registry state: applied by the coordinator partition;
    /// replicas sync it on demand from the worker service.
    Worker,
    /// Partitioned state: only the owner of this project applies it.
    Project(ProjectId),
}

impl PlatformEvent {
    /// The delivery scope of this event (see [`EventScope`]). Task-scoped
    /// events resolve to their project via the project-strided task-id
    /// encoding ([`TaskId::compose`](crate::error::TaskId::compose)), so
    /// classification is pure bit arithmetic.
    pub fn scope(&self) -> EventScope {
        match self {
            PlatformEvent::WorkerRegistered { .. } => EventScope::Worker,
            PlatformEvent::ClockAdvanced { .. } | PlatformEvent::ProjectRegistered { .. } => {
                EventScope::Global
            }
            PlatformEvent::FactSeeded { project, .. }
            | PlatformEvent::TasksSynced { project }
            | PlatformEvent::CollabTaskCreated { project, .. } => EventScope::Project(*project),
            PlatformEvent::InterestExpressed { task, .. }
            | PlatformEvent::AssignmentRun { task }
            | PlatformEvent::Undertaken { task, .. }
            | PlatformEvent::AnswerSubmitted { task, .. }
            | PlatformEvent::TaskCompleted { task, .. }
            | PlatformEvent::ActivityRecorded { task, .. } => EventScope::Project(task.project()),
        }
    }

    /// The journal entry kind for this event.
    pub fn kind(&self) -> &'static str {
        match self {
            PlatformEvent::WorkerRegistered { .. } => "worker",
            PlatformEvent::ProjectRegistered { .. } => "project",
            PlatformEvent::FactSeeded { .. } => "seed",
            PlatformEvent::TasksSynced { .. } => "sync",
            PlatformEvent::CollabTaskCreated { .. } => "collab",
            PlatformEvent::InterestExpressed { .. } => "interest",
            PlatformEvent::AssignmentRun { .. } => "assign",
            PlatformEvent::Undertaken { .. } => "undertake",
            PlatformEvent::ClockAdvanced { .. } => "clock",
            PlatformEvent::AnswerSubmitted { .. } => "answer",
            PlatformEvent::TaskCompleted { .. } => "complete",
            PlatformEvent::ActivityRecorded { .. } => "activity",
        }
    }

    /// Encode into a journal entry.
    pub fn encode(&self) -> JournalEntry {
        let args = match self {
            PlatformEvent::WorkerRegistered { profile } => encode_profile(profile),
            PlatformEvent::ProjectRegistered {
                name,
                source,
                factors,
                scheme,
                owner,
            } => {
                let mut args = vec![
                    Value::Str(name.clone()),
                    Value::Str(source.clone()),
                    Value::Str(scheme.name().to_owned()),
                ];
                args.extend(encode_factors(factors));
                if *owner != 0 {
                    args.push(Value::Id(*owner));
                }
                args
            }
            PlatformEvent::FactSeeded {
                project,
                pred,
                values,
            } => {
                let mut args = vec![Value::Id(project.0), Value::Str(pred.clone())];
                args.extend(values.iter().cloned());
                args
            }
            PlatformEvent::TasksSynced { project } => vec![Value::Id(project.0)],
            PlatformEvent::CollabTaskCreated {
                project,
                description,
            } => vec![Value::Id(project.0), Value::Str(description.clone())],
            PlatformEvent::InterestExpressed { worker, task } => {
                vec![Value::Id(worker.0), Value::Id(task.0)]
            }
            PlatformEvent::AssignmentRun { task } => vec![Value::Id(task.0)],
            PlatformEvent::Undertaken { worker, task } => {
                vec![Value::Id(worker.0), Value::Id(task.0)]
            }
            PlatformEvent::ClockAdvanced { to, owner } => {
                let mut args = vec![Value::Id(to.ticks())];
                if *owner != 0 {
                    args.push(Value::Id(*owner));
                }
                args
            }
            PlatformEvent::AnswerSubmitted {
                worker,
                task,
                outputs,
            } => {
                let mut args = vec![Value::Id(worker.0), Value::Id(task.0)];
                args.extend(outputs.iter().cloned());
                args
            }
            PlatformEvent::TaskCompleted { task, quality } => {
                vec![Value::Id(task.0), Value::Float(*quality)]
            }
            PlatformEvent::ActivityRecorded { worker, task } => {
                vec![Value::Id(worker.0), Value::Id(task.0)]
            }
        };
        JournalEntry::new(self.kind(), args)
    }

    /// Decode a journal entry produced by [`encode`](Self::encode).
    pub fn decode(entry: &JournalEntry) -> Result<PlatformEvent, PlatformError> {
        let mut cur = Cursor::new(&entry.kind, &entry.args);
        let ev = match entry.kind.as_str() {
            "worker" => PlatformEvent::WorkerRegistered {
                profile: decode_profile(&mut cur)?,
            },
            "project" => {
                let name = cur.str()?;
                let source = cur.str()?;
                let scheme = parse_scheme(&cur.str()?)?;
                let factors = decode_factors(&mut cur)?;
                let owner = cur.owner_tag()?;
                PlatformEvent::ProjectRegistered {
                    name,
                    source,
                    factors,
                    scheme,
                    owner,
                }
            }
            "seed" => PlatformEvent::FactSeeded {
                project: ProjectId(cur.id()?),
                pred: cur.str()?,
                values: cur.rest(),
            },
            "sync" => PlatformEvent::TasksSynced {
                project: ProjectId(cur.id()?),
            },
            "collab" => PlatformEvent::CollabTaskCreated {
                project: ProjectId(cur.id()?),
                description: cur.str()?,
            },
            "interest" => PlatformEvent::InterestExpressed {
                worker: WorkerId(cur.id()?),
                task: TaskId(cur.id()?),
            },
            "assign" => PlatformEvent::AssignmentRun {
                task: TaskId(cur.id()?),
            },
            "undertake" => PlatformEvent::Undertaken {
                worker: WorkerId(cur.id()?),
                task: TaskId(cur.id()?),
            },
            "clock" => {
                let to = SimTime(cur.id()?);
                let owner = cur.owner_tag()?;
                PlatformEvent::ClockAdvanced { to, owner }
            }
            "answer" => PlatformEvent::AnswerSubmitted {
                worker: WorkerId(cur.id()?),
                task: TaskId(cur.id()?),
                outputs: cur.rest(),
            },
            "complete" => PlatformEvent::TaskCompleted {
                task: TaskId(cur.id()?),
                quality: cur.float()?,
            },
            "activity" => PlatformEvent::ActivityRecorded {
                worker: WorkerId(cur.id()?),
                task: TaskId(cur.id()?),
            },
            other => {
                return Err(PlatformError::BadEvent(format!(
                    "unknown event kind `{other}`"
                )))
            }
        };
        cur.finish()?;
        Ok(ev)
    }
}

fn parse_scheme(name: &str) -> Result<Scheme, PlatformError> {
    Scheme::all()
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| PlatformError::BadEvent(format!("unknown scheme `{name}`")))
}

/// Sequential reader over an entry's argument row.
struct Cursor<'a> {
    kind: &'a str,
    args: &'a [Value],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(kind: &'a str, args: &'a [Value]) -> Cursor<'a> {
        Cursor { kind, args, pos: 0 }
    }

    fn bad(&self, what: &str) -> PlatformError {
        PlatformError::BadEvent(format!(
            "`{}` entry: expected {what} at arg {}",
            self.kind, self.pos
        ))
    }

    fn next(&mut self) -> Result<&'a Value, PlatformError> {
        let v = self.args.get(self.pos).ok_or_else(|| self.bad("a value"))?;
        self.pos += 1;
        Ok(v)
    }

    fn id(&mut self) -> Result<u64, PlatformError> {
        match self.next()? {
            Value::Id(i) => Ok(*i),
            _ => Err(self.bad("an id")),
        }
    }

    fn int(&mut self) -> Result<i64, PlatformError> {
        match self.next()? {
            Value::Int(i) => Ok(*i),
            _ => Err(self.bad("an int")),
        }
    }

    fn float(&mut self) -> Result<f64, PlatformError> {
        match self.next()? {
            Value::Float(x) => Ok(*x),
            _ => Err(self.bad("a float")),
        }
    }

    fn bool(&mut self) -> Result<bool, PlatformError> {
        match self.next()? {
            Value::Bool(b) => Ok(*b),
            _ => Err(self.bad("a bool")),
        }
    }

    fn str(&mut self) -> Result<String, PlatformError> {
        match self.next()? {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(self.bad("a string")),
        }
    }

    fn opt_str(&mut self) -> Result<Option<String>, PlatformError> {
        match self.next()? {
            Value::Null => Ok(None),
            Value::Str(s) => Ok(Some(s.clone())),
            _ => Err(self.bad("a string or null")),
        }
    }

    /// Optional trailing clock-domain owner: absent (pre-ownership
    /// journals) decodes as the global domain `0`.
    fn owner_tag(&mut self) -> Result<u64, PlatformError> {
        if self.pos == self.args.len() {
            Ok(0)
        } else {
            self.id()
        }
    }

    /// All remaining values, consuming the cursor's tail.
    fn rest(&mut self) -> Vec<Value> {
        let out = self.args[self.pos..].to_vec();
        self.pos = self.args.len();
        out
    }

    /// Assert every argument was consumed.
    fn finish(self) -> Result<(), PlatformError> {
        if self.pos == self.args.len() {
            Ok(())
        } else {
            Err(PlatformError::BadEvent(format!(
                "`{}` entry: {} trailing argument(s)",
                self.kind,
                self.args.len() - self.pos
            )))
        }
    }
}

fn encode_profile(p: &WorkerProfile) -> Vec<Value> {
    let mut args = vec![
        Value::Id(p.id.0),
        Value::Str(p.name.clone()),
        Value::Float(p.cost),
        Value::Bool(p.factors.logged_in),
        Value::Str(p.factors.region.name.clone()),
        Value::Float(p.factors.region.x),
        Value::Float(p.factors.region.y),
    ];
    args.push(Value::Int(p.factors.native_langs.len() as i64));
    for l in &p.factors.native_langs {
        args.push(Value::Str(l.code().to_owned()));
    }
    args.push(Value::Int(p.factors.fluency.len() as i64));
    for (l, level) in &p.factors.fluency {
        args.push(Value::Str(l.code().to_owned()));
        args.push(Value::Float(*level));
    }
    args.push(Value::Int(p.factors.skills.len() as i64));
    for (s, level) in &p.factors.skills {
        args.push(Value::Str(s.clone()));
        args.push(Value::Float(*level));
    }
    args
}

fn decode_profile(cur: &mut Cursor<'_>) -> Result<WorkerProfile, PlatformError> {
    let id = WorkerId(cur.id()?);
    let name = cur.str()?;
    let mut p = WorkerProfile::new(id, name);
    p.cost = cur.float()?;
    p.factors.logged_in = cur.bool()?;
    p.factors.region = Region::new(cur.str()?, cur.float()?, cur.float()?);
    let n = cur.int()?;
    for _ in 0..n {
        p.factors.native_langs.push(Lang::new(cur.str()?));
    }
    let n = cur.int()?;
    for _ in 0..n {
        let lang = Lang::new(cur.str()?);
        let level = cur.float()?;
        p.factors.fluency.insert(lang, level);
    }
    let n = cur.int()?;
    for _ in 0..n {
        let skill = cur.str()?;
        let level = cur.float()?;
        p.factors.skills.insert(skill, level);
    }
    Ok(p)
}

fn encode_factors(f: &DesiredFactors) -> Vec<Value> {
    vec![
        f.required_language
            .clone()
            .map(Value::Str)
            .unwrap_or(Value::Null),
        f.skill_name.clone().map(Value::Str).unwrap_or(Value::Null),
        Value::Float(f.min_quality),
        Value::Int(f.min_team as i64),
        Value::Int(f.max_team as i64),
        Value::Float(f.max_cost),
        Value::Id(f.recruitment_secs),
        Value::Bool(f.require_login),
    ]
}

fn decode_factors(cur: &mut Cursor<'_>) -> Result<DesiredFactors, PlatformError> {
    Ok(DesiredFactors {
        required_language: cur.opt_str()?,
        skill_name: cur.opt_str()?,
        min_quality: cur.float()?,
        min_team: cur.int()? as usize,
        max_team: cur.int()? as usize,
        max_cost: cur.float()?,
        recruitment_secs: cur.id()?,
        require_login: cur.bool()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_storage::journal::EventJournal;

    fn rich_profile() -> WorkerProfile {
        let mut p = WorkerProfile::new(WorkerId(7), "ann \t odd name")
            .with_native_lang("en")
            .with_native_lang("fr")
            .with_fluency("ja", 0.4)
            .with_region(Region::new("tokyo", 0.8, 0.2))
            .with_skill("journalism", 0.9)
            .with_skill("translation", 0.3)
            .with_cost(2.5);
        p.factors.logged_in = false;
        p
    }

    fn all_events() -> Vec<PlatformEvent> {
        vec![
            PlatformEvent::WorkerRegistered {
                profile: rich_profile(),
            },
            PlatformEvent::WorkerRegistered {
                profile: WorkerProfile::new(WorkerId(1), "bare"),
            },
            PlatformEvent::ProjectRegistered {
                name: "demo".into(),
                source: "rel a(x: int).\n".into(),
                factors: DesiredFactors {
                    required_language: Some("en".into()),
                    skill_name: None,
                    min_quality: 0.25,
                    min_team: 2,
                    max_team: 5,
                    max_cost: f64::INFINITY,
                    recruitment_secs: 600,
                    require_login: true,
                },
                scheme: Scheme::Hybrid,
                owner: 0,
            },
            PlatformEvent::ProjectRegistered {
                name: "owned".into(),
                source: "rel b(x: int).\n".into(),
                factors: DesiredFactors::default(),
                scheme: Scheme::Sequential,
                owner: 2,
            },
            PlatformEvent::FactSeeded {
                project: ProjectId(3),
                pred: "sentence".into(),
                values: vec!["hello".into(), Value::Null, Value::Int(-4)],
            },
            PlatformEvent::TasksSynced {
                project: ProjectId(3),
            },
            PlatformEvent::CollabTaskCreated {
                project: ProjectId(3),
                description: "subtitle a video".into(),
            },
            PlatformEvent::InterestExpressed {
                worker: WorkerId(1),
                task: TaskId(9),
            },
            PlatformEvent::AssignmentRun { task: TaskId(9) },
            PlatformEvent::Undertaken {
                worker: WorkerId(1),
                task: TaskId(9),
            },
            PlatformEvent::ClockAdvanced {
                to: SimTime(1801),
                owner: 0,
            },
            PlatformEvent::ClockAdvanced {
                to: SimTime(1802),
                owner: 3,
            },
            PlatformEvent::AnswerSubmitted {
                worker: WorkerId(1),
                task: TaskId(10),
                outputs: vec![true.into(), "multi\nline".into()],
            },
            PlatformEvent::TaskCompleted {
                task: TaskId(9),
                quality: 0.875,
            },
            PlatformEvent::ActivityRecorded {
                worker: WorkerId(1),
                task: TaskId(9),
            },
        ]
    }

    #[test]
    fn every_event_round_trips_through_a_journal() {
        let events = all_events();
        let mut journal = EventJournal::new();
        for e in &events {
            let entry = e.encode();
            journal.append(entry.kind, entry.args).unwrap();
        }
        // Through the text format, too.
        let journal = EventJournal::load(&journal.dump()).unwrap();
        let back: Vec<PlatformEvent> = journal
            .iter()
            .map(|e| PlatformEvent::decode(e).unwrap())
            .collect();
        assert_eq!(back, events);
    }

    #[test]
    fn owner_tags_are_backward_compatible() {
        // The global domain (owner 0) encodes with no trailing tag —
        // byte-identical to the pre-ownership format — so old journals
        // decode unchanged and untagged runs keep their journal bytes.
        let global = PlatformEvent::ClockAdvanced {
            to: SimTime(9),
            owner: 0,
        };
        assert_eq!(global.encode().args.len(), 1);
        let owned = PlatformEvent::ClockAdvanced {
            to: SimTime(9),
            owner: 4,
        };
        assert_eq!(owned.encode().args.len(), 2);
        assert_eq!(PlatformEvent::decode(&owned.encode()).unwrap(), owned);
    }

    #[test]
    fn kinds_are_distinct() {
        let events = all_events();
        let mut kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        kinds.dedup(); // consecutive duplicates only (worker appears twice)
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), 12);
        assert!(!kinds.contains(&DRAIN_KIND));
    }

    #[test]
    fn scopes_partition_the_vocabulary() {
        // Every variant classifies; task-scoped ones resolve the project
        // out of the strided task id.
        for e in all_events() {
            match (e.kind(), e.scope()) {
                ("worker", EventScope::Worker) => {}
                ("clock" | "project", EventScope::Global) => {}
                ("seed" | "sync" | "collab", EventScope::Project(p)) => {
                    assert_eq!(p, ProjectId(3));
                }
                (
                    "interest" | "assign" | "undertake" | "answer" | "complete" | "activity",
                    EventScope::Project(p),
                ) => {
                    // Raw TaskId(n) decodes as project 0 (the raw id space).
                    assert_eq!(p, ProjectId(0));
                }
                (kind, scope) => panic!("unexpected scope {scope:?} for kind `{kind}`"),
            }
        }
        let strided = PlatformEvent::AnswerSubmitted {
            worker: WorkerId(1),
            task: TaskId::compose(ProjectId(7), 4),
            outputs: vec![],
        };
        assert_eq!(strided.scope(), EventScope::Project(ProjectId(7)));
    }

    #[test]
    fn malformed_entries_rejected() {
        let cases = [
            JournalEntry::new("mystery", vec![]),
            JournalEntry::new("sync", vec![]), // missing arg
            JournalEntry::new("sync", vec![Value::Int(1)]), // wrong type
            JournalEntry::new("assign", vec![Value::Id(1), Value::Id(2)]), // trailing
            JournalEntry::new("complete", vec![Value::Id(1), Value::Str("x".into())]),
            JournalEntry::new("project", vec![Value::Str("n".into())]), // truncated
            JournalEntry::new(
                "project",
                vec![
                    Value::Str("n".into()),
                    Value::Str("src".into()),
                    Value::Str("waterfall".into()), // unknown scheme
                ],
            ),
            JournalEntry::new("worker", vec![Value::Id(1)]), // truncated profile
            // Owner tag must be an id, not a string.
            JournalEntry::new("clock", vec![Value::Id(5), Value::Str("o".into())]),
        ];
        for entry in cases {
            assert!(
                PlatformEvent::decode(&entry).is_err(),
                "should reject {entry:?}"
            );
        }
    }
}
