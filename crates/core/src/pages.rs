//! Page models: the offline equivalents of the platform's web pages.
//!
//! * [`AdminPage`] — paper Figure 3: per-project administration page with
//!   the constraint entry form, requester feedback and task statistics;
//! * [`UserPage`] — paper Figure 4's surroundings: the worker's view with
//!   eligible tasks, interest toggles and earned points.

use crate::error::{ProjectId, TaskId, WorkerId};
use crate::platform::Crowd4U;
use crate::task::TaskState;
use crowd4u_forms::admin::constraint_form;
use crowd4u_forms::form::Form;
use std::collections::BTreeMap;
use std::fmt;

/// One row of the user page's task list.
#[derive(Debug, Clone, PartialEq)]
pub struct UserTaskEntry {
    pub task: TaskId,
    pub description: String,
    pub interested: bool,
    pub state: &'static str,
}

/// The worker-facing page.
#[derive(Debug, Clone)]
pub struct UserPage {
    pub worker: WorkerId,
    pub worker_name: String,
    pub points: i64,
    pub entries: Vec<UserTaskEntry>,
}

impl fmt::Display for UserPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "── user page: {} ({}) — {} points ──",
            self.worker_name, self.worker, self.points
        )?;
        if self.entries.is_empty() {
            writeln!(f, "no eligible tasks right now")?;
        }
        for e in &self.entries {
            writeln!(
                f,
                "[{}] {} {} — {}",
                if e.interested { "x" } else { " " },
                e.task,
                e.state,
                e.description
            )?;
        }
        Ok(())
    }
}

/// Build a worker's user page from the platform state.
pub fn user_page(
    platform: &Crowd4U,
    worker: WorkerId,
) -> Result<UserPage, crate::error::PlatformError> {
    let profile = platform.workers.get(worker)?;
    let entries = platform
        .visible_tasks(worker)
        .into_iter()
        .map(|t| UserTaskEntry {
            task: t.id,
            description: t.to_string(),
            interested: platform.relations.is_interested(worker, t.id),
            state: t.state.label(),
        })
        .collect();
    Ok(UserPage {
        worker,
        worker_name: profile.name.clone(),
        points: platform.points_of(worker),
        entries,
    })
}

/// The requester-facing administration page.
#[derive(Debug, Clone)]
pub struct AdminPage {
    pub project: ProjectId,
    pub project_name: String,
    /// The constraint entry form (Figure 3), pre-built with the platform's
    /// known skills/languages.
    pub form: Form,
    /// Feedback when assignment was infeasible.
    pub suggestion: Option<String>,
    pub task_counts: BTreeMap<&'static str, usize>,
    pub pending_questions: usize,
    /// Suggested teams awaiting undertakes, with their deadlines.
    pub waiting_teams: usize,
}

impl fmt::Display for AdminPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "── project admin: {} ({}) ──",
            self.project_name, self.project
        )?;
        if let Some(s) = &self.suggestion {
            writeln!(f, "! {s}")?;
        }
        for (state, n) in &self.task_counts {
            writeln!(f, "tasks {state}: {n}")?;
        }
        writeln!(f, "pending crowd questions: {}", self.pending_questions)?;
        writeln!(f, "teams awaiting undertakes: {}", self.waiting_teams)?;
        write!(f, "{}", self.form)
    }
}

/// Build a project's admin page from the platform state.
pub fn admin_page(
    platform: &Crowd4U,
    project: ProjectId,
    skills: &[&str],
    languages: &[&str],
) -> Result<AdminPage, crate::error::PlatformError> {
    let proj = platform.project(project)?;
    let mut task_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut waiting = 0usize;
    for t in platform.pool.iter().filter(|t| t.project == project) {
        *task_counts.entry(t.state.label()).or_insert(0) += 1;
        if matches!(t.state, TaskState::Suggested { .. }) {
            waiting += 1;
        }
    }
    Ok(AdminPage {
        project,
        project_name: proj.name.clone(),
        form: constraint_form(skills, languages),
        suggestion: proj.suggestion.clone(),
        task_counts,
        pending_questions: proj.engine.pending_requests().len(),
        waiting_teams: waiting,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_collab::Scheme;
    use crowd4u_crowd::profile::WorkerProfile;
    use crowd4u_forms::admin::DesiredFactors;

    const SRC: &str = "\
rel sentence(s: str).
open translate(s: str) -> (t: str) points 2.
rel published(s: str, t: str).
published(S, T) :- sentence(S), translate(S, T).
";

    fn setup() -> (Crowd4U, ProjectId) {
        let mut p = Crowd4U::new();
        for i in 1..=3u64 {
            p.register_worker(
                WorkerProfile::new(WorkerId(i), format!("w{i}")).with_native_lang("en"),
            );
        }
        let proj = p
            .register_project("demo", SRC, DesiredFactors::default(), Scheme::Sequential)
            .unwrap();
        p.seed_fact(proj, "sentence", vec!["hello".into()]).unwrap();
        p.sync_tasks(proj).unwrap();
        (p, proj)
    }

    #[test]
    fn user_page_lists_eligible_tasks() {
        let (mut p, _) = setup();
        let page = user_page(&p, WorkerId(1)).unwrap();
        assert_eq!(page.entries.len(), 1);
        assert!(!page.entries[0].interested);
        assert_eq!(page.points, 0);
        let task = page.entries[0].task;
        p.express_interest(WorkerId(1), task).unwrap();
        let page = user_page(&p, WorkerId(1)).unwrap();
        assert!(page.entries[0].interested);
        let text = page.to_string();
        assert!(text.contains("[x]"));
        assert!(text.contains("w1"));
        assert!(user_page(&p, WorkerId(99)).is_err());
    }

    #[test]
    fn user_page_empty_when_nothing_eligible() {
        let mut p = Crowd4U::new();
        p.register_worker(WorkerProfile::new(WorkerId(1), "solo"));
        let page = user_page(&p, WorkerId(1)).unwrap();
        assert!(page.entries.is_empty());
        assert!(page.to_string().contains("no eligible tasks"));
    }

    #[test]
    fn admin_page_reflects_state() {
        let (mut p, proj) = setup();
        let task = p.pool.open_tasks(Some(proj))[0].id;
        p.submit_micro_answer(WorkerId(2), task, vec!["bonjour".into()])
            .unwrap();
        p.sync_tasks(proj).unwrap();
        let page = admin_page(&p, proj, &["translation"], &["en"]).unwrap();
        assert_eq!(page.task_counts.get("completed"), Some(&1));
        assert_eq!(page.pending_questions, 0);
        assert_eq!(page.waiting_teams, 0);
        assert!(page.suggestion.is_none());
        let text = page.to_string();
        assert!(text.contains("project admin: demo"));
        assert!(text.contains("tasks completed: 1"));
        assert!(text.contains("Upper critical mass"));
        assert!(admin_page(&p, ProjectId(99), &[], &[]).is_err());
    }

    #[test]
    fn admin_page_shows_suggestion_on_infeasible() {
        let (mut p, proj) = setup();
        let task = p.create_collab_task(proj, "team work").unwrap();
        p.express_interest(WorkerId(1), task).unwrap();
        // default factors need min 2 interested workers
        let _ = p.run_assignment(task);
        let page = admin_page(&p, proj, &[], &["en"]).unwrap();
        assert!(page.suggestion.is_some());
        assert!(page.to_string().contains("! no team"));
    }
}
