//! Platform-level error type.

use crowd4u_cylog::error::CylogError;
use crowd4u_storage::prelude::StorageError;
use std::fmt;

/// Identifier newtypes used across the platform.
pub use crowd4u_crowd::profile::WorkerId;

/// Unique project identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProjectId(pub u64);

impl fmt::Display for ProjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Unique task identifier.
///
/// Task ids are **project-strided**: the upper bits carry the owning
/// project, the lower bits a per-project sequence number (see
/// [`TaskId::compose`]). Because each project's tasks are numbered by that
/// project's own event order alone, id allocation is deterministic under
/// any partitioning of projects — a shard that owns a project assigns the
/// exact ids a single-threaded platform would, which is what lets the
/// sharded runtime route task-scoped events without a lookup table and
/// keeps merged journals replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

/// Bit position splitting a [`TaskId`] into (project, local sequence).
pub const TASK_PROJECT_SHIFT: u32 = 32;

impl TaskId {
    /// Build the id of the `local`-th task (1-based) of `project`.
    pub fn compose(project: ProjectId, local: u64) -> TaskId {
        debug_assert!(local < (1 << TASK_PROJECT_SHIFT));
        TaskId((project.0 << TASK_PROJECT_SHIFT) | local)
    }

    /// The project encoded in this id ([`ProjectId(0)`](ProjectId) for ids
    /// that never came from a [`crate::task::TaskPool`]).
    pub fn project(self) -> ProjectId {
        ProjectId(self.0 >> TASK_PROJECT_SHIFT)
    }

    /// The per-project sequence number encoded in this id.
    pub fn local(self) -> u64 {
        self.0 & ((1 << TASK_PROJECT_SHIFT) - 1)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.project().0 == 0 {
            write!(f, "t{}", self.0)
        } else {
            write!(f, "t{}.{}", self.project().0, self.local())
        }
    }
}

/// Everything that can go wrong at the platform layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    UnknownWorker(WorkerId),
    UnknownProject(ProjectId),
    UnknownTask(TaskId),
    /// Worker not eligible for the task (precondition of Undertakes, §2.2).
    NotEligible {
        worker: WorkerId,
        task: TaskId,
    },
    /// Worker has not been suggested for this task.
    NotSuggested {
        worker: WorkerId,
        task: TaskId,
    },
    /// Operation invalid in the task's current state.
    BadTaskState {
        task: TaskId,
        state: String,
    },
    /// No team satisfying the desired human factors exists; the requester
    /// should relax the constraints (§2.2.1).
    NoFeasibleTeam {
        task: TaskId,
    },
    /// A journal entry could not be decoded into a [`crate::events::PlatformEvent`].
    BadEvent(String),
    Cylog(CylogError),
    Storage(StorageError),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownWorker(w) => write!(f, "unknown worker {w}"),
            PlatformError::UnknownProject(p) => write!(f, "unknown project {p}"),
            PlatformError::UnknownTask(t) => write!(f, "unknown task {t}"),
            PlatformError::NotEligible { worker, task } => {
                write!(f, "worker {worker} is not eligible for task {task}")
            }
            PlatformError::NotSuggested { worker, task } => {
                write!(f, "worker {worker} was not suggested for task {task}")
            }
            PlatformError::BadTaskState { task, state } => {
                write!(f, "task {task} is in state {state}")
            }
            PlatformError::NoFeasibleTeam { task } => write!(
                f,
                "no team satisfying the desired human factors exists for task {task}; \
                 consider relaxing the constraints"
            ),
            PlatformError::BadEvent(m) => write!(f, "bad event: {m}"),
            PlatformError::Cylog(e) => write!(f, "cylog: {e}"),
            PlatformError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<CylogError> for PlatformError {
    fn from(e: CylogError) -> Self {
        PlatformError::Cylog(e)
    }
}

impl From<StorageError> for PlatformError {
    fn from(e: StorageError) -> Self {
        PlatformError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(ProjectId(3).to_string(), "p3");
        assert_eq!(TaskId(9).to_string(), "t9");
        assert_eq!(TaskId::compose(ProjectId(3), 9).to_string(), "t3.9");
    }

    #[test]
    fn task_ids_are_project_strided() {
        let id = TaskId::compose(ProjectId(7), 42);
        assert_eq!(id.project(), ProjectId(7));
        assert_eq!(id.local(), 42);
        // Raw ids (e.g. hand-written in tests) decode as project 0.
        assert_eq!(TaskId(42).project(), ProjectId(0));
        assert_eq!(TaskId(42).local(), 42);
        // Ordering groups by project, then by allocation order.
        assert!(TaskId::compose(ProjectId(1), 2) < TaskId::compose(ProjectId(2), 1));
        assert!(TaskId::compose(ProjectId(1), 1) < TaskId::compose(ProjectId(1), 2));
    }

    #[test]
    fn errors_display() {
        let cases: Vec<PlatformError> = vec![
            PlatformError::UnknownWorker(WorkerId(1)),
            PlatformError::UnknownProject(ProjectId(1)),
            PlatformError::UnknownTask(TaskId(1)),
            PlatformError::NotEligible {
                worker: WorkerId(1),
                task: TaskId(2),
            },
            PlatformError::NotSuggested {
                worker: WorkerId(1),
                task: TaskId(2),
            },
            PlatformError::BadTaskState {
                task: TaskId(2),
                state: "done".into(),
            },
            PlatformError::NoFeasibleTeam { task: TaskId(2) },
            PlatformError::BadEvent("mystery".into()),
            PlatformError::Cylog(CylogError::Eval("x".into())),
            PlatformError::Storage(StorageError::NoSuchRelation("r".into())),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
