//! Declarative eligibility: Eligible computed *by the CyLog processor*.
//!
//! Paper §2.2: "*Eligible* … is computed by the CyLog processor using the
//! project description and worker human factors. For example, in a project
//! description a task requester may specify that only workers who log in to
//! Crowd4U and speak English as a native language are eligible for their
//! tasks."
//!
//! A project opts in by declaring the conventional predicates below and
//! deriving `eligible(w: id)` with ordinary rules. The platform feeds the
//! worker-factor facts in and reads `eligible` back out:
//!
//! ```text
//! rel worker(w: id).
//! rel worker_online(w: id).
//! rel worker_native(w: id, lang: str).
//! rel worker_fluent(w: id, lang: str, level: float).
//! rel worker_skill(w: id, skill: str, level: float).
//! rel eligible(w: id).
//! eligible(W) :- worker_online(W), worker_native(W, "en").
//! ```
//!
//! Projects without an `eligible` predicate fall back to the built-in
//! screen in [`crate::eligibility`].

use crate::error::{PlatformError, WorkerId};
use crowd4u_crowd::profile::WorkerProfile;
use crowd4u_cylog::engine::CylogEngine;
use crowd4u_storage::prelude::Value;

/// The conventional worker-factor predicates a project may declare.
pub const WORKER_PREDS: [&str; 5] = [
    "worker",
    "worker_online",
    "worker_native",
    "worker_fluent",
    "worker_skill",
];

/// Does the project description compute eligibility declaratively?
pub fn uses_declarative_eligibility(engine: &CylogEngine) -> bool {
    engine
        .program()
        .pred("eligible")
        .is_some_and(|p| engine.program().pred_info(p).derived)
}

/// Push one worker's human factors into the engine as facts. Existing
/// facts for this worker are retracted first, so factor *updates* (e.g.
/// logging out) are reflected on the next evaluation.
pub fn sync_worker_facts(
    engine: &mut CylogEngine,
    profile: &WorkerProfile,
) -> Result<(), PlatformError> {
    let wid = Value::Id(profile.id.0);
    for pred in WORKER_PREDS {
        if engine.program().pred(pred).is_none() {
            continue;
        }
        engine.retract_where(pred, |t| t[0] == wid)?;
    }
    let has = |engine: &CylogEngine, pred: &str| engine.program().pred(pred).is_some();
    if has(engine, "worker") {
        engine.add_fact("worker", vec![wid.clone()])?;
    }
    if has(engine, "worker_online") && profile.factors.logged_in {
        engine.add_fact("worker_online", vec![wid.clone()])?;
    }
    if has(engine, "worker_native") {
        for lang in &profile.factors.native_langs {
            engine.add_fact(
                "worker_native",
                vec![wid.clone(), Value::Str(lang.code().to_owned())],
            )?;
        }
    }
    if has(engine, "worker_fluent") {
        for (lang, level) in &profile.factors.fluency {
            engine.add_fact(
                "worker_fluent",
                vec![
                    wid.clone(),
                    Value::Str(lang.code().to_owned()),
                    Value::Float(*level),
                ],
            )?;
        }
    }
    if has(engine, "worker_skill") {
        for (skill, level) in &profile.factors.skills {
            engine.add_fact(
                "worker_skill",
                vec![wid.clone(), Value::Str(skill.clone()), Value::Float(*level)],
            )?;
        }
    }
    Ok(())
}

/// Read the CyLog-computed eligible set (call after `engine.run()`).
pub fn eligible_workers(engine: &CylogEngine) -> Result<Vec<WorkerId>, PlatformError> {
    let rs = engine.facts("eligible")?;
    let mut out: Vec<WorkerId> = rs
        .rows
        .iter()
        .filter_map(|r| r[0].as_id().map(WorkerId))
        .collect();
    out.sort();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_crowd::profile::WorkerProfile;

    const SRC: &str = "\
rel worker(w: id).
rel worker_online(w: id).
rel worker_native(w: id, lang: str).
rel worker_skill(w: id, skill: str, level: float).
rel eligible(w: id).
eligible(W) :- worker_online(W), worker_native(W, \"en\"), worker_skill(W, \"translation\", L), L >= 0.5.
rel item(x: str).
open label(x: str) -> (y: str).
rel out(x: str, y: str).
out(X, Y) :- item(X), label(X, Y).
";

    fn worker(id: u64, lang: &str, skill: f64, online: bool) -> WorkerProfile {
        let mut p = WorkerProfile::new(WorkerId(id), format!("w{id}"))
            .with_native_lang(lang)
            .with_skill("translation", skill);
        p.factors.logged_in = online;
        p
    }

    #[test]
    fn detects_declarative_projects() {
        let e = CylogEngine::from_source(SRC).unwrap();
        assert!(uses_declarative_eligibility(&e));
        let plain = CylogEngine::from_source("rel item(x: str).\n").unwrap();
        assert!(!uses_declarative_eligibility(&plain));
        // `eligible` as a plain EDB (no rules) does not count.
        let edb_only = CylogEngine::from_source("rel eligible(w: id).\n").unwrap();
        assert!(!uses_declarative_eligibility(&edb_only));
    }

    #[test]
    fn rules_filter_on_factors() {
        let mut e = CylogEngine::from_source(SRC).unwrap();
        sync_worker_facts(&mut e, &worker(1, "en", 0.8, true)).unwrap(); // ok
        sync_worker_facts(&mut e, &worker(2, "ja", 0.8, true)).unwrap(); // lang
        sync_worker_facts(&mut e, &worker(3, "en", 0.2, true)).unwrap(); // skill
        sync_worker_facts(&mut e, &worker(4, "en", 0.8, false)).unwrap(); // offline
        e.run().unwrap();
        assert_eq!(eligible_workers(&e).unwrap(), vec![WorkerId(1)]);
    }

    #[test]
    fn factor_updates_are_reflected() {
        let mut e = CylogEngine::from_source(SRC).unwrap();
        sync_worker_facts(&mut e, &worker(1, "en", 0.8, true)).unwrap();
        e.run().unwrap();
        assert_eq!(eligible_workers(&e).unwrap(), vec![WorkerId(1)]);
        // the worker logs out: facts re-synced, eligibility disappears
        sync_worker_facts(&mut e, &worker(1, "en", 0.8, false)).unwrap();
        e.run().unwrap();
        assert!(eligible_workers(&e).unwrap().is_empty());
        // and back in
        sync_worker_facts(&mut e, &worker(1, "en", 0.8, true)).unwrap();
        e.run().unwrap();
        assert_eq!(eligible_workers(&e).unwrap(), vec![WorkerId(1)]);
    }

    #[test]
    fn partial_predicate_declarations_ok() {
        // A project may declare only the predicates it needs.
        let src = "\
rel worker_online(w: id).
rel eligible(w: id).
eligible(W) :- worker_online(W).
";
        let mut e = CylogEngine::from_source(src).unwrap();
        sync_worker_facts(&mut e, &worker(9, "fr", 0.1, true)).unwrap();
        e.run().unwrap();
        assert_eq!(eligible_workers(&e).unwrap(), vec![WorkerId(9)]);
    }
}
