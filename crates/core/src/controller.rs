//! The task assignment controller (paper Figure 2, step (5)): "chooses a
//! team of workers that satisfies the desired human factors, out of the
//! workers who are eligible and interested in the task."

use crate::error::WorkerId;
use crowd4u_assign::prelude::*;
use crowd4u_collab::Scheme;
use crowd4u_crowd::affinity::AffinityLookup;
use crowd4u_crowd::profile::WorkerProfile;
use crowd4u_forms::admin::DesiredFactors;

/// Which team-formation algorithm the controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlgorithmChoice {
    Exact,
    Greedy,
    #[default]
    LocalSearch,
}

impl AlgorithmChoice {
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmChoice::Exact => "exact",
            AlgorithmChoice::Greedy => "greedy",
            AlgorithmChoice::LocalSearch => "local-search",
        }
    }
}

/// The assignment controller configuration.
///
/// The paper's conclusion stresses that the "extensible architecture can
/// easily be leveraged to incorporate … other task assignment algorithms":
/// any [`TeamFormation`] implementation can be plugged in via
/// [`use_custom`](Self::use_custom) and takes precedence over the built-in
/// choice.
#[derive(Default)]
pub struct AssignmentController {
    pub algorithm: AlgorithmChoice,
    custom: Option<Box<dyn TeamFormation + Send + Sync>>,
}

impl std::fmt::Debug for AssignmentController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AssignmentController")
            .field("algorithm", &self.algorithm)
            .field("custom", &self.custom.as_ref().map(|c| c.name()))
            .finish()
    }
}

/// Convert requester factors to optimiser constraints.
pub fn constraints_from_factors(factors: &DesiredFactors) -> TeamConstraints {
    TeamConstraints {
        min_size: factors.min_team,
        max_size: factors.max_team,
        min_quality: if factors.skill_name.is_some() {
            factors.min_quality
        } else {
            0.0
        },
        max_cost: factors.max_cost,
    }
}

/// Build optimiser candidates from worker profiles for a skill dimension.
pub fn candidates_from_profiles(
    profiles: &[&WorkerProfile],
    skill: Option<&str>,
) -> Vec<Candidate> {
    profiles
        .iter()
        .map(|p| {
            let s = match skill {
                Some(name) => p.factors.skill(name),
                None => 1.0, // no skill dimension: everyone fully qualified
            };
            Candidate::new(p.id, s, p.cost)
        })
        .collect()
}

impl AssignmentController {
    pub fn with_algorithm(algorithm: AlgorithmChoice) -> AssignmentController {
        AssignmentController {
            algorithm,
            custom: None,
        }
    }

    /// Install a custom team-formation algorithm (takes precedence).
    pub fn use_custom(&mut self, alg: Box<dyn TeamFormation + Send + Sync>) {
        self.custom = Some(alg);
    }

    /// Remove a previously installed custom algorithm.
    pub fn clear_custom(&mut self) {
        self.custom = None;
    }

    /// Name of the algorithm currently in effect.
    pub fn active_name(&self) -> &'static str {
        match &self.custom {
            Some(c) => c.name(),
            None => self.algorithm.name(),
        }
    }

    /// Run the configured algorithm. Per §2.2, the algorithm is adapted to
    /// the collaboration scheme: sequential/simultaneous/hybrid tasks get a
    /// single cohesive group (parallel *decomposable* tasks go through
    /// [`split_teams`](Self::split_teams) instead).
    pub fn suggest_team(
        &self,
        candidates: &[Candidate],
        affinity: &dyn AffinityLookup,
        constraints: &TeamConstraints,
    ) -> Option<Team> {
        if let Some(custom) = &self.custom {
            return custom.form(candidates, affinity, constraints);
        }
        match self.algorithm {
            AlgorithmChoice::Exact => ExactBB::default().form(candidates, affinity, constraints),
            AlgorithmChoice::Greedy => GreedyAff::default().form(candidates, affinity, constraints),
            AlgorithmChoice::LocalSearch => {
                LocalSearch::default().form(candidates, affinity, constraints)
            }
        }
    }

    /// Decomposable parallel tasks: one group per sub-task (Grp&Split).
    pub fn split_teams(
        &self,
        candidates: &[Candidate],
        affinity: &dyn AffinityLookup,
        constraints: &TeamConstraints,
        n_subtasks: usize,
    ) -> Option<SplitAssignment> {
        GrpSplit::new(n_subtasks).split(candidates, affinity, constraints)
    }

    /// Scheme-aware entry point: sequential/hybrid always use one group;
    /// simultaneous tasks with `sections > 1` decompose.
    pub fn assign_for_scheme(
        &self,
        scheme: Scheme,
        sections: usize,
        candidates: &[Candidate],
        affinity: &dyn AffinityLookup,
        constraints: &TeamConstraints,
    ) -> Option<Vec<Team>> {
        match scheme {
            Scheme::Sequential | Scheme::Hybrid => self
                .suggest_team(candidates, affinity, constraints)
                .map(|t| vec![t]),
            Scheme::Simultaneous => {
                if sections <= 1 {
                    self.suggest_team(candidates, affinity, constraints)
                        .map(|t| vec![t])
                } else {
                    self.split_teams(candidates, affinity, constraints, sections)
                        .map(|s| s.groups)
                }
            }
        }
    }
}

/// Workers in `team` that did not undertake by the deadline (they are
/// excluded from the retry, §2.2.1).
pub fn non_committers(team: &[WorkerId], undertaken: &[WorkerId]) -> Vec<WorkerId> {
    team.iter()
        .copied()
        .filter(|w| !undertaken.contains(w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_crowd::affinity::AffinityMatrix;

    fn profiles() -> Vec<WorkerProfile> {
        (0..8u64)
            .map(|i| {
                WorkerProfile::new(WorkerId(i), format!("w{i}"))
                    .with_skill("journalism", 0.4 + 0.05 * i as f64)
            })
            .collect()
    }

    fn affinity(ids: &[WorkerId]) -> AffinityMatrix {
        let mut m = AffinityMatrix::new(ids.to_vec());
        for (i, a) in ids.iter().enumerate() {
            for b in ids.iter().skip(i + 1) {
                m.set(*a, *b, ((a.0 + b.0) % 7) as f64 / 7.0);
            }
        }
        m
    }

    #[test]
    fn constraints_conversion() {
        let mut f = DesiredFactors {
            skill_name: Some("journalism".into()),
            min_quality: 0.5,
            min_team: 2,
            max_team: 4,
            max_cost: 9.0,
            ..Default::default()
        };
        let c = constraints_from_factors(&f);
        assert_eq!(c.min_size, 2);
        assert_eq!(c.max_size, 4);
        assert_eq!(c.min_quality, 0.5);
        assert_eq!(c.max_cost, 9.0);
        // without a skill dimension the quality bound is moot
        f.skill_name = None;
        assert_eq!(constraints_from_factors(&f).min_quality, 0.0);
    }

    #[test]
    fn candidates_use_skill_or_default() {
        let ps = profiles();
        let refs: Vec<&WorkerProfile> = ps.iter().collect();
        let with = candidates_from_profiles(&refs, Some("journalism"));
        assert!((with[2].skill - 0.5).abs() < 1e-12);
        let without = candidates_from_profiles(&refs, None);
        assert!(without.iter().all(|c| c.skill == 1.0));
    }

    #[test]
    fn all_algorithms_produce_feasible_teams() {
        let ps = profiles();
        let refs: Vec<&WorkerProfile> = ps.iter().collect();
        let cands = candidates_from_profiles(&refs, Some("journalism"));
        let ids: Vec<WorkerId> = cands.iter().map(|c| c.id).collect();
        let aff = affinity(&ids);
        let constraints = TeamConstraints::sized(2, 4).with_quality(0.45);
        for alg in [
            AlgorithmChoice::Exact,
            AlgorithmChoice::Greedy,
            AlgorithmChoice::LocalSearch,
        ] {
            let c = AssignmentController::with_algorithm(alg);
            let t = c.suggest_team(&cands, &aff, &constraints).unwrap();
            assert!(validate_team(&t, &cands, &constraints), "{}", alg.name());
        }
    }

    #[test]
    fn scheme_dispatch() {
        let ps = profiles();
        let refs: Vec<&WorkerProfile> = ps.iter().collect();
        let cands = candidates_from_profiles(&refs, None);
        let ids: Vec<WorkerId> = cands.iter().map(|c| c.id).collect();
        let aff = affinity(&ids);
        let constraints = TeamConstraints::sized(2, 4);
        let c = AssignmentController::default();
        // sequential: one team
        let seq = c
            .assign_for_scheme(Scheme::Sequential, 1, &cands, &aff, &constraints)
            .unwrap();
        assert_eq!(seq.len(), 1);
        // simultaneous with 2 sections: two teams
        let sim = c
            .assign_for_scheme(Scheme::Simultaneous, 2, &cands, &aff, &constraints)
            .unwrap();
        assert_eq!(sim.len(), 2);
        // simultaneous single section: one team
        let sim1 = c
            .assign_for_scheme(Scheme::Simultaneous, 1, &cands, &aff, &constraints)
            .unwrap();
        assert_eq!(sim1.len(), 1);
        // hybrid: one team
        let hy = c
            .assign_for_scheme(Scheme::Hybrid, 3, &cands, &aff, &constraints)
            .unwrap();
        assert_eq!(hy.len(), 1);
    }

    #[test]
    fn infeasible_returns_none() {
        let ps = profiles();
        let refs: Vec<&WorkerProfile> = ps.iter().collect();
        let cands = candidates_from_profiles(&refs, Some("journalism"));
        let ids: Vec<WorkerId> = cands.iter().map(|c| c.id).collect();
        let aff = affinity(&ids);
        let constraints = TeamConstraints::sized(2, 4).with_quality(0.99);
        let c = AssignmentController::default();
        assert!(c.suggest_team(&cands, &aff, &constraints).is_none());
    }

    #[test]
    fn non_committers_diff() {
        let team = vec![WorkerId(1), WorkerId(2), WorkerId(3)];
        let undertaken = vec![WorkerId(2)];
        assert_eq!(
            non_committers(&team, &undertaken),
            vec![WorkerId(1), WorkerId(3)]
        );
        assert!(non_committers(&team, &team).is_empty());
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(AlgorithmChoice::Exact.name(), "exact");
        assert_eq!(AlgorithmChoice::Greedy.name(), "greedy");
        assert_eq!(AlgorithmChoice::default().name(), "local-search");
    }

    /// A custom algorithm plugged in behind the extensibility hook: always
    /// picks the `min_size` highest-skill workers, ignoring affinity.
    struct SkillFirst;

    impl crowd4u_assign::types::TeamFormation for SkillFirst {
        fn name(&self) -> &'static str {
            "skill-first"
        }

        fn form(
            &self,
            cands: &[Candidate],
            aff: &dyn AffinityLookup,
            constraints: &TeamConstraints,
        ) -> Option<Team> {
            if cands.len() < constraints.min_size {
                return None;
            }
            let mut sorted: Vec<&Candidate> = cands.iter().collect();
            sorted.sort_by(|a, b| b.skill.total_cmp(&a.skill));
            let members = sorted[..constraints.min_size]
                .iter()
                .map(|c| c.id)
                .collect();
            Some(Team::assemble(members, cands, aff))
        }
    }

    #[test]
    fn custom_algorithm_takes_precedence() {
        let ps = profiles();
        let refs: Vec<&WorkerProfile> = ps.iter().collect();
        let cands = candidates_from_profiles(&refs, Some("journalism"));
        let ids: Vec<WorkerId> = cands.iter().map(|c| c.id).collect();
        let aff = affinity(&ids);
        let constraints = TeamConstraints::sized(2, 4);
        let mut c = AssignmentController::default();
        assert_eq!(c.active_name(), "local-search");
        c.use_custom(Box::new(SkillFirst));
        assert_eq!(c.active_name(), "skill-first");
        let t = c.suggest_team(&cands, &aff, &constraints).unwrap();
        // skill-first picks the two highest-skill workers (ids 7 and 6)
        let mut members = t.members.clone();
        members.sort();
        assert_eq!(members, vec![WorkerId(6), WorkerId(7)]);
        assert!(format!("{c:?}").contains("skill-first"));
        c.clear_custom();
        assert_eq!(c.active_name(), "local-search");
    }
}
