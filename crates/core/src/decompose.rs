//! Task decomposition.
//!
//! Paper §2.1: "Crowd4U can use **any** task decomposition algorithm to
//! break a complex task into micro-tasks." This module provides the
//! pluggable abstraction plus the decomposers the demo scenarios need:
//! splitting text into sentences (subtitle translation), splitting a
//! document outline into sections (journalism), and fixed-size chunking
//! (generic batches).

use std::fmt;

/// A piece of a complex task, ready to become one micro-task seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Piece {
    /// 0-based position within the complex task.
    pub index: usize,
    /// The content of the piece (sentence, section title, chunk…).
    pub content: String,
}

/// A pluggable decomposition algorithm.
pub trait Decomposer {
    fn name(&self) -> &'static str;

    /// Break the input into pieces. Empty inputs yield no pieces.
    fn decompose(&self, input: &str) -> Vec<Piece>;
}

/// Split on sentence terminators (`.`, `!`, `?`, `。`), trimming whitespace
/// — the decomposition behind subtitle generation/translation.
#[derive(Debug, Clone, Default)]
pub struct SentenceSplitter;

impl Decomposer for SentenceSplitter {
    fn name(&self) -> &'static str {
        "sentence-splitter"
    }

    fn decompose(&self, input: &str) -> Vec<Piece> {
        let mut pieces = Vec::new();
        let mut current = String::new();
        for c in input.chars() {
            current.push(c);
            if matches!(c, '.' | '!' | '?' | '。') {
                let s = current.trim();
                if !s.is_empty() {
                    pieces.push(Piece {
                        index: pieces.len(),
                        content: s.to_owned(),
                    });
                }
                current.clear();
            }
        }
        let tail = current.trim();
        if !tail.is_empty() {
            pieces.push(Piece {
                index: pieces.len(),
                content: tail.to_owned(),
            });
        }
        pieces
    }
}

/// Split an outline (one section per line, blank lines ignored) — the
/// decomposition for documents drafted in parallel (§2.2: "independent
/// sections of a document to draft together").
#[derive(Debug, Clone, Default)]
pub struct OutlineSplitter;

impl Decomposer for OutlineSplitter {
    fn name(&self) -> &'static str {
        "outline-splitter"
    }

    fn decompose(&self, input: &str) -> Vec<Piece> {
        input
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .enumerate()
            .map(|(index, l)| Piece {
                index,
                content: l.to_owned(),
            })
            .collect()
    }
}

/// Fixed-size whitespace-token chunking for uniform batches.
#[derive(Debug, Clone)]
pub struct ChunkSplitter {
    pub tokens_per_chunk: usize,
}

impl ChunkSplitter {
    pub fn new(tokens_per_chunk: usize) -> ChunkSplitter {
        ChunkSplitter {
            tokens_per_chunk: tokens_per_chunk.max(1),
        }
    }
}

impl Decomposer for ChunkSplitter {
    fn name(&self) -> &'static str {
        "chunk-splitter"
    }

    fn decompose(&self, input: &str) -> Vec<Piece> {
        let tokens: Vec<&str> = input.split_whitespace().collect();
        tokens
            .chunks(self.tokens_per_chunk)
            .enumerate()
            .map(|(index, c)| Piece {
                index,
                content: c.join(" "),
            })
            .collect()
    }
}

impl fmt::Display for Piece {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.index, self.content)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentences_split_and_trim() {
        let d = SentenceSplitter;
        let pieces = d.decompose("Hello there. How are you?  Fine! 了解。trailing");
        let texts: Vec<&str> = pieces.iter().map(|p| p.content.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "Hello there.",
                "How are you?",
                "Fine!",
                "了解。",
                "trailing"
            ]
        );
        assert_eq!(pieces[2].index, 2);
        assert!(d.decompose("").is_empty());
        assert!(d.decompose("   ").is_empty());
        assert_eq!(d.name(), "sentence-splitter");
    }

    #[test]
    fn outline_splits_lines() {
        let d = OutlineSplitter;
        let pieces = d.decompose("intro\n\n  body \nconclusion\n");
        assert_eq!(pieces.len(), 3);
        assert_eq!(pieces[1].content, "body");
        assert_eq!(pieces[2].index, 2);
        assert!(d.decompose("\n\n").is_empty());
    }

    #[test]
    fn chunks_are_fixed_size() {
        let d = ChunkSplitter::new(3);
        let pieces = d.decompose("a b c d e f g");
        assert_eq!(pieces.len(), 3);
        assert_eq!(pieces[0].content, "a b c");
        assert_eq!(pieces[2].content, "g");
        // zero clamps to one
        let d = ChunkSplitter::new(0);
        assert_eq!(d.decompose("x y").len(), 2);
    }

    #[test]
    fn pieces_display() {
        let p = Piece {
            index: 4,
            content: "text".into(),
        };
        assert_eq!(p.to_string(), "[4] text");
    }

    #[test]
    fn decomposers_are_object_safe() {
        // "Crowd4U can use any task decomposition algorithm": the trait is
        // pluggable behind a dyn reference.
        let all: Vec<Box<dyn Decomposer>> = vec![
            Box::new(SentenceSplitter),
            Box::new(OutlineSplitter),
            Box::new(ChunkSplitter::new(5)),
        ];
        for d in &all {
            assert!(!d.name().is_empty());
            let _ = d.decompose("one two. three");
        }
    }
}
