//! The Crowd4U platform facade: projects, task generation, the five-step
//! assignment workflow of §2.2.1, deadline-driven re-assignment, and task
//! completion bookkeeping.

use crate::controller::{
    candidates_from_profiles, constraints_from_factors, non_committers, AssignmentController,
};
use crate::eligibility;
use crate::error::{PlatformError, ProjectId, TaskId, WorkerId};
use crate::relations::RelationStore;
use crate::task::{Task, TaskBody, TaskPool, TaskState};
use crate::workers::WorkerManager;
use crowd4u_assign::prelude::Team;
use crowd4u_collab::Scheme;
use crowd4u_cylog::engine::CylogEngine;
use crowd4u_forms::admin::DesiredFactors;
use crowd4u_sim::stats::Counters;
use crowd4u_sim::time::{SimDuration, SimTime};
use crowd4u_storage::prelude::Value;
use std::collections::BTreeMap;

/// A registered project: declarative description + desired human factors.
pub struct Project {
    pub id: ProjectId,
    pub name: String,
    /// The CyLog processor instance for this project's description.
    pub engine: CylogEngine,
    pub factors: DesiredFactors,
    pub scheme: Scheme,
    /// Feedback to the requester when no feasible team exists (§2.2.1:
    /// "Crowd4U suggests to the requester to update her input").
    pub suggestion: Option<String>,
}

/// The platform.
pub struct Crowd4U {
    now: SimTime,
    pub workers: WorkerManager,
    pub relations: RelationStore,
    pub pool: TaskPool,
    projects: BTreeMap<ProjectId, Project>,
    next_project: u64,
    pub controller: AssignmentController,
    pub counters: Counters,
    /// Give up on a collaborative task after this many missed deadlines.
    pub max_reassignments: u32,
}

impl Default for Crowd4U {
    fn default() -> Self {
        Crowd4U {
            now: SimTime::ZERO,
            workers: WorkerManager::new(),
            relations: RelationStore::new(),
            pool: TaskPool::new(),
            projects: BTreeMap::new(),
            next_project: 0,
            controller: AssignmentController::default(),
            counters: Counters::new(),
            max_reassignments: 3,
        }
    }
}

impl Crowd4U {
    pub fn new() -> Crowd4U {
        Crowd4U::default()
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Move the platform clock forward, processing any expired recruitment
    /// deadlines (workflow step: "unless all suggested workers start … by
    /// the specified deadline, task assignment is re-executed").
    pub fn advance_to(&mut self, t: SimTime) -> Result<(), PlatformError> {
        if t > self.now {
            self.now = t;
        }
        self.process_deadlines()
    }

    // ---- workers ----

    pub fn register_worker(&mut self, profile: crowd4u_crowd::profile::WorkerProfile) {
        self.counters.incr("workers_registered");
        self.workers.register(profile);
        // New workers become eligible for existing open tasks they qualify
        // for; eligibility is computed once per project touching open tasks.
        let mut projects: Vec<ProjectId> = self
            .pool
            .open_tasks(None)
            .iter()
            .map(|t| t.project)
            .collect();
        projects.sort();
        projects.dedup();
        for project in projects {
            let _ = self.refresh_project_eligibility(project);
        }
    }

    /// The workers eligible for a project's tasks. Projects whose CyLog
    /// description derives `eligible(w: id)` get the declarative path
    /// (§2.2: Eligible "is computed by the CyLog processor"); all others
    /// use the built-in human-factor screen.
    pub fn eligible_set(&mut self, project: ProjectId) -> Result<Vec<WorkerId>, PlatformError> {
        let profiles: Vec<crowd4u_crowd::profile::WorkerProfile> =
            self.workers.profiles().cloned().collect();
        let proj = self
            .projects
            .get_mut(&project)
            .ok_or(PlatformError::UnknownProject(project))?;
        if crate::declarative::uses_declarative_eligibility(&proj.engine) {
            for p in &profiles {
                crate::declarative::sync_worker_facts(&mut proj.engine, p)?;
            }
            proj.engine.run()?;
            crate::declarative::eligible_workers(&proj.engine)
        } else {
            Ok(profiles
                .iter()
                .filter(|p| eligibility::is_eligible(p, &proj.factors))
                .map(|p| p.id)
                .collect())
        }
    }

    /// Recompute the Eligible relation for every open task of a project.
    fn refresh_project_eligibility(&mut self, project: ProjectId) -> Result<(), PlatformError> {
        let eligible = self.eligible_set(project)?;
        let tasks: Vec<TaskId> = self
            .pool
            .open_tasks(Some(project))
            .iter()
            .map(|t| t.id)
            .collect();
        for task in tasks {
            for &w in &eligible {
                self.relations.mark_eligible(w, task)?;
            }
        }
        Ok(())
    }

    // ---- projects ----

    /// Register a project: its CyLog description is compiled and an admin
    /// page (constraint form) becomes available.
    pub fn register_project(
        &mut self,
        name: impl Into<String>,
        cylog_source: &str,
        factors: DesiredFactors,
        scheme: Scheme,
    ) -> Result<ProjectId, PlatformError> {
        let engine = CylogEngine::from_source(cylog_source)?;
        self.next_project += 1;
        let id = ProjectId(self.next_project);
        self.projects.insert(
            id,
            Project {
                id,
                name: name.into(),
                engine,
                factors,
                scheme,
                suggestion: None,
            },
        );
        self.counters.incr("projects_registered");
        Ok(id)
    }

    pub fn project(&self, id: ProjectId) -> Result<&Project, PlatformError> {
        self.projects
            .get(&id)
            .ok_or(PlatformError::UnknownProject(id))
    }

    pub fn project_mut(&mut self, id: ProjectId) -> Result<&mut Project, PlatformError> {
        self.projects
            .get_mut(&id)
            .ok_or(PlatformError::UnknownProject(id))
    }

    pub fn project_ids(&self) -> Vec<ProjectId> {
        self.projects.keys().copied().collect()
    }

    /// Add a base fact to a project's CyLog database.
    pub fn seed_fact(
        &mut self,
        project: ProjectId,
        pred: &str,
        values: Vec<Value>,
    ) -> Result<bool, PlatformError> {
        Ok(self.project_mut(project)?.engine.add_fact(pred, values)?)
    }

    /// Run the project's CyLog rules and register a micro-task for every
    /// new open question. Returns the number of new tasks. Eligibility for
    /// the new tasks is computed for all registered workers.
    pub fn sync_tasks(&mut self, project: ProjectId) -> Result<usize, PlatformError> {
        let now = self.now;
        let proj = self
            .projects
            .get_mut(&project)
            .ok_or(PlatformError::UnknownProject(project))?;
        proj.engine.run()?;
        let requests: Vec<(String, Vec<Value>, i64)> = proj
            .engine
            .pending_requests()
            .iter()
            .map(|r| (r.pred_name.clone(), r.inputs.clone(), r.points))
            .collect();
        let mut new_tasks = Vec::new();
        for (pred, inputs, points) in requests {
            if self.pool.find_micro(&pred, &inputs).is_none() {
                let id = self.pool.register(
                    project,
                    TaskBody::Micro {
                        predicate: pred,
                        inputs,
                        points,
                    },
                    now,
                );
                new_tasks.push(id);
            }
        }
        self.counters
            .add("micro_tasks_generated", new_tasks.len() as u64);
        if !new_tasks.is_empty() {
            let eligible = self.eligible_set(project)?;
            for task in &new_tasks {
                for &w in &eligible {
                    self.relations.mark_eligible(w, *task)?;
                }
            }
        }
        Ok(new_tasks.len())
    }

    /// Create a collaborative (team) task for a project.
    pub fn create_collab_task(
        &mut self,
        project: ProjectId,
        description: impl Into<String>,
    ) -> Result<TaskId, PlatformError> {
        let proj = self.project(project)?;
        let body = TaskBody::Collaborative {
            scheme: proj.scheme,
            description: description.into(),
            skill: proj.factors.skill_name.clone(),
        };
        let id = self.pool.register(project, body, self.now);
        self.counters.incr("collab_tasks_created");
        let eligible = self.eligible_set(project)?;
        for w in eligible {
            self.relations.mark_eligible(w, id)?;
        }
        Ok(id)
    }

    // ---- workflow steps (3)–(5) ----

    /// Step (3): a worker declares interest in an eligible task.
    pub fn express_interest(
        &mut self,
        worker: WorkerId,
        task: TaskId,
    ) -> Result<(), PlatformError> {
        self.workers.get(worker)?;
        self.pool.get(task)?;
        self.relations.express_interest(worker, task)?;
        self.counters.incr("interest_expressed");
        Ok(())
    }

    /// Steps (4)+(5): form a team from eligible∩interested workers and
    /// suggest it. The task enters `Suggested` with a recruitment deadline.
    pub fn run_assignment(&mut self, task: TaskId) -> Result<Team, PlatformError> {
        let t = self.pool.get(task)?;
        if !matches!(t.state, TaskState::Open) {
            return Err(PlatformError::BadTaskState {
                task,
                state: t.state.label().into(),
            });
        }
        let project = t.project;
        let skill = match &t.body {
            TaskBody::Collaborative { skill, .. } => skill.clone(),
            TaskBody::Micro { .. } => None,
        };
        let factors = self.project(project)?.factors.clone();
        // Eligible ∩ interested, minus workers excluded by earlier retries.
        let interested = self.relations.interested_workers(task);
        let eligible: Vec<WorkerId> = interested
            .into_iter()
            .filter(|w| self.relations.is_eligible(*w, task))
            .collect();
        let profiles: Vec<&crowd4u_crowd::profile::WorkerProfile> = eligible
            .iter()
            .filter_map(|w| self.workers.get(*w).ok())
            .collect();
        let candidates = candidates_from_profiles(&profiles, skill.as_deref());
        let constraints = constraints_from_factors(&factors);
        let affinity = self.workers.affinity().clone();
        let team = self
            .controller
            .suggest_team(&candidates, &affinity, &constraints);
        match team {
            Some(team) => {
                let deadline = self.now + SimDuration::secs(factors.recruitment_secs);
                self.pool.get_mut(task)?.state = TaskState::Suggested {
                    team: team.members.clone(),
                    deadline,
                    undertaken: Vec::new(),
                };
                self.counters.incr("teams_suggested");
                self.project_mut(project)?.suggestion = None;
                Ok(team)
            }
            None => {
                self.counters.incr("assignment_infeasible");
                self.project_mut(project)?.suggestion = Some(format!(
                    "no team of {}–{} workers with the desired human factors is available \
                     for task {task}; consider relaxing the constraints",
                    factors.min_team, factors.max_team
                ));
                Err(PlatformError::NoFeasibleTeam { task })
            }
        }
    }

    /// A suggested worker confirms they start the task. When the whole team
    /// has confirmed, the task moves to `InProgress`.
    pub fn undertake(&mut self, worker: WorkerId, task: TaskId) -> Result<(), PlatformError> {
        // Eligibility precondition enforced by the relation store.
        self.relations.undertake(worker, task)?;
        let t = self.pool.get_mut(task)?;
        let TaskState::Suggested {
            team, undertaken, ..
        } = &mut t.state
        else {
            return Err(PlatformError::BadTaskState {
                task,
                state: t.state.label().into(),
            });
        };
        if !team.contains(&worker) {
            return Err(PlatformError::NotSuggested { worker, task });
        }
        if !undertaken.contains(&worker) {
            undertaken.push(worker);
        }
        if undertaken.len() == team.len() {
            let members = team.clone();
            t.state = TaskState::InProgress { team: members };
            self.counters.incr("teams_started");
        }
        Ok(())
    }

    /// Deadline sweep: re-execute assignment for suggested tasks whose
    /// deadline passed without the full team undertaking. Non-committers
    /// lose their interest; after `max_reassignments` misses the task is
    /// abandoned.
    pub fn process_deadlines(&mut self) -> Result<(), PlatformError> {
        let now = self.now;
        let expired: Vec<TaskId> = self
            .pool
            .iter()
            .filter_map(|t| match &t.state {
                TaskState::Suggested {
                    deadline,
                    team,
                    undertaken,
                } if *deadline <= now && undertaken.len() < team.len() => Some(t.id),
                _ => None,
            })
            .collect();
        for task in expired {
            let (team, undertaken) = match &self.pool.get(task)?.state {
                TaskState::Suggested {
                    team, undertaken, ..
                } => (team.clone(), undertaken.clone()),
                _ => continue,
            };
            for w in non_committers(&team, &undertaken) {
                self.relations.withdraw_interest(w, task)?;
            }
            self.counters.incr("deadlines_missed");
            let t = self.pool.get_mut(task)?;
            t.reassignments += 1;
            if t.reassignments > self.max_reassignments {
                t.state = TaskState::Abandoned {
                    reason: "no team undertook before the deadline".into(),
                };
                self.relations.clear_task(task)?;
                self.counters.incr("tasks_abandoned");
                continue;
            }
            t.state = TaskState::Open;
            // Re-execute assignment immediately; infeasibility leaves the
            // task open with a suggestion recorded for the requester.
            let _ = self.run_assignment(task);
        }
        Ok(())
    }

    // ---- completion ----

    /// A worker answers a micro-task directly (micro-tasks are performed by
    /// one worker; no team formation).
    pub fn submit_micro_answer(
        &mut self,
        worker: WorkerId,
        task: TaskId,
        outputs: Vec<Value>,
    ) -> Result<(), PlatformError> {
        if !self.relations.is_eligible(worker, task) {
            return Err(PlatformError::NotEligible { worker, task });
        }
        let t = self.pool.get(task)?;
        let TaskBody::Micro {
            predicate, inputs, ..
        } = &t.body
        else {
            return Err(PlatformError::BadTaskState {
                task,
                state: "not a micro task".into(),
            });
        };
        if !matches!(t.state, TaskState::Open) {
            return Err(PlatformError::BadTaskState {
                task,
                state: t.state.label().into(),
            });
        }
        let project = t.project;
        let (predicate, inputs) = (predicate.clone(), inputs.clone());
        self.project_mut(project)?
            .engine
            .answer(&predicate, inputs, outputs, Some(worker.0))?;
        self.pool.get_mut(task)?.state = TaskState::Completed { team: vec![worker] };
        self.relations.clear_task(task)?;
        self.counters.incr("micro_tasks_completed");
        Ok(())
    }

    /// Record completion of a collaborative task with an observed quality;
    /// the outcome feeds the skill estimator.
    pub fn complete_collab_task(
        &mut self,
        task: TaskId,
        quality: f64,
    ) -> Result<(), PlatformError> {
        let t = self.pool.get_mut(task)?;
        let TaskState::InProgress { team } = &t.state else {
            return Err(PlatformError::BadTaskState {
                task,
                state: t.state.label().into(),
            });
        };
        let members = team.clone();
        t.state = TaskState::Completed {
            team: members.clone(),
        };
        self.workers.record_outcome(members, quality);
        self.relations.clear_task(task)?;
        self.counters.incr("collab_tasks_completed");
        Ok(())
    }

    /// Worker's accumulated points across all projects (game aspect).
    pub fn points_of(&self, worker: WorkerId) -> i64 {
        self.projects
            .values()
            .map(|p| p.engine.points_of(worker.0))
            .sum()
    }

    /// Tasks (ids) a worker may currently see on their user page.
    pub fn visible_tasks(&self, worker: WorkerId) -> Vec<&Task> {
        self.relations
            .eligible_tasks(worker)
            .into_iter()
            .filter_map(|t| self.pool.get(t).ok())
            .filter(|t| matches!(t.state, TaskState::Open | TaskState::Suggested { .. }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_crowd::profile::WorkerProfile;

    const SRC: &str = "\
rel sentence(s: str).
open translate(s: str) -> (t: str) points 2.
rel published(s: str, t: str).
published(S, T) :- sentence(S), translate(S, T).
";

    fn factors() -> DesiredFactors {
        DesiredFactors {
            min_team: 2,
            max_team: 3,
            recruitment_secs: 600,
            ..Default::default()
        }
    }

    fn platform_with_workers(n: u64) -> Crowd4U {
        let mut p = Crowd4U::new();
        for i in 1..=n {
            p.register_worker(
                WorkerProfile::new(WorkerId(i), format!("w{i}")).with_native_lang("en"),
            );
        }
        p
    }

    #[test]
    fn micro_task_generation_and_answer() {
        let mut p = platform_with_workers(2);
        let proj = p
            .register_project("demo", SRC, factors(), Scheme::Sequential)
            .unwrap();
        p.seed_fact(proj, "sentence", vec!["hello".into()]).unwrap();
        let n = p.sync_tasks(proj).unwrap();
        assert_eq!(n, 1);
        // same demand is not re-registered
        assert_eq!(p.sync_tasks(proj).unwrap(), 0);
        let task = p.pool.open_tasks(Some(proj))[0].id;
        // both workers are eligible (no constraints beyond login)
        assert!(p.relations.is_eligible(WorkerId(1), task));
        p.submit_micro_answer(WorkerId(1), task, vec!["bonjour".into()])
            .unwrap();
        p.sync_tasks(proj).unwrap();
        assert_eq!(
            p.project(proj)
                .unwrap()
                .engine
                .fact_count("published")
                .unwrap(),
            1
        );
        assert_eq!(p.points_of(WorkerId(1)), 2);
        // answered task is completed; answering again fails
        assert!(p
            .submit_micro_answer(WorkerId(2), task, vec!["salut".into()])
            .is_err());
    }

    #[test]
    fn five_step_workflow() {
        let mut p = platform_with_workers(4);
        let proj = p
            .register_project("collab", SRC, factors(), Scheme::Sequential)
            .unwrap();
        let task = p.create_collab_task(proj, "subtitle a video").unwrap();
        // step 3: interest
        for i in 1..=3 {
            p.express_interest(WorkerId(i), task).unwrap();
        }
        // step 5: suggestion
        let team = p.run_assignment(task).unwrap();
        assert!(team.size() >= 2 && team.size() <= 3);
        // undertaking moves to in-progress when everyone confirms
        for &m in &team.members {
            p.undertake(m, task).unwrap();
        }
        assert_eq!(p.pool.get(task).unwrap().state.label(), "in-progress");
        p.complete_collab_task(task, 0.8).unwrap();
        assert_eq!(p.pool.get(task).unwrap().state.label(), "completed");
        assert_eq!(p.workers.history_len(), 1);
        assert_eq!(p.counters.get("teams_suggested"), 1);
        assert_eq!(p.counters.get("teams_started"), 1);
    }

    #[test]
    fn uninterested_workers_not_suggested() {
        let mut p = platform_with_workers(5);
        let proj = p
            .register_project("c", SRC, factors(), Scheme::Sequential)
            .unwrap();
        let task = p.create_collab_task(proj, "x").unwrap();
        p.express_interest(WorkerId(1), task).unwrap();
        p.express_interest(WorkerId(2), task).unwrap();
        let team = p.run_assignment(task).unwrap();
        assert!(team.members.iter().all(|m| m.0 <= 2));
    }

    #[test]
    fn infeasible_assignment_records_suggestion() {
        let mut p = platform_with_workers(1);
        let proj = p
            .register_project("c", SRC, factors(), Scheme::Sequential)
            .unwrap();
        let task = p.create_collab_task(proj, "x").unwrap();
        p.express_interest(WorkerId(1), task).unwrap();
        // needs 2 workers, only 1 interested
        let err = p.run_assignment(task).unwrap_err();
        assert!(matches!(err, PlatformError::NoFeasibleTeam { .. }));
        let sugg = p.project(proj).unwrap().suggestion.clone().unwrap();
        assert!(sugg.contains("relaxing"));
        // task remains open
        assert_eq!(p.pool.get(task).unwrap().state.label(), "open");
    }

    #[test]
    fn deadline_reassignment_excludes_non_committers() {
        let mut p = platform_with_workers(4);
        let mut f = factors();
        f.min_team = 2;
        f.max_team = 2;
        let proj = p.register_project("c", SRC, f, Scheme::Sequential).unwrap();
        let task = p.create_collab_task(proj, "x").unwrap();
        for i in 1..=4 {
            p.express_interest(WorkerId(i), task).unwrap();
        }
        let team1 = p.run_assignment(task).unwrap();
        // only one member undertakes
        p.undertake(team1.members[0], task).unwrap();
        // deadline passes
        p.advance_to(SimTime(601)).unwrap();
        assert_eq!(p.counters.get("deadlines_missed"), 1);
        let t = p.pool.get(task).unwrap();
        assert_eq!(t.reassignments, 1);
        // a new team was suggested, excluding the non-committer
        match &t.state {
            TaskState::Suggested { team, .. } => {
                assert!(!team.contains(&team1.members[1]));
            }
            other => panic!("unexpected state {other:?}"),
        }
    }

    #[test]
    fn repeated_misses_abandon_task() {
        let mut p = platform_with_workers(2);
        let mut f = factors();
        f.min_team = 2;
        f.max_team = 2;
        let proj = p.register_project("c", SRC, f, Scheme::Sequential).unwrap();
        p.max_reassignments = 1;
        let task = p.create_collab_task(proj, "x").unwrap();
        p.express_interest(WorkerId(1), task).unwrap();
        p.express_interest(WorkerId(2), task).unwrap();
        p.run_assignment(task).unwrap();
        // nobody undertakes; first deadline → interest withdrawn → infeasible
        p.advance_to(SimTime(601)).unwrap();
        let t = p.pool.get(task).unwrap();
        // After the miss, non-committers lost interest so reassignment is
        // infeasible; the task stays open with a suggestion, or is abandoned
        // after exceeding the retry budget.
        assert!(t.reassignments >= 1);
        assert!(matches!(
            t.state,
            TaskState::Open | TaskState::Abandoned { .. }
        ));
    }

    #[test]
    fn undertake_validations() {
        let mut p = platform_with_workers(3);
        let proj = p
            .register_project("c", SRC, factors(), Scheme::Sequential)
            .unwrap();
        let task = p.create_collab_task(proj, "x").unwrap();
        // undertake before suggestion: eligible but wrong state
        assert!(matches!(
            p.undertake(WorkerId(1), task),
            Err(PlatformError::BadTaskState { .. })
        ));
        p.express_interest(WorkerId(1), task).unwrap();
        p.express_interest(WorkerId(2), task).unwrap();
        let team = p.run_assignment(task).unwrap();
        // a worker outside the team cannot undertake
        let outsider = (1..=3).map(WorkerId).find(|w| !team.members.contains(w));
        if let Some(w) = outsider {
            assert!(matches!(
                p.undertake(w, task),
                Err(PlatformError::NotSuggested { .. })
            ));
        }
        // double undertake is idempotent
        p.undertake(team.members[0], task).unwrap();
        p.undertake(team.members[0], task).unwrap();
    }

    #[test]
    fn visible_tasks_only_open_or_suggested() {
        let mut p = platform_with_workers(2);
        let proj = p
            .register_project("c", SRC, factors(), Scheme::Sequential)
            .unwrap();
        p.seed_fact(proj, "sentence", vec!["a".into()]).unwrap();
        p.sync_tasks(proj).unwrap();
        let task = p.pool.open_tasks(Some(proj))[0].id;
        assert_eq!(p.visible_tasks(WorkerId(1)).len(), 1);
        p.submit_micro_answer(WorkerId(1), task, vec!["b".into()])
            .unwrap();
        assert!(p.visible_tasks(WorkerId(1)).is_empty());
    }

    #[test]
    fn bad_cylog_project_rejected() {
        let mut p = Crowd4U::new();
        assert!(p
            .register_project("bad", "p(X) :- q(X).", factors(), Scheme::Sequential)
            .is_err());
        assert!(p.project(ProjectId(1)).is_err());
        assert!(p.seed_fact(ProjectId(1), "x", vec![]).is_err());
        assert!(p.sync_tasks(ProjectId(1)).is_err());
    }

    #[test]
    fn eligibility_respects_factors() {
        let mut p = Crowd4U::new();
        p.register_worker(WorkerProfile::new(WorkerId(1), "en-native").with_native_lang("en"));
        p.register_worker(WorkerProfile::new(WorkerId(2), "ja-only").with_native_lang("ja"));
        let f = DesiredFactors {
            required_language: Some("en".into()),
            ..factors()
        };
        let proj = p.register_project("c", SRC, f, Scheme::Sequential).unwrap();
        let task = p.create_collab_task(proj, "x").unwrap();
        assert!(p.relations.is_eligible(WorkerId(1), task));
        assert!(!p.relations.is_eligible(WorkerId(2), task));
        assert!(matches!(
            p.express_interest(WorkerId(2), task),
            Err(PlatformError::NotEligible { .. })
        ));
        // late-registering qualified worker becomes eligible
        p.register_worker(WorkerProfile::new(WorkerId(3), "late").with_native_lang("en"));
        assert!(p.relations.is_eligible(WorkerId(3), task));
    }
}
