//! The Crowd4U platform facade: projects, task generation, the five-step
//! assignment workflow of §2.2.1, deadline-driven re-assignment, and task
//! completion bookkeeping.
//!
//! # Event-driven execution core
//!
//! Every state-changing entry point has a [`PlatformEvent`] counterpart and
//! appends one entry to an append-only [`EventJournal`] on success, so a
//! platform can be replayed deterministically ([`Crowd4U::replay_with`]).
//! Worker actions can be ingested one call at a time or as batches
//! ([`Crowd4U::apply_batch`]): batched answers mark their project *dirty*
//! instead of re-running the CyLog fixpoint per answer, and
//! [`Crowd4U::drain_events`] synchronises each dirty project exactly once.
//! Eligibility is epoch-cached per project and invalidated only by the
//! events that can change it (worker-profile changes, new facts/answers).

use crate::controller::{
    candidates_from_profiles, constraints_from_factors, non_committers, AssignmentController,
};
use crate::eligibility;
use crate::error::{PlatformError, ProjectId, TaskId, WorkerId};
use crate::events::{PlatformEvent, DRAIN_KIND};
use crate::relations::RelationStore;
use crate::task::{Task, TaskBody, TaskPool, TaskState};
use crate::workers::WorkerManager;
use crowd4u_assign::prelude::Team;
use crowd4u_collab::prelude::{CollabMonitor, MonitorEvent, Verdict};
use crowd4u_collab::Scheme;
use crowd4u_cylog::engine::CylogEngine;
use crowd4u_forms::admin::DesiredFactors;
use crowd4u_sim::stats::Counters;
use crowd4u_sim::time::{SimDuration, SimTime};
use crowd4u_storage::prelude::{EventJournal, Value};
use crowd4u_telemetry::{stage, Counter, Histogram, TelemetryHandle};
use std::collections::{BTreeMap, BTreeSet};

/// The eligibility cache of one project: valid while both epochs match.
#[derive(Debug, Clone)]
struct EligibleCache {
    worker_version: u64,
    project_epoch: u64,
    workers: Vec<WorkerId>,
}

/// A registered project: declarative description + desired human factors.
pub struct Project {
    pub id: ProjectId,
    pub name: String,
    /// The CyLog processor instance for this project's description.
    pub engine: CylogEngine,
    pub factors: DesiredFactors,
    pub scheme: Scheme,
    /// Feedback to the requester when no feasible team exists (§2.2.1:
    /// "Crowd4U suggests to the requester to update her input").
    pub suggestion: Option<String>,
    /// Clock domain owning this project's recruitment deadlines: `0` (the
    /// default) is the global clock; a non-zero owner means only clock
    /// advances tagged with the same owner set and sweep them. Merged
    /// scenario streams give each trace its own domain so one scenario's
    /// clock cannot expire another's recruitment window.
    pub owner: u64,
    /// Whether the CyLog description derives `eligible(w: id)` — decided
    /// once at registration (rules are fixed after compilation). Gates
    /// how aggressively the eligible-set cache is reused: only a
    /// declarative screen depends on the project's fact base.
    declarative: bool,
    /// Bumped whenever the project's fact base changes through the platform
    /// (seeded facts, answers); part of the eligibility-cache key.
    epoch: u64,
    /// Cached eligible set, keyed by (worker version, project epoch).
    eligible_cache: Option<EligibleCache>,
}

impl Project {
    /// The project's data epoch (for cache-staleness diagnostics).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Outcome of [`Crowd4U::apply_batch`]: events are applied with per-event
/// error tolerance, so one invalid worker action does not poison the batch.
#[derive(Debug, Default)]
pub struct BatchReport {
    /// Events applied (and journaled) successfully.
    pub applied: usize,
    /// Events rejected, with their position in the batch.
    pub errors: Vec<(usize, PlatformError)>,
    /// Projects synchronised by the closing [`Crowd4U::drain_events`].
    pub synced: Vec<ProjectId>,
}

/// Telemetry cells the platform records into. Defaults to all-disabled
/// cells (recording is a no-op) until [`Crowd4U::set_telemetry`] attaches a
/// live registry. Strictly observe-only: nothing here feeds back into
/// platform behaviour, the journal, or [`Crowd4U::state_dump`].
#[derive(Default)]
struct PlatformTelemetry {
    /// Kept so project engines registered later attach to the same registry.
    handle: TelemetryHandle,
    journal_append: Histogram,
    events_applied: Counter,
    events_dropped: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
}

impl PlatformTelemetry {
    fn from_handle(handle: &TelemetryHandle) -> PlatformTelemetry {
        PlatformTelemetry {
            handle: handle.clone(),
            journal_append: handle.histogram(stage::JOURNAL_APPEND),
            events_applied: handle.counter("crowd4u_core_events_applied_total"),
            events_dropped: handle.counter("crowd4u_core_events_dropped_total"),
            cache_hits: handle.counter("crowd4u_core_eligibility_cache_hits_total"),
            cache_misses: handle.counter("crowd4u_core_eligibility_cache_misses_total"),
        }
    }
}

/// The platform.
pub struct Crowd4U {
    now: SimTime,
    pub workers: WorkerManager,
    pub relations: RelationStore,
    pub pool: TaskPool,
    projects: BTreeMap<ProjectId, Project>,
    next_project: u64,
    /// High-water mark of each non-global clock domain (owner ≠ 0), fed by
    /// owner-tagged [`PlatformEvent::ClockAdvanced`] events. Purely
    /// event-derived, so replay reconstructs it; dumped by
    /// [`Crowd4U::state_dump`] when non-empty.
    owner_clocks: BTreeMap<u64, SimTime>,
    pub controller: AssignmentController,
    pub counters: Counters,
    /// Give up on a collaborative task after this many missed deadlines.
    pub max_reassignments: u32,
    /// A collaboration member idle for this long counts as stalled.
    pub stall_after: SimDuration,
    /// Append-only log of every applied event (the replay source of truth).
    journal: EventJournal,
    /// Projects whose CyLog fact base changed since their last sync.
    dirty: BTreeSet<ProjectId>,
    /// Collaboration monitors, one per task whose team started.
    monitors: BTreeMap<TaskId, CollabMonitor>,
    /// Observe-only metric cells — excluded from `state_dump`, like the
    /// `counters` above.
    telemetry: PlatformTelemetry,
}

impl Default for Crowd4U {
    fn default() -> Self {
        Crowd4U {
            now: SimTime::ZERO,
            workers: WorkerManager::new(),
            relations: RelationStore::new(),
            pool: TaskPool::new(),
            projects: BTreeMap::new(),
            next_project: 0,
            owner_clocks: BTreeMap::new(),
            controller: AssignmentController::default(),
            counters: Counters::new(),
            max_reassignments: 3,
            stall_after: SimDuration::minutes(30),
            journal: EventJournal::new(),
            dirty: BTreeSet::new(),
            monitors: BTreeMap::new(),
            telemetry: PlatformTelemetry::default(),
        }
    }
}

impl Crowd4U {
    pub fn new() -> Crowd4U {
        Crowd4U::default()
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Append one event to the journal (call only after the event's effects
    /// were applied successfully).
    fn record(&mut self, event: &PlatformEvent) {
        let _span = self.telemetry.journal_append.span();
        let entry = event.encode();
        self.journal
            .append(entry.kind, entry.args)
            .expect("event kinds are static identifiers");
        self.counters.incr("events_journaled");
    }

    /// Attach telemetry: journal appends record in the `journal.append`
    /// stage histogram, applied/dropped events and eligibility-cache
    /// hits/misses count into `crowd4u_core_*_total`, and every project
    /// engine — current and future — records its fixpoint stage and
    /// `EvalStats` counters (see [`CylogEngine::set_telemetry`]).
    /// Observe-only: two platforms differing only in telemetry produce
    /// byte-identical journals and state dumps.
    pub fn set_telemetry(&mut self, handle: &TelemetryHandle) {
        self.telemetry = PlatformTelemetry::from_handle(handle);
        for p in self.projects.values_mut() {
            p.engine.set_telemetry(handle);
        }
    }

    /// The append-only event journal (replay it with [`Crowd4U::replay_with`]).
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// Bump a **project-scoped** counter alongside its platform-global
    /// twin. Scoped counters are what scenario-level accounting reads when
    /// several workloads share one platform (or one shard slice): a global
    /// delta cannot attribute `teams_suggested` to the scenario that
    /// formed the team, a per-project count can. Like all counters they
    /// are volatile bookkeeping — excluded from [`Crowd4U::state_dump`].
    fn bump_project_counter(&mut self, project: ProjectId, name: &str) {
        self.counters.incr(&format!("p{}.{name}", project.0));
    }

    /// A project-scoped counter (see the mirrored increments:
    /// `teams_suggested`, `deadlines_missed`, `answers`,
    /// `collab_completed`, `tasks_abandoned`). Zero for never-touched
    /// projects.
    pub fn project_counter(&self, project: ProjectId, name: &str) -> u64 {
        self.counters.get(&format!("p{}.{name}", project.0))
    }

    /// Move the platform clock forward, processing any expired recruitment
    /// deadlines (workflow step: "unless all suggested workers start … by
    /// the specified deadline, task assignment is re-executed").
    pub fn advance_to(&mut self, t: SimTime) -> Result<(), PlatformError> {
        self.advance_owned(t, 0)
    }

    /// Advance one clock domain. Owner `0` is the global clock
    /// ([`Crowd4U::advance_to`]); a non-zero owner also moves that domain's
    /// high-water mark and sweeps **only** deadlines of projects registered
    /// with the same owner — the deadline-isolation half of the shared-crowd
    /// contract (ARCHITECTURE.md §11). The global `now` still tracks the
    /// max over all domains, so wall-clock-derived state (task creation
    /// stamps, stall monitors) stays a single timeline.
    pub fn advance_owned(&mut self, t: SimTime, owner: u64) -> Result<(), PlatformError> {
        self.record(&PlatformEvent::ClockAdvanced { to: t, owner });
        if t > self.now {
            self.now = t;
        }
        if owner != 0 {
            let domain = self.owner_clocks.entry(owner).or_insert(SimTime::ZERO);
            if t > *domain {
                *domain = t;
            }
        }
        self.process_deadlines_inner(owner)
    }

    // ---- workers ----

    pub fn register_worker(&mut self, profile: crowd4u_crowd::profile::WorkerProfile) {
        self.record(&PlatformEvent::WorkerRegistered {
            profile: profile.clone(),
        });
        self.counters.incr("workers_registered");
        self.install_worker_delta(profile);
    }

    /// The state effects of a worker registration, without the journal
    /// entry or the platform counter. This is the runtime's replica path:
    /// the coordinator shard journals [`PlatformEvent::WorkerRegistered`]
    /// via [`register_worker`](Crowd4U::register_worker); other shards
    /// mirror its effects by installing the same profile deltas, in the
    /// same seq order, through this method — keeping
    /// `WorkerManager::version()` in lockstep without the event ever being
    /// broadcast.
    pub fn install_worker_delta(&mut self, profile: crowd4u_crowd::profile::WorkerProfile) {
        let worker = profile.id;
        self.workers.register(profile);
        // New workers become eligible for existing open tasks they qualify
        // for. Under the factor screen a registration can only change the
        // registered worker's own rows, so the refresh is incremental —
        // recomputing the full eligible set here made every registration
        // burst O(population × open tasks). Declarative projects still
        // recompute in full: a new worker fact may flip *other* workers'
        // derived eligibility. (The registration already invalidated the
        // epoch caches either way.)
        for project in self.pool.projects_with_open_tasks() {
            let _ = self.refresh_registered_eligibility(worker, project);
        }
    }

    /// Bulk-install a compacted worker snapshot on a **completely fresh**
    /// replica (no workers, no projects) — the fast-forward path a shard
    /// takes instead of replaying every registration delta one by one.
    /// `events_covered` is the number of registration events the snapshot
    /// compacts; it keeps the worker version in lockstep with a replica
    /// that installed each delta individually. With no projects there is
    /// no eligibility state to repair, which is exactly why the
    /// freshness precondition exists.
    ///
    /// # Panics
    /// If the platform already has workers or projects.
    pub fn install_worker_snapshot(
        &mut self,
        profiles: impl IntoIterator<Item = crowd4u_crowd::profile::WorkerProfile>,
        events_covered: u64,
    ) {
        assert!(
            self.workers.is_empty() && self.projects.is_empty(),
            "worker snapshots may only fast-forward a fresh replica"
        );
        self.workers.install_snapshot(profiles, events_covered);
    }

    /// Post-registration eligibility repair for one project: mark the new
    /// worker on the project's open tasks if the factor screen admits
    /// them, or fall back to the full recompute for declaratively
    /// screened projects.
    fn refresh_registered_eligibility(
        &mut self,
        worker: WorkerId,
        project: ProjectId,
    ) -> Result<(), PlatformError> {
        let proj = self
            .projects
            .get(&project)
            .ok_or(PlatformError::UnknownProject(project))?;
        if proj.declarative {
            return self.refresh_project_eligibility(project);
        }
        if !eligibility::is_eligible(self.workers.get(worker)?, &proj.factors) {
            return Ok(());
        }
        let tasks: Vec<TaskId> = self
            .pool
            .open_tasks(Some(project))
            .iter()
            .map(|t| t.id)
            .collect();
        for task in tasks {
            self.relations.mark_eligible(worker, task)?;
        }
        Ok(())
    }

    /// The workers eligible for a project's tasks. Projects whose CyLog
    /// description derives `eligible(w: id)` get the declarative path
    /// (§2.2: Eligible "is computed by the CyLog processor"); all others
    /// use the built-in human-factor screen.
    ///
    /// The result is epoch-cached: it is recomputed only when the worker
    /// population changed ([`WorkerManager::version`]) or the project's
    /// fact base changed (its epoch), and served from the cache otherwise.
    pub fn eligible_set(&mut self, project: ProjectId) -> Result<Vec<WorkerId>, PlatformError> {
        let worker_version = self.workers.version();
        {
            let proj = self
                .projects
                .get(&project)
                .ok_or(PlatformError::UnknownProject(project))?;
            if let Some(cache) = &proj.eligible_cache {
                // The human-factor screen is a pure function of profiles ×
                // requester factors, so its cached set survives fact-base
                // changes; only a declarative screen (CyLog-derived
                // `eligible`) must also match the project epoch.
                if cache.worker_version == worker_version
                    && (!proj.declarative || cache.project_epoch == proj.epoch)
                {
                    self.counters.incr("eligibility_cache_hits");
                    self.telemetry.cache_hits.incr();
                    return Ok(cache.workers.clone());
                }
            }
        }
        self.counters.incr("eligibility_cache_misses");
        self.telemetry.cache_misses.incr();
        let proj = self.projects.get_mut(&project).expect("checked above");
        let workers = if proj.declarative {
            // The declarative path writes worker facts into the project
            // engine while reading profiles, so it needs owned copies.
            let profiles: Vec<crowd4u_crowd::profile::WorkerProfile> =
                self.workers.profiles().cloned().collect();
            for p in &profiles {
                crate::declarative::sync_worker_facts(&mut proj.engine, p)?;
            }
            proj.engine.run()?;
            crate::declarative::eligible_workers(&proj.engine)?
        } else {
            // The factor screen only reads: no reason to clone the whole
            // population (this path runs on every cache miss, over every
            // registered worker of the slice).
            self.workers
                .profiles()
                .filter(|p| eligibility::is_eligible(p, &proj.factors))
                .map(|p| p.id)
                .collect()
        };
        proj.eligible_cache = Some(EligibleCache {
            worker_version,
            project_epoch: proj.epoch,
            workers: workers.clone(),
        });
        Ok(workers)
    }

    /// Recompute the Eligible relation for every open task of a project.
    fn refresh_project_eligibility(&mut self, project: ProjectId) -> Result<(), PlatformError> {
        let eligible = self.eligible_set(project)?;
        let tasks: Vec<TaskId> = self
            .pool
            .open_tasks(Some(project))
            .iter()
            .map(|t| t.id)
            .collect();
        for task in tasks {
            for &w in &eligible {
                self.relations.mark_eligible(w, task)?;
            }
        }
        Ok(())
    }

    // ---- projects ----

    /// Register a project: its CyLog description is compiled and an admin
    /// page (constraint form) becomes available.
    pub fn register_project(
        &mut self,
        name: impl Into<String>,
        cylog_source: &str,
        factors: DesiredFactors,
        scheme: Scheme,
    ) -> Result<ProjectId, PlatformError> {
        self.register_project_owned(name, cylog_source, factors, scheme, 0)
    }

    /// Register a project into a specific clock domain (see
    /// [`Project::owner`]); owner `0` is [`Crowd4U::register_project`].
    pub fn register_project_owned(
        &mut self,
        name: impl Into<String>,
        cylog_source: &str,
        factors: DesiredFactors,
        scheme: Scheme,
        owner: u64,
    ) -> Result<ProjectId, PlatformError> {
        let mut engine = CylogEngine::from_source(cylog_source)?;
        engine.set_telemetry(&self.telemetry.handle);
        let declarative = crate::declarative::uses_declarative_eligibility(&engine);
        let name = name.into();
        self.record(&PlatformEvent::ProjectRegistered {
            name: name.clone(),
            source: cylog_source.to_owned(),
            factors: factors.clone(),
            scheme,
            owner,
        });
        self.next_project += 1;
        let id = ProjectId(self.next_project);
        self.projects.insert(
            id,
            Project {
                id,
                name,
                engine,
                factors,
                scheme,
                suggestion: None,
                owner,
                declarative,
                epoch: 0,
                eligible_cache: None,
            },
        );
        self.counters.incr("projects_registered");
        Ok(id)
    }

    pub fn project(&self, id: ProjectId) -> Result<&Project, PlatformError> {
        self.projects
            .get(&id)
            .ok_or(PlatformError::UnknownProject(id))
    }

    /// Mutable project access — crate-internal only. Mutations made through
    /// the returned reference bypass both the event journal and the
    /// eligibility epoch cache, so external callers must go through the
    /// journaled entry points ([`Crowd4U::seed_fact`],
    /// [`Crowd4U::sync_tasks`], …) instead; internal callers may only touch
    /// state that is neither journaled nor part of a cache key (e.g. the
    /// requester `suggestion`).
    pub(crate) fn project_mut(&mut self, id: ProjectId) -> Result<&mut Project, PlatformError> {
        self.projects
            .get_mut(&id)
            .ok_or(PlatformError::UnknownProject(id))
    }

    pub fn project_ids(&self) -> Vec<ProjectId> {
        self.projects.keys().copied().collect()
    }

    /// Mark a project's fact base changed: invalidates its eligibility
    /// cache and queues it for the next [`Crowd4U::drain_events`].
    fn touch_project(&mut self, id: ProjectId) {
        if let Some(p) = self.projects.get_mut(&id) {
            p.epoch += 1;
        }
        self.dirty.insert(id);
    }

    /// Add a base fact to a project's CyLog database. The project is marked
    /// dirty; call [`Crowd4U::sync_tasks`] (or let a batch drain) to turn
    /// new demands into tasks.
    pub fn seed_fact(
        &mut self,
        project: ProjectId,
        pred: &str,
        values: Vec<Value>,
    ) -> Result<bool, PlatformError> {
        let fresh = self
            .projects
            .get_mut(&project)
            .ok_or(PlatformError::UnknownProject(project))?
            .engine
            .add_fact(pred, values.clone())?;
        self.touch_project(project);
        self.record(&PlatformEvent::FactSeeded {
            project,
            pred: pred.to_owned(),
            values,
        });
        Ok(fresh)
    }

    /// Run the project's CyLog rules and register a micro-task for every
    /// new open question. Returns the number of new tasks. Eligibility for
    /// the new tasks is computed for all registered workers.
    pub fn sync_tasks(&mut self, project: ProjectId) -> Result<usize, PlatformError> {
        let n = self.sync_tasks_inner(project)?;
        self.record(&PlatformEvent::TasksSynced { project });
        Ok(n)
    }

    /// [`Crowd4U::sync_tasks`] without the journal entry — used by
    /// [`Crowd4U::drain_events`], whose own `drain` entry implies the syncs.
    fn sync_tasks_inner(&mut self, project: ProjectId) -> Result<usize, PlatformError> {
        let now = self.now;
        let proj = self
            .projects
            .get_mut(&project)
            .ok_or(PlatformError::UnknownProject(project))?;
        proj.engine.run()?;
        let requests: Vec<(String, Vec<Value>, i64)> = proj
            .engine
            .pending_requests()
            .iter()
            .map(|r| (r.pred_name.clone(), r.inputs.clone(), r.points))
            .collect();
        let mut new_tasks = Vec::new();
        for (pred, inputs, points) in requests {
            if self.pool.find_micro(project, &pred, &inputs).is_none() {
                let id = self.pool.register(
                    project,
                    TaskBody::Micro {
                        predicate: pred,
                        inputs,
                        points,
                    },
                    now,
                );
                new_tasks.push(id);
            }
        }
        self.counters
            .add("micro_tasks_generated", new_tasks.len() as u64);
        if !new_tasks.is_empty() {
            let eligible = self.eligible_set(project)?;
            for task in &new_tasks {
                for &w in &eligible {
                    self.relations.mark_eligible(w, *task)?;
                }
            }
        }
        self.dirty.remove(&project);
        Ok(new_tasks.len())
    }

    /// Create a collaborative (team) task for a project.
    pub fn create_collab_task(
        &mut self,
        project: ProjectId,
        description: impl Into<String>,
    ) -> Result<TaskId, PlatformError> {
        let description = description.into();
        let proj = self.project(project)?;
        let body = TaskBody::Collaborative {
            scheme: proj.scheme,
            description: description.clone(),
            skill: proj.factors.skill_name.clone(),
        };
        let id = self.pool.register(project, body, self.now);
        self.counters.incr("collab_tasks_created");
        let eligible = self.eligible_set(project)?;
        for w in eligible {
            self.relations.mark_eligible(w, id)?;
        }
        self.record(&PlatformEvent::CollabTaskCreated {
            project,
            description,
        });
        Ok(id)
    }

    // ---- workflow steps (3)–(5) ----

    /// Step (3): a worker declares interest in an eligible task.
    pub fn express_interest(
        &mut self,
        worker: WorkerId,
        task: TaskId,
    ) -> Result<(), PlatformError> {
        self.workers.get(worker)?;
        self.pool.get(task)?;
        self.relations.express_interest(worker, task)?;
        self.counters.incr("interest_expressed");
        self.record(&PlatformEvent::InterestExpressed { worker, task });
        Ok(())
    }

    /// Steps (4)+(5): form a team from eligible∩interested workers and
    /// suggest it. The task enters `Suggested` with a recruitment deadline.
    pub fn run_assignment(&mut self, task: TaskId) -> Result<Team, PlatformError> {
        let t = self.pool.get(task)?;
        if !matches!(t.state, TaskState::Open) {
            return Err(PlatformError::BadTaskState {
                task,
                state: t.state.label().into(),
            });
        }
        // Journaled regardless of feasibility: an infeasible run still
        // mutates state (suggestion + counters) that a replay must repeat.
        self.record(&PlatformEvent::AssignmentRun { task });
        self.run_assignment_inner(task)
    }

    /// Assignment without the state precondition or journal entry (the
    /// deadline sweep re-executes assignment as a consequence of a
    /// journaled clock advance).
    fn run_assignment_inner(&mut self, task: TaskId) -> Result<Team, PlatformError> {
        let t = self.pool.get(task)?;
        let project = t.project;
        let skill = match &t.body {
            TaskBody::Collaborative { skill, .. } => skill.clone(),
            TaskBody::Micro { .. } => None,
        };
        let (factors, owner) = {
            let p = self.project(project)?;
            (p.factors.clone(), p.owner)
        };
        // Eligible ∩ interested, minus workers excluded by earlier retries.
        let interested = self.relations.interested_workers(task);
        let eligible: Vec<WorkerId> = interested
            .into_iter()
            .filter(|w| self.relations.is_eligible(*w, task))
            .collect();
        let profiles: Vec<&crowd4u_crowd::profile::WorkerProfile> = eligible
            .iter()
            .filter_map(|w| self.workers.get(*w).ok())
            .collect();
        let candidates = candidates_from_profiles(&profiles, skill.as_deref());
        let constraints = constraints_from_factors(&factors);
        // The algorithms only ever look up affinities among the
        // candidates, and pair affinity is a pure function of the two
        // profiles — so ask the worker manager's lazy provider for the
        // candidate submatrix instead of materialising (or cloning) a full
        // population matrix (which no longer exists anywhere). This makes
        // assignment cost independent of how many workers the platform
        // hosts: O(candidates²), not O(population²).
        let affinity = self.workers.submatrix_of(&profiles);
        let team = self
            .controller
            .suggest_team(&candidates, &affinity, &constraints);
        match team {
            Some(team) => {
                // Recruitment windows are measured on the project's own
                // clock domain: an owned project's deadline starts from its
                // domain's high-water mark, not the global max over every
                // interleaved scenario's clock.
                let base = if owner == 0 {
                    self.now
                } else {
                    self.owner_clocks
                        .get(&owner)
                        .copied()
                        .unwrap_or(SimTime::ZERO)
                };
                let deadline = base + SimDuration::secs(factors.recruitment_secs);
                self.pool.set_state(
                    task,
                    TaskState::Suggested {
                        team: team.members.clone(),
                        deadline,
                        undertaken: Vec::new(),
                    },
                )?;
                self.counters.incr("teams_suggested");
                self.bump_project_counter(project, "teams_suggested");
                self.project_mut(project)?.suggestion = None;
                Ok(team)
            }
            None => {
                self.counters.incr("assignment_infeasible");
                self.project_mut(project)?.suggestion = Some(format!(
                    "no team of {}–{} workers with the desired human factors is available \
                     for task {task}; consider relaxing the constraints",
                    factors.min_team, factors.max_team
                ));
                Err(PlatformError::NoFeasibleTeam { task })
            }
        }
    }

    /// A suggested worker confirms they start the task. When the whole team
    /// has confirmed, the task moves to `InProgress` and a collaboration
    /// monitor starts tracking the team.
    pub fn undertake(&mut self, worker: WorkerId, task: TaskId) -> Result<(), PlatformError> {
        // Validate state and membership BEFORE touching the relation store:
        // a failed call must leave no trace, or replaying the journal (which
        // only holds successful events) would diverge from the live state.
        let t = self.pool.get(task)?;
        let TaskState::Suggested {
            team,
            deadline,
            undertaken,
        } = t.state.clone()
        else {
            return Err(PlatformError::BadTaskState {
                task,
                state: t.state.label().into(),
            });
        };
        if !team.contains(&worker) {
            return Err(PlatformError::NotSuggested { worker, task });
        }
        // Eligibility precondition enforced by the relation store.
        self.relations.undertake(worker, task)?;
        let mut undertaken = undertaken;
        if !undertaken.contains(&worker) {
            undertaken.push(worker);
        }
        self.record(&PlatformEvent::Undertaken { worker, task });
        if undertaken.len() == team.len() {
            self.pool
                .set_state(task, TaskState::InProgress { team: team.clone() })?;
            self.counters.incr("teams_started");
            // Undertaking counts as the team's first activity.
            self.monitors
                .insert(task, CollabMonitor::new(&team, self.now, self.stall_after));
        } else {
            self.pool.set_state(
                task,
                TaskState::Suggested {
                    team,
                    deadline,
                    undertaken,
                },
            )?;
        }
        Ok(())
    }

    /// Deadline sweep: re-execute assignment for suggested tasks whose
    /// deadline passed without the full team undertaking. Non-committers
    /// lose their interest; after `max_reassignments` misses the task is
    /// abandoned.
    pub fn process_deadlines(&mut self) -> Result<(), PlatformError> {
        // Deadline processing is a consequence of time passing, so it is
        // journaled as a clock event at the current instant.
        self.record(&PlatformEvent::ClockAdvanced {
            to: self.now,
            owner: 0,
        });
        self.process_deadlines_inner(0)
    }

    /// Sweep the deadlines of one clock domain: the global clock (owner 0)
    /// expires globally-owned projects' deadlines up to `now`; an owned
    /// clock expires only its own projects' deadlines, and only up to its
    /// own high-water mark — another domain's later clock never reaches in.
    fn process_deadlines_inner(&mut self, owner: u64) -> Result<(), PlatformError> {
        let horizon = if owner == 0 {
            self.now
        } else {
            self.owner_clocks
                .get(&owner)
                .copied()
                .unwrap_or(SimTime::ZERO)
        };
        // Range-scan the deadline index instead of sweeping the whole pool.
        let expired: Vec<TaskId> = self
            .pool
            .expired_suggested(horizon)
            .into_iter()
            .filter(|id| match self.pool.get(*id) {
                Ok(t) => {
                    let same_domain = self
                        .projects
                        .get(&t.project)
                        .is_some_and(|p| p.owner == owner);
                    same_domain
                        && match &t.state {
                            TaskState::Suggested {
                                team, undertaken, ..
                            } => undertaken.len() < team.len(),
                            _ => false,
                        }
                }
                _ => false,
            })
            .collect();
        for task in expired {
            let (team, undertaken) = match &self.pool.get(task)?.state {
                TaskState::Suggested {
                    team, undertaken, ..
                } => (team.clone(), undertaken.clone()),
                _ => continue,
            };
            for w in non_committers(&team, &undertaken) {
                self.relations.withdraw_interest(w, task)?;
            }
            self.counters.incr("deadlines_missed");
            self.bump_project_counter(task.project(), "deadlines_missed");
            if self.pool.bump_reassignments(task)? > self.max_reassignments {
                self.pool.set_state(
                    task,
                    TaskState::Abandoned {
                        reason: "no team undertook before the deadline".into(),
                    },
                )?;
                self.relations.clear_task(task)?;
                self.counters.incr("tasks_abandoned");
                self.bump_project_counter(task.project(), "tasks_abandoned");
                continue;
            }
            self.pool.set_state(task, TaskState::Open)?;
            // Re-execute assignment immediately; infeasibility leaves the
            // task open with a suggestion recorded for the requester.
            let _ = self.run_assignment_inner(task);
        }
        Ok(())
    }

    // ---- completion ----

    /// A worker answers a micro-task directly (micro-tasks are performed by
    /// one worker; no team formation). The answer lands in the project's
    /// fact base without re-running rules; the project is marked dirty and
    /// is synchronised by the next [`Crowd4U::sync_tasks`] or batch drain.
    pub fn submit_micro_answer(
        &mut self,
        worker: WorkerId,
        task: TaskId,
        outputs: Vec<Value>,
    ) -> Result<(), PlatformError> {
        if !self.relations.is_eligible(worker, task) {
            return Err(PlatformError::NotEligible { worker, task });
        }
        let t = self.pool.get(task)?;
        let TaskBody::Micro {
            predicate, inputs, ..
        } = &t.body
        else {
            return Err(PlatformError::BadTaskState {
                task,
                state: "not a micro task".into(),
            });
        };
        if !matches!(t.state, TaskState::Open) {
            return Err(PlatformError::BadTaskState {
                task,
                state: t.state.label().into(),
            });
        }
        let project = t.project;
        let (predicate, inputs) = (predicate.clone(), inputs.clone());
        self.projects
            .get_mut(&project)
            .ok_or(PlatformError::UnknownProject(project))?
            .engine
            .answer(&predicate, inputs, outputs.clone(), Some(worker.0))?;
        self.pool
            .set_state(task, TaskState::Completed { team: vec![worker] })?;
        self.relations.clear_task(task)?;
        self.counters.incr("micro_tasks_completed");
        self.bump_project_counter(project, "answers");
        self.touch_project(project);
        self.record(&PlatformEvent::AnswerSubmitted {
            worker,
            task,
            outputs,
        });
        Ok(())
    }

    /// Record completion of a collaborative task with an observed quality;
    /// the outcome feeds the skill estimator and closes the monitor.
    pub fn complete_collab_task(
        &mut self,
        task: TaskId,
        quality: f64,
    ) -> Result<(), PlatformError> {
        let t = self.pool.get(task)?;
        let TaskState::InProgress { team } = &t.state else {
            return Err(PlatformError::BadTaskState {
                task,
                state: t.state.label().into(),
            });
        };
        let members = team.clone();
        self.pool.set_state(
            task,
            TaskState::Completed {
                team: members.clone(),
            },
        )?;
        self.workers.record_outcome(members.clone(), quality);
        self.relations.clear_task(task)?;
        self.counters.incr("collab_tasks_completed");
        self.bump_project_counter(task.project(), "collab_completed");
        // Per-(project, worker) split of the affinity feed: on a shared
        // crowd the same worker collaborates in several scenarios, and the
        // platform-wide history length must decompose exactly into these
        // cells (see `worker_collabs_in`).
        for w in &members {
            self.counters
                .incr(&format!("p{}.w{}.collabs", task.project().0, w.0));
        }
        if let Some(m) = self.monitors.get_mut(&task) {
            m.apply(MonitorEvent::Completed);
        }
        self.record(&PlatformEvent::TaskCompleted { task, quality });
        Ok(())
    }

    // ---- collaboration monitoring ----

    /// A team member showed activity on an in-progress collaborative task
    /// ("Crowd4U monitors their collaboration for ensuring successful task
    /// completion", §2.2.1).
    pub fn record_activity(&mut self, worker: WorkerId, task: TaskId) -> Result<(), PlatformError> {
        let now = self.now;
        let Some(m) = self.monitors.get_mut(&task) else {
            return Err(PlatformError::BadTaskState {
                task,
                state: "not monitored (team never started)".into(),
            });
        };
        m.apply(MonitorEvent::Activity(worker, now));
        self.record(&PlatformEvent::ActivityRecorded { worker, task });
        Ok(())
    }

    /// The monitor of a task whose team started, if any.
    pub fn monitor(&self, task: TaskId) -> Option<&CollabMonitor> {
        self.monitors.get(&task)
    }

    /// Health verdicts of every monitored collaboration at the current
    /// platform time, in task order.
    pub fn collaboration_health(&self) -> Vec<(TaskId, Verdict)> {
        self.monitors
            .iter()
            .map(|(&t, m)| (t, m.check(self.now)))
            .collect()
    }

    // ---- batched ingestion & replay ----

    /// Apply one typed event through the corresponding platform call.
    pub fn apply_event(&mut self, event: PlatformEvent) -> Result<(), PlatformError> {
        let result = self.apply_event_inner(event);
        match &result {
            Ok(()) => self.telemetry.events_applied.incr(),
            Err(_) => self.telemetry.events_dropped.incr(),
        }
        result
    }

    fn apply_event_inner(&mut self, event: PlatformEvent) -> Result<(), PlatformError> {
        match event {
            PlatformEvent::WorkerRegistered { profile } => {
                self.register_worker(profile);
                Ok(())
            }
            PlatformEvent::ProjectRegistered {
                name,
                source,
                factors,
                scheme,
                owner,
            } => self
                .register_project_owned(name, &source, factors, scheme, owner)
                .map(|_| ()),
            PlatformEvent::FactSeeded {
                project,
                pred,
                values,
            } => self.seed_fact(project, &pred, values).map(|_| ()),
            PlatformEvent::TasksSynced { project } => self.sync_tasks(project).map(|_| ()),
            PlatformEvent::CollabTaskCreated {
                project,
                description,
            } => self.create_collab_task(project, description).map(|_| ()),
            PlatformEvent::InterestExpressed { worker, task } => {
                self.express_interest(worker, task)
            }
            PlatformEvent::AssignmentRun { task } => match self.run_assignment(task) {
                Ok(_) => Ok(()),
                // Infeasibility is a journaled outcome, not a failure.
                Err(PlatformError::NoFeasibleTeam { .. }) => Ok(()),
                Err(e) => Err(e),
            },
            PlatformEvent::Undertaken { worker, task } => self.undertake(worker, task),
            PlatformEvent::ClockAdvanced { to, owner } => self.advance_owned(to, owner),
            PlatformEvent::AnswerSubmitted {
                worker,
                task,
                outputs,
            } => self.submit_micro_answer(worker, task, outputs),
            PlatformEvent::TaskCompleted { task, quality } => {
                self.complete_collab_task(task, quality)
            }
            PlatformEvent::ActivityRecorded { worker, task } => self.record_activity(worker, task),
        }
    }

    /// Ingest a batch of events, then drain: answers and seeded facts mark
    /// their project dirty, and every dirty project is synchronised exactly
    /// once at the end — N answers cost one fixpoint run instead of N.
    /// Events are applied in order with per-event error tolerance; failures
    /// are reported, not journaled.
    pub fn apply_batch(
        &mut self,
        events: impl IntoIterator<Item = PlatformEvent>,
    ) -> Result<BatchReport, PlatformError> {
        let mut report = BatchReport::default();
        for (i, event) in events.into_iter().enumerate() {
            match self.apply_event(event) {
                Ok(()) => report.applied += 1,
                Err(e) => report.errors.push((i, e)),
            }
        }
        report.synced = self.drain_events()?;
        self.counters.incr("batches_applied");
        Ok(report)
    }

    /// Synchronise every dirty project (run its rules once, register new
    /// micro-tasks, refresh eligibility) and clear the dirty set. Returns
    /// the projects synchronised, in id order.
    pub fn drain_events(&mut self) -> Result<Vec<ProjectId>, PlatformError> {
        // Sync from a snapshot of the dirty set; each project is removed
        // from it only when its sync succeeds, so a mid-drain error keeps
        // the failed and remaining projects dirty for a retry. The `drain`
        // entry is journaled after the syncs so the journal never records a
        // drain that did not happen.
        let dirty: Vec<ProjectId> = self.dirty.iter().copied().collect();
        for p in &dirty {
            self.sync_tasks_inner(*p)?;
        }
        let _span = self.telemetry.journal_append.span();
        self.journal
            .append(DRAIN_KIND, vec![])
            .expect("static kind");
        self.counters.incr("events_journaled");
        Ok(dirty)
    }

    /// Projects whose fact base changed since their last sync, in id order.
    /// A sharded runtime drains these per shard; a single platform drains
    /// them through [`Crowd4U::drain_events`].
    pub fn dirty_projects(&self) -> Vec<ProjectId> {
        self.dirty.iter().copied().collect()
    }

    /// Canonical, deterministic dump of the whole platform state: clock,
    /// relations, every project engine (facts, pending questions, points),
    /// every task, every monitor. Two platforms that went through equivalent
    /// histories produce byte-identical dumps — this is the comparison
    /// backbone of the replay and sharded-equivalence tests. Volatile
    /// bookkeeping (counters, caches) is deliberately excluded.
    pub fn state_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("crowd4u-state v1\n");
        let _ = writeln!(out, "clock {}", self.now.ticks());
        // Owned clock domains (empty — and absent — outside shared-crowd
        // merges, keeping single-domain dumps byte-stable).
        for (owner, t) in &self.owner_clocks {
            let _ = writeln!(out, "clock@{owner} {}", t.ticks());
        }
        let _ = writeln!(
            out,
            "workers {} version {}",
            self.workers.len(),
            self.workers.version()
        );
        out.push_str("## relations\n");
        out.push_str(&crowd4u_storage::snapshot::dump(self.relations.database()));
        for (id, p) in &self.projects {
            let _ = write!(out, "## project {id} {} epoch {}", p.name, p.epoch);
            if p.owner != 0 {
                let _ = write!(out, " owner {}", p.owner);
            }
            out.push('\n');
            if let Some(s) = &p.suggestion {
                let _ = writeln!(out, "suggestion {s}");
            }
            out.push_str(&crowd4u_storage::snapshot::dump(p.engine.database()));
            for r in p.engine.pending_requests() {
                let inputs: Vec<String> = r.inputs.iter().map(|v| v.to_string()).collect();
                let _ = writeln!(
                    out,
                    "pending {} points {} ({})",
                    r.pred_name,
                    r.points,
                    inputs.join(", ")
                );
            }
            for (w, pts) in p.engine.leaderboard() {
                let _ = writeln!(out, "points w{w} {pts}");
            }
        }
        out.push_str("## tasks\n");
        for t in self.pool.iter() {
            let _ = writeln!(
                out,
                "{t} created {} reassign {} {:?}",
                t.created_at.ticks(),
                t.reassignments,
                t.state
            );
        }
        out.push_str("## monitors\n");
        for (t, m) in &self.monitors {
            let _ = writeln!(
                out,
                "monitor {t} members {:?} verdict {:?}",
                m.members(),
                m.check(self.now)
            );
        }
        out
    }

    /// Replay a journal into a fresh, default-configured platform.
    pub fn replay(journal: &EventJournal) -> Result<Crowd4U, PlatformError> {
        Self::replay_with(journal, Crowd4U::new())
    }

    /// Replay a journal into `base` — a freshly configured platform (set
    /// the controller algorithm, `max_reassignments` etc. first; those are
    /// configuration, not events). Replay applies every entry through the
    /// same public entry points that produced it, so the reconstructed
    /// platform's relations, points ledgers, pending queues — and its
    /// journal — are identical to the live one's.
    pub fn replay_with(
        journal: &EventJournal,
        mut base: Crowd4U,
    ) -> Result<Crowd4U, PlatformError> {
        if !base.journal.is_empty() {
            return Err(PlatformError::BadEvent(
                "replay base must not have journaled events of its own".into(),
            ));
        }
        for entry in journal.iter() {
            if entry.kind == DRAIN_KIND {
                base.drain_events()?;
                continue;
            }
            base.apply_event(PlatformEvent::decode(entry)?)?;
        }
        Ok(base)
    }

    // ---- project migration (the runtime's rebalancing entry point) ----

    /// Detach a project's complete owned state — the [`Project`] itself,
    /// its tasks and local task-id counter, its relation rows, its
    /// collaboration monitors and its dirty bit — so another platform
    /// instance can [`adopt`](Crowd4U::adopt_project) it. Nothing is
    /// journaled on either side: a migration is invisible in the event
    /// history, which is what keeps merged journals byte-identical across
    /// a mid-run rebalance.
    pub fn extract_project(&mut self, id: ProjectId) -> Result<ProjectSlice, PlatformError> {
        let project = self
            .projects
            .remove(&id)
            .ok_or(PlatformError::UnknownProject(id))?;
        let (tasks, next_local) = self.pool.extract_project(id);
        let mut rows = Vec::with_capacity(tasks.len());
        for t in &tasks {
            let eligible = self.relations.eligible_workers(t.id);
            let interested = self.relations.interested_workers(t.id);
            let undertaking = self.relations.undertaking_workers(t.id);
            if !(eligible.is_empty() && interested.is_empty() && undertaking.is_empty()) {
                self.relations.clear_task(t.id)?;
                rows.push((t.id, eligible, interested, undertaking));
            }
        }
        let monitor_ids: Vec<TaskId> = self
            .monitors
            .keys()
            .filter(|t| t.project() == id)
            .copied()
            .collect();
        let monitors = monitor_ids
            .into_iter()
            .map(|t| {
                (
                    t,
                    self.monitors.remove(&t).expect("key from the scan above"),
                )
            })
            .collect();
        let dirty = self.dirty.remove(&id);
        Ok(ProjectSlice {
            project,
            tasks,
            next_local,
            rows,
            monitors,
            dirty,
        })
    }

    /// Install a project slice extracted from another platform instance,
    /// replacing this instance's empty shell of the same project (every
    /// shard registers every project; only the owner holds tasks). Rows
    /// are re-inserted eligible-first so the relation store's eligibility
    /// precondition holds throughout.
    pub fn adopt_project(&mut self, slice: ProjectSlice) {
        let ProjectSlice {
            project,
            tasks,
            next_local,
            rows,
            monitors,
            dirty,
        } = slice;
        let id = project.id;
        self.projects.insert(id, project);
        self.pool.adopt_project(id, tasks, next_local);
        for (task, eligible, interested, undertaking) in rows {
            for w in eligible {
                self.relations
                    .mark_eligible(w, task)
                    .expect("adopted eligibility row re-inserts");
            }
            for w in interested {
                self.relations
                    .express_interest(w, task)
                    .expect("adopted interest row re-inserts");
            }
            for w in undertaking {
                self.relations
                    .undertake(w, task)
                    .expect("adopted undertaking row re-inserts");
            }
        }
        self.monitors.extend(monitors);
        if dirty {
            self.dirty.insert(id);
        }
    }

    // ---- user-facing queries ----

    /// Worker's accumulated points across all projects (game aspect).
    pub fn points_of(&self, worker: WorkerId) -> i64 {
        self.projects
            .values()
            .map(|p| p.engine.points_of(worker.0))
            .sum()
    }

    /// Worker's points earned in **one** project — the per-scenario split
    /// of [`Crowd4U::points_of`] when several scenarios share one crowd.
    /// Projects partition the points ledgers, so summing this over every
    /// project reproduces `points_of` exactly (the split-accounting
    /// invariant of ARCHITECTURE.md §11).
    pub fn project_points_of(&self, project: ProjectId, worker: WorkerId) -> i64 {
        self.projects
            .get(&project)
            .map(|p| p.engine.points_of(worker.0))
            .unwrap_or(0)
    }

    /// How many collaborative completions of `project` the worker was a
    /// team member of — the per-scenario split of the worker's affinity
    /// contributions (every completion pushes exactly one team observation
    /// into the shared skill/affinity history). Summing over all projects
    /// and team members reproduces the platform history length.
    pub fn worker_collabs_in(&self, project: ProjectId, worker: WorkerId) -> u64 {
        self.counters
            .get(&format!("p{}.w{}.collabs", project.0, worker.0))
    }

    /// Active assignment load per worker: how many suggested or in-progress
    /// teams the worker is currently on, across **all** projects of this
    /// platform. This is what a cross-scenario assignment policy weighs
    /// before proposing a team from a shared crowd (see
    /// `crowd4u_assign::load`). Workers with zero load are absent.
    pub fn assignment_loads(&self) -> BTreeMap<WorkerId, u64> {
        let mut loads = BTreeMap::new();
        for t in self.pool.iter() {
            let members = match &t.state {
                TaskState::Suggested { team, .. } | TaskState::InProgress { team } => team,
                _ => continue,
            };
            for w in members {
                *loads.entry(*w).or_insert(0) += 1;
            }
        }
        loads
    }

    /// Tasks (ids) a worker may currently see on their user page. Served
    /// from the worker's eligibility relation intersected with the pool's
    /// by-state index (open ∪ suggested) — no full-pool scan.
    pub fn visible_tasks(&self, worker: WorkerId) -> Vec<&Task> {
        self.relations
            .eligible_tasks(worker)
            .into_iter()
            .filter(|t| self.pool.is_active(*t))
            .filter_map(|t| self.pool.get(t).ok())
            .collect()
    }
}

/// `(task, eligible, interested, undertaking)` worker membership carried
/// per task inside a [`ProjectSlice`].
type TaskWorkerRows = (TaskId, Vec<WorkerId>, Vec<WorkerId>, Vec<WorkerId>);

/// A project's complete owned state, detached from one platform instance
/// by [`Crowd4U::extract_project`] so another instance can
/// [`Crowd4U::adopt_project`] it. This is the payload of the sharded
/// runtime's hot-project migration: the project struct (engine,
/// leaderboard, eligibility cache), its tasks with their local-id
/// counter, its relation rows, its collaboration monitors, and whether it
/// was dirty. The journal is deliberately absent — slices move state, not
/// history.
pub struct ProjectSlice {
    project: Project,
    tasks: Vec<Task>,
    next_local: u64,
    /// `(task, eligible, interested, undertaking)` worker rows, one tuple
    /// per task that had any.
    rows: Vec<TaskWorkerRows>,
    monitors: Vec<(TaskId, CollabMonitor)>,
    dirty: bool,
}

impl ProjectSlice {
    /// Which project this slice carries.
    pub fn project_id(&self) -> ProjectId {
        self.project.id
    }

    /// Number of tasks travelling with the project.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_crowd::profile::WorkerProfile;

    const SRC: &str = "\
rel sentence(s: str).
open translate(s: str) -> (t: str) points 2.
rel published(s: str, t: str).
published(S, T) :- sentence(S), translate(S, T).
";

    fn factors() -> DesiredFactors {
        DesiredFactors {
            min_team: 2,
            max_team: 3,
            recruitment_secs: 600,
            ..Default::default()
        }
    }

    fn platform_with_workers(n: u64) -> Crowd4U {
        let mut p = Crowd4U::new();
        for i in 1..=n {
            p.register_worker(
                WorkerProfile::new(WorkerId(i), format!("w{i}")).with_native_lang("en"),
            );
        }
        p
    }

    #[test]
    fn micro_task_generation_and_answer() {
        let mut p = platform_with_workers(2);
        let proj = p
            .register_project("demo", SRC, factors(), Scheme::Sequential)
            .unwrap();
        p.seed_fact(proj, "sentence", vec!["hello".into()]).unwrap();
        let n = p.sync_tasks(proj).unwrap();
        assert_eq!(n, 1);
        // same demand is not re-registered
        assert_eq!(p.sync_tasks(proj).unwrap(), 0);
        let task = p.pool.open_tasks(Some(proj))[0].id;
        // both workers are eligible (no constraints beyond login)
        assert!(p.relations.is_eligible(WorkerId(1), task));
        p.submit_micro_answer(WorkerId(1), task, vec!["bonjour".into()])
            .unwrap();
        p.sync_tasks(proj).unwrap();
        assert_eq!(
            p.project(proj)
                .unwrap()
                .engine
                .fact_count("published")
                .unwrap(),
            1
        );
        assert_eq!(p.points_of(WorkerId(1)), 2);
        // answered task is completed; answering again fails
        assert!(p
            .submit_micro_answer(WorkerId(2), task, vec!["salut".into()])
            .is_err());
    }

    #[test]
    fn five_step_workflow() {
        let mut p = platform_with_workers(4);
        let proj = p
            .register_project("collab", SRC, factors(), Scheme::Sequential)
            .unwrap();
        let task = p.create_collab_task(proj, "subtitle a video").unwrap();
        // step 3: interest
        for i in 1..=3 {
            p.express_interest(WorkerId(i), task).unwrap();
        }
        // step 5: suggestion
        let team = p.run_assignment(task).unwrap();
        assert!(team.size() >= 2 && team.size() <= 3);
        // undertaking moves to in-progress when everyone confirms
        for &m in &team.members {
            p.undertake(m, task).unwrap();
        }
        assert_eq!(p.pool.get(task).unwrap().state.label(), "in-progress");
        p.complete_collab_task(task, 0.8).unwrap();
        assert_eq!(p.pool.get(task).unwrap().state.label(), "completed");
        assert_eq!(p.workers.history_len(), 1);
        assert_eq!(p.counters.get("teams_suggested"), 1);
        assert_eq!(p.counters.get("teams_started"), 1);
    }

    #[test]
    fn uninterested_workers_not_suggested() {
        let mut p = platform_with_workers(5);
        let proj = p
            .register_project("c", SRC, factors(), Scheme::Sequential)
            .unwrap();
        let task = p.create_collab_task(proj, "x").unwrap();
        p.express_interest(WorkerId(1), task).unwrap();
        p.express_interest(WorkerId(2), task).unwrap();
        let team = p.run_assignment(task).unwrap();
        assert!(team.members.iter().all(|m| m.0 <= 2));
    }

    #[test]
    fn infeasible_assignment_records_suggestion() {
        let mut p = platform_with_workers(1);
        let proj = p
            .register_project("c", SRC, factors(), Scheme::Sequential)
            .unwrap();
        let task = p.create_collab_task(proj, "x").unwrap();
        p.express_interest(WorkerId(1), task).unwrap();
        // needs 2 workers, only 1 interested
        let err = p.run_assignment(task).unwrap_err();
        assert!(matches!(err, PlatformError::NoFeasibleTeam { .. }));
        let sugg = p.project(proj).unwrap().suggestion.clone().unwrap();
        assert!(sugg.contains("relaxing"));
        // task remains open
        assert_eq!(p.pool.get(task).unwrap().state.label(), "open");
    }

    #[test]
    fn deadline_reassignment_excludes_non_committers() {
        let mut p = platform_with_workers(4);
        let mut f = factors();
        f.min_team = 2;
        f.max_team = 2;
        let proj = p.register_project("c", SRC, f, Scheme::Sequential).unwrap();
        let task = p.create_collab_task(proj, "x").unwrap();
        for i in 1..=4 {
            p.express_interest(WorkerId(i), task).unwrap();
        }
        let team1 = p.run_assignment(task).unwrap();
        // only one member undertakes
        p.undertake(team1.members[0], task).unwrap();
        // deadline passes
        p.advance_to(SimTime(601)).unwrap();
        assert_eq!(p.counters.get("deadlines_missed"), 1);
        let t = p.pool.get(task).unwrap();
        assert_eq!(t.reassignments, 1);
        // a new team was suggested, excluding the non-committer
        match &t.state {
            TaskState::Suggested { team, .. } => {
                assert!(!team.contains(&team1.members[1]));
            }
            other => panic!("unexpected state {other:?}"),
        }
    }

    #[test]
    fn repeated_misses_abandon_task() {
        let mut p = platform_with_workers(2);
        let mut f = factors();
        f.min_team = 2;
        f.max_team = 2;
        let proj = p.register_project("c", SRC, f, Scheme::Sequential).unwrap();
        p.max_reassignments = 1;
        let task = p.create_collab_task(proj, "x").unwrap();
        p.express_interest(WorkerId(1), task).unwrap();
        p.express_interest(WorkerId(2), task).unwrap();
        p.run_assignment(task).unwrap();
        // nobody undertakes; first deadline → interest withdrawn → infeasible
        p.advance_to(SimTime(601)).unwrap();
        let t = p.pool.get(task).unwrap();
        // After the miss, non-committers lost interest so reassignment is
        // infeasible; the task stays open with a suggestion, or is abandoned
        // after exceeding the retry budget.
        assert!(t.reassignments >= 1);
        assert!(matches!(
            t.state,
            TaskState::Open | TaskState::Abandoned { .. }
        ));
    }

    #[test]
    fn undertake_validations() {
        let mut p = platform_with_workers(3);
        let proj = p
            .register_project("c", SRC, factors(), Scheme::Sequential)
            .unwrap();
        let task = p.create_collab_task(proj, "x").unwrap();
        // undertake before suggestion: eligible but wrong state
        assert!(matches!(
            p.undertake(WorkerId(1), task),
            Err(PlatformError::BadTaskState { .. })
        ));
        p.express_interest(WorkerId(1), task).unwrap();
        p.express_interest(WorkerId(2), task).unwrap();
        let team = p.run_assignment(task).unwrap();
        // a worker outside the team cannot undertake — and the failed call
        // leaves no trace (no relation row, no journal entry), or journal
        // replay would diverge from the live state
        let outsider = (1..=3).map(WorkerId).find(|w| !team.members.contains(w));
        if let Some(w) = outsider {
            let counts_before = p.relations.counts();
            let journal_before = p.journal().len();
            assert!(matches!(
                p.undertake(w, task),
                Err(PlatformError::NotSuggested { .. })
            ));
            assert_eq!(p.relations.counts(), counts_before);
            assert_eq!(p.journal().len(), journal_before);
        }
        // double undertake is idempotent
        p.undertake(team.members[0], task).unwrap();
        p.undertake(team.members[0], task).unwrap();
    }

    #[test]
    fn visible_tasks_only_open_or_suggested() {
        let mut p = platform_with_workers(2);
        let proj = p
            .register_project("c", SRC, factors(), Scheme::Sequential)
            .unwrap();
        p.seed_fact(proj, "sentence", vec!["a".into()]).unwrap();
        p.sync_tasks(proj).unwrap();
        let task = p.pool.open_tasks(Some(proj))[0].id;
        assert_eq!(p.visible_tasks(WorkerId(1)).len(), 1);
        p.submit_micro_answer(WorkerId(1), task, vec!["b".into()])
            .unwrap();
        assert!(p.visible_tasks(WorkerId(1)).is_empty());
    }

    #[test]
    fn bad_cylog_project_rejected() {
        let mut p = Crowd4U::new();
        assert!(p
            .register_project("bad", "p(X) :- q(X).", factors(), Scheme::Sequential)
            .is_err());
        assert!(p.project(ProjectId(1)).is_err());
        assert!(p.seed_fact(ProjectId(1), "x", vec![]).is_err());
        assert!(p.sync_tasks(ProjectId(1)).is_err());
        // nothing was journaled for the failed calls
        assert!(p.journal().is_empty());
    }

    #[test]
    fn eligibility_respects_factors() {
        let mut p = Crowd4U::new();
        p.register_worker(WorkerProfile::new(WorkerId(1), "en-native").with_native_lang("en"));
        p.register_worker(WorkerProfile::new(WorkerId(2), "ja-only").with_native_lang("ja"));
        let f = DesiredFactors {
            required_language: Some("en".into()),
            ..factors()
        };
        let proj = p.register_project("c", SRC, f, Scheme::Sequential).unwrap();
        let task = p.create_collab_task(proj, "x").unwrap();
        assert!(p.relations.is_eligible(WorkerId(1), task));
        assert!(!p.relations.is_eligible(WorkerId(2), task));
        assert!(matches!(
            p.express_interest(WorkerId(2), task),
            Err(PlatformError::NotEligible { .. })
        ));
        // late-registering qualified worker becomes eligible
        p.register_worker(WorkerProfile::new(WorkerId(3), "late").with_native_lang("en"));
        assert!(p.relations.is_eligible(WorkerId(3), task));
    }

    // ---- event-core tests ----

    /// Build a platform that exercises every event kind, for replay tests.
    fn eventful_platform() -> (Crowd4U, ProjectId, TaskId) {
        let mut p = platform_with_workers(4);
        let proj = p
            .register_project("demo", SRC, factors(), Scheme::Sequential)
            .unwrap();
        p.seed_fact(proj, "sentence", vec!["hello".into()]).unwrap();
        p.seed_fact(proj, "sentence", vec!["bye".into()]).unwrap();
        p.sync_tasks(proj).unwrap();
        let micro = p.pool.open_tasks(Some(proj))[0].id;
        p.submit_micro_answer(WorkerId(1), micro, vec!["bonjour".into()])
            .unwrap();
        let collab = p.create_collab_task(proj, "subtitle").unwrap();
        for i in 1..=3 {
            p.express_interest(WorkerId(i), collab).unwrap();
        }
        let team = p.run_assignment(collab).unwrap();
        for &m in &team.members {
            p.undertake(m, collab).unwrap();
        }
        p.advance_to(SimTime(120)).unwrap();
        p.record_activity(team.members[0], collab).unwrap();
        p.complete_collab_task(collab, 0.9).unwrap();
        p.drain_events().unwrap();
        (p, proj, collab)
    }

    #[test]
    fn journal_replay_reconstructs_identical_state() {
        let (live, proj, _) = eventful_platform();
        // Round-trip the journal through its text form, then replay.
        let text = live.journal().dump();
        let journal = EventJournal::load(&text).unwrap();
        let replayed = Crowd4U::replay(&journal).unwrap();

        // Relations byte-identical.
        assert_eq!(
            crowd4u_storage::snapshot::dump(live.relations.database()),
            crowd4u_storage::snapshot::dump(replayed.relations.database())
        );
        // Every project engine byte-identical (facts, derived, everything).
        for id in live.project_ids() {
            assert_eq!(
                crowd4u_storage::snapshot::dump(live.project(id).unwrap().engine.database()),
                crowd4u_storage::snapshot::dump(replayed.project(id).unwrap().engine.database())
            );
            assert_eq!(
                live.project(id).unwrap().engine.pending_requests(),
                replayed.project(id).unwrap().engine.pending_requests()
            );
            assert_eq!(
                live.project(id).unwrap().engine.leaderboard(),
                replayed.project(id).unwrap().engine.leaderboard()
            );
        }
        // Task pool, clock, monitors agree.
        assert_eq!(live.pool.state_counts(), replayed.pool.state_counts());
        assert_eq!(live.now(), replayed.now());
        assert_eq!(live.collaboration_health(), replayed.collaboration_health());
        assert_eq!(live.points_of(WorkerId(1)), replayed.points_of(WorkerId(1)));
        // The replayed journal is the same journal.
        assert_eq!(replayed.journal().dump(), text);
        // Sanity: the cache saw real traffic on both sides.
        assert!(live.project(proj).unwrap().epoch() > 0);
    }

    #[test]
    fn replay_base_must_be_fresh() {
        let (live, ..) = eventful_platform();
        let dirty_base = platform_with_workers(1);
        assert!(matches!(
            Crowd4U::replay_with(live.journal(), dirty_base),
            Err(PlatformError::BadEvent(..))
        ));
    }

    #[test]
    fn apply_batch_ingests_answers_with_one_drain() {
        let mut serial = platform_with_workers(2);
        let mut batched = platform_with_workers(2);
        let setup = |p: &mut Crowd4U| -> (ProjectId, Vec<TaskId>) {
            let proj = p
                .register_project("demo", SRC, factors(), Scheme::Sequential)
                .unwrap();
            for s in ["a", "b", "c"] {
                p.seed_fact(proj, "sentence", vec![s.into()]).unwrap();
            }
            p.sync_tasks(proj).unwrap();
            let tasks = p.pool.open_tasks(Some(proj)).iter().map(|t| t.id).collect();
            (proj, tasks)
        };
        let (proj_s, tasks_s) = setup(&mut serial);
        let (proj_b, tasks_b) = setup(&mut batched);
        assert_eq!(tasks_s, tasks_b);

        // Serial path: answer + sync per answer.
        for (i, t) in tasks_s.iter().enumerate() {
            serial
                .submit_micro_answer(WorkerId(1), *t, vec![format!("t{i}").into()])
                .unwrap();
            serial.sync_tasks(proj_s).unwrap();
        }
        // Batched path: one batch, one drain.
        let events: Vec<PlatformEvent> = tasks_b
            .iter()
            .enumerate()
            .map(|(i, t)| PlatformEvent::AnswerSubmitted {
                worker: WorkerId(1),
                task: *t,
                outputs: vec![format!("t{i}").into()],
            })
            .collect();
        let report = batched.apply_batch(events).unwrap();
        assert_eq!(report.applied, 3);
        assert!(report.errors.is_empty());
        assert_eq!(report.synced, vec![proj_b]);

        // Same final knowledge, points and task states.
        assert_eq!(
            crowd4u_storage::snapshot::dump(serial.project(proj_s).unwrap().engine.database()),
            crowd4u_storage::snapshot::dump(batched.project(proj_b).unwrap().engine.database())
        );
        assert_eq!(
            serial.points_of(WorkerId(1)),
            batched.points_of(WorkerId(1))
        );
        assert_eq!(serial.pool.state_counts(), batched.pool.state_counts());
    }

    #[test]
    fn apply_batch_tolerates_bad_events() {
        let mut p = platform_with_workers(2);
        let proj = p
            .register_project("demo", SRC, factors(), Scheme::Sequential)
            .unwrap();
        let before = p.journal().len();
        let report = p
            .apply_batch(vec![
                PlatformEvent::FactSeeded {
                    project: proj,
                    pred: "sentence".into(),
                    values: vec!["ok".into()],
                },
                PlatformEvent::FactSeeded {
                    project: ProjectId(99),
                    pred: "sentence".into(),
                    values: vec!["bad".into()],
                },
                PlatformEvent::InterestExpressed {
                    worker: WorkerId(1),
                    task: TaskId(42), // unknown task
                },
            ])
            .unwrap();
        assert_eq!(report.applied, 1);
        assert_eq!(report.errors.len(), 2);
        assert_eq!(report.errors[0].0, 1);
        // The drain synced the dirty project: the seeded fact became a task.
        assert_eq!(report.synced, vec![proj]);
        assert_eq!(p.pool.open_tasks(Some(proj)).len(), 1);
        // Journal holds only the applied event + the drain marker.
        assert_eq!(p.journal().len(), before + 2);
    }

    #[test]
    fn eligibility_cache_hits_until_invalidated() {
        let mut p = platform_with_workers(3);
        let proj = p
            .register_project("c", SRC, factors(), Scheme::Sequential)
            .unwrap();
        p.eligible_set(proj).unwrap();
        let misses_after_first = p.counters.get("eligibility_cache_misses");
        for _ in 0..5 {
            assert_eq!(p.eligible_set(proj).unwrap().len(), 3);
        }
        assert_eq!(
            p.counters.get("eligibility_cache_misses"),
            misses_after_first
        );
        assert!(p.counters.get("eligibility_cache_hits") >= 5);

        // A new worker invalidates (worker version bump).
        p.register_worker(WorkerProfile::new(WorkerId(9), "late"));
        assert_eq!(p.eligible_set(proj).unwrap().len(), 4);
        assert!(p.counters.get("eligibility_cache_misses") > misses_after_first);

        // The factor screen is a pure function of profiles × factors, so
        // new facts do NOT invalidate it (the set is served from cache).
        let misses = p.counters.get("eligibility_cache_misses");
        p.seed_fact(proj, "sentence", vec!["x".into()]).unwrap();
        p.eligible_set(proj).unwrap();
        assert_eq!(p.counters.get("eligibility_cache_misses"), misses);

        // A declaratively screened project (CyLog-derived `eligible`)
        // still invalidates on fact changes — its rules may read them.
        const DECL: &str = "\
rel worker(w: id).
rel flag(w: id).
rel eligible(w: id).
eligible(W) :- flag(W).
rel sentence(s: str).
open translate(s: str) -> (t: str).
rel published(s: str, t: str).
published(S, T) :- sentence(S), translate(S, T).
";
        let decl = p
            .register_project("decl", DECL, factors(), Scheme::Sequential)
            .unwrap();
        assert!(p.eligible_set(decl).unwrap().is_empty());
        let misses = p.counters.get("eligibility_cache_misses");
        p.seed_fact(decl, "flag", vec![Value::Id(1)]).unwrap();
        assert_eq!(p.eligible_set(decl).unwrap(), vec![WorkerId(1)]);
        assert_eq!(p.counters.get("eligibility_cache_misses"), misses + 1);
    }

    /// Compile-time shardability audit: every type a shard thread owns (or
    /// a coordinator hands across threads) must be `Send`, and the shared
    /// read-only views must be `Sync`. If a future change stores an `Rc`,
    /// `RefCell` or non-`Send` trait object inside any of these, this test
    /// stops compiling — the sharded runtime depends on it.
    #[test]
    fn platform_types_are_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Crowd4U>();
        assert_sync::<Crowd4U>();
        assert_send::<TaskPool>();
        assert_sync::<TaskPool>();
        assert_send::<WorkerManager>();
        assert_sync::<WorkerManager>();
        assert_send::<RelationStore>();
        assert_sync::<RelationStore>();
        assert_send::<AssignmentController>();
        assert_sync::<AssignmentController>();
        assert_send::<PlatformEvent>();
        assert_send::<EventJournal>();
        assert_sync::<EventJournal>();
    }

    #[test]
    fn state_dump_is_deterministic_and_complete() {
        let (live, proj, collab) = eventful_platform();
        let dump = live.state_dump();
        // Two dumps of the same platform are identical.
        assert_eq!(dump, live.state_dump());
        // A replayed platform dumps byte-identically.
        let replayed = Crowd4U::replay(live.journal()).unwrap();
        assert_eq!(replayed.state_dump(), dump);
        // The dump mentions the structural pieces.
        assert!(dump.contains(&format!("## project {proj}")));
        assert!(dump.contains("## relations"));
        assert!(dump.contains("## tasks"));
        assert!(dump.contains(&format!("monitor {collab}")));
        assert!(dump.contains("points w1"));
        // Divergent histories dump differently.
        let other = platform_with_workers(1);
        assert_ne!(other.state_dump(), dump);
    }

    #[test]
    fn project_counters_attribute_per_project() {
        let mut p = platform_with_workers(3);
        let a = p
            .register_project("a", SRC, factors(), Scheme::Sequential)
            .unwrap();
        let b = p
            .register_project("b", SRC, factors(), Scheme::Sequential)
            .unwrap();
        // One answer in project a only.
        p.seed_fact(a, "sentence", vec!["x".into()]).unwrap();
        p.sync_tasks(a).unwrap();
        let task = p.pool.open_tasks(Some(a))[0].id;
        p.submit_micro_answer(WorkerId(1), task, vec!["y".into()])
            .unwrap();
        assert_eq!(p.project_counter(a, "answers"), 1);
        assert_eq!(p.project_counter(b, "answers"), 0);
        // A team + completion in project b only.
        let collab = p.create_collab_task(b, "x").unwrap();
        p.express_interest(WorkerId(1), collab).unwrap();
        p.express_interest(WorkerId(2), collab).unwrap();
        let team = p.run_assignment(collab).unwrap();
        assert_eq!(p.project_counter(b, "teams_suggested"), 1);
        assert_eq!(p.project_counter(a, "teams_suggested"), 0);
        for &m in &team.members {
            p.undertake(m, collab).unwrap();
        }
        p.complete_collab_task(collab, 0.9).unwrap();
        assert_eq!(p.project_counter(b, "collab_completed"), 1);
        assert_eq!(p.project_counter(a, "collab_completed"), 0);
        // Scoped counters stay out of the canonical state dump.
        assert!(!p.state_dump().contains("teams_suggested"));
    }

    #[test]
    fn dirty_projects_tracks_unsynced_changes() {
        let mut p = platform_with_workers(1);
        let proj = p
            .register_project("demo", SRC, factors(), Scheme::Sequential)
            .unwrap();
        assert!(p.dirty_projects().is_empty());
        p.seed_fact(proj, "sentence", vec!["a".into()]).unwrap();
        assert_eq!(p.dirty_projects(), vec![proj]);
        p.sync_tasks(proj).unwrap();
        assert!(p.dirty_projects().is_empty());
    }

    #[test]
    fn monitors_track_started_teams() {
        let mut p = platform_with_workers(3);
        let proj = p
            .register_project("c", SRC, factors(), Scheme::Sequential)
            .unwrap();
        let task = p.create_collab_task(proj, "x").unwrap();
        assert!(p.monitor(task).is_none());
        assert!(p.record_activity(WorkerId(1), task).is_err());
        p.express_interest(WorkerId(1), task).unwrap();
        p.express_interest(WorkerId(2), task).unwrap();
        let team = p.run_assignment(task).unwrap();
        for &m in &team.members {
            p.undertake(m, task).unwrap();
        }
        // the monitor started with the team
        assert_eq!(p.monitor(task).unwrap().members(), {
            let mut m = team.members.clone();
            m.sort();
            m
        });
        assert_eq!(p.collaboration_health(), vec![(task, Verdict::Healthy)]);
        // one member acts much later; the other goes stale
        p.advance_to(p.now() + p.stall_after).unwrap();
        p.record_activity(team.members[0], task).unwrap();
        match &p.collaboration_health()[0].1 {
            Verdict::MembersStalled(stalled) => assert!(!stalled.contains(&team.members[0])),
            other => panic!("unexpected verdict {other:?}"),
        }
        p.complete_collab_task(task, 0.7).unwrap();
        assert_eq!(p.collaboration_health(), vec![(task, Verdict::Complete)]);
    }
}
