//! The worker manager (paper Figure 2): user properties (human factors),
//! the affinity matrix, and system-computed skill refreshes from task
//! history.

use crate::error::{PlatformError, WorkerId};
use crowd4u_crowd::affinity::{affinity_from_profiles, AffinityLookup, AffinityMatrix};
use crowd4u_crowd::estimate::{estimate_skills, EstimatorConfig, TeamObservation};
use crowd4u_crowd::profile::WorkerProfile;
use std::collections::BTreeMap;

/// Registry of worker profiles + affinity matrix + team-task history.
pub struct WorkerManager {
    profiles: BTreeMap<WorkerId, WorkerProfile>,
    /// Cached affinity matrix; rebuilt on demand after registration changes.
    affinity: Option<AffinityMatrix>,
    /// Observed team outcomes, for skill estimation ([10]).
    history: Vec<TeamObservation>,
    /// Affinity synthesis weights (geo, language, skill).
    pub weights: (f64, f64, f64),
    /// Bumped on every profile change (registration, mutable access, skill
    /// refresh). Epoch-based caches — the platform's eligibility cache —
    /// compare this to detect staleness without scanning profiles.
    version: u64,
}

impl Default for WorkerManager {
    fn default() -> Self {
        WorkerManager {
            profiles: BTreeMap::new(),
            affinity: None,
            history: Vec::new(),
            weights: (1.0, 1.0, 0.5),
            version: 0,
        }
    }
}

impl WorkerManager {
    pub fn new() -> WorkerManager {
        WorkerManager::default()
    }

    pub fn register(&mut self, profile: WorkerProfile) {
        self.profiles.insert(profile.id, profile);
        self.affinity = None; // invalidate cache
        self.version += 1;
    }

    /// Profile-set version; changes whenever any profile may have changed.
    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn get(&self, id: WorkerId) -> Result<&WorkerProfile, PlatformError> {
        self.profiles
            .get(&id)
            .ok_or(PlatformError::UnknownWorker(id))
    }

    /// Mutable profile access. Conservatively bumps the version: the caller
    /// may change factors, which invalidates eligibility caches.
    pub fn get_mut(&mut self, id: WorkerId) -> Result<&mut WorkerProfile, PlatformError> {
        let p = self
            .profiles
            .get_mut(&id)
            .ok_or(PlatformError::UnknownWorker(id))?;
        self.version += 1;
        Ok(p)
    }

    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    pub fn ids(&self) -> Vec<WorkerId> {
        self.profiles.keys().copied().collect()
    }

    pub fn profiles(&self) -> impl Iterator<Item = &WorkerProfile> {
        self.profiles.values()
    }

    /// The affinity matrix over all registered workers (cached).
    pub fn affinity(&mut self) -> &AffinityMatrix {
        if self.affinity.is_none() {
            let profiles: Vec<WorkerProfile> = self.profiles.values().cloned().collect();
            let (wg, wl, ws) = self.weights;
            self.affinity = Some(affinity_from_profiles(&profiles, wg, wl, ws));
        }
        self.affinity.as_ref().expect("just built")
    }

    /// Pairwise affinity (builds the matrix if needed).
    pub fn pair_affinity(&mut self, a: WorkerId, b: WorkerId) -> f64 {
        self.affinity().affinity(a, b)
    }

    /// Record an observed team outcome (drives skill estimation).
    pub fn record_outcome(&mut self, members: Vec<WorkerId>, quality: f64) {
        self.history.push(TeamObservation::new(members, quality));
    }

    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Re-estimate the named skill for every worker appearing in history
    /// ("computed by the system based on previously performed tasks", §2.4).
    /// Returns how many profiles were updated.
    pub fn refresh_skills(&mut self, skill_name: &str) -> usize {
        if self.history.is_empty() {
            return 0;
        }
        let est = estimate_skills(&self.history, &EstimatorConfig::default());
        let mut updated = 0;
        for (w, s) in &est.skills {
            if let Some(p) = self.profiles.get_mut(w) {
                p.factors.set_skill(skill_name.to_string(), *s);
                updated += 1;
            }
        }
        if updated > 0 {
            self.affinity = None; // skills feed the affinity matrix
            self.version += 1;
        }
        updated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_crowd::profile::Region;

    fn manager() -> WorkerManager {
        let mut m = WorkerManager::new();
        m.register(
            WorkerProfile::new(WorkerId(1), "ann")
                .with_native_lang("en")
                .with_region(Region::new("tokyo", 0.8, 0.4)),
        );
        m.register(
            WorkerProfile::new(WorkerId(2), "bob")
                .with_native_lang("en")
                .with_region(Region::new("tokyo", 0.8, 0.4)),
        );
        m.register(
            WorkerProfile::new(WorkerId(3), "eve")
                .with_native_lang("fr")
                .with_region(Region::new("paris", 0.1, 0.5)),
        );
        m
    }

    #[test]
    fn register_and_lookup() {
        let mut m = manager();
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.get(WorkerId(1)).unwrap().name, "ann");
        assert!(m.get(WorkerId(9)).is_err());
        m.get_mut(WorkerId(1)).unwrap().factors.logged_in = false;
        assert!(!m.get(WorkerId(1)).unwrap().factors.logged_in);
        assert_eq!(m.ids(), vec![WorkerId(1), WorkerId(2), WorkerId(3)]);
        assert_eq!(m.profiles().count(), 3);
    }

    #[test]
    fn affinity_cached_and_invalidated() {
        let mut m = manager();
        let near = m.pair_affinity(WorkerId(1), WorkerId(2));
        let far = m.pair_affinity(WorkerId(1), WorkerId(3));
        assert!(near > far);
        // registration invalidates the cache and the new worker appears
        m.register(WorkerProfile::new(WorkerId(4), "dan").with_native_lang("en"));
        assert_eq!(m.affinity().len(), 4);
    }

    #[test]
    fn skill_refresh_from_history() {
        let mut m = manager();
        // worker 1 consistently great, worker 3 consistently poor
        for _ in 0..5 {
            m.record_outcome(vec![WorkerId(1)], 0.95);
            m.record_outcome(vec![WorkerId(3)], 0.15);
        }
        assert_eq!(m.history_len(), 10);
        let n = m.refresh_skills("translation");
        assert_eq!(n, 2);
        let s1 = m.get(WorkerId(1)).unwrap().factors.skill("translation");
        let s3 = m.get(WorkerId(3)).unwrap().factors.skill("translation");
        assert!(s1 > 0.8, "skilled worker got {s1}");
        assert!(s3 < 0.3, "unskilled worker got {s3}");
        // worker 2 never observed: unchanged default
        assert_eq!(
            m.get(WorkerId(2)).unwrap().factors.skill("translation"),
            0.0
        );
    }

    #[test]
    fn refresh_with_no_history_is_noop() {
        let mut m = manager();
        assert_eq!(m.refresh_skills("x"), 0);
    }

    #[test]
    fn version_tracks_profile_changes() {
        let mut m = manager();
        let v0 = m.version();
        m.register(WorkerProfile::new(WorkerId(9), "new"));
        let v1 = m.version();
        assert!(v1 > v0);
        // reads do not bump
        m.get(WorkerId(9)).unwrap();
        assert_eq!(m.version(), v1);
        // mutable access bumps (conservatively)
        m.get_mut(WorkerId(9)).unwrap().factors.logged_in = false;
        assert!(m.version() > v1);
        let v2 = m.version();
        // skill refresh bumps only when profiles changed
        assert_eq!(m.refresh_skills("x"), 0);
        assert_eq!(m.version(), v2);
        m.record_outcome(vec![WorkerId(1)], 0.9);
        assert!(m.refresh_skills("x") > 0);
        assert!(m.version() > v2);
    }

    #[test]
    fn outcomes_for_unknown_workers_ignored_in_refresh() {
        let mut m = manager();
        m.record_outcome(vec![WorkerId(77)], 0.9);
        // estimate includes w77 but profile update skips it
        assert_eq!(m.refresh_skills("x"), 0);
    }
}
