//! The worker manager (paper Figure 2): user properties (human factors),
//! lazy pair affinity, and system-computed skill refreshes from task
//! history.
//!
//! Affinity is never materialised for the whole population. The manager
//! owns an [`AffinityProvider`] that computes pair values from profiles on
//! demand (with a small above-floor / top-k cache) and builds dense
//! candidate-set submatrices for assignment — so registering worker N is
//! O(1) in the population size instead of an O(n²) cache invalidation.

use crate::error::{PlatformError, WorkerId};
use crowd4u_crowd::affinity::{group_affinity, AffinityMatrix, AffinityProvider};
use crowd4u_crowd::estimate::{estimate_skills, EstimatorConfig, TeamObservation};
use crowd4u_crowd::profile::WorkerProfile;
use std::collections::BTreeMap;

/// Registry of worker profiles + lazy affinity provider + team-task history.
pub struct WorkerManager {
    profiles: BTreeMap<WorkerId, WorkerProfile>,
    /// Lazy pair-affinity source; its small cache is dropped (not rebuilt)
    /// whenever profiles change, keyed off `version`.
    provider: AffinityProvider,
    /// The `version` the provider's cache was filled under.
    provider_version: u64,
    /// Observed team outcomes, for skill estimation ([10]).
    history: Vec<TeamObservation>,
    /// Affinity synthesis weights (geo, language, skill).
    pub weights: (f64, f64, f64),
    /// Bumped on every profile change (registration, mutable access, skill
    /// refresh). Epoch-based caches — the platform's eligibility cache —
    /// compare this to detect staleness without scanning profiles.
    version: u64,
}

impl Default for WorkerManager {
    fn default() -> Self {
        let weights = (1.0, 1.0, 0.5);
        WorkerManager {
            profiles: BTreeMap::new(),
            provider: AffinityProvider::new(weights.0, weights.1, weights.2),
            provider_version: 0,
            history: Vec::new(),
            weights,
            version: 0,
        }
    }
}

impl WorkerManager {
    pub fn new() -> WorkerManager {
        WorkerManager::default()
    }

    /// Register (or re-register) a worker. O(log n): one map insert and a
    /// version bump — no affinity state exists to invalidate eagerly; the
    /// provider's cache is dropped lazily on the next affinity query.
    pub fn register(&mut self, profile: WorkerProfile) {
        self.profiles.insert(profile.id, profile);
        self.version += 1;
    }

    /// Bulk-install a compacted profile snapshot shipped by the runtime's
    /// worker service. `events_covered` is how many registration events
    /// the snapshot compacts; adding it keeps `version()` in lockstep with
    /// a replica that applied every event individually — the invariant the
    /// eligibility epoch cache and the shard determinism contract key on.
    pub fn install_snapshot(
        &mut self,
        profiles: impl IntoIterator<Item = WorkerProfile>,
        events_covered: u64,
    ) {
        for p in profiles {
            self.profiles.insert(p.id, p);
        }
        self.version += events_covered;
    }

    /// Profile-set version; changes whenever any profile may have changed.
    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn get(&self, id: WorkerId) -> Result<&WorkerProfile, PlatformError> {
        self.profiles
            .get(&id)
            .ok_or(PlatformError::UnknownWorker(id))
    }

    /// Mutable profile access. Conservatively bumps the version: the caller
    /// may change factors, which invalidates eligibility caches.
    pub fn get_mut(&mut self, id: WorkerId) -> Result<&mut WorkerProfile, PlatformError> {
        let p = self
            .profiles
            .get_mut(&id)
            .ok_or(PlatformError::UnknownWorker(id))?;
        self.version += 1;
        Ok(p)
    }

    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// All worker ids, ascending, as a fresh `Vec`. Prefer [`iter_ids`]
    /// (no allocation) when you only iterate.
    ///
    /// [`iter_ids`]: WorkerManager::iter_ids
    pub fn ids(&self) -> Vec<WorkerId> {
        self.profiles.keys().copied().collect()
    }

    /// All worker ids, ascending, without allocating.
    pub fn iter_ids(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.profiles.keys().copied()
    }

    pub fn profiles(&self) -> impl Iterator<Item = &WorkerProfile> {
        self.profiles.values()
    }

    /// Pairwise affinity, computed lazily from the two profiles (cached
    /// per the provider's floor / top-k policy). Unknown workers and
    /// self-pairs are 0, matching the dense matrix's convention.
    pub fn pair_affinity(&mut self, a: WorkerId, b: WorkerId) -> f64 {
        self.ensure_provider_fresh();
        match (self.profiles.get(&a), self.profiles.get(&b)) {
            (Some(pa), Some(pb)) => self.provider.pair(pa, pb),
            _ => 0.0,
        }
    }

    /// Dense affinity submatrix over borrowed candidate profiles — the
    /// assignment-time path. O(k²) in the candidate count, independent of
    /// the population size; entries are bit-identical to what a full
    /// population matrix would hold.
    pub fn submatrix_of(&self, profiles: &[&WorkerProfile]) -> AffinityMatrix {
        let (wg, wl, ws) = self.weights;
        crowd4u_crowd::affinity::affinity_from_profile_refs(profiles, wg, wl, ws)
    }

    /// Dense affinity submatrix over a candidate id set (unknown ids are
    /// skipped, so they read as affinity 0 — the dense matrix convention).
    pub fn candidate_affinity(&self, ids: &[WorkerId]) -> AffinityMatrix {
        let profiles: Vec<&WorkerProfile> =
            ids.iter().filter_map(|w| self.profiles.get(w)).collect();
        self.submatrix_of(&profiles)
    }

    /// Mean pairwise affinity of a team, via a candidate submatrix —
    /// O(k²) instead of the O(n²) full-matrix build this used to force.
    pub fn team_affinity(&self, members: &[WorkerId]) -> f64 {
        group_affinity(&self.candidate_affinity(members), members)
    }

    /// Configure the provider's pair cache (floor + per-worker top-k).
    pub fn set_affinity_cache(&mut self, floor: f64, top_k: usize) {
        self.provider.set_cache_policy(floor, top_k);
    }

    /// Resident affinity cache entries — the manager's entire affinity
    /// footprint (there is no dense matrix).
    pub fn cached_affinity_entries(&self) -> usize {
        self.provider.cached_entries()
    }

    /// Drop the provider's cache when profiles or weights changed since it
    /// was filled. O(1) when nothing changed; clearing is O(cache), never
    /// O(population²).
    fn ensure_provider_fresh(&mut self) {
        if self.provider_version != self.version {
            self.provider.clear();
            self.provider_version = self.version;
        }
        let (wg, wl, ws) = self.weights;
        self.provider.set_weights(wg, wl, ws); // no-op unless changed
    }

    /// Record an observed team outcome (drives skill estimation).
    pub fn record_outcome(&mut self, members: Vec<WorkerId>, quality: f64) {
        self.history.push(TeamObservation::new(members, quality));
    }

    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Re-estimate the named skill for every worker appearing in history
    /// ("computed by the system based on previously performed tasks", §2.4).
    /// Returns how many profiles were updated.
    pub fn refresh_skills(&mut self, skill_name: &str) -> usize {
        if self.history.is_empty() {
            return 0;
        }
        let est = estimate_skills(&self.history, &EstimatorConfig::default());
        let mut updated = 0;
        for (w, s) in &est.skills {
            if let Some(p) = self.profiles.get_mut(w) {
                p.factors.set_skill(skill_name.to_string(), *s);
                updated += 1;
            }
        }
        if updated > 0 {
            // Skills feed pair affinity; the version bump drops the
            // provider's cache on the next query.
            self.version += 1;
        }
        updated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_crowd::profile::Region;

    fn manager() -> WorkerManager {
        let mut m = WorkerManager::new();
        m.register(
            WorkerProfile::new(WorkerId(1), "ann")
                .with_native_lang("en")
                .with_region(Region::new("tokyo", 0.8, 0.4)),
        );
        m.register(
            WorkerProfile::new(WorkerId(2), "bob")
                .with_native_lang("en")
                .with_region(Region::new("tokyo", 0.8, 0.4)),
        );
        m.register(
            WorkerProfile::new(WorkerId(3), "eve")
                .with_native_lang("fr")
                .with_region(Region::new("paris", 0.1, 0.5)),
        );
        m
    }

    #[test]
    fn register_and_lookup() {
        let mut m = manager();
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.get(WorkerId(1)).unwrap().name, "ann");
        assert!(m.get(WorkerId(9)).is_err());
        m.get_mut(WorkerId(1)).unwrap().factors.logged_in = false;
        assert!(!m.get(WorkerId(1)).unwrap().factors.logged_in);
        assert_eq!(m.ids(), vec![WorkerId(1), WorkerId(2), WorkerId(3)]);
        assert_eq!(m.iter_ids().collect::<Vec<_>>(), m.ids());
        assert_eq!(m.profiles().count(), 3);
    }

    #[test]
    fn affinity_is_lazy_and_tracks_registration() {
        let mut m = manager();
        let near = m.pair_affinity(WorkerId(1), WorkerId(2));
        let far = m.pair_affinity(WorkerId(1), WorkerId(3));
        assert!(near > far);
        assert!(m.cached_affinity_entries() > 0, "queried pairs are cached");
        // Registration is O(1): no dense state to rebuild. The stale cache
        // is dropped on the next query and the new worker is visible.
        m.register(WorkerProfile::new(WorkerId(4), "dan").with_native_lang("en"));
        assert!(m.pair_affinity(WorkerId(2), WorkerId(4)) > 0.0);
        assert_eq!(m.pair_affinity(WorkerId(9), WorkerId(1)), 0.0, "unknown id");
        assert_eq!(m.candidate_affinity(&m.ids()).len(), 4);
    }

    #[test]
    fn team_affinity_uses_candidate_submatrix() {
        let m = manager();
        let team = [WorkerId(1), WorkerId(2), WorkerId(3)];
        let sub = m.candidate_affinity(&team);
        let expect = crowd4u_crowd::affinity::group_affinity(&sub, &team);
        assert_eq!(m.team_affinity(&team).to_bits(), expect.to_bits());
        // Unknown members contribute 0 pairs but still count in the mean,
        // exactly as a full-population matrix lookup would score them.
        assert!(m.team_affinity(&[WorkerId(1), WorkerId(99)]) == 0.0);
        assert_eq!(m.team_affinity(&[WorkerId(1)]), 0.0);
    }

    #[test]
    fn affinity_cache_policy_bounds_entries() {
        let mut m = manager();
        m.set_affinity_cache(0.0, 1);
        for a in m.ids() {
            for b in m.ids() {
                m.pair_affinity(a, b);
            }
        }
        assert!(m.cached_affinity_entries() <= 2 * m.len());
    }

    #[test]
    fn snapshot_install_keeps_version_lockstep() {
        let mut serial = WorkerManager::new();
        let mut replica = WorkerManager::new();
        let profiles: Vec<WorkerProfile> = (1..=5)
            .map(|i| WorkerProfile::new(WorkerId(i), format!("w{i}")))
            .collect();
        for p in &profiles {
            serial.register(p.clone());
        }
        // A snapshot compacting re-registrations covers more events than
        // it carries profiles.
        serial.register(profiles[0].clone());
        replica.install_snapshot(profiles, 6);
        assert_eq!(replica.version(), serial.version());
        assert_eq!(replica.len(), serial.len());
    }

    #[test]
    fn skill_refresh_from_history() {
        let mut m = manager();
        // worker 1 consistently great, worker 3 consistently poor
        for _ in 0..5 {
            m.record_outcome(vec![WorkerId(1)], 0.95);
            m.record_outcome(vec![WorkerId(3)], 0.15);
        }
        assert_eq!(m.history_len(), 10);
        let n = m.refresh_skills("translation");
        assert_eq!(n, 2);
        let s1 = m.get(WorkerId(1)).unwrap().factors.skill("translation");
        let s3 = m.get(WorkerId(3)).unwrap().factors.skill("translation");
        assert!(s1 > 0.8, "skilled worker got {s1}");
        assert!(s3 < 0.3, "unskilled worker got {s3}");
        // worker 2 never observed: unchanged default
        assert_eq!(
            m.get(WorkerId(2)).unwrap().factors.skill("translation"),
            0.0
        );
    }

    #[test]
    fn refresh_with_no_history_is_noop() {
        let mut m = manager();
        assert_eq!(m.refresh_skills("x"), 0);
    }

    #[test]
    fn version_tracks_profile_changes() {
        let mut m = manager();
        let v0 = m.version();
        m.register(WorkerProfile::new(WorkerId(9), "new"));
        let v1 = m.version();
        assert!(v1 > v0);
        // reads do not bump
        m.get(WorkerId(9)).unwrap();
        assert_eq!(m.version(), v1);
        // mutable access bumps (conservatively)
        m.get_mut(WorkerId(9)).unwrap().factors.logged_in = false;
        assert!(m.version() > v1);
        let v2 = m.version();
        // skill refresh bumps only when profiles changed
        assert_eq!(m.refresh_skills("x"), 0);
        assert_eq!(m.version(), v2);
        m.record_outcome(vec![WorkerId(1)], 0.9);
        assert!(m.refresh_skills("x") > 0);
        assert!(m.version() > v2);
    }

    #[test]
    fn outcomes_for_unknown_workers_ignored_in_refresh() {
        let mut m = manager();
        m.record_outcome(vec![WorkerId(77)], 0.9);
        // estimate includes w77 but profile update skips it
        assert_eq!(m.refresh_skills("x"), 0);
    }
}
