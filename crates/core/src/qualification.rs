//! Qualification tests.
//!
//! Paper §2.4: skills are "computed by the system based on previously
//! performed tasks (e.g., **via qualification tests**, or by learning
//! workers' profiles)". A qualification test is a graded form: the score
//! (fraction of correctly answered questions) becomes the worker's level
//! on the tested skill.

use crate::error::{PlatformError, WorkerId};
use crate::workers::WorkerManager;
use crowd4u_forms::field::{Field, FieldType};
use crowd4u_forms::form::{Form, FormResponse};
use crowd4u_storage::prelude::Value;

/// A graded test for one skill.
pub struct QualificationTest {
    pub skill: String,
    pub form: Form,
    /// Expected answer per field name, in form order.
    answer_key: Vec<(String, Value)>,
}

impl QualificationTest {
    /// Build a test from (question, choices, correct answer) triples.
    pub fn multiple_choice(
        skill: impl Into<String>,
        questions: &[(&str, &[&str], &str)],
    ) -> QualificationTest {
        let skill = skill.into();
        let mut form = Form::new(format!("Qualification test: {skill}"))
            .describe("Your score sets your skill level");
        let mut answer_key = Vec::with_capacity(questions.len());
        for (i, (prompt, choices, correct)) in questions.iter().enumerate() {
            let name = format!("q{i}");
            assert!(
                choices.contains(correct),
                "answer key must be one of the choices"
            );
            form = form.field(Field::new(
                name.clone(),
                *prompt,
                FieldType::choice(choices),
            ));
            answer_key.push((name, Value::Str((*correct).to_string())));
        }
        QualificationTest {
            skill,
            form,
            answer_key,
        }
    }

    pub fn questions(&self) -> usize {
        self.answer_key.len()
    }

    /// Grade a submission: fraction of questions answered correctly.
    /// Invalid submissions (wrong types / unknown fields) score an error.
    pub fn grade(&self, response: &FormResponse) -> Result<f64, PlatformError> {
        let values = self.form.validate(response).map_err(|errs| {
            PlatformError::Cylog(crowd4u_cylog::error::CylogError::Eval(format!(
                "invalid test submission: {} field error(s)",
                errs.len()
            )))
        })?;
        if self.answer_key.is_empty() {
            return Ok(0.0);
        }
        let correct = self
            .answer_key
            .iter()
            .enumerate()
            .filter(|(i, (_, expect))| values.get(*i) == Some(expect))
            .count();
        Ok(correct as f64 / self.answer_key.len() as f64)
    }
}

/// Grade a worker's submission and record the score as their skill level
/// (system-computed human factor). Returns the score.
pub fn take_test(
    workers: &mut WorkerManager,
    worker: WorkerId,
    test: &QualificationTest,
    response: &FormResponse,
) -> Result<f64, PlatformError> {
    let score = test.grade(response)?;
    let profile = workers.get_mut(worker)?;
    profile.factors.set_skill(test.skill.clone(), score);
    Ok(score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_crowd::profile::WorkerProfile;

    fn test_fixture() -> QualificationTest {
        QualificationTest::multiple_choice(
            "translation",
            &[
                ("'bonjour' means", &["hello", "goodbye"], "hello"),
                ("'merci' means", &["please", "thanks"], "thanks"),
                ("'chat' means", &["cat", "dog"], "cat"),
                ("'pain' means", &["bread", "hurt"], "bread"),
            ],
        )
    }

    #[test]
    fn grading_counts_correct_answers() {
        let t = test_fixture();
        assert_eq!(t.questions(), 4);
        let perfect = FormResponse::new()
            .set("q0", "hello")
            .set("q1", "thanks")
            .set("q2", "cat")
            .set("q3", "bread");
        assert_eq!(t.grade(&perfect).unwrap(), 1.0);
        let half = FormResponse::new()
            .set("q0", "hello")
            .set("q1", "please")
            .set("q2", "cat")
            .set("q3", "hurt");
        assert_eq!(t.grade(&half).unwrap(), 0.5);
    }

    #[test]
    fn invalid_submissions_rejected() {
        let t = test_fixture();
        // missing questions
        assert!(t.grade(&FormResponse::new()).is_err());
        // out-of-choice answer
        let bad = FormResponse::new()
            .set("q0", "banana")
            .set("q1", "thanks")
            .set("q2", "cat")
            .set("q3", "bread");
        assert!(t.grade(&bad).is_err());
    }

    #[test]
    fn score_becomes_skill_level() {
        let mut wm = WorkerManager::new();
        wm.register(WorkerProfile::new(WorkerId(1), "ann"));
        let t = test_fixture();
        let resp = FormResponse::new()
            .set("q0", "hello")
            .set("q1", "thanks")
            .set("q2", "cat")
            .set("q3", "hurt");
        let score = take_test(&mut wm, WorkerId(1), &t, &resp).unwrap();
        assert_eq!(score, 0.75);
        assert_eq!(
            wm.get(WorkerId(1)).unwrap().factors.skill("translation"),
            0.75
        );
        // unknown worker errors
        assert!(take_test(&mut wm, WorkerId(9), &t, &resp).is_err());
    }

    #[test]
    #[should_panic]
    fn answer_key_must_be_a_choice() {
        let _ = QualificationTest::multiple_choice("x", &[("q", &["a", "b"] as &[&str], "c")]);
    }
}
