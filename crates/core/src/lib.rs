//! # crowd4u-core — the Crowd4U platform
//!
//! The paper's primary contribution: a declarative, collaboration-aware
//! crowdsourcing platform. This crate wires every substrate together,
//! mirroring the architecture of paper Figure 2:
//!
//! | Figure 2 component          | module |
//! |-----------------------------|--------|
//! | CyLog processor             | per-project [`crowd4u_cylog::engine::CylogEngine`] held by [`platform::Project`] |
//! | Task pool                   | [`task::TaskPool`] |
//! | Worker manager (user properties, affinity matrix) | [`workers::WorkerManager`] |
//! | Task assignment controller  | [`controller::AssignmentController`] |
//! | Eligible / InterestedIn / Undertakes | [`relations::RelationStore`] (stored relationally) |
//! | Project admin pages         | [`pages::AdminPage`] |
//! | User pages                  | [`pages::UserPage`] |
//!
//! The workflow of §2.2.1 maps to methods on [`platform::Crowd4U`]:
//! 1. register a project (admin page available) — [`platform::Crowd4U::register_project`];
//! 2. desired factors reach the controller — carried in [`platform::Project`];
//! 3. workers see eligible tasks, declare interest — [`platform::Crowd4U::express_interest`];
//! 4. worker manager supplies factors + affinity — [`workers::WorkerManager::pair_affinity`];
//! 5. controller suggests a team — [`platform::Crowd4U::run_assignment`];
//!    deadline misses re-execute assignment ([`platform::Crowd4U::process_deadlines`]),
//!    and infeasibility produces a requester suggestion.

pub mod controller;
pub mod declarative;
pub mod decompose;
pub mod eligibility;
pub mod error;
pub mod events;
pub mod pages;
pub mod platform;
pub mod qualification;
pub mod relations;
pub mod task;
pub mod workers;

pub mod prelude {
    pub use crate::controller::{
        candidates_from_profiles, constraints_from_factors, AlgorithmChoice, AssignmentController,
    };
    pub use crate::declarative::{sync_worker_facts, uses_declarative_eligibility};
    pub use crate::decompose::{
        ChunkSplitter, Decomposer, OutlineSplitter, Piece, SentenceSplitter,
    };
    pub use crate::eligibility::{check_eligibility, is_eligible, Ineligibility};
    pub use crate::error::{PlatformError, ProjectId, TaskId, WorkerId};
    pub use crate::events::PlatformEvent;
    pub use crate::pages::{admin_page, user_page, AdminPage, UserPage};
    pub use crate::platform::{BatchReport, Crowd4U, Project, ProjectSlice};
    pub use crate::qualification::{take_test, QualificationTest};
    pub use crate::relations::RelationStore;
    pub use crate::task::{Task, TaskBody, TaskPool, TaskState};
    pub use crate::workers::WorkerManager;
}
