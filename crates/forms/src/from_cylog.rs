//! Generate task forms from CyLog open predicates.
//!
//! Paper §2.1: "Crowd4U also provides tools to help requesters generate
//! CyLog rules by allowing them to define tasks with a form-based user
//! interface" — and the reverse direction is how workers *see* CyLog tasks:
//! every open-predicate question renders as a form whose read-only fields
//! are the question's inputs and whose editable fields are its outputs.

use crate::field::{Field, FieldType};
use crate::form::Form;
use crowd4u_cylog::analysis::{CompiledProgram, PredKind};
use crowd4u_cylog::engine::OpenRequest;
use crowd4u_storage::prelude::{Value, ValueType};

/// Map a storage type to the form field type a worker fills in.
fn field_type_for(ty: ValueType) -> FieldType {
    match ty {
        ValueType::Bool => FieldType::Boolean,
        ValueType::Int => FieldType::integer(),
        ValueType::Float => FieldType::number(),
        ValueType::Str => FieldType::textarea(),
        // Ids are entered as integers (pickers exist only in the real UI).
        ValueType::Id => FieldType::integer(),
    }
}

/// Build the worker-facing form for one open question.
///
/// Input columns become read-only context fields pre-filled with the
/// question's values; output columns become required editable fields.
pub fn form_for_request(program: &CompiledProgram, req: &OpenRequest) -> Form {
    let info = program.pred_info(req.pred);
    let n_inputs = match info.kind {
        PredKind::Open { n_inputs, .. } => n_inputs,
        PredKind::Closed => 0,
    };
    let mut form = Form::new(format!("Task: {}", info.name)).describe(if req.points > 0 {
        format!("Answer to earn {} points", req.points)
    } else {
        "Volunteer task".to_string()
    });
    for (i, (name, ty)) in info
        .col_names
        .iter()
        .zip(&info.col_types)
        .enumerate()
        .take(n_inputs)
    {
        let value = req.inputs.get(i).cloned().unwrap_or(Value::Null);
        form =
            form.field(Field::new(name.clone(), name.clone(), field_type_for(*ty)).readonly(value));
    }
    for (name, ty) in info.col_names.iter().zip(&info.col_types).skip(n_inputs) {
        form = form.field(Field::new(name.clone(), name.clone(), field_type_for(*ty)));
    }
    form
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::form::FormResponse;
    use crowd4u_cylog::engine::CylogEngine;
    use crowd4u_storage::prelude::Value;

    fn engine() -> CylogEngine {
        let mut e = CylogEngine::from_source(
            "rel sentence(s: str).\n\
             open judge(src: str, dst: str) -> (ok: bool, score: float) points 2.\n\
             rel out(s: str, ok: bool).\n\
             out(S, OK) :- sentence(S), judge(S, S, OK, _).\n",
        )
        .unwrap();
        e.add_fact("sentence", vec!["hola".into()]).unwrap();
        e.run().unwrap();
        e
    }

    #[test]
    fn form_mirrors_open_predicate() {
        let e = engine();
        let req = &e.pending_requests()[0];
        let form = form_for_request(e.program(), req);
        assert_eq!(form.fields.len(), 4);
        // inputs are read-only and prefilled
        assert_eq!(
            form.fields[0].readonly_value,
            Some(Value::Str("hola".into()))
        );
        assert_eq!(
            form.fields[1].readonly_value,
            Some(Value::Str("hola".into()))
        );
        // outputs editable: bool then float
        assert!(form.fields[2].readonly_value.is_none());
        assert_eq!(form.fields[2].ty, FieldType::Boolean);
        assert_eq!(form.fields[3].ty, FieldType::number());
        assert!(form.description.contains("2 points"));
    }

    #[test]
    fn filled_form_supplies_the_answer() {
        let mut e = engine();
        let req = e.pending_requests()[0].clone();
        let form = form_for_request(e.program(), &req);
        let vals = form
            .validate(&FormResponse::new().set("ok", true).set("score", 0.9))
            .unwrap();
        // First n_inputs values echo the question, the rest are the answer.
        let outputs = vals[2..].to_vec();
        e.answer(&req.pred_name, req.inputs.clone(), outputs, Some(1))
            .unwrap();
        e.run().unwrap();
        assert_eq!(e.fact_count("out").unwrap(), 1);
    }

    #[test]
    fn bad_fill_is_rejected_by_the_form() {
        let e = engine();
        let req = &e.pending_requests()[0];
        let form = form_for_request(e.program(), req);
        // Missing score, wrong type for ok.
        let errs = form
            .validate(&FormResponse::new().set("ok", 3i64))
            .unwrap_err();
        assert!(errs.iter().any(|er| er.field == "ok"));
        assert!(errs.iter().any(|er| er.field == "score"));
    }

    #[test]
    fn type_mapping() {
        assert_eq!(field_type_for(ValueType::Bool), FieldType::Boolean);
        assert_eq!(field_type_for(ValueType::Int), FieldType::integer());
        assert_eq!(field_type_for(ValueType::Id), FieldType::integer());
        assert_eq!(field_type_for(ValueType::Float), FieldType::number());
        assert_eq!(field_type_for(ValueType::Str), FieldType::textarea());
    }
}
