//! Form fields: typed inputs with validation.

use crowd4u_storage::prelude::{Value, ValueType};
use std::fmt;

/// The type of a form field, with its validation parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldType {
    /// Free text; `max_len` 0 means unlimited.
    Text { multiline: bool, max_len: usize },
    /// A number, optionally integral and/or bounded.
    Number {
        integer: bool,
        min: Option<f64>,
        max: Option<f64>,
    },
    /// Yes/no.
    Boolean,
    /// One of a fixed set of options.
    Choice { options: Vec<String> },
    /// 1..=max stars.
    Rating { max: u32 },
}

impl FieldType {
    pub fn text() -> FieldType {
        FieldType::Text {
            multiline: false,
            max_len: 0,
        }
    }

    pub fn textarea() -> FieldType {
        FieldType::Text {
            multiline: true,
            max_len: 0,
        }
    }

    pub fn number() -> FieldType {
        FieldType::Number {
            integer: false,
            min: None,
            max: None,
        }
    }

    pub fn integer() -> FieldType {
        FieldType::Number {
            integer: true,
            min: None,
            max: None,
        }
    }

    pub fn bounded(min: f64, max: f64) -> FieldType {
        FieldType::Number {
            integer: false,
            min: Some(min),
            max: Some(max),
        }
    }

    pub fn choice(options: &[&str]) -> FieldType {
        FieldType::Choice {
            options: options.iter().map(|s| (*s).to_string()).collect(),
        }
    }

    /// Storage type a valid value of this field has.
    pub fn value_type(&self) -> ValueType {
        match self {
            FieldType::Text { .. } | FieldType::Choice { .. } => ValueType::Str,
            FieldType::Number { integer: true, .. } => ValueType::Int,
            FieldType::Number { .. } => ValueType::Float,
            FieldType::Boolean => ValueType::Bool,
            FieldType::Rating { .. } => ValueType::Int,
        }
    }
}

/// A single field of a form.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub name: String,
    pub label: String,
    pub required: bool,
    pub ty: FieldType,
    /// Pre-filled, non-editable context (used to show open-predicate inputs).
    pub readonly_value: Option<Value>,
}

impl Field {
    pub fn new(name: impl Into<String>, label: impl Into<String>, ty: FieldType) -> Field {
        Field {
            name: name.into(),
            label: label.into(),
            required: true,
            ty,
            readonly_value: None,
        }
    }

    pub fn optional(mut self) -> Field {
        self.required = false;
        self
    }

    pub fn readonly(mut self, v: Value) -> Field {
        self.readonly_value = Some(v);
        self
    }

    /// Validate a submitted value against this field.
    pub fn validate(&self, value: &Value) -> Result<(), FieldError> {
        if self.readonly_value.is_some() {
            // Read-only fields must echo the prefilled value (or be omitted,
            // which the form layer handles by substituting it).
            if Some(value) != self.readonly_value.as_ref() {
                return Err(FieldError {
                    field: self.name.clone(),
                    message: "read-only field was modified".into(),
                });
            }
            return Ok(());
        }
        if value.is_null() {
            if self.required {
                return Err(self.err("required field is empty"));
            }
            return Ok(());
        }
        match (&self.ty, value) {
            (FieldType::Text { max_len, .. }, Value::Str(s)) => {
                if *max_len > 0 && s.chars().count() > *max_len {
                    return Err(self.err(format!("text exceeds {max_len} characters")));
                }
                Ok(())
            }
            (FieldType::Boolean, Value::Bool(_)) => Ok(()),
            (FieldType::Number { integer, min, max }, v) => {
                let f = match (v, integer) {
                    (Value::Int(i), _) => *i as f64,
                    (Value::Float(f), false) => *f,
                    (Value::Float(_), true) => {
                        return Err(self.err("expected an integer"));
                    }
                    _ => return Err(self.err("expected a number")),
                };
                if let Some(lo) = min {
                    if f < *lo {
                        return Err(self.err(format!("below minimum {lo}")));
                    }
                }
                if let Some(hi) = max {
                    if f > *hi {
                        return Err(self.err(format!("above maximum {hi}")));
                    }
                }
                Ok(())
            }
            (FieldType::Choice { options }, Value::Str(s)) => {
                if options.iter().any(|o| o == s) {
                    Ok(())
                } else {
                    Err(self.err(format!("`{s}` is not one of the options")))
                }
            }
            (FieldType::Rating { max }, Value::Int(i)) => {
                if *i >= 1 && *i <= *max as i64 {
                    Ok(())
                } else {
                    Err(self.err(format!("rating must be between 1 and {max}")))
                }
            }
            _ => Err(self.err("wrong value type")),
        }
    }

    fn err(&self, message: impl Into<String>) -> FieldError {
        FieldError {
            field: self.name.clone(),
            message: message.into(),
        }
    }
}

/// A validation failure for one field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldError {
    pub field: String,
    pub message: String,
}

impl fmt::Display for FieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.field, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_validation() {
        let f = Field::new(
            "title",
            "Title",
            FieldType::Text {
                multiline: false,
                max_len: 5,
            },
        );
        f.validate(&Value::Str("ok".into())).unwrap();
        assert!(f.validate(&Value::Str("toolong".into())).is_err());
        assert!(f.validate(&Value::Int(3)).is_err());
        assert!(f.validate(&Value::Null).is_err()); // required
        f.clone().optional().validate(&Value::Null).unwrap();
    }

    #[test]
    fn number_validation() {
        let f = Field::new("n", "N", FieldType::bounded(0.0, 1.0));
        f.validate(&Value::Float(0.5)).unwrap();
        f.validate(&Value::Int(1)).unwrap(); // int accepted for float field
        assert!(f.validate(&Value::Float(1.5)).is_err());
        assert!(f.validate(&Value::Float(-0.1)).is_err());
        assert!(f.validate(&Value::Str("x".into())).is_err());
        let i = Field::new("i", "I", FieldType::integer());
        i.validate(&Value::Int(-3)).unwrap();
        assert!(i.validate(&Value::Float(0.5)).is_err());
    }

    #[test]
    fn boolean_choice_rating() {
        let b = Field::new("ok", "OK?", FieldType::Boolean);
        b.validate(&Value::Bool(true)).unwrap();
        assert!(b.validate(&Value::Int(1)).is_err());

        let c = Field::new("topic", "Topic", FieldType::choice(&["news", "sports"]));
        c.validate(&Value::Str("news".into())).unwrap();
        assert!(c.validate(&Value::Str("cooking".into())).is_err());

        let r = Field::new("stars", "Stars", FieldType::Rating { max: 5 });
        r.validate(&Value::Int(1)).unwrap();
        r.validate(&Value::Int(5)).unwrap();
        assert!(r.validate(&Value::Int(0)).is_err());
        assert!(r.validate(&Value::Int(6)).is_err());
    }

    #[test]
    fn readonly_fields() {
        let f = Field::new("src", "Source", FieldType::text()).readonly(Value::Str("hi".into()));
        f.validate(&Value::Str("hi".into())).unwrap();
        assert!(f.validate(&Value::Str("changed".into())).is_err());
    }

    #[test]
    fn value_types() {
        assert_eq!(FieldType::text().value_type(), ValueType::Str);
        assert_eq!(FieldType::integer().value_type(), ValueType::Int);
        assert_eq!(FieldType::number().value_type(), ValueType::Float);
        assert_eq!(FieldType::Boolean.value_type(), ValueType::Bool);
        assert_eq!(FieldType::Rating { max: 5 }.value_type(), ValueType::Int);
        assert_eq!(FieldType::choice(&["a"]).value_type(), ValueType::Str);
    }

    #[test]
    fn error_display() {
        let e = FieldError {
            field: "x".into(),
            message: "bad".into(),
        };
        assert_eq!(e.to_string(), "x: bad");
    }
}
