//! Spreadsheet (CSV) task import.
//!
//! Paper §2.1: requesters can "define tasks with a form-based user interface
//! and spreadsheets". A spreadsheet is a CSV file whose header names the
//! input columns of a CyLog base relation; each row becomes one seed fact
//! (and hence, through the rules, one or more generated tasks).

use crowd4u_cylog::engine::CylogEngine;
use crowd4u_cylog::error::CylogError;
use crowd4u_storage::csv::csv_to_rows;
use crowd4u_storage::prelude::{Column, Schema, StorageError};

/// Import a CSV document into a (non-derived) predicate of the engine.
/// Returns how many *new* facts were inserted.
pub fn import_csv(
    engine: &mut CylogEngine,
    pred: &str,
    csv_text: &str,
) -> Result<usize, CylogError> {
    let pid = engine
        .program()
        .pred(pred)
        .ok_or_else(|| CylogError::Eval(format!("unknown predicate `{pred}`")))?;
    let info = engine.program().pred_info(pid).clone();
    let cols: Vec<Column> = info
        .col_names
        .iter()
        .zip(&info.col_types)
        .map(|(n, t)| Column::nullable(n.clone(), *t))
        .collect();
    let schema = Schema::new(cols).map_err(CylogError::from)?;
    let rows = csv_to_rows(csv_text, &schema).map_err(CylogError::from)?;
    let mut added = 0;
    for row in rows {
        if engine.add_fact(pred, row.into_values())? {
            added += 1;
        }
    }
    Ok(added)
}

/// Export all facts of a predicate as CSV (the reverse direction: task
/// results back to the requester's spreadsheet).
pub fn export_csv(engine: &CylogEngine, pred: &str) -> Result<String, CylogError> {
    let rs = engine.facts(pred)?;
    Ok(crowd4u_storage::csv::rows_to_csv(&rs.schema, &rs.rows))
}

/// Convenience: map a CSV error to a line-labelled message for the UI.
pub fn describe_csv_error(e: &CylogError) -> String {
    match e {
        CylogError::Storage(StorageError::Csv { line, message }) => {
            format!("spreadsheet line {line}: {message}")
        }
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> CylogEngine {
        CylogEngine::from_source(
            "rel sentence(sid: id, text: str).\n\
             open translate(sid: id, text: str) -> (t: str).\n\
             rel out(sid: id, t: str).\n\
             out(S, T) :- sentence(S, X), translate(S, X, T).\n",
        )
        .unwrap()
    }

    #[test]
    fn import_seeds_tasks() {
        let mut e = engine();
        let n = import_csv(&mut e, "sentence", "sid,text\n#1,hello\n#2,good morning\n").unwrap();
        assert_eq!(n, 2);
        e.run().unwrap();
        assert_eq!(e.pending_requests().len(), 2);
        // Re-import is idempotent.
        let n2 = import_csv(&mut e, "sentence", "sid,text\n#1,hello\n").unwrap();
        assert_eq!(n2, 0);
    }

    #[test]
    fn import_reordered_columns() {
        let mut e = engine();
        let n = import_csv(&mut e, "sentence", "text,sid\nhej,#5\n").unwrap();
        assert_eq!(n, 1);
        assert_eq!(e.fact_count("sentence").unwrap(), 1);
    }

    #[test]
    fn import_errors() {
        let mut e = engine();
        // unknown predicate
        assert!(import_csv(&mut e, "nope", "a\n1\n").is_err());
        // unknown column in header
        assert!(import_csv(&mut e, "sentence", "bogus\nx\n").is_err());
        // type error in a cell, with line info
        let err = import_csv(&mut e, "sentence", "sid,text\nnotanid,x\n").unwrap_err();
        let msg = describe_csv_error(&err);
        assert!(msg.contains("line 2"), "got: {msg}");
        // derived predicates cannot be imported into
        let err = import_csv(&mut e, "out", "sid,t\n#1,x\n").unwrap_err();
        assert!(err.to_string().contains("derived"));
    }

    #[test]
    fn export_round_trip() {
        let mut e = engine();
        import_csv(&mut e, "sentence", "sid,text\n#1,hello\n").unwrap();
        e.run().unwrap();
        e.answer(
            "translate",
            vec![1u64.into(), "hello".into()],
            vec!["bonjour".into()],
            None,
        )
        .unwrap();
        e.run().unwrap();
        let csv = export_csv(&e, "out").unwrap();
        assert!(csv.starts_with("sid,t\n"));
        assert!(csv.contains("#1,bonjour"));
        assert!(export_csv(&e, "nope").is_err());
    }

    #[test]
    fn describe_passes_through_other_errors() {
        let e = CylogError::Eval("boom".into());
        assert!(describe_csv_error(&e).contains("boom"));
    }
}
