//! The project administration page's constraint entry form (paper Figure 3):
//! "a requester specifies the desired human factors for task assignment …
//! The requester also specifies an expiration time for worker recruitment."

use crate::field::{Field, FieldType};
use crate::form::{Form, FormResponse};
use crowd4u_storage::prelude::Value;

/// Validated requester input from the admin page.
#[derive(Debug, Clone, PartialEq)]
pub struct DesiredFactors {
    /// Language workers must speak (natively or fluently), if any.
    pub required_language: Option<String>,
    /// Skill dimension to screen on, with its minimum mean level.
    pub skill_name: Option<String>,
    pub min_quality: f64,
    /// Team size bounds; `max_team` is the upper critical mass.
    pub min_team: usize,
    pub max_team: usize,
    /// Budget cap across the team (0-cost volunteers make this moot).
    pub max_cost: f64,
    /// Recruitment expiration in simulated seconds.
    pub recruitment_secs: u64,
    /// Require workers to be logged in.
    pub require_login: bool,
}

impl Default for DesiredFactors {
    fn default() -> Self {
        DesiredFactors {
            required_language: None,
            skill_name: None,
            min_quality: 0.0,
            min_team: 2,
            max_team: 5,
            max_cost: f64::INFINITY,
            recruitment_secs: 3600,
            require_login: true,
        }
    }
}

/// The constraint entry form itself, matching Figure 3's fields.
pub fn constraint_form(skill_options: &[&str], language_options: &[&str]) -> Form {
    let mut langs = vec!["any"];
    langs.extend_from_slice(language_options);
    let mut skills = vec!["none"];
    skills.extend_from_slice(skill_options);
    Form::new("Project administration: desired human factors")
        .describe("Constraints the suggested worker team must satisfy")
        .field(Field::new(
            "language",
            "Required language",
            FieldType::choice(&langs),
        ))
        .field(Field::new(
            "skill",
            "Skill to screen on",
            FieldType::choice(&skills),
        ))
        .field(Field::new(
            "min_quality",
            "Minimum mean skill",
            FieldType::bounded(0.0, 1.0),
        ))
        .field(Field::new(
            "min_team",
            "Minimum team size",
            FieldType::Number {
                integer: true,
                min: Some(1.0),
                max: Some(100.0),
            },
        ))
        .field(Field::new(
            "max_team",
            "Upper critical mass",
            FieldType::Number {
                integer: true,
                min: Some(1.0),
                max: Some(100.0),
            },
        ))
        .field(
            Field::new(
                "max_cost",
                "Budget",
                FieldType::Number {
                    integer: false,
                    min: Some(0.0),
                    max: None,
                },
            )
            .optional(),
        )
        .field(Field::new(
            "recruitment_secs",
            "Recruitment expiration (seconds)",
            FieldType::Number {
                integer: true,
                min: Some(1.0),
                max: None,
            },
        ))
        .field(Field::new(
            "require_login",
            "Workers must be logged in",
            FieldType::Boolean,
        ))
}

/// Errors from cross-field validation of the admin form.
#[derive(Debug, Clone, PartialEq)]
pub enum AdminFormError {
    Field(Vec<crate::field::FieldError>),
    /// min_team > max_team.
    TeamBoundsInverted {
        min: usize,
        max: usize,
    },
}

impl std::fmt::Display for AdminFormError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdminFormError::Field(errs) => {
                write!(f, "invalid fields: ")?;
                for (i, e) in errs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            AdminFormError::TeamBoundsInverted { min, max } => {
                write!(
                    f,
                    "minimum team size {min} exceeds upper critical mass {max}"
                )
            }
        }
    }
}

/// Parse a requester's submission into [`DesiredFactors`].
pub fn parse_constraints(
    form: &Form,
    response: &FormResponse,
) -> Result<DesiredFactors, AdminFormError> {
    let values = form.validate(response).map_err(AdminFormError::Field)?;
    let by_name = |name: &str| -> &Value {
        let idx = form
            .fields
            .iter()
            .position(|f| f.name == name)
            .expect("constraint form field");
        &values[idx]
    };
    let language = match by_name("language").as_str() {
        Some("any") | None => None,
        Some(l) => Some(l.to_string()),
    };
    let skill = match by_name("skill").as_str() {
        Some("none") | None => None,
        Some(s) => Some(s.to_string()),
    };
    let min_team = by_name("min_team").as_int().unwrap_or(2) as usize;
    let max_team = by_name("max_team").as_int().unwrap_or(5) as usize;
    if min_team > max_team {
        return Err(AdminFormError::TeamBoundsInverted {
            min: min_team,
            max: max_team,
        });
    }
    Ok(DesiredFactors {
        required_language: language,
        skill_name: skill,
        min_quality: by_name("min_quality").as_float().unwrap_or(0.0),
        min_team,
        max_team,
        max_cost: by_name("max_cost").as_float().unwrap_or(f64::INFINITY),
        recruitment_secs: by_name("recruitment_secs").as_int().unwrap_or(3600) as u64,
        require_login: by_name("require_login").as_bool().unwrap_or(true),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_response() -> FormResponse {
        FormResponse::new()
            .set("language", "en")
            .set("skill", "translation")
            .set("min_quality", 0.6)
            .set("min_team", 3i64)
            .set("max_team", 5i64)
            .set("max_cost", 10.0)
            .set("recruitment_secs", 7200i64)
            .set("require_login", true)
    }

    #[test]
    fn parses_complete_form() {
        let form = constraint_form(&["translation"], &["en", "ja"]);
        let d = parse_constraints(&form, &full_response()).unwrap();
        assert_eq!(d.required_language.as_deref(), Some("en"));
        assert_eq!(d.skill_name.as_deref(), Some("translation"));
        assert_eq!(d.min_quality, 0.6);
        assert_eq!(d.min_team, 3);
        assert_eq!(d.max_team, 5);
        assert_eq!(d.max_cost, 10.0);
        assert_eq!(d.recruitment_secs, 7200);
        assert!(d.require_login);
    }

    #[test]
    fn any_language_and_no_skill_become_none() {
        let form = constraint_form(&["translation"], &["en"]);
        let resp = full_response().set("language", "any").set("skill", "none");
        let d = parse_constraints(&form, &resp).unwrap();
        assert!(d.required_language.is_none());
        assert!(d.skill_name.is_none());
    }

    #[test]
    fn field_errors_reported() {
        let form = constraint_form(&[], &["en"]);
        // min_quality out of range, missing min_team
        let resp = FormResponse::new()
            .set("language", "en")
            .set("skill", "none")
            .set("min_quality", 2.0)
            .set("max_team", 5i64)
            .set("recruitment_secs", 100i64)
            .set("require_login", false);
        let err = parse_constraints(&form, &resp).unwrap_err();
        match err {
            AdminFormError::Field(errs) => {
                let fields: Vec<&str> = errs.iter().map(|e| e.field.as_str()).collect();
                assert!(fields.contains(&"min_quality"));
                assert!(fields.contains(&"min_team"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn inverted_bounds_rejected() {
        let form = constraint_form(&[], &["en"]);
        let resp = full_response()
            .set("skill", "none")
            .set("min_team", 6i64)
            .set("max_team", 2i64);
        let err = parse_constraints(&form, &resp).unwrap_err();
        assert!(matches!(
            err,
            AdminFormError::TeamBoundsInverted { min: 6, max: 2 }
        ));
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn unknown_language_rejected_by_choice_field() {
        let form = constraint_form(&[], &["en"]);
        let resp = full_response().set("language", "xx").set("skill", "none");
        assert!(parse_constraints(&form, &resp).is_err());
    }

    #[test]
    fn optional_budget_defaults_to_infinity() {
        let form = constraint_form(&[], &["en"]);
        let mut resp = full_response().set("skill", "none");
        resp.values.remove("max_cost");
        let d = parse_constraints(&form, &resp).unwrap();
        assert!(d.max_cost.is_infinite());
    }

    #[test]
    fn defaults_are_sane() {
        let d = DesiredFactors::default();
        assert_eq!(d.min_team, 2);
        assert_eq!(d.max_team, 5);
        assert!(d.required_language.is_none());
        assert!(d.require_login);
    }
}
