//! # crowd4u-forms — the form-based task UI, as data
//!
//! Crowd4U "provides an easy-to-use form-based task UI" (abstract) and lets
//! requesters "define tasks with a form-based user interface and
//! spreadsheets" (§2.1). The production system renders web pages; this crate
//! models the same artifacts as plain data with deterministic text
//! rendering, so simulated workers and tests can drive exactly the same
//! validation paths:
//!
//! * [`field`]/[`form`] — typed fields, forms, responses, validation;
//! * [`from_cylog`] — worker task forms generated from CyLog open
//!   predicates (inputs read-only, outputs editable);
//! * [`admin`] — the Figure 3 constraint-entry form on the project
//!   administration page, parsed into [`admin::DesiredFactors`];
//! * [`spreadsheet`] — CSV import of task seeds / export of results.

pub mod admin;
pub mod field;
pub mod form;
pub mod from_cylog;
pub mod spreadsheet;

pub mod prelude {
    pub use crate::admin::{constraint_form, parse_constraints, AdminFormError, DesiredFactors};
    pub use crate::field::{Field, FieldError, FieldType};
    pub use crate::form::{Form, FormResponse};
    pub use crate::from_cylog::form_for_request;
    pub use crate::spreadsheet::{describe_csv_error, export_csv, import_csv};
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use crowd4u_storage::prelude::Value;
    use proptest::prelude::*;

    proptest! {
        /// Validation is total: any response either validates or produces
        /// at least one field error — never a panic.
        #[test]
        fn validation_total(
            text in "[ -~]{0,30}",
            num in proptest::option::of(-1e6f64..1e6),
            flag in proptest::option::of(any::<bool>()),
            extra in proptest::option::of("[a-z]{1,8}"),
        ) {
            let form = Form::new("t")
                .field(Field::new("text", "T", FieldType::Text { multiline: false, max_len: 10 }))
                .field(Field::new("num", "N", FieldType::bounded(0.0, 100.0)))
                .field(Field::new("flag", "F", FieldType::Boolean).optional());
            let mut resp = FormResponse::new().set("text", text);
            if let Some(n) = num { resp = resp.set("num", n); }
            if let Some(b) = flag { resp = resp.set("flag", b); }
            if let Some(x) = extra { resp = resp.set(x, 1i64); }
            match form.validate(&resp) {
                Ok(vals) => {
                    prop_assert_eq!(vals.len(), 3);
                    // all constraints hold
                    if let Value::Str(s) = &vals[0] {
                        prop_assert!(s.chars().count() <= 10);
                    }
                    if let Some(f) = vals[1].as_float() {
                        prop_assert!((0.0..=100.0).contains(&f));
                    }
                }
                Err(errs) => prop_assert!(!errs.is_empty()),
            }
        }

        /// The admin form parser never accepts inverted team bounds.
        #[test]
        fn admin_bounds_enforced(min in 1i64..20, max in 1i64..20) {
            let form = constraint_form(&[], &["en"]);
            let resp = FormResponse::new()
                .set("language", "any")
                .set("skill", "none")
                .set("min_quality", 0.5)
                .set("min_team", min)
                .set("max_team", max)
                .set("recruitment_secs", 60i64)
                .set("require_login", true);
            match parse_constraints(&form, &resp) {
                Ok(d) => prop_assert!(d.min_team <= d.max_team),
                Err(AdminFormError::TeamBoundsInverted { .. }) => prop_assert!(min > max),
                Err(other) => prop_assert!(false, "unexpected error {other}"),
            }
        }
    }
}
