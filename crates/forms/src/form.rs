//! Forms: ordered fields + validation + text rendering.
//!
//! The production platform renders these as web pages (paper Figures 3–5);
//! here a form is a data structure with a deterministic text rendering, and
//! simulated workers fill in [`FormResponse`]s programmatically.

use crate::field::{Field, FieldError};
use crowd4u_storage::prelude::Value;
use std::collections::BTreeMap;
use std::fmt;

/// An ordered collection of fields with a title.
#[derive(Debug, Clone, PartialEq)]
pub struct Form {
    pub title: String,
    pub description: String,
    pub fields: Vec<Field>,
}

impl Form {
    pub fn new(title: impl Into<String>) -> Form {
        Form {
            title: title.into(),
            description: String::new(),
            fields: Vec::new(),
        }
    }

    pub fn describe(mut self, d: impl Into<String>) -> Form {
        self.description = d.into();
        self
    }

    pub fn field(mut self, f: Field) -> Form {
        self.fields.push(f);
        self
    }

    pub fn get_field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Validate a response. On success returns the values in field order
    /// (read-only fields are substituted from the form itself; omitted
    /// optional fields become `Null`). On failure returns every field error.
    pub fn validate(&self, response: &FormResponse) -> Result<Vec<Value>, Vec<FieldError>> {
        let mut errors = Vec::new();
        let mut out = Vec::with_capacity(self.fields.len());
        for f in &self.fields {
            let value = match (&f.readonly_value, response.values.get(&f.name)) {
                (Some(ro), None) => ro.clone(),
                (_, Some(v)) => v.clone(),
                (None, None) => Value::Null,
            };
            if let Err(e) = f.validate(&value) {
                errors.push(e);
            }
            out.push(value);
        }
        // Unknown fields are rejected: they signal a mismatched form version.
        for name in response.values.keys() {
            if self.get_field(name).is_none() {
                errors.push(FieldError {
                    field: name.clone(),
                    message: "unknown field".into(),
                });
            }
        }
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }
}

impl fmt::Display for Form {
    /// Deterministic text rendering — the offline stand-in for the web UI.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "┌─ {} ─", self.title)?;
        if !self.description.is_empty() {
            writeln!(f, "│ {}", self.description)?;
        }
        for fd in &self.fields {
            let marker = if fd.required { "*" } else { " " };
            match &fd.readonly_value {
                Some(v) => writeln!(f, "│ {} [{}]: {v} (fixed)", marker, fd.label)?,
                None => writeln!(f, "│ {} [{}]: ______", marker, fd.label)?,
            }
        }
        write!(f, "└─")
    }
}

/// A worker's (or requester's) submitted values, keyed by field name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FormResponse {
    pub values: BTreeMap<String, Value>,
}

impl FormResponse {
    pub fn new() -> FormResponse {
        FormResponse::default()
    }

    pub fn set(mut self, name: impl Into<String>, v: impl Into<Value>) -> FormResponse {
        self.values.insert(name.into(), v.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldType;

    fn report_form() -> Form {
        Form::new("Citizen report")
            .describe("Write a short report on your chosen topic")
            .field(Field::new(
                "topic",
                "Topic",
                FieldType::choice(&["news", "sports"]),
            ))
            .field(Field::new("body", "Report", FieldType::textarea()))
            .field(Field::new("rating", "Confidence", FieldType::Rating { max: 5 }).optional())
    }

    #[test]
    fn valid_response_ordered_values() {
        let form = report_form();
        let resp = FormResponse::new()
            .set("topic", "news")
            .set("body", "something happened")
            .set("rating", 4i64);
        let vals = form.validate(&resp).unwrap();
        assert_eq!(vals.len(), 3);
        assert_eq!(vals[0], Value::Str("news".into()));
        assert_eq!(vals[2], Value::Int(4));
    }

    #[test]
    fn omitted_optional_becomes_null() {
        let form = report_form();
        let resp = FormResponse::new().set("topic", "news").set("body", "x");
        let vals = form.validate(&resp).unwrap();
        assert_eq!(vals[2], Value::Null);
    }

    #[test]
    fn missing_required_and_unknown_fields_collected() {
        let form = report_form();
        let resp = FormResponse::new().set("bogus", 1i64);
        let errs = form.validate(&resp).unwrap_err();
        let fields: Vec<&str> = errs.iter().map(|e| e.field.as_str()).collect();
        assert!(fields.contains(&"topic"));
        assert!(fields.contains(&"body"));
        assert!(fields.contains(&"bogus"));
    }

    #[test]
    fn readonly_substitution() {
        let form = Form::new("Check translation")
            .field(
                Field::new("src", "Source", FieldType::text()).readonly(Value::Str("hello".into())),
            )
            .field(Field::new("ok", "Correct?", FieldType::Boolean));
        // Omitting the read-only field is fine; it is substituted.
        let vals = form.validate(&FormResponse::new().set("ok", true)).unwrap();
        assert_eq!(vals[0], Value::Str("hello".into()));
        // Tampering is rejected.
        let errs = form
            .validate(&FormResponse::new().set("src", "bye").set("ok", true))
            .unwrap_err();
        assert_eq!(errs[0].field, "src");
    }

    #[test]
    fn rendering_contains_fields() {
        let text = report_form().to_string();
        assert!(text.contains("Citizen report"));
        assert!(text.contains("[Topic]"));
        assert!(text.contains("[Report]"));
        assert!(text.contains("______"));
        // readonly rendering
        let f = Form::new("t")
            .field(Field::new("s", "S", FieldType::text()).readonly(Value::Str("v".into())));
        assert!(f.to_string().contains("(fixed)"));
    }

    #[test]
    fn get_field() {
        let form = report_form();
        assert!(form.get_field("topic").is_some());
        assert!(form.get_field("nope").is_none());
    }
}
