//! The CyLog processor: owns the fact store, runs evaluation to fixpoint,
//! turns open-predicate demands into crowd tasks, accepts worker answers,
//! and keeps the game-aspect points ledger.
//!
//! This is the component labelled "CyLog Processor" in paper Figure 2: it
//! "interprets and executes the rules describing tasks and their dependency,
//! dynamically generates and registers tasks into the task pool".

use crate::analysis::{compile, CompiledProgram, PredId, PredKind};
use crate::ast::Program;
use crate::error::CylogError;
use crate::eval::{
    compute_demands, compute_demands_delta, eval_program, eval_program_incremental, EvalMode,
    EvalStats,
};
use crate::parser::parse;
use crowd4u_storage::prelude::*;
use crowd4u_telemetry::{stage, Counter, Histogram, TelemetryHandle};
use std::collections::{BTreeMap, HashSet};

/// A question for the crowd: "evaluate open predicate `pred` on `inputs`".
#[derive(Debug, Clone, PartialEq)]
pub struct OpenRequest {
    pub pred: PredId,
    pub pred_name: String,
    pub inputs: Vec<Value>,
    /// Game-aspect reward for answering.
    pub points: i64,
}

/// One worker answer destined for [`CylogEngine::answer_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerRecord {
    /// Open predicate being answered.
    pub pred: String,
    /// The question's input values.
    pub inputs: Vec<Value>,
    /// The worker-supplied output values.
    pub outputs: Vec<Value>,
    /// Worker credited the predicate's points (if any).
    pub worker: Option<u64>,
}

/// What a call to [`CylogEngine::answer_batch`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOutcome {
    /// Answers that created a new fact.
    pub fresh: usize,
    /// Answers whose fact already existed (no points awarded).
    pub duplicates: usize,
}

/// Telemetry cells the engine records into after every `run` — the
/// [`EvalStats`] fields surfaced as monotonic counters, plus the fixpoint
/// span histogram. Defaults to all-disabled cells (every record is a no-op)
/// until [`CylogEngine::set_telemetry`] attaches a live registry.
#[derive(Default)]
struct EngineTelemetry {
    fixpoint: Histogram,
    rounds: Counter,
    firings: Counter,
    derived: Counter,
    duplicates: Counter,
    recomputes: Counter,
    delta_seeded: Counter,
    strata_skipped: Counter,
    strata_recomputed: Counter,
}

impl EngineTelemetry {
    fn from_handle(handle: &TelemetryHandle) -> EngineTelemetry {
        EngineTelemetry {
            fixpoint: handle.histogram(stage::CYLOG_FIXPOINT),
            rounds: handle.counter("crowd4u_cylog_rounds_total"),
            firings: handle.counter("crowd4u_cylog_firings_total"),
            derived: handle.counter("crowd4u_cylog_derived_total"),
            duplicates: handle.counter("crowd4u_cylog_duplicates_total"),
            recomputes: handle.counter("crowd4u_cylog_recomputes_total"),
            delta_seeded: handle.counter("crowd4u_cylog_delta_seeded_total"),
            strata_skipped: handle.counter("crowd4u_cylog_strata_skipped_total"),
            strata_recomputed: handle.counter("crowd4u_cylog_strata_recomputed_total"),
        }
    }

    fn observe(&self, stats: &EvalStats) {
        self.rounds.add(stats.rounds);
        self.firings.add(stats.firings);
        self.derived.add(stats.derived);
        self.duplicates.add(stats.duplicates);
        self.recomputes.add(stats.recomputes);
        self.delta_seeded.add(stats.delta_seeded);
        self.strata_skipped.add(stats.strata_skipped);
        self.strata_recomputed.add(stats.strata_recomputed);
    }
}

/// The CyLog engine: compiled program + fact database + open-task queue.
pub struct CylogEngine {
    program: CompiledProgram,
    db: Database,
    mode: EvalMode,
    /// Questions already posed (never re-asked).
    asked: HashSet<(PredId, Vec<Value>)>,
    /// Questions posed and not yet answered.
    pending: Vec<OpenRequest>,
    /// Keys of `pending` for O(1) membership/removal; `pending` is
    /// compacted eagerly once answered entries exceed half the queue, and
    /// otherwise lazily at the next `run`.
    pending_set: HashSet<(PredId, Vec<Value>)>,
    pending_dirty: bool,
    /// Times the pending queue was compacted (eager + lazy).
    compactions: u64,
    /// Game aspect: worker id → accumulated points.
    points: BTreeMap<u64, i64>,
    /// Cumulative evaluation statistics.
    stats: EvalStats,
    /// Facts inserted since the last completed fixpoint, per predicate —
    /// the cross-batch delta seed for incremental runs.
    delta_log: BTreeMap<PredId, Vec<Tuple>>,
    /// When set, the next `run` recomputes derived relations from scratch
    /// (startup, retraction, mode switch, or a failed pass).
    needs_full: bool,
    /// Per-predicate input-column indices (`0..n_inputs`), precomputed so
    /// `has_answer` does not rebuild the vector on every pending check.
    input_cols: Vec<Vec<usize>>,
    /// Observe-only metric cells (never part of `state_dump`/journals).
    telemetry: EngineTelemetry,
}

impl CylogEngine {
    /// Build an engine from an already-parsed program.
    pub fn from_program(ast: &Program) -> Result<CylogEngine, CylogError> {
        let program = compile(ast)?;
        let mut db = Database::new();
        for info in &program.preds {
            let cols: Vec<Column> = info
                .col_names
                .iter()
                .zip(&info.col_types)
                .map(|(n, t)| Column::nullable(n.clone(), *t))
                .collect();
            let rel =
                db.create_relation(&info.name, Schema::new(cols).map_err(CylogError::from)?)?;
            // Index strategy (keeps large workloads linear):
            // * full-row index first → O(1) set-semantics dedup;
            // * open predicates: index on the input columns → O(1)
            //   answered-question lookups;
            // * first column: the common join pattern `p(Bound, Free…)`.
            let all_cols: Vec<&str> = info.col_names.iter().map(String::as_str).collect();
            if !all_cols.is_empty() {
                rel.create_index(&all_cols, false)?;
                let n_in = info.open_inputs();
                if n_in > 0 && n_in < all_cols.len() {
                    rel.create_index(&all_cols[..n_in], false)?;
                }
                if all_cols.len() > 1 {
                    rel.create_index(&all_cols[..1], false)?;
                }
            }
        }
        let input_cols = program
            .preds
            .iter()
            .map(|info| (0..info.open_inputs()).collect())
            .collect();
        let mut engine = CylogEngine {
            program,
            db,
            mode: EvalMode::default(),
            asked: HashSet::new(),
            pending: Vec::new(),
            pending_set: HashSet::new(),
            pending_dirty: false,
            compactions: 0,
            points: BTreeMap::new(),
            stats: EvalStats::default(),
            delta_log: BTreeMap::new(),
            needs_full: true,
            input_cols,
            telemetry: EngineTelemetry::default(),
        };
        engine.reset_facts()?;
        Ok(engine)
    }

    /// Parse CyLog source and build an engine.
    pub fn from_source(src: &str) -> Result<CylogEngine, CylogError> {
        Self::from_program(&parse(src)?)
    }

    /// Switch between naive, semi-naive and incremental evaluation
    /// (default: incremental). Any switch forces the next `run` to
    /// recompute from scratch so the modes stay byte-equivalent.
    pub fn set_mode(&mut self, mode: EvalMode) {
        self.mode = mode;
        self.needs_full = true;
    }

    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// Attach telemetry: every subsequent [`run`](Self::run) records its
    /// wall time in the `cylog.fixpoint` stage histogram and adds its
    /// [`EvalStats`] to the `crowd4u_cylog_*_total` counters. Telemetry is
    /// observe-only — it never changes evaluation or the engine's state.
    pub fn set_telemetry(&mut self, handle: &TelemetryHandle) {
        self.telemetry = EngineTelemetry::from_handle(handle);
    }

    /// The compiled program (for introspection).
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// Re-insert the program-text facts (used at startup and after clears).
    fn reset_facts(&mut self) -> Result<(), CylogError> {
        for (pid, vals) in &self.program.facts {
            let name = &self.program.preds[*pid].name;
            self.db
                .relation_mut(name)?
                .insert_distinct(Tuple::new(vals.clone()))?;
        }
        Ok(())
    }

    fn pred_id(&self, name: &str) -> Result<PredId, CylogError> {
        self.program
            .pred(name)
            .ok_or_else(|| CylogError::Eval(format!("unknown predicate `{name}`")))
    }

    /// Insert an extensional fact. Rejected for rule-derived predicates.
    /// Returns whether the fact is new.
    pub fn add_fact(&mut self, pred: &str, values: Vec<Value>) -> Result<bool, CylogError> {
        let pid = self.pred_id(pred)?;
        let info = &self.program.preds[pid];
        if info.derived {
            return Err(CylogError::Eval(format!(
                "cannot insert into derived predicate `{pred}`"
            )));
        }
        if values.len() != info.arity() {
            return Err(CylogError::Eval(format!(
                "`{pred}` has arity {}, got {} values",
                info.arity(),
                values.len()
            )));
        }
        for (v, ty) in values.iter().zip(&info.col_types) {
            let ok = v.is_null()
                || v.conforms_to(*ty)
                || matches!((v, ty), (Value::Int(_), ValueType::Float));
            if !ok {
                return Err(CylogError::Eval(format!(
                    "value {v} incompatible with {ty} column of `{pred}`"
                )));
            }
        }
        // Widen ints destined for float columns so set-dedup is canonical.
        let widened: Vec<Value> = values
            .into_iter()
            .zip(&info.col_types)
            .map(|(v, ty)| match (&v, ty) {
                (Value::Int(i), ValueType::Float) => Value::Float(*i as f64),
                _ => v,
            })
            .collect();
        let name = self.program.preds[pid].name.clone();
        let t = Tuple::new(widened);
        let (_, fresh) = self.db.relation_mut(&name)?.insert_distinct(t.clone())?;
        if fresh {
            self.delta_log.entry(pid).or_default().push(t);
        }
        Ok(fresh)
    }

    /// Run rules to fixpoint, then refresh the open-task queue with any new
    /// demands. In the default incremental mode, derived relations persist
    /// between calls and the fixpoint restarts from the facts inserted since
    /// the previous one; retractions (and mode switches, startup, or an
    /// error mid-pass) automatically fall back to a full recompute. In naive
    /// and semi-naive modes every call recomputes from scratch. All modes
    /// produce byte-identical state — see ARCHITECTURE.md, "Incremental
    /// evaluation contract".
    pub fn run(&mut self) -> Result<EvalStats, CylogError> {
        let _span = self.telemetry.fixpoint.span();
        let stats = if self.mode == EvalMode::Incremental && !self.needs_full {
            self.run_incremental()
        } else {
            self.run_full()
        }?;
        self.telemetry.observe(&stats);
        Ok(stats)
    }

    /// Clear derived relations, re-seed program facts and recompute the
    /// whole fixpoint — honours retractions of base facts.
    fn run_full(&mut self) -> Result<EvalStats, CylogError> {
        for info in &self.program.preds {
            if info.derived {
                self.db.relation_mut(&info.name)?.clear();
            }
        }
        self.reset_facts()?;
        let mut stats = eval_program(&self.program, &mut self.db, self.mode)?;
        stats.recomputes += 1;
        self.stats.absorb(stats);
        // Everything inserted up to here is part of the fixpoint just
        // computed; the next incremental pass starts from a clean slate.
        self.delta_log.clear();
        self.needs_full = false;

        // Compact pending entries answered since the last run.
        self.compact_pending();
        let demands = compute_demands(&self.program, &self.db)?;
        self.push_new_demands(demands)?;
        Ok(stats)
    }

    /// Advance the persisted fixpoint by the facts logged since the last
    /// one. Any error marks the engine for a full recompute, since a failed
    /// pass may leave strata half-updated.
    fn run_incremental(&mut self) -> Result<EvalStats, CylogError> {
        let seed = std::mem::take(&mut self.delta_log);
        let result = self.run_incremental_inner(&seed);
        if result.is_err() {
            self.needs_full = true;
        }
        result
    }

    fn run_incremental_inner(
        &mut self,
        seed: &BTreeMap<PredId, Vec<Tuple>>,
    ) -> Result<EvalStats, CylogError> {
        let outcome = eval_program_incremental(&self.program, &mut self.db, seed)?;
        self.stats.absorb(outcome.stats);
        self.compact_pending();
        // A rebuilt stratum may have shrunk, so deltas alone cannot prove a
        // demand new — recompute the full demand set in that case (the
        // `asked` ledger still dedups).
        let demands = if outcome.any_rebuild {
            compute_demands(&self.program, &self.db)?
        } else {
            compute_demands_delta(&self.program, &self.db, &outcome.changed)?
        };
        self.push_new_demands(demands)?;
        Ok(outcome.stats)
    }

    /// Filter answered and already-asked demands, then append the rest to
    /// the pending queue in canonical `(predicate, inputs)` order, so every
    /// evaluation mode enqueues identically regardless of the order the
    /// demand computation discovered them in.
    fn push_new_demands(&mut self, demands: Vec<(PredId, Vec<Value>)>) -> Result<(), CylogError> {
        let mut fresh: Vec<(PredId, Vec<Value>)> = Vec::new();
        for (pid, inputs) in demands {
            // A question is only pending while unanswered: if the open
            // relation already has a fact with these inputs, skip.
            if self.has_answer(pid, &inputs)? {
                continue;
            }
            if self.asked.insert((pid, inputs.clone())) {
                fresh.push((pid, inputs));
            }
        }
        fresh.sort();
        for (pid, inputs) in fresh {
            let info = &self.program.preds[pid];
            let points = match info.kind {
                PredKind::Open { points, .. } => points,
                PredKind::Closed => 0,
            };
            self.pending_set.insert((pid, inputs.clone()));
            self.pending.push(OpenRequest {
                pred: pid,
                pred_name: info.name.clone(),
                inputs,
                points,
            });
        }
        Ok(())
    }

    fn has_answer(&self, pid: PredId, inputs: &[Value]) -> Result<bool, CylogError> {
        let rel = self.db.relation(&self.program.preds[pid].name)?;
        Ok(!rel.lookup(&self.input_cols[pid], inputs).is_empty())
    }

    /// Questions awaiting a crowd answer.
    pub fn pending_requests(&self) -> &[OpenRequest] {
        &self.pending
    }

    /// Validate one answer against the program: the predicate must be open,
    /// arities must match, values must conform to column types. Returns the
    /// predicate id and its per-answer points.
    fn validate_answer(
        &self,
        pred: &str,
        inputs: &[Value],
        outputs: &[Value],
    ) -> Result<(PredId, i64), CylogError> {
        let pid = self.pred_id(pred)?;
        let info = &self.program.preds[pid];
        let PredKind::Open { n_inputs, points } = info.kind else {
            return Err(CylogError::Eval(format!(
                "`{pred}` is not an open predicate"
            )));
        };
        if inputs.len() != n_inputs || outputs.len() != info.arity() - n_inputs {
            return Err(CylogError::Eval(format!(
                "`{pred}` expects {} inputs and {} outputs, got {} and {}",
                n_inputs,
                info.arity() - n_inputs,
                inputs.len(),
                outputs.len()
            )));
        }
        for (v, ty) in inputs.iter().chain(outputs).zip(&info.col_types) {
            let ok = v.is_null()
                || v.conforms_to(*ty)
                || matches!((v, ty), (Value::Int(_), ValueType::Float));
            if !ok {
                return Err(CylogError::Eval(format!(
                    "answer value {v} incompatible with {ty} column of `{pred}`"
                )));
            }
        }
        Ok((pid, points))
    }

    /// Apply a validated answer: store the fact, retire the pending entry,
    /// credit the worker. Does not run rules.
    fn apply_answer(
        &mut self,
        pid: PredId,
        points: i64,
        inputs: Vec<Value>,
        outputs: Vec<Value>,
        worker: Option<u64>,
    ) -> Result<bool, CylogError> {
        let mut values = inputs.clone();
        values.extend(outputs);
        let name = self.program.preds[pid].name.clone();
        let t = Tuple::new(values);
        let (_, fresh) = self.db.relation_mut(&name)?.insert_distinct(t.clone())?;
        if fresh {
            self.delta_log.entry(pid).or_default().push(t);
        }
        // Remove from pending (it may have been unsolicited — that's fine).
        if self.pending_set.remove(&(pid, inputs.clone())) {
            self.pending_dirty = true;
            // Eager compaction: once answered entries outnumber live ones,
            // rebuilding the queue now keeps the answered history from
            // accumulating between runs.
            if 2 * self.pending_set.len() < self.pending.len() {
                self.compact_pending();
            }
        }
        self.asked.insert((pid, inputs));
        if fresh {
            if let Some(w) = worker {
                *self.points.entry(w).or_insert(0) += points;
            }
        }
        Ok(fresh)
    }

    /// Drop answered entries from the pending queue (no-op when clean).
    fn compact_pending(&mut self) {
        if !self.pending_dirty {
            return;
        }
        let set = &self.pending_set;
        self.pending
            .retain(|r| set.contains(&(r.pred, r.inputs.clone())));
        self.pending_dirty = false;
        self.compactions += 1;
    }

    /// Times the pending queue has been compacted (for observability).
    pub fn compaction_count(&self) -> u64 {
        self.compactions
    }

    /// Supply a worker's answer to an open question. `worker` (if given) is
    /// credited the predicate's points. Returns whether the answer created a
    /// new fact. The engine does **not** rerun rules automatically — call
    /// [`run`](Self::run) after a batch of answers, or use
    /// [`answer_batch`](Self::answer_batch) to do both in one step.
    pub fn answer(
        &mut self,
        pred: &str,
        inputs: Vec<Value>,
        outputs: Vec<Value>,
        worker: Option<u64>,
    ) -> Result<bool, CylogError> {
        let (pid, points) = self.validate_answer(pred, &inputs, &outputs)?;
        self.apply_answer(pid, points, inputs, outputs, worker)
    }

    /// Ingest a batch of answers and run the fixpoint **once**, instead of
    /// once per answer. The whole batch is validated up front, so either
    /// every answer is applied or none is (the error names the offending
    /// answer). Equivalent to calling [`answer`](Self::answer) followed by
    /// [`run`](Self::run) for each record, at a fraction of the cost — this
    /// is the engine half of the platform's batched ingestion path.
    pub fn answer_batch(&mut self, answers: &[AnswerRecord]) -> Result<BatchOutcome, CylogError> {
        let mut validated = Vec::with_capacity(answers.len());
        for (i, a) in answers.iter().enumerate() {
            let (pid, points) = self
                .validate_answer(&a.pred, &a.inputs, &a.outputs)
                .map_err(|e| {
                    CylogError::Eval(format!("answer {} of {}: {e}", i + 1, answers.len()))
                })?;
            validated.push((pid, points));
        }
        let mut outcome = BatchOutcome::default();
        for (a, (pid, points)) in answers.iter().zip(validated) {
            let fresh =
                self.apply_answer(pid, points, a.inputs.clone(), a.outputs.clone(), a.worker)?;
            if fresh {
                outcome.fresh += 1;
            } else {
                outcome.duplicates += 1;
            }
        }
        self.run()?;
        Ok(outcome)
    }

    /// All facts of a predicate as a result set (snapshot).
    pub fn facts(&self, pred: &str) -> Result<ResultSet, CylogError> {
        let pid = self.pred_id(pred)?;
        Ok(self.db.scan(&self.program.preds[pid].name)?)
    }

    /// Number of facts of a predicate.
    pub fn fact_count(&self, pred: &str) -> Result<usize, CylogError> {
        let pid = self.pred_id(pred)?;
        Ok(self.db.relation(&self.program.preds[pid].name)?.len())
    }

    /// Remove base facts matching a predicate name and filter. Any actual
    /// deletion forces the next `run` to recompute derived relations from
    /// scratch — deltas only describe growth, never removal.
    pub fn retract_where(
        &mut self,
        pred: &str,
        filter: impl FnMut(&Tuple) -> bool,
    ) -> Result<usize, CylogError> {
        let pid = self.pred_id(pred)?;
        if self.program.preds[pid].derived {
            return Err(CylogError::Eval(format!(
                "cannot retract from derived predicate `{pred}`"
            )));
        }
        let name = self.program.preds[pid].name.clone();
        let n = self.db.relation_mut(&name)?.delete_where(filter);
        if n > 0 {
            self.needs_full = true;
        }
        Ok(n)
    }

    /// Game-aspect points for one worker.
    pub fn points_of(&self, worker: u64) -> i64 {
        self.points.get(&worker).copied().unwrap_or(0)
    }

    /// Leaderboard (worker, points) sorted by points descending, id ascending.
    pub fn leaderboard(&self) -> Vec<(u64, i64)> {
        let mut v: Vec<(u64, i64)> = self.points.iter().map(|(w, p)| (*w, *p)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Cumulative statistics across all `run` calls.
    pub fn cumulative_stats(&self) -> EvalStats {
        self.stats
    }

    /// Access the underlying database (read-only), e.g. for snapshots.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRANSLATE: &str = "\
rel sentence(s: str).
open translate(s: str) -> (t: str) points 3.
open check(s: str, t: str) -> (ok: bool) points 1.
rel approved(s: str, t: str).
approved(S, T) :- sentence(S), translate(S, T), check(S, T, OK), OK = true.
";

    /// Compile-time check that an engine (and everything a shard must move
    /// across threads with it) stays `Send + Sync`: the sharded runtime
    /// owns one engine per project inside a shard thread. Adding interior
    /// mutability or a non-`Send` trait object to the engine state breaks
    /// this test at compile time, not in production.
    #[test]
    fn engine_state_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<CylogEngine>();
        assert_sync::<CylogEngine>();
        assert_send::<OpenRequest>();
        assert_send::<AnswerRecord>();
        assert_send::<BatchOutcome>();
    }

    #[test]
    fn end_to_end_translation_flow() {
        let mut e = CylogEngine::from_source(TRANSLATE).unwrap();
        e.add_fact("sentence", vec!["hello".into()]).unwrap();
        e.add_fact("sentence", vec!["bye".into()]).unwrap();
        e.run().unwrap();
        // Only translate demands exist so far (check needs translations).
        let pend: Vec<&OpenRequest> = e.pending_requests().iter().collect();
        assert_eq!(pend.len(), 2);
        assert!(pend.iter().all(|r| r.pred_name == "translate"));
        assert_eq!(pend[0].points, 3);

        // Worker 7 answers one translation.
        let fresh = e
            .answer(
                "translate",
                vec!["hello".into()],
                vec!["bonjour".into()],
                Some(7),
            )
            .unwrap();
        assert!(fresh);
        assert_eq!(e.points_of(7), 3);
        e.run().unwrap();
        // Now a check question appears for (hello, bonjour).
        let checks: Vec<&OpenRequest> = e
            .pending_requests()
            .iter()
            .filter(|r| r.pred_name == "check")
            .collect();
        assert_eq!(checks.len(), 1);
        assert_eq!(
            checks[0].inputs,
            vec![Value::Str("hello".into()), Value::Str("bonjour".into())]
        );

        // Worker 8 approves; rule fires.
        e.answer(
            "check",
            vec!["hello".into(), "bonjour".into()],
            vec![true.into()],
            Some(8),
        )
        .unwrap();
        e.run().unwrap();
        assert_eq!(e.fact_count("approved").unwrap(), 1);
        assert_eq!(e.points_of(8), 1);
        assert_eq!(e.leaderboard(), vec![(7, 3), (8, 1)]);
    }

    #[test]
    fn questions_not_reasked_after_answer() {
        let mut e = CylogEngine::from_source(TRANSLATE).unwrap();
        e.add_fact("sentence", vec!["hello".into()]).unwrap();
        e.run().unwrap();
        assert_eq!(e.pending_requests().len(), 1);
        e.answer(
            "translate",
            vec!["hello".into()],
            vec!["salut".into()],
            None,
        )
        .unwrap();
        e.run().unwrap();
        // translate question answered; only the check question pends.
        let names: Vec<&str> = e
            .pending_requests()
            .iter()
            .map(|r| r.pred_name.as_str())
            .collect();
        assert_eq!(names, vec!["check"]);
        // Re-running does not duplicate pending entries.
        e.run().unwrap();
        assert_eq!(e.pending_requests().len(), 1);
    }

    #[test]
    fn duplicate_answer_is_not_fresh_and_not_repaid() {
        let mut e = CylogEngine::from_source(TRANSLATE).unwrap();
        e.add_fact("sentence", vec!["hello".into()]).unwrap();
        e.run().unwrap();
        assert!(e
            .answer(
                "translate",
                vec!["hello".into()],
                vec!["salut".into()],
                Some(1)
            )
            .unwrap());
        assert!(!e
            .answer(
                "translate",
                vec!["hello".into()],
                vec!["salut".into()],
                Some(1)
            )
            .unwrap());
        assert_eq!(e.points_of(1), 3);
    }

    #[test]
    fn multiple_answers_to_same_question_allowed() {
        // Different workers may translate the same sentence differently;
        // both facts coexist (quality arbitration is the platform's job).
        let mut e = CylogEngine::from_source(TRANSLATE).unwrap();
        e.add_fact("sentence", vec!["hello".into()]).unwrap();
        e.run().unwrap();
        e.answer(
            "translate",
            vec!["hello".into()],
            vec!["salut".into()],
            Some(1),
        )
        .unwrap();
        e.answer(
            "translate",
            vec!["hello".into()],
            vec!["bonjour".into()],
            Some(2),
        )
        .unwrap();
        assert_eq!(e.fact_count("translate").unwrap(), 2);
        assert_eq!(e.points_of(2), 3);
    }

    #[test]
    fn answer_validation() {
        let mut e = CylogEngine::from_source(TRANSLATE).unwrap();
        // not an open predicate
        assert!(e
            .answer("sentence", vec!["x".into()], vec![], None)
            .is_err());
        // wrong arity
        assert!(e
            .answer("translate", vec![], vec!["y".into()], None)
            .is_err());
        // wrong type
        assert!(e
            .answer("translate", vec![Value::Int(3)], vec!["y".into()], None)
            .is_err());
        // unknown predicate
        assert!(e.answer("nope", vec![], vec![], None).is_err());
    }

    #[test]
    fn add_fact_validation() {
        let mut e = CylogEngine::from_source(TRANSLATE).unwrap();
        assert!(e
            .add_fact("approved", vec!["a".into(), "b".into()])
            .is_err()); // derived
        assert!(e.add_fact("sentence", vec![]).is_err()); // arity
        assert!(e.add_fact("sentence", vec![Value::Int(1)]).is_err()); // type
        assert!(e.add_fact("nope", vec![]).is_err()); // unknown
                                                      // duplicates are deduped
        assert!(e.add_fact("sentence", vec!["x".into()]).unwrap());
        assert!(!e.add_fact("sentence", vec!["x".into()]).unwrap());
    }

    #[test]
    fn retraction_recomputes_derived() {
        let mut e =
            CylogEngine::from_source("rel a(x: int).\nrel b(x: int).\nb(X) :- a(X).\n").unwrap();
        e.add_fact("a", vec![Value::Int(1)]).unwrap();
        e.add_fact("a", vec![Value::Int(2)]).unwrap();
        e.run().unwrap();
        assert_eq!(e.fact_count("b").unwrap(), 2);
        let n = e.retract_where("a", |t| t[0] == Value::Int(1)).unwrap();
        assert_eq!(n, 1);
        e.run().unwrap();
        assert_eq!(e.fact_count("b").unwrap(), 1);
        // cannot retract from derived
        assert!(e.retract_where("b", |_| true).is_err());
    }

    /// The incremental default stays on the delta path across growth-only
    /// batches, and a mid-stream retraction (the documented reason for the
    /// old clear-and-rerun design) automatically falls back to exactly one
    /// full recompute — visible in `EvalStats::recomputes` — after which
    /// derived facts have disappeared and the delta path resumes.
    #[test]
    fn retraction_falls_back_to_full_recompute_then_resumes_deltas() {
        let mut e =
            CylogEngine::from_source("rel a(x: int).\nrel b(x: int).\nb(X) :- a(X).\n").unwrap();
        assert_eq!(e.mode(), EvalMode::Incremental);
        e.add_fact("a", vec![Value::Int(1)]).unwrap();
        e.run().unwrap(); // first run is always a full recompute
        assert_eq!(e.cumulative_stats().recomputes, 1);
        e.add_fact("a", vec![Value::Int(2)]).unwrap();
        let stats = e.run().unwrap(); // growth stays incremental
        assert_eq!(stats.recomputes, 0);
        assert_eq!(stats.delta_seeded, 1);
        assert_eq!(e.cumulative_stats().recomputes, 1);
        assert_eq!(e.fact_count("b").unwrap(), 2);

        e.retract_where("a", |t| t[0] == Value::Int(1)).unwrap();
        let stats = e.run().unwrap(); // retraction forces the fallback
        assert_eq!(stats.recomputes, 1);
        assert_eq!(e.cumulative_stats().recomputes, 2);
        assert_eq!(e.fact_count("b").unwrap(), 1); // derived fact is gone

        e.add_fact("a", vec![Value::Int(3)]).unwrap();
        let stats = e.run().unwrap(); // and the delta path resumes
        assert_eq!(stats.recomputes, 0);
        assert_eq!(e.fact_count("b").unwrap(), 2);
    }

    /// A retraction that deletes nothing must not trigger the fallback —
    /// the platform's declarative sync retracts zero rows on first contact.
    #[test]
    fn empty_retraction_stays_on_delta_path() {
        let mut e =
            CylogEngine::from_source("rel a(x: int).\nrel b(x: int).\nb(X) :- a(X).\n").unwrap();
        e.add_fact("a", vec![Value::Int(1)]).unwrap();
        e.run().unwrap();
        assert_eq!(e.retract_where("a", |t| t[0] == Value::Int(99)).unwrap(), 0);
        e.add_fact("a", vec![Value::Int(2)]).unwrap();
        let stats = e.run().unwrap();
        assert_eq!(stats.recomputes, 0);
        assert_eq!(e.fact_count("b").unwrap(), 2);
    }

    /// Switching evaluation modes resynchronises with a full recompute.
    #[test]
    fn mode_switch_forces_full_recompute() {
        let mut e =
            CylogEngine::from_source("rel a(x: int).\nrel b(x: int).\nb(X) :- a(X).\n").unwrap();
        e.add_fact("a", vec![Value::Int(1)]).unwrap();
        e.run().unwrap();
        e.set_mode(EvalMode::Incremental); // same mode, still a resync
        let stats = e.run().unwrap();
        assert_eq!(stats.recomputes, 1);
        assert_eq!(e.fact_count("b").unwrap(), 1);
    }

    /// Pin the two demand-dedup gates: a demand whose answer already exists
    /// is skipped (without being re-asked later), and a demand in the
    /// `asked` ledger is never pushed twice — even after its answer is
    /// retracted again.
    #[test]
    fn demand_dedup_via_asked_ledger_and_existing_answers() {
        const JUDGE: &str = "rel item(x: int).\n\
             open judge(x: int) -> (ok: bool) points 1.\n\
             rel good(x: int).\ngood(X) :- item(X), judge(X, OK), OK = true.\n";
        let mut e = CylogEngine::from_source(JUDGE).unwrap();
        // Unsolicited answer arrives before its question could be posed.
        e.answer("judge", vec![Value::Int(1)], vec![true.into()], None)
            .unwrap();
        e.add_fact("item", vec![Value::Int(1)]).unwrap();
        e.add_fact("item", vec![Value::Int(2)]).unwrap();
        e.run().unwrap();
        // Only the unanswered item pends; judge(1) was skipped.
        let inputs: Vec<i64> = e
            .pending_requests()
            .iter()
            .map(|r| r.inputs[0].as_int().unwrap())
            .collect();
        assert_eq!(inputs, vec![2]);
        // Re-running (incremental no-op run) does not duplicate the entry.
        e.run().unwrap();
        assert_eq!(e.pending_requests().len(), 1);
        // Retracting the answer does not resurrect the question: answering
        // put judge(1) in the asked ledger.
        e.retract_where("judge", |t| t[0] == Value::Int(1)).unwrap();
        e.run().unwrap();
        let inputs: Vec<i64> = e
            .pending_requests()
            .iter()
            .map(|r| r.inputs[0].as_int().unwrap())
            .collect();
        assert_eq!(inputs, vec![2]);
    }

    #[test]
    fn program_facts_survive_reruns() {
        let mut e =
            CylogEngine::from_source("rel a(x: int).\nrel b(x: int).\na(5).\nb(X) :- a(X).\n")
                .unwrap();
        e.run().unwrap();
        e.run().unwrap();
        assert_eq!(e.fact_count("a").unwrap(), 1);
        assert_eq!(e.fact_count("b").unwrap(), 1);
    }

    #[test]
    fn unsolicited_answers_accepted() {
        // A worker may answer a question the engine never asked (e.g.
        // proactive contribution); the fact is stored and usable.
        let mut e = CylogEngine::from_source(TRANSLATE).unwrap();
        e.answer("translate", vec!["x".into()], vec!["y".into()], Some(3))
            .unwrap();
        assert_eq!(e.fact_count("translate").unwrap(), 1);
        assert_eq!(e.points_of(3), 3);
    }

    #[test]
    fn naive_mode_agrees() {
        let mut a = CylogEngine::from_source(TRANSLATE).unwrap();
        let mut b = CylogEngine::from_source(TRANSLATE).unwrap();
        b.set_mode(EvalMode::Naive);
        assert_eq!(b.mode(), EvalMode::Naive);
        for e in [&mut a, &mut b] {
            e.add_fact("sentence", vec!["s".into()]).unwrap();
            e.run().unwrap();
            e.answer("translate", vec!["s".into()], vec!["t".into()], None)
                .unwrap();
            e.answer(
                "check",
                vec!["s".into(), "t".into()],
                vec![true.into()],
                None,
            )
            .unwrap();
            e.run().unwrap();
        }
        assert_eq!(
            a.facts("approved").unwrap().rows,
            b.facts("approved").unwrap().rows
        );
    }

    #[test]
    fn answer_batch_matches_one_at_a_time() {
        let mut batched = CylogEngine::from_source(TRANSLATE).unwrap();
        let mut serial = CylogEngine::from_source(TRANSLATE).unwrap();
        for e in [&mut batched, &mut serial] {
            e.add_fact("sentence", vec!["a".into()]).unwrap();
            e.add_fact("sentence", vec!["b".into()]).unwrap();
            e.run().unwrap();
        }
        let answers = vec![
            AnswerRecord {
                pred: "translate".into(),
                inputs: vec!["a".into()],
                outputs: vec!["A".into()],
                worker: Some(1),
            },
            AnswerRecord {
                pred: "check".into(),
                inputs: vec!["a".into(), "A".into()],
                outputs: vec![true.into()],
                worker: Some(2),
            },
            AnswerRecord {
                pred: "translate".into(),
                inputs: vec!["b".into()],
                outputs: vec!["B".into()],
                worker: Some(1),
            },
        ];
        let outcome = batched.answer_batch(&answers).unwrap();
        assert_eq!(outcome.fresh, 3);
        assert_eq!(outcome.duplicates, 0);
        for a in &answers {
            serial
                .answer(&a.pred, a.inputs.clone(), a.outputs.clone(), a.worker)
                .unwrap();
            serial.run().unwrap();
        }
        // Same databases, points and remaining work.
        assert_eq!(
            crowd4u_storage::snapshot::dump(batched.database()),
            crowd4u_storage::snapshot::dump(serial.database())
        );
        assert_eq!(batched.leaderboard(), serial.leaderboard());
        assert_eq!(batched.pending_requests(), serial.pending_requests());
    }

    #[test]
    fn answer_batch_rejects_whole_batch_on_bad_answer() {
        let mut e = CylogEngine::from_source(TRANSLATE).unwrap();
        e.add_fact("sentence", vec!["a".into()]).unwrap();
        e.run().unwrap();
        let answers = vec![
            AnswerRecord {
                pred: "translate".into(),
                inputs: vec!["a".into()],
                outputs: vec!["A".into()],
                worker: Some(1),
            },
            AnswerRecord {
                pred: "sentence".into(), // not an open predicate
                inputs: vec!["x".into()],
                outputs: vec![],
                worker: None,
            },
        ];
        let err = e.answer_batch(&answers).unwrap_err();
        assert!(err.to_string().contains("answer 2 of 2"));
        // Nothing was applied: the valid first answer did not land either.
        assert_eq!(e.fact_count("translate").unwrap(), 0);
        assert_eq!(e.points_of(1), 0);
        assert_eq!(e.pending_requests().len(), 1);
    }

    #[test]
    fn answer_batch_counts_duplicates_and_skips_their_points() {
        let mut e = CylogEngine::from_source(TRANSLATE).unwrap();
        e.add_fact("sentence", vec!["a".into()]).unwrap();
        e.run().unwrap();
        let rec = AnswerRecord {
            pred: "translate".into(),
            inputs: vec!["a".into()],
            outputs: vec!["A".into()],
            worker: Some(7),
        };
        let outcome = e.answer_batch(&[rec.clone(), rec]).unwrap();
        assert_eq!(outcome.fresh, 1);
        assert_eq!(outcome.duplicates, 1);
        assert_eq!(e.points_of(7), 3);
    }

    #[test]
    fn pending_compacts_eagerly_when_half_answered() {
        let mut e = CylogEngine::from_source(
            "rel item(x: int).\nopen judge(x: int) -> (ok: bool) points 1.\n\
             rel good(x: int).\ngood(X) :- item(X), judge(X, OK), OK = true.\n",
        )
        .unwrap();
        for i in 0..8 {
            e.add_fact("item", vec![Value::Int(i)]).unwrap();
        }
        e.run().unwrap();
        assert_eq!(e.pending_requests().len(), 8);
        assert_eq!(e.compaction_count(), 0);
        // Answer four: answered == live, not yet a majority → no compaction;
        // the queue still carries the answered entries.
        for i in 0..4 {
            e.answer("judge", vec![Value::Int(i)], vec![true.into()], None)
                .unwrap();
        }
        assert_eq!(e.compaction_count(), 0);
        assert_eq!(e.pending_requests().len(), 8);
        // The fifth answer tips the majority: compaction happens without a
        // `run`, and the queue shrinks to the live entries.
        e.answer("judge", vec![Value::Int(4)], vec![true.into()], None)
            .unwrap();
        assert_eq!(e.compaction_count(), 1);
        assert_eq!(e.pending_requests().len(), 3);
        assert!(e
            .pending_requests()
            .iter()
            .all(|r| r.inputs[0].as_int().unwrap() >= 5));
    }

    /// Pin the `firings` semantics (candidate rows enumerated at positive
    /// body literals — see the crate docs) on the two incremental
    /// dispatch paths: a **delta-seeded** stratum enumerates only the rows
    /// inserted since the previous fixpoint, while a **rebuilt** stratum
    /// (reached by a change through negation) re-enumerates its full
    /// input. Exact counts are asserted so any change to what the counter
    /// measures fails loudly here instead of silently skewing telemetry.
    #[test]
    fn firings_count_candidates_on_delta_seeded_vs_rebuilt_strata() {
        const SRC: &str = "rel item(x: int).\nrel cand(x: int).\n\
             rel seen(x: int).\nrel fresh(x: int).\n\
             seen(X) :- item(X).\nfresh(X) :- cand(X), not seen(X).\n";
        let mut e = CylogEngine::from_source(SRC).unwrap();
        e.add_fact("item", vec![Value::Int(1)]).unwrap();
        e.add_fact("cand", vec![Value::Int(1)]).unwrap();
        e.add_fact("cand", vec![Value::Int(2)]).unwrap();
        let full = e.run().unwrap(); // first run is always a full recompute
        assert_eq!(full.recomputes, 1);
        assert_eq!(e.fact_count("fresh").unwrap(), 1); // fresh = {2}

        // Growth reaching `fresh` only through the negated `seen`: the
        // `seen` stratum takes the delta path, the `fresh` stratum must
        // rebuild (its result shrinks, which deltas cannot express).
        e.add_fact("item", vec![Value::Int(2)]).unwrap();
        let inc = e.run().unwrap();
        assert_eq!(inc.recomputes, 0);
        assert_eq!(inc.delta_seeded, 1); // the one new `item` row
        assert_eq!(inc.strata_recomputed, 1); // the `fresh` stratum
                                              // Delta-seeded `seen` enumerates the 1 delta row; rebuilt `fresh`
                                              // re-enumerates both `cand` rows: 1 + 2.
        assert_eq!(inc.firings, 3);
        assert_eq!(e.fact_count("fresh").unwrap(), 0); // shrank correctly
    }

    #[test]
    fn points_default_zero_and_stats_accumulate() {
        let e = CylogEngine::from_source(TRANSLATE).unwrap();
        assert_eq!(e.points_of(99), 0);
        assert!(e.leaderboard().is_empty());
        let mut e = CylogEngine::from_source(TRANSLATE).unwrap();
        e.add_fact("sentence", vec!["s".into()]).unwrap();
        e.run().unwrap();
        let s1 = e.cumulative_stats();
        e.run().unwrap();
        let s2 = e.cumulative_stats();
        assert!(s2.rounds >= s1.rounds);
    }
}
