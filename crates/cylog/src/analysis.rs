//! Semantic analysis: declaration checking, type inference, rule safety
//! (well-moded body reordering), open-predicate demand compilation, and
//! stratification.
//!
//! The compiler turns the string-based AST into an index-based form:
//! predicates become `PredId`s, variables become dense per-rule slots, and
//! rule bodies are reordered so a left-to-right evaluator is always *ready*
//! (every comparison/assignment/negation sees only bound variables).

use crate::ast::*;
use crate::error::CylogError;
use crowd4u_storage::prelude::{Value, ValueType};
use std::collections::{BTreeSet, HashMap};

pub type PredId = usize;

/// What kind of predicate this is.
#[derive(Debug, Clone, PartialEq)]
pub enum PredKind {
    /// Machine relation (EDB facts and/or IDB rules).
    Closed,
    /// Human-evaluated predicate: first `n_inputs` columns are posed to the
    /// crowd, the rest are filled in by the answering worker.
    Open { n_inputs: usize, points: i64 },
}

/// Compiled predicate metadata.
#[derive(Debug, Clone)]
pub struct PredInfo {
    pub name: String,
    pub col_names: Vec<String>,
    pub col_types: Vec<ValueType>,
    pub kind: PredKind,
    /// True when at least one (non-fact) rule derives this predicate.
    pub derived: bool,
    /// Stratum index assigned by stratification.
    pub stratum: usize,
}

impl PredInfo {
    pub fn arity(&self) -> usize {
        self.col_types.len()
    }

    pub fn is_open(&self) -> bool {
        matches!(self.kind, PredKind::Open { .. })
    }

    pub fn open_inputs(&self) -> usize {
        match self.kind {
            PredKind::Open { n_inputs, .. } => n_inputs,
            PredKind::Closed => 0,
        }
    }
}

/// Compiled term: per-rule variable slot or constant.
#[derive(Debug, Clone, PartialEq)]
pub enum CTerm {
    Var(u32),
    Const(Value),
}

/// Compiled scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    Var(u32),
    Const(Value),
    Binary(ArithOp, Box<CExpr>, Box<CExpr>),
}

/// Compiled atom.
#[derive(Debug, Clone, PartialEq)]
pub struct CAtom {
    pub pred: PredId,
    pub terms: Vec<CTerm>,
}

/// Compiled body literal, in evaluation order.
#[derive(Debug, Clone, PartialEq)]
pub enum CLit {
    Pos(CAtom),
    Neg(CAtom),
    Cmp(CmpOp, CExpr, CExpr),
    Let(u32, CExpr),
}

/// Compiled head term.
#[derive(Debug, Clone, PartialEq)]
pub enum CHeadTerm {
    Var(u32),
    Const(Value),
    Agg(AggFunc, u32),
}

/// Demand specification: how to compute the crowd questions an open atom in
/// a rule generates ("magic set" of its input columns).
#[derive(Debug, Clone)]
pub struct DemandSpec {
    pub open_pred: PredId,
    /// Terms for the open predicate's input columns.
    pub input_terms: Vec<CTerm>,
    /// Sub-body (already safety-ordered) that binds the input terms.
    pub sub_body: Vec<CLit>,
    pub num_vars: usize,
}

/// A compiled rule.
#[derive(Debug, Clone)]
pub struct CRule {
    pub head_pred: PredId,
    pub head: Vec<CHeadTerm>,
    /// Safety-ordered body.
    pub body: Vec<CLit>,
    pub num_vars: usize,
    pub var_names: Vec<String>,
    pub is_agg: bool,
    /// Demands for open atoms appearing in this rule's body.
    pub demands: Vec<DemandSpec>,
    /// Pretty-printed source form, for diagnostics.
    pub display: String,
}

/// Read/write footprint of one stratum, used by incremental evaluation to
/// decide whether a stratum can be skipped, delta-seeded, or must be
/// rebuilt when the predicates it reads change between fixpoints.
#[derive(Debug, Clone, Default)]
pub struct StratumInfo {
    /// Predicates derived by rules in this stratum.
    pub heads: BTreeSet<PredId>,
    /// Predicates read through positive atoms of non-aggregate rules —
    /// growth in these can be handled by delta joins.
    pub pos_reads: BTreeSet<PredId>,
    /// Predicates whose changes delta joins cannot absorb: negated atoms
    /// (monotonicity breaks), and every positive atom of an aggregate rule
    /// (a fold must see its whole group, not just the new rows).
    pub unsafe_reads: BTreeSet<PredId>,
}

/// A fully analysed program ready for evaluation.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub preds: Vec<PredInfo>,
    pub pred_ids: HashMap<String, PredId>,
    pub rules: Vec<CRule>,
    /// Ground facts given in the program text.
    pub facts: Vec<(PredId, Vec<Value>)>,
    /// Rule indices grouped by stratum, in evaluation order.
    pub strata: Vec<Vec<usize>>,
    /// Per-stratum read/write footprint, parallel to `strata`.
    pub stratum_info: Vec<StratumInfo>,
}

impl CompiledProgram {
    pub fn pred(&self, name: &str) -> Option<PredId> {
        self.pred_ids.get(name).copied()
    }

    pub fn pred_info(&self, id: PredId) -> &PredInfo {
        &self.preds[id]
    }
}

struct RuleCtx {
    var_ids: HashMap<String, u32>,
    var_names: Vec<String>,
    var_types: Vec<Option<ValueType>>,
}

impl RuleCtx {
    fn new() -> RuleCtx {
        RuleCtx {
            var_ids: HashMap::new(),
            var_names: Vec::new(),
            var_types: Vec::new(),
        }
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.var_ids.get(name) {
            return id;
        }
        let id = self.var_names.len() as u32;
        self.var_ids.insert(name.to_owned(), id);
        self.var_names.push(name.to_owned());
        self.var_types.push(None);
        id
    }

    fn note_type(&mut self, var: u32, ty: ValueType, rule: &str) -> Result<(), CylogError> {
        let slot = &mut self.var_types[var as usize];
        match slot {
            None => {
                *slot = Some(ty);
                Ok(())
            }
            Some(t) if *t == ty => Ok(()),
            // ints and floats unify to float (numeric widening)
            Some(t @ ValueType::Int) if ty == ValueType::Float => {
                *t = ValueType::Float;
                Ok(())
            }
            Some(ValueType::Float) if ty == ValueType::Int => Ok(()),
            Some(t) => Err(CylogError::Semantic(format!(
                "variable `{}` used as {} and {} in rule `{}`",
                self.var_names[var as usize], t, ty, rule
            ))),
        }
    }
}

/// Analyse a parsed program.
pub fn compile(program: &Program) -> Result<CompiledProgram, CylogError> {
    // ---- Collect predicate declarations ----
    let mut preds: Vec<PredInfo> = Vec::new();
    let mut pred_ids: HashMap<String, PredId> = HashMap::new();
    let declare = |preds: &mut Vec<PredInfo>,
                   pred_ids: &mut HashMap<String, PredId>,
                   info: PredInfo|
     -> Result<PredId, CylogError> {
        if pred_ids.contains_key(&info.name) {
            return Err(CylogError::Semantic(format!(
                "predicate `{}` declared twice",
                info.name
            )));
        }
        let id = preds.len();
        pred_ids.insert(info.name.clone(), id);
        preds.push(info);
        Ok(id)
    };

    for clause in &program.clauses {
        match clause {
            Clause::Rel(d) => {
                check_unique_cols(&d.name, d.cols.iter())?;
                declare(
                    &mut preds,
                    &mut pred_ids,
                    PredInfo {
                        name: d.name.clone(),
                        col_names: d.cols.iter().map(|c| c.name.clone()).collect(),
                        col_types: d.cols.iter().map(|c| c.ty).collect(),
                        kind: PredKind::Closed,
                        derived: false,
                        stratum: 0,
                    },
                )?;
            }
            Clause::Open(d) => {
                check_unique_cols(&d.name, d.inputs.iter().chain(d.outputs.iter()))?;
                declare(
                    &mut preds,
                    &mut pred_ids,
                    PredInfo {
                        name: d.name.clone(),
                        col_names: d
                            .inputs
                            .iter()
                            .chain(d.outputs.iter())
                            .map(|c| c.name.clone())
                            .collect(),
                        col_types: d
                            .inputs
                            .iter()
                            .chain(d.outputs.iter())
                            .map(|c| c.ty)
                            .collect(),
                        kind: PredKind::Open {
                            n_inputs: d.inputs.len(),
                            points: d.points,
                        },
                        derived: false,
                        stratum: 0,
                    },
                )?;
            }
            Clause::Rule(_) => {}
        }
    }

    // ---- Compile facts and rules ----
    let mut rules: Vec<CRule> = Vec::new();
    let mut facts: Vec<(PredId, Vec<Value>)> = Vec::new();
    for clause in &program.clauses {
        let Clause::Rule(rule) = clause else { continue };
        let rule_str = rule.to_string();
        let head_id = *pred_ids.get(&rule.head_pred).ok_or_else(|| {
            CylogError::Semantic(format!(
                "undeclared predicate `{}` in rule `{rule_str}`",
                rule.head_pred
            ))
        })?;
        if rule.head_terms.len() != preds[head_id].arity() {
            return Err(CylogError::Semantic(format!(
                "`{}` has arity {}, used with {} head terms in `{rule_str}`",
                rule.head_pred,
                preds[head_id].arity(),
                rule.head_terms.len()
            )));
        }
        if rule.is_fact() {
            let values: Vec<Value> = rule
                .head_terms
                .iter()
                .map(|t| match t {
                    HeadTerm::Plain(Term::Const(v)) => v.clone(),
                    _ => unreachable!("is_fact checked"),
                })
                .collect();
            check_fact_types(&preds[head_id], &values, &rule_str)?;
            facts.push((head_id, values));
            continue;
        }
        if preds[head_id].is_open() {
            return Err(CylogError::Semantic(format!(
                "open predicate `{}` cannot be derived by a rule (`{rule_str}`)",
                rule.head_pred
            )));
        }
        preds[head_id].derived = true;
        let compiled = compile_rule(rule, head_id, &preds, &pred_ids, &rule_str)?;
        rules.push(compiled);
    }

    // ---- Stratification ----
    let strata_of = stratify(&preds, &rules, program)?;
    for (pid, s) in strata_of.iter().enumerate() {
        preds[pid].stratum = *s;
    }
    let max_stratum = strata_of.iter().copied().max().unwrap_or(0);
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); max_stratum + 1];
    for (ri, r) in rules.iter().enumerate() {
        strata[strata_of[r.head_pred]].push(ri);
    }
    let stratum_info: Vec<StratumInfo> = strata
        .iter()
        .map(|rule_idx| {
            let mut info = StratumInfo::default();
            for &ri in rule_idx {
                let r = &rules[ri];
                info.heads.insert(r.head_pred);
                for lit in &r.body {
                    match lit {
                        CLit::Pos(a) if r.is_agg => {
                            info.unsafe_reads.insert(a.pred);
                        }
                        CLit::Pos(a) => {
                            info.pos_reads.insert(a.pred);
                        }
                        CLit::Neg(a) => {
                            info.unsafe_reads.insert(a.pred);
                        }
                        CLit::Cmp(..) | CLit::Let(..) => {}
                    }
                }
            }
            info
        })
        .collect();

    Ok(CompiledProgram {
        preds,
        pred_ids,
        rules,
        facts,
        strata,
        stratum_info,
    })
}

fn check_unique_cols<'a>(
    pred: &str,
    cols: impl Iterator<Item = &'a ColDecl>,
) -> Result<(), CylogError> {
    let mut seen = std::collections::HashSet::new();
    for c in cols {
        if !seen.insert(&c.name) {
            return Err(CylogError::Semantic(format!(
                "duplicate column `{}` in predicate `{pred}`",
                c.name
            )));
        }
    }
    Ok(())
}

fn check_fact_types(info: &PredInfo, values: &[Value], rule: &str) -> Result<(), CylogError> {
    for (v, ty) in values.iter().zip(&info.col_types) {
        let ok = match (v, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), ValueType::Float) => true, // widen
            _ => v.conforms_to(*ty),
        };
        if !ok {
            return Err(CylogError::Semantic(format!(
                "fact `{rule}` has value {v} incompatible with column type {ty}"
            )));
        }
    }
    Ok(())
}

fn compile_term(t: &Term, ctx: &mut RuleCtx) -> CTerm {
    match t {
        Term::Var(v) => CTerm::Var(ctx.intern(v)),
        Term::Const(c) => CTerm::Const(c.clone()),
    }
}

fn compile_expr(e: &ScalarExpr, ctx: &mut RuleCtx) -> CExpr {
    match e {
        ScalarExpr::Term(Term::Var(v)) => CExpr::Var(ctx.intern(v)),
        ScalarExpr::Term(Term::Const(c)) => CExpr::Const(c.clone()),
        ScalarExpr::Binary(op, a, b) => CExpr::Binary(
            *op,
            Box::new(compile_expr(a, ctx)),
            Box::new(compile_expr(b, ctx)),
        ),
    }
}

fn expr_vars(e: &CExpr, out: &mut Vec<u32>) {
    match e {
        CExpr::Var(v) => out.push(*v),
        CExpr::Const(_) => {}
        CExpr::Binary(_, a, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
    }
}

fn atom_vars(a: &CAtom) -> Vec<u32> {
    a.terms
        .iter()
        .filter_map(|t| match t {
            CTerm::Var(v) => Some(*v),
            CTerm::Const(_) => None,
        })
        .collect()
}

fn lit_required_vars(l: &CLit) -> Vec<u32> {
    match l {
        CLit::Pos(_) => Vec::new(),
        CLit::Neg(a) => atom_vars(a),
        CLit::Cmp(_, a, b) => {
            let mut v = Vec::new();
            expr_vars(a, &mut v);
            expr_vars(b, &mut v);
            v
        }
        CLit::Let(_, e) => {
            let mut v = Vec::new();
            expr_vars(e, &mut v);
            v
        }
    }
}

fn lit_bound_vars(l: &CLit) -> Vec<u32> {
    match l {
        CLit::Pos(a) => atom_vars(a),
        CLit::Let(v, _) => vec![*v],
        _ => Vec::new(),
    }
}

/// Greedy well-moded reorder. Returns the new order or the index of a stuck
/// literal for error reporting.
fn reorder_body(lits: &[CLit]) -> Result<Vec<CLit>, usize> {
    let n = lits.len();
    let mut used = vec![false; n];
    let mut bound: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut picked = None;
        for (i, lit) in lits.iter().enumerate() {
            if used[i] {
                continue;
            }
            // Lets must not rebind an already-bound variable.
            if let CLit::Let(v, _) = lit {
                if bound.contains(v) {
                    continue;
                }
            }
            if lit_required_vars(lit).iter().all(|v| bound.contains(v)) {
                picked = Some(i);
                break;
            }
        }
        let Some(i) = picked else {
            // report the first unused literal as the stuck one
            let stuck = (0..n).find(|&i| !used[i]).expect("n literals remain");
            return Err(stuck);
        };
        used[i] = true;
        for v in lit_bound_vars(&lits[i]) {
            bound.insert(v);
        }
        out.push(lits[i].clone());
    }
    Ok(out)
}

fn infer_expr_type(e: &CExpr, ctx: &RuleCtx, rule: &str) -> Result<Option<ValueType>, CylogError> {
    match e {
        CExpr::Var(v) => Ok(ctx.var_types[*v as usize]),
        CExpr::Const(c) => Ok(c.value_type()),
        CExpr::Binary(op, a, b) => {
            let ta = infer_expr_type(a, ctx, rule)?;
            let tb = infer_expr_type(b, ctx, rule)?;
            match (ta, tb) {
                (Some(ValueType::Str), Some(ValueType::Str)) => {
                    if *op == ArithOp::Add {
                        Ok(Some(ValueType::Str))
                    } else {
                        Err(CylogError::Semantic(format!(
                            "operator `{op}` not defined on strings in `{rule}`"
                        )))
                    }
                }
                (Some(ValueType::Int), Some(ValueType::Int)) => Ok(Some(ValueType::Int)),
                (Some(x), Some(y)) if numeric(x) && numeric(y) => Ok(Some(ValueType::Float)),
                (None, _) | (_, None) => Ok(None),
                (Some(x), Some(y)) => Err(CylogError::Semantic(format!(
                    "arithmetic on {x} and {y} in `{rule}`"
                ))),
            }
        }
    }
}

fn numeric(t: ValueType) -> bool {
    matches!(t, ValueType::Int | ValueType::Float)
}

fn note_atom_types(
    atom: &CAtom,
    info: &PredInfo,
    ctx: &mut RuleCtx,
    rule: &str,
) -> Result<(), CylogError> {
    for (t, ty) in atom.terms.iter().zip(&info.col_types) {
        match t {
            CTerm::Var(v) => ctx.note_type(*v, *ty, rule)?,
            CTerm::Const(c) => {
                let ok = match (c, ty) {
                    (Value::Null, _) => true,
                    (Value::Int(_), ValueType::Float) => true,
                    _ => c.conforms_to(*ty),
                };
                if !ok {
                    return Err(CylogError::Semantic(format!(
                        "constant {c} incompatible with column type {ty} in `{rule}`"
                    )));
                }
            }
        }
    }
    Ok(())
}

fn compile_rule(
    rule: &Rule,
    head_id: PredId,
    preds: &[PredInfo],
    pred_ids: &HashMap<String, PredId>,
    rule_str: &str,
) -> Result<CRule, CylogError> {
    let mut ctx = RuleCtx::new();

    // Compile body literals.
    let mut body: Vec<CLit> = Vec::with_capacity(rule.body.len());
    for lit in &rule.body {
        let c = match lit {
            BodyLit::Pos(a) | BodyLit::Neg(a) => {
                let pid = *pred_ids.get(&a.pred).ok_or_else(|| {
                    CylogError::Semantic(format!(
                        "undeclared predicate `{}` in `{rule_str}`",
                        a.pred
                    ))
                })?;
                if a.terms.len() != preds[pid].arity() {
                    return Err(CylogError::Semantic(format!(
                        "`{}` has arity {}, used with {} terms in `{rule_str}`",
                        a.pred,
                        preds[pid].arity(),
                        a.terms.len()
                    )));
                }
                let catom = CAtom {
                    pred: pid,
                    terms: a.terms.iter().map(|t| compile_term(t, &mut ctx)).collect(),
                };
                note_atom_types(&catom, &preds[pid], &mut ctx, rule_str)?;
                if matches!(lit, BodyLit::Pos(_)) {
                    CLit::Pos(catom)
                } else {
                    CLit::Neg(catom)
                }
            }
            BodyLit::Cmp(op, a, b) => {
                CLit::Cmp(*op, compile_expr(a, &mut ctx), compile_expr(b, &mut ctx))
            }
            BodyLit::Let(v, e) => {
                let e = compile_expr(e, &mut ctx);
                let vid = ctx.intern(v);
                CLit::Let(vid, e)
            }
        };
        body.push(c);
    }

    // Compile head.
    let head_info = &preds[head_id];
    let mut head: Vec<CHeadTerm> = Vec::with_capacity(rule.head_terms.len());
    for (i, t) in rule.head_terms.iter().enumerate() {
        let col_ty = head_info.col_types[i];
        match t {
            HeadTerm::Plain(Term::Var(v)) => {
                let vid = ctx.intern(v);
                ctx.note_type(vid, col_ty, rule_str)?;
                head.push(CHeadTerm::Var(vid));
            }
            HeadTerm::Plain(Term::Const(c)) => {
                let ok = match (c, col_ty) {
                    (Value::Null, _) => true,
                    (Value::Int(_), ValueType::Float) => true,
                    _ => c.conforms_to(col_ty),
                };
                if !ok {
                    return Err(CylogError::Semantic(format!(
                        "head constant {c} incompatible with column type {col_ty} in `{rule_str}`"
                    )));
                }
                head.push(CHeadTerm::Const(c.clone()));
            }
            HeadTerm::Agg(func, v) => {
                let vid = ctx.intern(v);
                head.push(CHeadTerm::Agg(*func, vid));
            }
        }
    }

    // Reorder for safety.
    let body = reorder_body(&body).map_err(|stuck| {
        CylogError::Semantic(format!(
            "rule `{rule_str}` is unsafe: literal `{}` has unbound variables",
            rule.body
                .get(stuck)
                .map(|l| l.to_string())
                .unwrap_or_default()
        ))
    })?;

    // Infer let/expr types along the final order; check comparisons.
    for lit in &body {
        match lit {
            CLit::Let(v, e) => {
                if let Some(t) = infer_expr_type(e, &ctx, rule_str)? {
                    ctx.note_type(*v, t, rule_str)?;
                }
            }
            CLit::Cmp(_, a, b) => {
                let ta = infer_expr_type(a, &ctx, rule_str)?;
                let tb = infer_expr_type(b, &ctx, rule_str)?;
                if let (Some(x), Some(y)) = (ta, tb) {
                    let ok = x == y || (numeric(x) && numeric(y));
                    if !ok {
                        return Err(CylogError::Semantic(format!(
                            "comparison between {x} and {y} in `{rule_str}`"
                        )));
                    }
                }
            }
            _ => {}
        }
    }

    // Head safety: every head var/agg var must be bound by the body.
    let mut bound: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for lit in &body {
        for v in lit_bound_vars(lit) {
            bound.insert(v);
        }
    }
    for (i, t) in head.iter().enumerate() {
        let (v, what) = match t {
            CHeadTerm::Var(v) => (v, "head variable"),
            CHeadTerm::Agg(_, v) => (v, "aggregated variable"),
            CHeadTerm::Const(_) => continue,
        };
        if !bound.contains(v) {
            return Err(CylogError::Semantic(format!(
                "{what} `{}` not bound by the body in `{rule_str}`",
                ctx.var_names[*v as usize]
            )));
        }
        // Aggregate input types: sum/avg need numerics.
        if let CHeadTerm::Agg(func, v) = t {
            if matches!(func, AggFunc::Sum | AggFunc::Avg) {
                if let Some(ty) = ctx.var_types[*v as usize] {
                    if !numeric(ty) {
                        return Err(CylogError::Semantic(format!(
                            "{}<{}> needs a numeric variable in `{rule_str}`",
                            func.name(),
                            ctx.var_names[*v as usize]
                        )));
                    }
                }
            }
            // The head column type must accept the aggregate's output.
            let col_ty = head_info.col_types[i];
            let in_ty = ctx.var_types[*v as usize].unwrap_or(col_ty);
            let out_ty = func.output_type(in_ty);
            let ok = col_ty == out_ty || (col_ty == ValueType::Float && out_ty == ValueType::Int);
            if !ok {
                return Err(CylogError::Semantic(format!(
                    "aggregate {} produces {out_ty} but column {i} of `{}` is {col_ty} in `{rule_str}`",
                    func.name(),
                    head_info.name
                )));
            }
        }
    }

    // Aggregate rules: plain head terms are the group keys; nothing else to
    // check beyond binding, which is done above.

    // Demand specs for open atoms.
    let mut demands = Vec::new();
    for (i, lit) in body.iter().enumerate() {
        let CLit::Pos(atom) = lit else { continue };
        let info = &preds[atom.pred];
        if !info.is_open() {
            continue;
        }
        let n_inputs = info.open_inputs();
        let input_terms: Vec<CTerm> = atom.terms[..n_inputs].to_vec();
        // Candidate literals: every literal except the target, in an order
        // where each is ready when reached.
        let rest: Vec<CLit> = body
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, l)| l.clone())
            .collect();
        let ordered = best_effort_order(&rest);
        // Backward dependency slice: keep only the literals transitively
        // needed to bind the input variables. This matters when the rule
        // contains *other* open atoms: asking "check(S,T)?" must not wait on
        // the answer to "translate(S)?" unless T really flows from it.
        let mut first_binder: HashMap<u32, usize> = HashMap::new();
        {
            let mut bound: std::collections::HashSet<u32> = std::collections::HashSet::new();
            for (j, l) in ordered.iter().enumerate() {
                for v in lit_bound_vars(l) {
                    if bound.insert(v) {
                        first_binder.insert(v, j);
                    }
                }
            }
        }
        let mut needed: Vec<u32> = input_terms
            .iter()
            .filter_map(|t| match t {
                CTerm::Var(v) => Some(*v),
                CTerm::Const(_) => None,
            })
            .collect();
        let mut kept = vec![false; ordered.len()];
        let mut qi = 0;
        while qi < needed.len() {
            let v = needed[qi];
            qi += 1;
            let Some(&j) = first_binder.get(&v) else {
                return Err(CylogError::Semantic(format!(
                    "input `{}` of open predicate `{}` is not derivable from the closed \
                     part of rule `{rule_str}`",
                    ctx.var_names[v as usize], info.name
                )));
            };
            if kept[j] {
                continue;
            }
            kept[j] = true;
            // A kept positive atom joins on *all* its variables; a kept let
            // needs its expression variables.
            let more: Vec<u32> = match &ordered[j] {
                CLit::Pos(a) => atom_vars(a),
                other => lit_required_vars(other),
            };
            for m in more {
                if !needed.contains(&m) {
                    needed.push(m);
                }
            }
        }
        // Tighten the demand with any filter whose variables are all bound
        // by the kept binders (fewer, more precise questions).
        let kept_bound: std::collections::HashSet<u32> = ordered
            .iter()
            .enumerate()
            .filter(|&(j, _)| kept[j])
            .flat_map(|(_, l)| lit_bound_vars(l))
            .collect();
        for (j, l) in ordered.iter().enumerate() {
            if kept[j] {
                continue;
            }
            if matches!(l, CLit::Cmp(..) | CLit::Neg(_))
                && lit_required_vars(l).iter().all(|v| kept_bound.contains(v))
            {
                kept[j] = true;
            }
        }
        let sub_body: Vec<CLit> = ordered
            .into_iter()
            .enumerate()
            .filter(|&(j, _)| kept[j])
            .map(|(_, l)| l)
            .collect();
        demands.push(DemandSpec {
            open_pred: atom.pred,
            input_terms,
            sub_body,
            num_vars: ctx.var_names.len(),
        });
    }

    Ok(CRule {
        head_pred: head_id,
        head,
        body,
        num_vars: ctx.var_names.len(),
        var_names: ctx.var_names,
        is_agg: rule.is_aggregate(),
        demands,
        display: rule_str.to_owned(),
    })
}

/// Keep the subset of literals that can be evaluated left-to-right, dropping
/// anything that never becomes ready (used for demand computation).
fn best_effort_order(lits: &[CLit]) -> Vec<CLit> {
    let n = lits.len();
    let mut used = vec![false; n];
    let mut bound: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut out = Vec::new();
    loop {
        let mut progressed = false;
        for (i, lit) in lits.iter().enumerate() {
            if used[i] {
                continue;
            }
            if let CLit::Let(v, _) = lit {
                if bound.contains(v) {
                    continue;
                }
            }
            if lit_required_vars(lit).iter().all(|v| bound.contains(v)) {
                used[i] = true;
                for v in lit_bound_vars(lit) {
                    bound.insert(v);
                }
                out.push(lit.clone());
                progressed = true;
            }
        }
        if !progressed {
            return out;
        }
    }
}

/// Assign strata to predicates. Positive dependencies keep the stratum;
/// negations and aggregations push the head strictly above the body.
fn stratify(
    preds: &[PredInfo],
    rules: &[CRule],
    _program: &Program,
) -> Result<Vec<usize>, CylogError> {
    let n = preds.len();
    let mut stratum = vec![0usize; n];
    // Iterate to fixpoint; more than n*#rules+1 rounds means a negative cycle.
    let max_rounds = n * rules.len() + 2;
    for round in 0..=max_rounds {
        let mut changed = false;
        for r in rules {
            for lit in &r.body {
                let (bp, negative) = match lit {
                    CLit::Pos(a) => (a.pred, r.is_agg),
                    CLit::Neg(a) => (a.pred, true),
                    _ => continue,
                };
                let need = if negative {
                    stratum[bp] + 1
                } else {
                    stratum[bp]
                };
                if stratum[r.head_pred] < need {
                    stratum[r.head_pred] = need;
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(stratum);
        }
        if round == max_rounds {
            break;
        }
    }
    Err(CylogError::Semantic(
        "program is not stratifiable: recursion through negation or aggregation".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_src(src: &str) -> Result<CompiledProgram, CylogError> {
        compile(&parse(src).unwrap())
    }

    #[test]
    fn minimal_program_compiles() {
        let p = compile_src(
            "rel edge(a: int, b: int).\n\
             rel path(a: int, b: int).\n\
             edge(1, 2).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).\n",
        )
        .unwrap();
        assert_eq!(p.preds.len(), 2);
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.facts.len(), 1);
        assert_eq!(p.strata.len(), 1);
        assert!(p.preds[p.pred("path").unwrap()].derived);
        assert!(!p.preds[p.pred("edge").unwrap()].derived);
    }

    #[test]
    fn undeclared_predicate_rejected() {
        let err = compile_src("p(X) :- q(X).").unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = compile_src("rel q(a: int).\nrel p(a: int).\np(X) :- q(X, X).").unwrap_err();
        assert!(err.to_string().contains("arity"));
        let err = compile_src("rel p(a: int).\np(1, 2).").unwrap_err();
        assert!(err.to_string().contains("arity") || err.to_string().contains("head terms"));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let err = compile_src("rel p(a: int).\nrel p(b: int).").unwrap_err();
        assert!(err.to_string().contains("twice"));
        let err = compile_src("rel p(a: int, a: str).").unwrap_err();
        assert!(err.to_string().contains("duplicate column"));
    }

    #[test]
    fn type_conflicts_rejected() {
        // X used as int and str
        let err =
            compile_src("rel a(x: int).\nrel b(x: str).\nrel r(x: int).\nr(X) :- a(X), b(X).")
                .unwrap_err();
        assert!(err.to_string().contains("used as"));
        // fact value of the wrong type
        let err = compile_src("rel p(a: int).\np(\"no\").").unwrap_err();
        assert!(err.to_string().contains("incompatible"));
        // int facts widen into float columns
        compile_src("rel p(a: float).\np(3).").unwrap();
    }

    #[test]
    fn unsafe_rules_rejected() {
        // head var not bound
        let err = compile_src("rel p(a: int).\nrel q(a: int).\nq(Y) :- p(X).").unwrap_err();
        assert!(err.to_string().contains("not bound"));
        // negation-only variable
        let err =
            compile_src("rel p(a: int).\nrel q(a: int).\nrel r(a: int).\nr(X) :- p(X), not q(Y).")
                .unwrap_err();
        assert!(err.to_string().contains("unsafe"));
        // comparison with unbound var
        let err = compile_src("rel p(a: int).\nrel r(a: int).\nr(X) :- p(X), Y > 3.").unwrap_err();
        assert!(err.to_string().contains("unsafe"));
    }

    #[test]
    fn body_reordered_for_safety() {
        // The comparison appears before its variable is bound; reorder fixes it.
        let p = compile_src("rel p(a: int).\nrel r(a: int).\nr(X) :- X > 3, p(X).").unwrap();
        let r = &p.rules[0];
        assert!(matches!(r.body[0], CLit::Pos(_)));
        assert!(matches!(r.body[1], CLit::Cmp(..)));
    }

    #[test]
    fn let_rebinding_rejected() {
        let err = compile_src("rel p(a: int).\nrel r(a: int).\nr(X) :- p(X), X := 3.").unwrap_err();
        assert!(err.to_string().contains("unsafe"));
    }

    #[test]
    fn open_predicates_cannot_be_derived() {
        let err = compile_src("open j(x: int) -> (ok: bool).\nrel p(x: int).\nj(X, true) :- p(X).")
            .unwrap_err();
        assert!(err.to_string().contains("cannot be derived"));
    }

    #[test]
    fn stratification_negation() {
        let p = compile_src(
            "rel p(a: int).\nrel q(a: int).\nrel r(a: int).\n\
             q(X) :- p(X).\n\
             r(X) :- p(X), not q(X).\n",
        )
        .unwrap();
        let q = p.pred("q").unwrap();
        let r = p.pred("r").unwrap();
        assert!(p.preds[r].stratum > p.preds[q].stratum);
        assert_eq!(p.strata.len(), 2);
    }

    #[test]
    fn unstratifiable_rejected() {
        let err = compile_src(
            "rel p(a: int).\nrel q(a: int).\n\
             p(X) :- q(X).\n\
             q(X) :- p(X), not q(X).\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("stratifiable"));
    }

    #[test]
    fn aggregates_stratify_above_inputs() {
        let p = compile_src(
            "rel w(g: int, s: float).\nrel n(g: int, c: int).\n\
             n(G, count<S>) :- w(G, S).\n",
        )
        .unwrap();
        let w = p.pred("w").unwrap();
        let n = p.pred("n").unwrap();
        assert!(p.preds[n].stratum > p.preds[w].stratum);
    }

    #[test]
    fn aggregate_type_checks() {
        // sum over strings rejected
        let err = compile_src(
            "rel w(g: int, s: str).\nrel n(g: int, c: float).\n\
             n(G, sum<S>) :- w(G, S).\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("numeric"));
        // count into an int column is fine
        compile_src(
            "rel w(g: int, s: str).\nrel n(g: int, c: int).\n\
             n(G, count<S>) :- w(G, S).\n",
        )
        .unwrap();
        // count into a str column rejected
        let err = compile_src(
            "rel w(g: int, s: str).\nrel n(g: int, c: str).\n\
             n(G, count<S>) :- w(G, S).\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("produces"));
    }

    #[test]
    fn demand_specs_computed() {
        let p = compile_src(
            "rel sentence(s: str).\n\
             open translate(s: str) -> (t: str) points 2.\n\
             rel out(s: str, t: str).\n\
             out(S, T) :- sentence(S), translate(S, T).\n",
        )
        .unwrap();
        let r = &p.rules[0];
        assert_eq!(r.demands.len(), 1);
        let d = &r.demands[0];
        assert_eq!(d.open_pred, p.pred("translate").unwrap());
        assert_eq!(d.input_terms.len(), 1);
        assert_eq!(d.sub_body.len(), 1); // just sentence(S)
    }

    #[test]
    fn chained_open_demands() {
        // second open's input comes from the first open's output
        let p = compile_src(
            "rel s(x: str).\n\
             open a(x: str) -> (y: str).\n\
             open b(y: str) -> (z: str).\n\
             rel out(x: str, z: str).\n\
             out(X, Z) :- s(X), a(X, Y), b(Y, Z).\n",
        )
        .unwrap();
        let r = &p.rules[0];
        assert_eq!(r.demands.len(), 2);
        // demand for b includes atom a in its sub-body
        let db = r
            .demands
            .iter()
            .find(|d| d.open_pred == p.pred("b").unwrap())
            .unwrap();
        assert_eq!(db.sub_body.len(), 2);
    }

    #[test]
    fn open_input_underivable_rejected() {
        let err = compile_src(
            "open j(x: int) -> (ok: bool).\n\
             rel r(ok: bool).\n\
             r(OK) :- j(X, OK).\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("not derivable"));
    }

    #[test]
    fn int_float_widening_in_vars() {
        compile_src(
            "rel a(x: int).\nrel b(x: float).\nrel r(x: float).\n\
             r(X) :- a(X), b(X).\n",
        )
        .unwrap();
    }
}
