//! # crowd4u-cylog — the CyLog language and processor
//!
//! CyLog is "a Datalog-like language designed for crowdsourcing applications
//! with complex data flows" whose defining feature is that it "allows humans
//! to evaluate predicates in rules" (paper §2.1, citing Morishima et al.,
//! *CyLog/game aspect*, Information Systems 2016). This crate implements:
//!
//! * the **language**: lexer, parser and AST ([`lexer`], [`parser`], [`ast`]);
//! * **semantic analysis**: declaration/arity/type checks, rule safety via
//!   well-moded body reordering, stratification of negation and aggregation,
//!   and demand compilation for open predicates ([`analysis`]);
//! * the **evaluator**: stratified bottom-up evaluation in three modes
//!   ([`eval`]): naive and semi-naive (both clear-and-rerun), and
//!   **cross-batch incremental** — the default — which persists derived
//!   relations across [`engine::CylogEngine::run`] calls, seeds each pass
//!   from the facts and answers inserted since the last fixpoint, and
//!   falls back to a full recompute after retractions (which deltas
//!   cannot express). All three modes are observationally identical —
//!   byte-identical snapshots, pending queues and points ledgers after
//!   every batch (see `tests/cylog_incremental.rs`);
//! * the **processor** ([`engine::CylogEngine`]): owns the fact store, runs
//!   rules to fixpoint, converts open-predicate demands into crowd questions,
//!   ingests answers, and keeps the game-aspect points ledger.
//!
//! ## Open predicates
//!
//! ```text
//! rel  sentence(s: str).
//! open translate(s: str) -> (t: str) points 3.
//! rel  published(s: str, t: str).
//! published(S, T) :- sentence(S), translate(S, T).
//! ```
//!
//! `translate` is an *open* predicate: its input column `s` is bound by the
//! engine (one question per distinct sentence), and its output column `t` is
//! filled in by a worker. The engine exposes unanswered questions through
//! [`engine::CylogEngine::pending_requests`] and accepts answers through
//! [`engine::CylogEngine::answer`]; each accepted first answer credits the
//! worker with the declared points.
//!
//! ## Evaluation statistics: what `firings` means
//!
//! [`eval::EvalStats::firings`] counts **candidate rows enumerated at
//! positive body literals** — the join work the evaluator explored,
//! whether or not each row unified with the partial binding. It does *not*
//! count rule-head derivations: those are [`eval::EvalStats::derived`]
//! (new facts) plus [`eval::EvalStats::duplicates`] (re-derivations of
//! known facts). Since PR 6 (cross-batch incremental evaluation with
//! per-stratum dispatch) the counter therefore measures the work a pass
//! *actually did*, which varies with how each stratum was dispatched — a
//! skipped stratum contributes zero firings even though its rules are
//! still logically "true".
//!
//! The two cross-batch incremental paths make the distinction visible —
//! a **delta-seeded** stratum enumerates only the rows inserted since the
//! previous fixpoint, while a **rebuilt** stratum (one a change reaches
//! through negation or an aggregate) clears its derived relations and
//! re-enumerates its full input. The exact counts on both paths are
//! pinned by `firings_count_candidates_on_delta_seeded_vs_rebuilt_strata`
//! in [`engine`]'s tests, and the running totals are exported as the
//! `crowd4u_cylog_*_total` telemetry counters (see
//! [`engine::CylogEngine::set_telemetry`]).
//!
//! ```
//! use crowd4u_cylog::engine::CylogEngine;
//!
//! let mut e = CylogEngine::from_source(
//!     "rel s(x: str). open t(x: str) -> (y: str). rel out(x: str, y: str).
//!      out(X, Y) :- s(X), t(X, Y).",
//! ).unwrap();
//! e.add_fact("s", vec!["hello".into()]).unwrap();
//! e.run().unwrap();
//! assert_eq!(e.pending_requests().len(), 1);
//! e.answer("t", vec!["hello".into()], vec!["bonjour".into()], None).unwrap();
//! e.run().unwrap();
//! assert_eq!(e.fact_count("out").unwrap(), 1);
//! ```

pub mod analysis;
pub mod ast;
pub mod engine;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod token;

pub mod prelude {
    pub use crate::analysis::{compile, CompiledProgram, PredId, PredKind};
    pub use crate::ast::Program;
    pub use crate::engine::{AnswerRecord, BatchOutcome, CylogEngine, OpenRequest};
    pub use crate::error::CylogError;
    pub use crate::eval::{EvalMode, EvalStats};
    pub use crate::parser::parse;
}

#[cfg(test)]
mod proptests {
    use crate::eval::EvalMode;
    use crate::prelude::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Naive ≡ semi-naive ≡ cross-batch incremental on transitive
        /// closure — the classic recursive workload — for arbitrary edge
        /// sets. The incremental engine (the default mode) receives the
        /// edges in two waves with a fixpoint between them, so its second
        /// run takes the delta path.
        #[test]
        fn seminaive_equals_naive_on_closure(
            edges in proptest::collection::vec((0i64..12, 0i64..12), 0..40)
        ) {
            let src = "rel edge(a: int, b: int).\nrel path(a: int, b: int).\n\
                       path(X, Y) :- edge(X, Y).\n\
                       path(X, Z) :- edge(X, Y), path(Y, Z).\n";
            let mut naive = CylogEngine::from_source(src).unwrap();
            naive.set_mode(EvalMode::Naive);
            let mut semi = CylogEngine::from_source(src).unwrap();
            semi.set_mode(EvalMode::SemiNaive);
            let mut inc = CylogEngine::from_source(src).unwrap();
            prop_assert_eq!(inc.mode(), EvalMode::Incremental);
            for (a, b) in &edges {
                naive.add_fact("edge", vec![(*a).into(), (*b).into()]).unwrap();
                semi.add_fact("edge", vec![(*a).into(), (*b).into()]).unwrap();
            }
            naive.run().unwrap();
            semi.run().unwrap();
            let half = edges.len() / 2;
            for (a, b) in &edges[..half] {
                inc.add_fact("edge", vec![(*a).into(), (*b).into()]).unwrap();
            }
            inc.run().unwrap();
            for (a, b) in &edges[half..] {
                inc.add_fact("edge", vec![(*a).into(), (*b).into()]).unwrap();
            }
            inc.run().unwrap();
            let mut r1 = naive.facts("path").unwrap().rows;
            let mut r2 = semi.facts("path").unwrap().rows;
            let mut r3 = inc.facts("path").unwrap().rows;
            r1.sort();
            r2.sort();
            r3.sort();
            prop_assert_eq!(&r1, &r2);
            prop_assert_eq!(&r1, &r3);
        }

        /// Pretty-printing a parsed program reparses to the same AST.
        #[test]
        fn parser_pretty_roundtrip(n_rels in 1usize..4, n_rules in 0usize..4) {
            let mut src = String::new();
            for i in 0..n_rels {
                src.push_str(&format!("rel p{i}(a: int, b: str).\n"));
            }
            for i in 0..n_rules {
                let from = i % n_rels;
                src.push_str(&format!("p{from}(1, \"x\").\n"));
                if n_rels > 1 {
                    let to = (i + 1) % n_rels;
                    src.push_str(&format!("p{to}(A, B) :- p{from}(A, B), A >= 0.\n"));
                }
            }
            let ast1 = parse(&src).unwrap();
            let printed = ast1.to_string();
            let ast2 = parse(&printed).unwrap();
            prop_assert_eq!(ast1, ast2);
        }

        /// Evaluation is deterministic: same inputs, same outputs (sorted).
        #[test]
        fn evaluation_deterministic(
            facts in proptest::collection::vec((0i64..20, 0i64..20), 0..30)
        ) {
            let src = "rel r(a: int, b: int).\nrel s(a: int, b: int).\n\
                       s(X, Y) :- r(X, Y), X < Y.\n";
            let mut runs = Vec::new();
            for _ in 0..2 {
                let mut e = CylogEngine::from_source(src).unwrap();
                for (a, b) in &facts {
                    e.add_fact("r", vec![(*a).into(), (*b).into()]).unwrap();
                }
                e.run().unwrap();
                let mut rows = e.facts("s").unwrap().rows;
                rows.sort();
                runs.push(rows);
            }
            prop_assert_eq!(runs[0].clone(), runs[1].clone());
        }
    }
}
