//! Tokens and source positions for the CyLog language.

use std::fmt;

/// 1-based line/column position in a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl Pos {
    pub fn start() -> Pos {
        Pos { line: 1, col: 1 }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Lexical token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Identifiers & literals
    /// lower-case initial: predicate or keyword-adjacent name
    Ident(String),
    /// Upper-case initial (or `_`): variable
    Var(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// `#123` entity id literal
    IdLit(u64),

    // Keywords
    KwRel,
    KwOpen,
    KwNot,
    KwTrue,
    KwFalse,
    KwNull,
    KwPoints,
    KwBy,

    // Punctuation
    LParen,
    RParen,
    LAngle, // <  (also comparison)
    RAngle, // >  (also comparison)
    Comma,
    Dot,
    Colon,
    ColonDash, // :-
    Assign,    // :=
    Arrow,     // ->
    Eq,        // =
    Ne,        // !=
    Le,        // <=
    Ge,        // >=
    Plus,
    Minus,
    StarTok,
    Slash,
    Question, // ? (demand rule marker, reserved)

    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Var(s) => write!(f, "variable `{s}`"),
            Tok::Int(i) => write!(f, "integer {i}"),
            Tok::Float(x) => write!(f, "float {x}"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::IdLit(i) => write!(f, "id #{i}"),
            Tok::KwRel => f.write_str("`rel`"),
            Tok::KwOpen => f.write_str("`open`"),
            Tok::KwNot => f.write_str("`not`"),
            Tok::KwTrue => f.write_str("`true`"),
            Tok::KwFalse => f.write_str("`false`"),
            Tok::KwNull => f.write_str("`null`"),
            Tok::KwPoints => f.write_str("`points`"),
            Tok::KwBy => f.write_str("`by`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LAngle => f.write_str("`<`"),
            Tok::RAngle => f.write_str("`>`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::ColonDash => f.write_str("`:-`"),
            Tok::Assign => f.write_str("`:=`"),
            Tok::Arrow => f.write_str("`->`"),
            Tok::Eq => f.write_str("`=`"),
            Tok::Ne => f.write_str("`!=`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::StarTok => f.write_str("`*`"),
            Tok::Slash => f.write_str("`/`"),
            Tok::Question => f.write_str("`?`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub pos: Pos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_display() {
        assert_eq!(Pos { line: 3, col: 7 }.to_string(), "3:7");
        assert_eq!(Pos::start().to_string(), "1:1");
    }

    #[test]
    fn token_display_nonempty() {
        let toks = [
            Tok::Ident("p".into()),
            Tok::Var("X".into()),
            Tok::Int(1),
            Tok::Float(2.5),
            Tok::Str("s".into()),
            Tok::IdLit(3),
            Tok::KwRel,
            Tok::ColonDash,
            Tok::Eof,
        ];
        for t in toks {
            assert!(!t.to_string().is_empty());
        }
    }
}
