//! Recursive-descent parser for CyLog.

use crate::ast::*;
use crate::error::CylogError;
use crate::lexer::tokenize;
use crate::token::{Pos, Spanned, Tok};
use crowd4u_storage::prelude::{Value, ValueType};

pub struct Parser {
    toks: Vec<Spanned>,
    at: usize,
}

impl Parser {
    pub fn new(src: &str) -> Result<Parser, CylogError> {
        Ok(Parser {
            toks: tokenize(src)?,
            at: 0,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.at].tok
    }

    fn peek2(&self) -> &Tok {
        let i = (self.at + 1).min(self.toks.len() - 1);
        &self.toks[i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.at].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].tok.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> CylogError {
        CylogError::Parse {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<(), CylogError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, CylogError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_var(&mut self) -> Result<String, CylogError> {
        match self.peek().clone() {
            Tok::Var(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected variable, found {other}"))),
        }
    }

    /// Parse a whole program.
    pub fn parse_program(mut self) -> Result<Program, CylogError> {
        let mut clauses = Vec::new();
        while self.peek() != &Tok::Eof {
            clauses.push(self.parse_clause()?);
        }
        Ok(Program { clauses })
    }

    fn parse_clause(&mut self) -> Result<Clause, CylogError> {
        match self.peek() {
            Tok::KwRel => self.parse_rel_decl().map(Clause::Rel),
            Tok::KwOpen => self.parse_open_decl().map(Clause::Open),
            _ => self.parse_rule().map(Clause::Rule),
        }
    }

    fn parse_rel_decl(&mut self) -> Result<RelDecl, CylogError> {
        self.expect(&Tok::KwRel)?;
        let name = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        let cols = self.parse_col_decls()?;
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Dot)?;
        Ok(RelDecl { name, cols })
    }

    fn parse_open_decl(&mut self) -> Result<OpenDecl, CylogError> {
        self.expect(&Tok::KwOpen)?;
        let name = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        let inputs = self.parse_col_decls()?;
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Arrow)?;
        self.expect(&Tok::LParen)?;
        let outputs = self.parse_col_decls()?;
        self.expect(&Tok::RParen)?;
        let mut points = 0;
        if self.peek() == &Tok::KwPoints {
            self.bump();
            match self.bump() {
                Tok::Int(n) => points = n,
                other => return Err(self.err(format!("expected point count, found {other}"))),
            }
        }
        self.expect(&Tok::Dot)?;
        if outputs.is_empty() {
            return Err(self.err(format!(
                "open predicate `{name}` needs at least one output column"
            )));
        }
        Ok(OpenDecl {
            name,
            inputs,
            outputs,
            points,
        })
    }

    fn parse_col_decls(&mut self) -> Result<Vec<ColDecl>, CylogError> {
        let mut cols = Vec::new();
        if self.peek() == &Tok::RParen {
            return Ok(cols);
        }
        loop {
            let name = self.expect_ident()?;
            self.expect(&Tok::Colon)?;
            let tyname = self.expect_ident()?;
            let ty = ValueType::parse(&tyname)
                .ok_or_else(|| self.err(format!("unknown type `{tyname}`")))?;
            cols.push(ColDecl { name, ty });
            if self.peek() == &Tok::Comma {
                self.bump();
            } else {
                return Ok(cols);
            }
        }
    }

    fn parse_rule(&mut self) -> Result<Rule, CylogError> {
        let head_pred = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        let mut head_terms = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                head_terms.push(self.parse_head_term()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let mut body = Vec::new();
        if self.peek() == &Tok::ColonDash {
            self.bump();
            loop {
                body.push(self.parse_body_lit()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::Dot)?;
        Ok(Rule {
            head_pred,
            head_terms,
            body,
        })
    }

    fn parse_head_term(&mut self) -> Result<HeadTerm, CylogError> {
        if let Tok::Ident(name) = self.peek().clone() {
            // aggregate: count<X>
            let func = AggFunc::parse(&name)
                .ok_or_else(|| self.err(format!("unknown aggregate `{name}`")))?;
            self.bump();
            self.expect(&Tok::LAngle)?;
            let var = self.expect_var()?;
            self.expect(&Tok::RAngle)?;
            Ok(HeadTerm::Agg(func, var))
        } else {
            Ok(HeadTerm::Plain(self.parse_term()?))
        }
    }

    fn parse_term(&mut self) -> Result<Term, CylogError> {
        match self.peek().clone() {
            Tok::Var(v) => {
                self.bump();
                Ok(Term::Var(v))
            }
            _ => self.parse_const().map(Term::Const),
        }
    }

    fn parse_const(&mut self) -> Result<Value, CylogError> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Value::Int(i))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Value::Float(x))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Value::Str(s))
            }
            Tok::IdLit(i) => {
                self.bump();
                Ok(Value::Id(i))
            }
            Tok::KwTrue => {
                self.bump();
                Ok(Value::Bool(true))
            }
            Tok::KwFalse => {
                self.bump();
                Ok(Value::Bool(false))
            }
            Tok::KwNull => {
                self.bump();
                Ok(Value::Null)
            }
            Tok::Minus => {
                self.bump();
                match self.bump() {
                    Tok::Int(i) => Ok(Value::Int(-i)),
                    Tok::Float(x) => Ok(Value::Float(-x)),
                    other => Err(self.err(format!("expected number after `-`, found {other}"))),
                }
            }
            other => Err(self.err(format!("expected constant, found {other}"))),
        }
    }

    fn parse_atom(&mut self) -> Result<Atom, CylogError> {
        let pred = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        let mut terms = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                terms.push(self.parse_term()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(Atom { pred, terms })
    }

    fn parse_body_lit(&mut self) -> Result<BodyLit, CylogError> {
        match self.peek().clone() {
            Tok::KwNot => {
                self.bump();
                Ok(BodyLit::Neg(self.parse_atom()?))
            }
            Tok::Var(v) if self.peek2() == &Tok::Assign => {
                self.bump(); // var
                self.bump(); // :=
                Ok(BodyLit::Let(v, self.parse_expr()?))
            }
            Tok::Ident(_) => Ok(BodyLit::Pos(self.parse_atom()?)),
            _ => {
                // comparison: expr cmpop expr
                let lhs = self.parse_expr()?;
                let op = match self.bump() {
                    Tok::Eq => CmpOp::Eq,
                    Tok::Ne => CmpOp::Ne,
                    Tok::LAngle => CmpOp::Lt,
                    Tok::Le => CmpOp::Le,
                    Tok::RAngle => CmpOp::Gt,
                    Tok::Ge => CmpOp::Ge,
                    other => {
                        return Err(self.err(format!("expected comparison operator, found {other}")))
                    }
                };
                let rhs = self.parse_expr()?;
                Ok(BodyLit::Cmp(op, lhs, rhs))
            }
        }
    }

    fn parse_expr(&mut self) -> Result<ScalarExpr, CylogError> {
        let mut lhs = self.parse_mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => ArithOp::Add,
                Tok::Minus => ArithOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_mul_expr()?;
            lhs = ScalarExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_mul_expr(&mut self) -> Result<ScalarExpr, CylogError> {
        let mut lhs = self.parse_primary()?;
        loop {
            let op = match self.peek() {
                Tok::StarTok => ArithOp::Mul,
                Tok::Slash => ArithOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_primary()?;
            lhs = ScalarExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_primary(&mut self) -> Result<ScalarExpr, CylogError> {
        if self.peek() == &Tok::LParen {
            self.bump();
            let e = self.parse_expr()?;
            self.expect(&Tok::RParen)?;
            Ok(e)
        } else {
            Ok(ScalarExpr::Term(self.parse_term()?))
        }
    }
}

/// Parse CyLog source into a [`Program`].
pub fn parse(src: &str) -> Result<Program, CylogError> {
    Parser::new(src)?.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_declarations() {
        let p = parse(
            "rel t(src: str, n: int).\n\
             open judge(src: str) -> (ok: bool) points 5.\n\
             open vote(x: id) -> (v: int).\n",
        )
        .unwrap();
        assert_eq!(p.rel_decls().count(), 1);
        let opens: Vec<_> = p.open_decls().collect();
        assert_eq!(opens.len(), 2);
        assert_eq!(opens[0].points, 5);
        assert_eq!(opens[1].points, 0);
        assert_eq!(opens[0].inputs.len(), 1);
        assert_eq!(opens[0].outputs.len(), 1);
    }

    #[test]
    fn parse_facts_and_rules() {
        let p = parse(
            "t(\"hello\", 1).\n\
             t(\"bye\", -2).\n\
             good(S) :- t(S, N), N > 0.\n",
        )
        .unwrap();
        let rules: Vec<_> = p.rules().collect();
        assert_eq!(rules.len(), 3);
        assert!(rules[0].is_fact());
        assert!(rules[1].is_fact());
        match &rules[1].head_terms[1] {
            HeadTerm::Plain(Term::Const(Value::Int(n))) => assert_eq!(*n, -2),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(rules[2].body.len(), 2);
    }

    #[test]
    fn parse_all_literal_kinds() {
        let p = parse("r(X, Z) :- p(X), not q(X), X != 3, Z := X * 2 + 1, Z <= 100.\n").unwrap();
        let r = p.rules().next().unwrap();
        assert_eq!(r.body.len(), 5);
        assert!(matches!(r.body[0], BodyLit::Pos(_)));
        assert!(matches!(r.body[1], BodyLit::Neg(_)));
        assert!(matches!(r.body[2], BodyLit::Cmp(CmpOp::Ne, _, _)));
        assert!(matches!(r.body[3], BodyLit::Let(_, _)));
        assert!(matches!(r.body[4], BodyLit::Cmp(CmpOp::Le, _, _)));
    }

    #[test]
    fn parse_aggregates() {
        let p = parse("n(G, count<X>, avg<S>) :- w(G, X, S).\n").unwrap();
        let r = p.rules().next().unwrap();
        assert!(r.is_aggregate());
        assert!(matches!(r.head_terms[0], HeadTerm::Plain(_)));
        assert!(matches!(r.head_terms[1], HeadTerm::Agg(AggFunc::Count, _)));
        assert!(matches!(r.head_terms[2], HeadTerm::Agg(AggFunc::Avg, _)));
    }

    #[test]
    fn parse_constants_of_all_types() {
        let p = parse("k(1, 2.5, \"s\", #9, true, false, null).\n").unwrap();
        let r = p.rules().next().unwrap();
        let consts: Vec<&Value> = r
            .head_terms
            .iter()
            .map(|t| match t {
                HeadTerm::Plain(Term::Const(v)) => v,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(consts[0], &Value::Int(1));
        assert_eq!(consts[1], &Value::Float(2.5));
        assert_eq!(consts[2], &Value::Str("s".into()));
        assert_eq!(consts[3], &Value::Id(9));
        assert_eq!(consts[4], &Value::Bool(true));
        assert_eq!(consts[5], &Value::Bool(false));
        assert_eq!(consts[6], &Value::Null);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("r(Z) :- p(X), Z := X + 2 * 3.\n").unwrap();
        let r = p.rules().next().unwrap();
        match &r.body[1] {
            BodyLit::Let(_, ScalarExpr::Binary(ArithOp::Add, _, rhs)) => {
                assert!(matches!(**rhs, ScalarExpr::Binary(ArithOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // parens override
        let p = parse("r(Z) :- p(X), Z := (X + 2) * 3.\n").unwrap();
        let r = p.rules().next().unwrap();
        match &r.body[1] {
            BodyLit::Let(_, ScalarExpr::Binary(ArithOp::Mul, lhs, _)) => {
                assert!(matches!(**lhs, ScalarExpr::Binary(ArithOp::Add, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_arity_atoms() {
        let p = parse("flag() :- src().\n").unwrap();
        let r = p.rules().next().unwrap();
        assert!(r.head_terms.is_empty());
        assert!(matches!(&r.body[0], BodyLit::Pos(a) if a.terms.is_empty()));
    }

    #[test]
    fn parse_errors() {
        // missing dot
        assert!(parse("p(X) :- q(X)").is_err());
        // bad type
        assert!(parse("rel t(x: wat).").is_err());
        // open without outputs
        assert!(parse("open j(x: int) -> ().").is_err());
        // unknown aggregate
        assert!(parse("n(total<X>) :- w(X).").is_err());
        // comparison missing operator
        assert!(parse("r(X) :- p(X), X.").is_err());
        // garbage after points
        assert!(parse("open j(x: int) -> (y: int) points oops.").is_err());
        // unclosed paren
        assert!(parse("p(X :- q(X).").is_err());
    }

    #[test]
    fn round_trip_pretty_print() {
        let src = "rel t(src: str, n: int).\n\
                   open judge(src: str) -> (ok: bool) points 5.\n\
                   t(\"hello\", 1).\n\
                   good(S) :- t(S, N), judge(S, OK), OK = true, N > 0.\n\
                   n_good(count<S>) :- good(S).\n";
        let p1 = parse(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse(&printed).unwrap();
        assert_eq!(p1, p2, "pretty-print must reparse to the same AST");
    }
}
