//! Abstract syntax of CyLog programs.
//!
//! A program is a list of clauses:
//!
//! ```text
//! rel translated(src: str, dst: str).                    // EDB declaration
//! open judge(src: str, dst: str) -> (ok: bool) points 5. // open predicate
//! translated("hello", "bonjour").                        // fact
//! good(S, D)  :- translated(S, D), judge(S, D, OK), OK = true.
//! missing(S)  :- translated(S, D), not good(S, D).
//! n_bad(count<S>) :- missing(S).                         // aggregate head
//! ```
//!
//! Open predicates model CyLog's defining feature — "CyLog allows humans to
//! evaluate predicates in rules" — their *input* columns are bound by the
//! engine, and their *output* columns are filled in by (simulated) workers.

use crowd4u_storage::prelude::{Value, ValueType};
use std::fmt;

/// A term in an atom: a variable or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    Var(String),
    Const(Value),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => f.write_str(v),
            Term::Const(Value::Str(s)) => write!(f, "{s:?}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Scalar expression used in assignments and comparisons.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    Term(Term),
    Binary(ArithOp, Box<ScalarExpr>, Box<ScalarExpr>),
}

/// Arithmetic operators in scalar expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Term(t) => write!(f, "{t}"),
            ScalarExpr::Binary(op, a, b) => write!(f, "({a} {op} {b})"),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A predicate applied to terms.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    pub pred: String,
    pub terms: Vec<Term>,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A body literal.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyLit {
    /// Positive atom `p(X, Y)`.
    Pos(Atom),
    /// Negated atom `not p(X, Y)` (stratified).
    Neg(Atom),
    /// Comparison `X < Y + 1`.
    Cmp(CmpOp, ScalarExpr, ScalarExpr),
    /// Assignment `Z := X * 2`, binding a fresh variable.
    Let(String, ScalarExpr),
}

impl fmt::Display for BodyLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyLit::Pos(a) => write!(f, "{a}"),
            BodyLit::Neg(a) => write!(f, "not {a}"),
            BodyLit::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            BodyLit::Let(v, e) => write!(f, "{v} := {e}"),
        }
    }
}

/// Aggregate functions allowed in rule heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "avg" => Some(AggFunc::Avg),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }

    /// Output type of the aggregate given its input type.
    pub fn output_type(self, input: ValueType) -> ValueType {
        match self {
            AggFunc::Count => ValueType::Int,
            AggFunc::Avg => ValueType::Float,
            AggFunc::Sum => ValueType::Float,
            AggFunc::Min | AggFunc::Max => input,
        }
    }
}

/// A head term: plain, or an aggregate over a body variable.
#[derive(Debug, Clone, PartialEq)]
pub enum HeadTerm {
    Plain(Term),
    Agg(AggFunc, String),
}

impl fmt::Display for HeadTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeadTerm::Plain(t) => write!(f, "{t}"),
            HeadTerm::Agg(func, v) => write!(f, "{}<{v}>", func.name()),
        }
    }
}

/// A rule `head :- body.` A rule with an empty body is a fact when all head
/// terms are constants.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    pub head_pred: String,
    pub head_terms: Vec<HeadTerm>,
    pub body: Vec<BodyLit>,
}

impl Rule {
    /// True when the rule has any aggregate head term.
    pub fn is_aggregate(&self) -> bool {
        self.head_terms
            .iter()
            .any(|t| matches!(t, HeadTerm::Agg(..)))
    }

    /// True when the rule is a ground fact (no body, constant head).
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
            && self
                .head_terms
                .iter()
                .all(|t| matches!(t, HeadTerm::Plain(Term::Const(_))))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head_pred)?;
        for (i, t) in self.head_terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A typed column in a declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ColDecl {
    pub name: String,
    pub ty: ValueType,
}

impl fmt::Display for ColDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.ty)
    }
}

/// Declaration of a closed (machine) relation: EDB if only facts feed it,
/// IDB if rules derive it.
#[derive(Debug, Clone, PartialEq)]
pub struct RelDecl {
    pub name: String,
    pub cols: Vec<ColDecl>,
}

/// Declaration of an open (human-evaluated) predicate:
/// `open judge(src: str) -> (ok: bool) points 5.`
/// Facts for the full column list `inputs ++ outputs` are supplied by
/// workers; the engine derives *demands* on the input columns.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenDecl {
    pub name: String,
    pub inputs: Vec<ColDecl>,
    pub outputs: Vec<ColDecl>,
    /// Game-aspect reward granted to the answering worker.
    pub points: i64,
}

impl OpenDecl {
    pub fn arity(&self) -> usize {
        self.inputs.len() + self.outputs.len()
    }
}

/// One top-level clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    Rel(RelDecl),
    Open(OpenDecl),
    Rule(Rule),
}

/// A parsed CyLog program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    pub clauses: Vec<Clause>,
}

impl Program {
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.clauses.iter().filter_map(|c| match c {
            Clause::Rule(r) => Some(r),
            _ => None,
        })
    }

    pub fn rel_decls(&self) -> impl Iterator<Item = &RelDecl> {
        self.clauses.iter().filter_map(|c| match c {
            Clause::Rel(d) => Some(d),
            _ => None,
        })
    }

    pub fn open_decls(&self) -> impl Iterator<Item = &OpenDecl> {
        self.clauses.iter().filter_map(|c| match c {
            Clause::Open(d) => Some(d),
            _ => None,
        })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.clauses {
            match c {
                Clause::Rel(d) => {
                    write!(f, "rel {}(", d.name)?;
                    for (i, col) in d.cols.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{col}")?;
                    }
                    writeln!(f, ").")?;
                }
                Clause::Open(d) => {
                    write!(f, "open {}(", d.name)?;
                    for (i, col) in d.inputs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{col}")?;
                    }
                    write!(f, ") -> (")?;
                    for (i, col) in d.outputs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{col}")?;
                    }
                    write!(f, ")")?;
                    if d.points != 0 {
                        write!(f, " points {}", d.points)?;
                    }
                    writeln!(f, ".")?;
                }
                Clause::Rule(r) => writeln!(f, "{r}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_rule() {
        let r = Rule {
            head_pred: "good".into(),
            head_terms: vec![HeadTerm::Plain(Term::Var("S".into()))],
            body: vec![
                BodyLit::Pos(Atom {
                    pred: "t".into(),
                    terms: vec![Term::Var("S".into()), Term::Const(Value::Int(1))],
                }),
                BodyLit::Neg(Atom {
                    pred: "bad".into(),
                    terms: vec![Term::Var("S".into())],
                }),
                BodyLit::Cmp(
                    CmpOp::Lt,
                    ScalarExpr::Term(Term::Var("S".into())),
                    ScalarExpr::Term(Term::Const(Value::Int(9))),
                ),
                BodyLit::Let(
                    "Z".into(),
                    ScalarExpr::Binary(
                        ArithOp::Add,
                        Box::new(ScalarExpr::Term(Term::Var("S".into()))),
                        Box::new(ScalarExpr::Term(Term::Const(Value::Int(1)))),
                    ),
                ),
            ],
        };
        assert_eq!(
            r.to_string(),
            "good(S) :- t(S, 1), not bad(S), S < 9, Z := (S + 1)."
        );
        assert!(!r.is_aggregate());
        assert!(!r.is_fact());
    }

    #[test]
    fn fact_detection() {
        let f = Rule {
            head_pred: "p".into(),
            head_terms: vec![HeadTerm::Plain(Term::Const(Value::Int(1)))],
            body: vec![],
        };
        assert!(f.is_fact());
        let not_fact = Rule {
            head_pred: "p".into(),
            head_terms: vec![HeadTerm::Plain(Term::Var("X".into()))],
            body: vec![],
        };
        assert!(!not_fact.is_fact());
    }

    #[test]
    fn agg_parse_and_types() {
        assert_eq!(AggFunc::parse("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::parse("nope"), None);
        assert_eq!(AggFunc::Count.output_type(ValueType::Str), ValueType::Int);
        assert_eq!(AggFunc::Min.output_type(ValueType::Str), ValueType::Str);
        assert_eq!(AggFunc::Avg.output_type(ValueType::Int), ValueType::Float);
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            assert_eq!(AggFunc::parse(f.name()), Some(f));
        }
    }

    #[test]
    fn program_accessors() {
        let p = Program {
            clauses: vec![
                Clause::Rel(RelDecl {
                    name: "t".into(),
                    cols: vec![],
                }),
                Clause::Open(OpenDecl {
                    name: "j".into(),
                    inputs: vec![],
                    outputs: vec![],
                    points: 3,
                }),
                Clause::Rule(Rule {
                    head_pred: "p".into(),
                    head_terms: vec![],
                    body: vec![],
                }),
            ],
        };
        assert_eq!(p.rules().count(), 1);
        assert_eq!(p.rel_decls().count(), 1);
        assert_eq!(p.open_decls().count(), 1);
        assert_eq!(p.open_decls().next().unwrap().arity(), 0);
    }

    #[test]
    fn string_consts_display_quoted() {
        let t = Term::Const(Value::Str("hi".into()));
        assert_eq!(t.to_string(), "\"hi\"");
    }
}
